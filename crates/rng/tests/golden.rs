//! Golden-value and statistical tests pinning the jact-rng streams.
//!
//! Every seeded experiment in the workspace depends on these exact
//! sequences; a failure here means determinism has silently regressed and
//! all harvested-activation / sweep results would change.

use jact_rng::{rngs::StdRng, Rng, SampleRange, SeedableRng, SplitMix64};

/// The canonical SplitMix64 test vectors (state = 0), as published with
/// the xoshiro reference code.
#[test]
fn splitmix64_matches_reference_vectors() {
    let mut sm = SplitMix64::new(0);
    assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
}

/// First eight raw words of the workspace's standard stream for seed 42.
#[test]
fn stdrng_seed42_golden_u64() {
    let mut rng = StdRng::seed_from_u64(42);
    let got: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        vec![
            0xD076_4D4F_4476_689F,
            0x519E_4174_576F_3791,
            0xFBE0_7CFB_0C24_ED8C,
            0xB37D_9F60_0CD8_35B8,
            0xCB23_1C38_7484_6A73,
            0x968D_9F00_4E50_DE7D,
            0x2017_18FF_221A_3556,
            0x9AE9_4E07_0ED8_CB46,
        ]
    );
}

/// First four `gen::<f32>()` draws for seed 0 (24-bit mantissa path).
#[test]
fn stdrng_seed0_golden_f32() {
    let mut rng = StdRng::seed_from_u64(0);
    let got: Vec<f32> = (0..4).map(|_| rng.gen::<f32>()).collect();
    assert_eq!(got, vec![0.32457525, 0.38223928, 0.35961717, 0.011455476]);
}

/// First eight `gen_range(0..10)` draws for seed 7 (Lemire reduction path).
#[test]
fn stdrng_seed7_golden_usize_range() {
    let mut rng = StdRng::seed_from_u64(7);
    let got: Vec<usize> = (0..8).map(|_| rng.gen_range(0..10usize)).collect();
    assert_eq!(got, vec![0, 1, 7, 4, 9, 4, 7, 3]);
}

#[test]
fn equal_seeds_equal_streams() {
    let mut a = StdRng::seed_from_u64(1234);
    let mut b = StdRng::seed_from_u64(1234);
    for _ in 0..1000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn different_seeds_differ() {
    let mut a = StdRng::seed_from_u64(1);
    let mut b = StdRng::seed_from_u64(2);
    let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
    assert_eq!(same, 0);
}

#[test]
fn gen_range_respects_bounds() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..10_000 {
        let u = rng.gen_range(3usize..17);
        assert!((3..17).contains(&u));
        let i = rng.gen_range(-13i64..-2);
        assert!((-13..-2).contains(&i));
        let f = rng.gen_range(-0.5f32..0.25);
        assert!((-0.5..0.25).contains(&f));
        let d = rng.gen_range(1.0f64..2.0);
        assert!((1.0..2.0).contains(&d));
    }
}

#[test]
fn gen_range_covers_every_bucket() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut counts = [0usize; 8];
    for _ in 0..8000 {
        counts[rng.gen_range(0..8usize)] += 1;
    }
    // Uniform expectation is 1000 per bucket; allow wide slack.
    for (i, &c) in counts.iter().enumerate() {
        assert!((600..1400).contains(&c), "bucket {i} count {c}");
    }
}

#[test]
#[should_panic(expected = "empty range")]
fn gen_range_empty_panics() {
    let mut rng = StdRng::seed_from_u64(0);
    let _ = rng.gen_range(5usize..5);
}

#[test]
fn unit_floats_in_half_open_interval() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..100_000 {
        let f: f32 = rng.gen();
        assert!((0.0..1.0).contains(&f), "f32 {f} out of [0,1)");
        let d: f64 = rng.gen();
        assert!((0.0..1.0).contains(&d), "f64 {d} out of [0,1)");
    }
}

/// Box–Muller sanity: sample mean and variance of N(0,1) draws.
#[test]
fn normal_mean_and_variance_sane() {
    let mut rng = StdRng::seed_from_u64(2020);
    let n = 100_000;
    let xs: Vec<f32> = (0..n).map(|_| rng.sample_normal_f32()).collect();
    let mean = xs.iter().sum::<f32>() / n as f32;
    let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
    assert!(mean.abs() < 0.02, "mean = {mean}");
    assert!((var - 1.0).abs() < 0.05, "var = {var}");
    // Tails exist but are not absurd.
    assert!(xs.iter().any(|&x| x > 2.5) && xs.iter().any(|&x| x < -2.5));
    assert!(xs.iter().all(|&x| x.abs() < 8.0));
}

#[test]
fn gen_bool_tracks_probability() {
    let mut rng = StdRng::seed_from_u64(77);
    let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
    assert!((2200..2800).contains(&hits), "hits = {hits}");
}

#[test]
fn shuffle_is_a_permutation() {
    let mut rng = StdRng::seed_from_u64(8);
    let mut xs: Vec<u32> = (0..100).collect();
    rng.shuffle(&mut xs);
    let mut sorted = xs.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    assert_ne!(xs, (0..100).collect::<Vec<_>>());
}

/// `SampleRange` is usable directly (the trait the `Rng::gen_range`
/// sugar delegates to).
#[test]
fn sample_range_direct_call() {
    let mut rng = StdRng::seed_from_u64(3);
    let v = (10u64..20).sample_from(&mut rng);
    assert!((10..20).contains(&v));
}

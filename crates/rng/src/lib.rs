//! # jact-rng
//!
//! The workspace's only source of randomness: a seedable, dependency-free
//! PRNG with a fixed, documented algorithm so every experiment in the
//! reproduction is bit-reproducible across machines and toolchains.
//!
//! * Seeding: [`SplitMix64`] expands a single `u64` seed into the 256-bit
//!   state of the main generator (the initialization recommended by the
//!   xoshiro authors).
//! * Generation: [`Xoshiro256PlusPlus`] — fast, well-tested, and tiny.
//! * API: mirrors the subset of `rand 0.8` this workspace historically
//!   used, so call sites read identically: [`rngs::StdRng`],
//!   [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//!   and a Box–Muller [`Rng::sample_normal_f32`] path for weight
//!   initialization.
//!
//! The streams produced here are pinned by golden-value tests; changing
//! the algorithm is a breaking change to every seeded experiment
//! (Sec. IV's harvested activations, the SFPR/DQT sweeps) and must be
//! done deliberately.

#![forbid(unsafe_code)]

/// SplitMix64: a tiny splittable generator used to expand seeds.
///
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014); the constants below are the canonical ones.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019): the workspace's standard
/// generator. 256 bits of state, period `2^256 - 1`, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Builds a generator from raw state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256++ state must be non-zero");
        Xoshiro256PlusPlus { s }
    }

    /// The next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The workspace's default RNG, by the name call sites use.
pub mod rngs {
    /// Alias kept so `rngs::StdRng` reads the same as it did under `rand`.
    pub type StdRng = super::Xoshiro256PlusPlus;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from `seed`; equal seeds produce
    /// equal streams forever.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // SplitMix64 output is equidistributed, so the all-zero state is
        // unreachable for any seed.
        Xoshiro256PlusPlus {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

/// Types samplable uniformly over their "standard" domain: the full range
/// for integers, `[0, 1)` for floats, `{false, true}` for bool.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with the full 24 bits of mantissa precision.
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa precision.
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable uniformly; implemented for `lo..hi` over the primitive
/// numeric types the workspace draws from.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's multiply-shift reduction: maps a u64 draw onto
                // [0, span) with bias < 2^-64 per draw — negligible and,
                // above all, deterministic.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $u).wrapping_add(hi as $u) as $t
            }
        }
    )*};
}
impl_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range called with empty range");
        let u: f32 = Standard::sample(rng);
        // `u < 1.0` guarantees the result stays below `end` except through
        // rounding at extreme spans; clamp keeps the contract exact.
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.end - (self.end - self.start) * f32::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        let u: f64 = Standard::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

/// The sampling interface; blanket-implemented for every generator that
/// can produce raw 64-bit words (today: [`Xoshiro256PlusPlus`]).
pub trait Rng {
    /// The next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word (the high half of one 64-bit draw).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// One value uniform over `T`'s standard domain (see [`Standard`]).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// One value uniform over the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// One standard normal (`N(0, 1)`) sample via Box–Muller.
    ///
    /// Two uniform draws per sample; no state is cached, so the stream
    /// alignment is easy to reason about when reproducing runs.
    fn sample_normal_f32(&mut self) -> f32
    where
        Self: Sized,
    {
        loop {
            let u1: f32 = self.gen::<f32>();
            if u1 <= f32::MIN_POSITIVE {
                continue;
            }
            let u2: f32 = self.gen::<f32>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * core::f32::consts::PI * u2).cos();
        }
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, xs: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }
}

impl Rng for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256PlusPlus::next_u64(self)
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

//! `jact-par`: a hermetic, deterministic fork-join runtime for the JPEG-ACT
//! hot paths.
//!
//! The hermetic-build policy (JA02) forbids `rayon`/`crossbeam`, so this crate
//! builds the concurrency substrate from `std::thread::scope` alone. Three
//! properties drive the design:
//!
//! 1. **Determinism (JA04).** Work is partitioned into chunks whose size is a
//!    function of the input only — never of the thread count — and per-chunk
//!    results are merged in chunk-index order. A computation run through any
//!    [`Pool`] therefore produces bitwise-identical output for 1, 2, or N
//!    threads.
//! 2. **Panic freedom (JA03).** No `unwrap`/`expect`/`panic!` in this crate.
//!    A panic raised *inside a caller-supplied closure* is captured via
//!    `JoinHandle::join` and re-raised on the calling thread with
//!    `std::panic::resume_unwind`, so fork-join never deadlocks or aborts the
//!    process on its own.
//! 3. **No oversubscription.** Worker bodies run with a thread-local
//!    "sequential" override engaged, so nested parallel calls (e.g. a codec
//!    stage invoked from an already-parallel offload batch) degrade to
//!    sequential execution instead of spawning `threads * threads` workers.
//!
//! Thread count resolution order: an active [`with_threads`] override on the
//! current thread, else the `JACT_THREADS` environment variable (read once),
//! else `std::thread::available_parallelism()`.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::LazyLock;

use jact_obs as obs;

thread_local! {
    /// Per-thread thread-count override. `0` means "no override": fall back
    /// to the process-global default. Worker threads run with this set to 1
    /// so nested parallel calls stay sequential.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };

    /// Depth of pool regions currently executing on this thread. Chunk
    /// bodies run at depth >= 1 (on workers and on the sequential fast
    /// path alike), so a region entered from inside a chunk body — the
    /// calls that degrade to sequential execution — is detected
    /// structurally, identically for any thread count.
    static REGION_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Process-global default thread count: `JACT_THREADS` if set and valid,
/// otherwise the machine's available parallelism.
static GLOBAL_THREADS: LazyLock<usize> = LazyLock::new(|| {
    let from_env = std::env::var("JACT_THREADS")
        .ok()
        .and_then(|v| parse_threads(&v));
    from_env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
});

/// Parses a `JACT_THREADS` value: a positive decimal integer. Returns `None`
/// for empty, zero, or non-numeric input so the caller falls back to the
/// machine default.
fn parse_threads(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Restores the previous `THREAD_OVERRIDE` value on drop, even if the guarded
/// closure panics (the unwinding path must not leak an override into
/// unrelated work on this thread).
struct OverrideGuard {
    prev: usize,
}

impl OverrideGuard {
    /// Sets the current thread's override to `threads` and remembers the
    /// previous value for restoration.
    fn engage(threads: usize) -> Self {
        let prev = THREAD_OVERRIDE.with(|c| {
            let p = c.get();
            c.set(threads.max(1));
            p
        });
        OverrideGuard { prev }
    }
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        THREAD_OVERRIDE.with(|c| c.set(prev));
    }
}

/// Decrements [`REGION_DEPTH`] on drop, restoring the depth even when a
/// chunk body panics.
struct RegionGuard;

impl RegionGuard {
    fn enter() -> Self {
        REGION_DEPTH.with(|c| c.set(c.get() + 1));
        RegionGuard
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        REGION_DEPTH.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// `true` while the current thread is executing a chunk body of some
/// pool region (at any nesting depth).
pub fn in_region() -> bool {
    REGION_DEPTH.with(|c| c.get()) > 0
}

/// Emits the region-entry counters when an observability capture is open
/// on the calling thread. `par.nested_regions` counts regions entered
/// from inside another region's chunk body — exactly the calls the
/// oversubscription rule degrades to sequential execution — so it doubles
/// as the sequential-fallback count. All three counters derive from the
/// input partition alone and are therefore thread-count-invariant.
fn note_region(num_chunks: usize) {
    if obs::is_active() {
        obs::count("par.regions", 1);
        obs::count("par.chunks", num_chunks as u64);
        if in_region() {
            obs::count("par.nested_regions", 1);
        }
    }
}

/// Wall-mode-only schedule diagnostics: worker count and per-worker chunk
/// loads. These depend on the machine's thread count, so they are
/// confined to wall mode, which already gives up cross-run comparability.
fn note_schedule(num_chunks: usize, workers: usize) {
    if obs::wall_active() {
        obs::gauge("par.workers", workers as u64);
        for w in 0..workers {
            let load = (num_chunks + workers - 1 - w) / workers;
            obs::observe("par.worker_chunks", load as f64);
        }
    }
}

/// Runs `f` with the calling thread's effective thread count set to
/// `threads` (clamped to at least 1). The override is scoped: it applies to
/// every [`Pool::current`] lookup made by `f` on this thread and is restored
/// afterwards, including on panic. Benches and determinism tests use this to
/// sweep thread counts without mutating the process environment.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _g = OverrideGuard::engage(threads);
    f()
}

/// A fork-join worker pool. `Pool` is a lightweight handle (just a thread
/// count); workers are scoped threads spawned per call, which is what lets
/// them borrow caller data under `#![forbid(unsafe_code)]`. The schedule —
/// fixed chunking plus round-robin chunk→worker assignment plus chunk-index
/// ordered merge — is deterministic for any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// Creates a pool with an explicit thread count (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The pool implied by the current thread's context: an active
    /// [`with_threads`] override if any, else [`Pool::global`].
    pub fn current() -> Pool {
        let over = THREAD_OVERRIDE.with(|c| c.get());
        if over >= 1 {
            Pool::new(over)
        } else {
            Pool::global()
        }
    }

    /// The process-global default pool, sized by `JACT_THREADS` or available
    /// parallelism. The environment variable is read once per process.
    pub fn global() -> Pool {
        Pool::new(*GLOBAL_THREADS)
    }

    /// The number of worker threads this pool will use (including the calling
    /// thread, which always participates as worker 0).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Core primitive: evaluates `f(i)` for every chunk index `i` in
    /// `0..num_chunks` and returns the results in chunk-index order. Chunk
    /// `i` is assigned to worker `i % workers`; the calling thread is worker
    /// 0. Worker bodies run with nested parallelism disabled. A panic in `f`
    /// is re-raised on the calling thread after all workers have been joined.
    ///
    /// When an observability capture is open on the calling thread
    /// (`jact_obs::is_active()`), each chunk body records into its own
    /// per-chunk sink and the event lists are absorbed back into the
    /// caller's capture in chunk-index order, so the merged trace is
    /// byte-identical for any thread count — the same discipline that
    /// keeps the numeric results bitwise stable.
    pub fn run_chunks<R: Send>(&self, num_chunks: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        if num_chunks == 0 {
            return Vec::new();
        }
        note_region(num_chunks);
        let workers = self.threads.min(num_chunks).max(1);
        note_schedule(num_chunks, workers);
        if workers == 1 {
            let _r = RegionGuard::enter();
            return (0..num_chunks).map(f).collect();
        }
        if obs::is_active() {
            let wall = obs::wall_active();
            let wrapped = |i: usize| obs::capture_with(wall, || f(i));
            let pairs = self.fork_join(num_chunks, workers, &wrapped);
            let mut out = Vec::with_capacity(num_chunks);
            for (r, events) in pairs {
                obs::absorb(events);
                out.push(r);
            }
            return out;
        }
        self.fork_join(num_chunks, workers, &f)
    }

    /// The scoped fork-join schedule behind [`Pool::run_chunks`]: spawns
    /// `workers - 1` scoped threads, runs worker 0 inline, and merges
    /// per-chunk results into chunk-index order.
    fn fork_join<R: Send>(
        &self,
        num_chunks: usize,
        workers: usize,
        f: &(impl Fn(usize) -> R + Sync),
    ) -> Vec<R> {
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(num_chunks, || None);
        std::thread::scope(|s| {
            let handles: Vec<_> = (1..workers)
                .map(|w| {
                    s.spawn(move || {
                        let _g = OverrideGuard::engage(1);
                        let _r = RegionGuard::enter();
                        let mut out = Vec::new();
                        let mut i = w;
                        while i < num_chunks {
                            out.push((i, f(i)));
                            i += workers;
                        }
                        out
                    })
                })
                .collect();
            let mut mine = Vec::new();
            {
                let _g = OverrideGuard::engage(1);
                let _r = RegionGuard::enter();
                let mut i = 0;
                while i < num_chunks {
                    mine.push((i, f(i)));
                    i += workers;
                }
            }
            for (i, r) in mine {
                slots[i] = Some(r);
            }
            for h in handles {
                match h.join() {
                    Ok(v) => {
                        for (i, r) in v {
                            slots[i] = Some(r);
                        }
                    }
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });
        slots.into_iter().flatten().collect()
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements (the
    /// last chunk may be shorter) and evaluates
    /// `f(chunk_index, element_offset, chunk)` for each, returning per-chunk
    /// results in chunk-index order. `chunk_len` must be derived from the
    /// input, never from the thread count, to preserve determinism.
    pub fn par_chunks<T: Sync, R: Send>(
        &self,
        data: &[T],
        chunk_len: usize,
        f: impl Fn(usize, usize, &[T]) -> R + Sync,
    ) -> Vec<R> {
        let chunk_len = chunk_len.max(1);
        let num_chunks = data.len().div_ceil(chunk_len);
        self.run_chunks(num_chunks, |i| {
            let start = i * chunk_len;
            let end = (start + chunk_len).min(data.len());
            f(i, start, &data[start..end])
        })
    }

    /// Mutable counterpart of [`Pool::par_chunks`]: splits `data` into
    /// disjoint consecutive `&mut` chunks and runs
    /// `f(chunk_index, element_offset, chunk)` on each. Disjointness makes
    /// the writes race-free without locks; output contents are identical for
    /// any thread count because each element is written by exactly one chunk.
    pub fn par_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, usize, &mut [T]) + Sync,
    ) {
        let chunk_len = chunk_len.max(1);
        if data.is_empty() {
            return;
        }
        let num_chunks = data.len().div_ceil(chunk_len);
        note_region(num_chunks);
        let workers = self.threads.min(num_chunks).max(1);
        note_schedule(num_chunks, workers);
        if workers == 1 {
            let _r = RegionGuard::enter();
            for (i, c) in data.chunks_mut(chunk_len).enumerate() {
                f(i, i * chunk_len, c);
            }
            return;
        }
        let record = obs::is_active();
        let wall = obs::wall_active();
        let mut assignments: Vec<Vec<(usize, &mut [T])>> = Vec::new();
        assignments.resize_with(workers, Vec::new);
        for (i, c) in data.chunks_mut(chunk_len).enumerate() {
            assignments[i % workers].push((i, c));
        }
        // Per-chunk captured event lists, merged after the join in
        // chunk-index order (empty and unused unless `record`).
        let mut captured: Vec<Option<Vec<obs::Event>>> = Vec::new();
        captured.resize_with(if record { num_chunks } else { 0 }, || None);
        std::thread::scope(|s| {
            let f = &f;
            let mut rest = assignments.into_iter();
            let mine = rest.next().unwrap_or_default();
            let handles: Vec<_> = rest
                .map(|chunks| {
                    s.spawn(move || {
                        let _g = OverrideGuard::engage(1);
                        let _r = RegionGuard::enter();
                        let mut events: Vec<(usize, Vec<obs::Event>)> = Vec::new();
                        for (i, c) in chunks {
                            if record {
                                let ((), ev) = obs::capture_with(wall, || f(i, i * chunk_len, c));
                                events.push((i, ev));
                            } else {
                                f(i, i * chunk_len, c);
                            }
                        }
                        events
                    })
                })
                .collect();
            {
                let _g = OverrideGuard::engage(1);
                let _r = RegionGuard::enter();
                for (i, c) in mine {
                    if record {
                        let ((), ev) = obs::capture_with(wall, || f(i, i * chunk_len, c));
                        captured[i] = Some(ev);
                    } else {
                        f(i, i * chunk_len, c);
                    }
                }
            }
            for h in handles {
                match h.join() {
                    Ok(v) => {
                        for (i, ev) in v {
                            captured[i] = Some(ev);
                        }
                    }
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });
        for ev in captured.into_iter().flatten() {
            obs::absorb(ev);
        }
    }

    /// Evaluates `f(index, &item)` for every item independently and returns
    /// the results in item order. Intended for coarse-grained work (one item
    /// per tensor); for fine-grained element work prefer [`Pool::par_chunks`].
    pub fn par_map_collect<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(usize, &T) -> R + Sync,
    ) -> Vec<R> {
        self.run_chunks(items.len(), |i| f(i, &items[i]))
    }

    /// Maps chunks of `data` to accumulators with `map` in parallel, then
    /// folds the accumulators **in chunk-index order** on the calling thread.
    /// Because the fold order is fixed by chunk index (a left fold over
    /// chunks 0, 1, 2, …), even non-commutative or non-associative-in-floats
    /// reductions give bitwise-identical results for any thread count.
    /// Returns `None` for empty input.
    pub fn par_reduce_ordered<T: Sync, A: Send>(
        &self,
        data: &[T],
        chunk_len: usize,
        map: impl Fn(usize, usize, &[T]) -> A + Sync,
        fold: impl FnMut(A, A) -> A,
    ) -> Option<A> {
        self.par_chunks(data, chunk_len, map).into_iter().reduce(fold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("abc"), None);
        assert_eq!(parse_threads("-2"), None);
    }

    #[test]
    fn pool_clamps_to_at_least_one_thread() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(7).threads(), 7);
        assert!(Pool::global().threads() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = Pool::current().threads();
        let seen = with_threads(3, || Pool::current().threads());
        assert_eq!(seen, 3);
        assert_eq!(Pool::current().threads(), outer);
        // Nested overrides stack.
        with_threads(5, || {
            assert_eq!(Pool::current().threads(), 5);
            with_threads(2, || assert_eq!(Pool::current().threads(), 2));
            assert_eq!(Pool::current().threads(), 5);
        });
    }

    #[test]
    fn with_threads_restores_after_panic() {
        let before = Pool::current().threads();
        let result = std::panic::catch_unwind(|| {
            with_threads(9, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(Pool::current().threads(), before);
    }

    #[test]
    fn run_chunks_returns_results_in_chunk_order() {
        for threads in [1, 2, 3, 8, 17] {
            let got = Pool::new(threads).run_chunks(23, |i| i * 10);
            let want: Vec<usize> = (0..23).map(|i| i * 10).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_sees_correct_offsets_and_lengths() {
        let data: Vec<u32> = (0..101).collect();
        for threads in [1, 2, 4, 8] {
            let spans = Pool::new(threads).par_chunks(&data, 7, |i, off, c| (i, off, c.to_vec()));
            let mut flat = Vec::new();
            for (i, (ci, off, c)) in spans.iter().enumerate() {
                assert_eq!(*ci, i);
                assert_eq!(*off, i * 7);
                flat.extend_from_slice(c);
            }
            assert_eq!(flat, data, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_writes_every_element_once() {
        for threads in [1, 2, 5, 8] {
            let mut out = vec![0u64; 97];
            Pool::new(threads).par_chunks_mut(&mut out, 10, |_, off, c| {
                for (k, v) in c.iter_mut().enumerate() {
                    *v = (off + k) as u64 * 3;
                }
            });
            let want: Vec<u64> = (0..97).map(|i| i * 3).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn par_map_collect_preserves_item_order() {
        let items: Vec<String> = (0..31).map(|i| format!("x{i}")).collect();
        for threads in [1, 2, 8] {
            let got = Pool::new(threads).par_map_collect(&items, |i, s| format!("{i}:{s}"));
            let want: Vec<String> = items.iter().enumerate().map(|(i, s)| format!("{i}:{s}")).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn par_reduce_ordered_is_a_left_fold_in_chunk_order() {
        // String concatenation is non-commutative: any deviation from
        // chunk-index order changes the result.
        let data: Vec<u8> = (b'a'..=b'z').collect();
        let seq: String = data.iter().map(|&b| b as char).collect();
        for threads in [1, 2, 3, 8] {
            let got = Pool::new(threads)
                .par_reduce_ordered(
                    &data,
                    5,
                    |_, _, c| c.iter().map(|&b| b as char).collect::<String>(),
                    |mut a, b| {
                        a.push_str(&b);
                        a
                    },
                )
                .unwrap_or_default();
            assert_eq!(got, seq, "threads={threads}");
        }
    }

    #[test]
    fn float_sum_is_bitwise_identical_across_thread_counts() {
        // Floating-point addition is not associative, so this only holds
        // because chunking and fold order are thread-count-invariant.
        let data: Vec<f32> = (0..4096).map(|i| ((i * 2654435761u64 as usize) % 1000) as f32 * 0.001 - 0.5).collect();
        let reduce = |threads: usize| {
            Pool::new(threads)
                .par_reduce_ordered(
                    &data,
                    64,
                    |_, _, c| c.iter().sum::<f32>(),
                    |a, b| a + b,
                )
                .unwrap_or(0.0)
        };
        let base = reduce(1).to_bits();
        for threads in [2, 3, 4, 8, 16] {
            assert_eq!(reduce(threads).to_bits(), base, "threads={threads}");
        }
    }

    #[test]
    fn nested_parallel_calls_degrade_to_sequential() {
        let inner_counts = Pool::new(4).run_chunks(4, |_| Pool::current().threads());
        assert_eq!(inner_counts, vec![1, 1, 1, 1]);
    }

    #[test]
    fn traces_merge_in_chunk_index_order_for_any_thread_count() {
        let run = |threads: usize| {
            let ((), trace) = obs::collect_with(false, || {
                Pool::new(threads)
                    .run_chunks(13, |i| {
                        obs::span("chunk", || obs::count("work", i as u64 + 1));
                    })
                    .len();
            });
            trace.to_json().to_string()
        };
        let base = run(1);
        assert!(base.contains("par.regions"), "{base}");
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_traces_are_thread_count_invariant() {
        let run = |threads: usize| {
            let mut data = vec![0u32; 57];
            let ((), trace) = obs::collect_with(false, || {
                Pool::new(threads).par_chunks_mut(&mut data, 5, |i, off, c| {
                    obs::count("chunk.bytes", c.len() as u64 * 4);
                    obs::gauge("chunk.last", (i + off) as u64);
                });
            });
            trace.to_json().to_string()
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn nested_regions_are_counted_structurally() {
        for threads in [1, 4] {
            let ((), trace) = obs::collect_with(false, || {
                Pool::new(threads).run_chunks(3, |_| {
                    // A nested region: degrades to sequential and counts.
                    Pool::current().run_chunks(2, |i| i);
                });
            });
            let totals = trace.counter_totals();
            assert_eq!(totals.get("par.regions"), Some(&4), "threads={threads}");
            assert_eq!(totals.get("par.nested_regions"), Some(&3), "threads={threads}");
            assert_eq!(totals.get("par.chunks"), Some(&9), "threads={threads}");
        }
    }

    #[test]
    fn in_region_is_false_outside_and_true_inside_chunk_bodies() {
        assert!(!in_region());
        let seen = Pool::new(2).run_chunks(4, |_| in_region());
        assert_eq!(seen, vec![true; 4]);
        assert!(!in_region());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).run_chunks(8, |i| {
                if i == 5 {
                    panic!("chunk 5 failed");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_inputs_are_noops() {
        let pool = Pool::new(4);
        assert!(pool.run_chunks(0, |i| i).is_empty());
        assert!(pool.par_chunks(&[] as &[u8], 8, |_, _, _| 0).is_empty());
        let mut empty: [u8; 0] = [];
        pool.par_chunks_mut(&mut empty, 8, |_, _, _| {});
        assert_eq!(
            pool.par_reduce_ordered(&[] as &[u8], 8, |_, _, _| 0u32, |a, b| a + b),
            None
        );
    }
}

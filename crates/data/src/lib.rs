//! # jact-data
//!
//! Deterministic synthetic datasets substituting for the paper's CIFAR10,
//! ImageNet, and Div2K inputs (see DESIGN.md §2 for the substitution
//! rationale).
//!
//! The generators produce **spatially correlated** images — smooth
//! multi-scale fields with class-dependent structure — because the paper's
//! central empirical observation (Figs. 2 and 6) is that convolutions of
//! such images yield activations whose frequency-domain representation is
//! more compact than their spatial representation.  White noise would
//! erase exactly the property under study.
//!
//! * [`synth`] — a 10-class classification task over structured images;
//! * [`sr`] — super-resolution pairs (degraded input, clean target);
//! * [`image`] — standalone natural-image-like fields for the entropy
//!   analyses.

#![forbid(unsafe_code)]

pub mod image;
pub mod sr;
pub mod synth;

pub use synth::SynthConfig;

//! The synthetic classification task (CIFAR10 substitute).
//!
//! Ten classes, each defined by a characteristic combination of stripe
//! orientation/frequency, blob placement, and color balance, rendered on
//! top of a natural-image-like background with additive noise.  The task
//! is learnable by a small CNN within a few epochs yet non-trivial, and
//! every image is spatially correlated (the property JPEG-ACT exploits).

use crate::image;
use jact_dnn::train::Batch;
use jact_tensor::{Shape, Tensor};
use jact_rng::rngs::StdRng;
use jact_rng::{Rng, SeedableRng};

/// Dataset parameters.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of classes (≤ 10 recommended).
    pub classes: usize,
    /// Image channels (3 for the CIFAR substitute).
    pub channels: usize,
    /// Square image extent.
    pub size: usize,
    /// Additive Gaussian pixel noise std.
    pub noise: f32,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            classes: 10,
            channels: 3,
            size: 32,
            noise: 0.05,
        }
    }
}

/// Class-dependent pattern parameters, fixed by class index so train and
/// validation splits share the same concept.
fn class_style(class: usize) -> (f32, f32, [f32; 3], (f32, f32)) {
    let angle = class as f32 * std::f32::consts::PI / 5.0;
    let freq = 2.0 + (class % 5) as f32 * 1.5;
    let color = [
        0.3 + 0.07 * ((class * 3) % 10) as f32,
        0.3 + 0.07 * ((class * 7) % 10) as f32,
        0.3 + 0.07 * ((class * 9) % 10) as f32,
    ];
    let blob = (
        0.2 + 0.6 * ((class % 3) as f32 / 2.0),
        0.2 + 0.6 * ((class / 3) as f32 / 3.0),
    );
    (angle, freq, color, blob)
}

/// Renders one image of `class`; deterministic in `(class, seed)`.
pub fn render_image(cfg: &SynthConfig, class: usize, seed: u64) -> Tensor {
    assert!(class < cfg.classes, "class out of range");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0000);
    let bg = image::natural_image(cfg.channels, cfg.size, seed ^ 0xbac6);
    let (angle, freq, color, (bx, by)) = class_style(class);
    let (ca, sa) = (angle.cos(), angle.sin());
    let size = cfg.size;
    let shape = Shape::nchw(1, cfg.channels, size, size);
    let mut data = vec![0.0f32; shape.len()];
    let jitter_x: f32 = rng.gen_range(-0.05..0.05);
    let jitter_y: f32 = rng.gen_range(-0.05..0.05);
    for ci in 0..cfg.channels {
        let tint = color[ci % 3];
        for y in 0..size {
            for x in 0..size {
                let (xf, yf) = (x as f32 / size as f32, y as f32 / size as f32);
                // Oriented stripes — the main class cue; requires
                // orientation/frequency-selective conv features.
                let t = (xf * ca + yf * sa) * freq * std::f32::consts::TAU;
                let stripes = 0.22 * t.sin();
                // Class blob (weak positional cue).
                let dx = xf - bx - jitter_x;
                let dy = yf - by - jitter_y;
                let blob = 0.3 * (-(dx * dx + dy * dy) / 0.02).exp();
                let base = bg.get4(0, ci, y, x) * 0.45;
                let noise = rng.gen_range(-1.0f32..1.0) * cfg.noise;
                // Tint kept weak so the class is not linearly separable
                // from channel means alone.
                let v = (base + stripes + blob + tint * 0.12 + 0.25 + noise).clamp(0.0, 1.0);
                data[(ci * size + y) * size + x] = v;
            }
        }
    }
    Tensor::from_vec(shape, data)
}

/// Generates `n_batches` classification batches of `batch_size`, with
/// labels uniformly distributed over the classes.
pub fn classification_batches(
    cfg: &SynthConfig,
    n_batches: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<Batch> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_batches)
        .map(|bi| {
            let shape = Shape::nchw(batch_size, cfg.channels, cfg.size, cfg.size);
            let mut data = Vec::with_capacity(shape.len());
            let mut labels = Vec::with_capacity(batch_size);
            for ii in 0..batch_size {
                let class = rng.gen_range(0..cfg.classes);
                let img_seed = seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add((bi * batch_size + ii) as u64);
                let img = render_image(cfg, class, img_seed);
                data.extend_from_slice(img.as_slice());
                labels.push(class);
            }
            Batch {
                images: Tensor::from_vec(shape, data),
                labels,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic() {
        let cfg = SynthConfig::default();
        assert_eq!(render_image(&cfg, 3, 5), render_image(&cfg, 3, 5));
        assert_ne!(render_image(&cfg, 3, 5), render_image(&cfg, 3, 6));
        assert_ne!(render_image(&cfg, 3, 5), render_image(&cfg, 4, 5));
    }

    #[test]
    fn pixels_in_unit_range() {
        let cfg = SynthConfig::default();
        let img = render_image(&cfg, 0, 1);
        assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn images_spatially_correlated() {
        let cfg = SynthConfig {
            noise: 0.02,
            ..Default::default()
        };
        let img = render_image(&cfg, 2, 9);
        assert!(crate::image::lag1_autocorrelation(&img) > 0.5);
    }

    #[test]
    fn batches_have_consistent_shapes_and_labels() {
        let cfg = SynthConfig::default();
        let batches = classification_batches(&cfg, 3, 4, 11);
        assert_eq!(batches.len(), 3);
        for b in &batches {
            assert_eq!(b.images.shape().dims(), &[4, 3, 32, 32]);
            assert_eq!(b.labels.len(), 4);
            assert!(b.labels.iter().all(|&l| l < 10));
        }
    }

    #[test]
    fn classes_are_distinguishable_by_simple_statistic() {
        // The class-dependent blob/tint should separate class means
        // enough that learning is plausible.
        let cfg = SynthConfig {
            noise: 0.02,
            ..Default::default()
        };
        let m0: f32 = (0..5)
            .map(|s| render_image(&cfg, 0, s).mean())
            .sum::<f32>()
            / 5.0;
        let m7: f32 = (0..5)
            .map(|s| render_image(&cfg, 7, s).mean())
            .sum::<f32>()
            / 5.0;
        assert!((m0 - m7).abs() > 0.01, "class means too close: {m0} vs {m7}");
    }

    #[test]
    fn different_seeds_produce_different_batches() {
        let cfg = SynthConfig::default();
        let a = classification_batches(&cfg, 1, 2, 1);
        let b = classification_batches(&cfg, 1, 2, 2);
        assert_ne!(a[0].images, b[0].images);
    }
}

//! Natural-image-like random fields.
//!
//! Real photographs have a roughly `1/f` spatial power spectrum: most
//! energy in low frequencies, smoothly decaying tails.  These generators
//! synthesize fields with that property by summing random sinusoidal
//! plane waves with amplitude inversely proportional to frequency, plus a
//! few smooth Gaussian bumps — enough structure for the paper's
//! frequency-entropy comparison (Fig. 2) to reproduce.

use jact_tensor::{Shape, Tensor};
use jact_rng::rngs::StdRng;
use jact_rng::{Rng, SeedableRng};

/// Parameters of one plane-wave component.
#[derive(Debug, Clone, Copy)]
struct Wave {
    fx: f32,
    fy: f32,
    phase: f32,
    amp: f32,
}

fn random_waves(rng: &mut StdRng, count: usize, max_freq: f32) -> Vec<Wave> {
    (0..count)
        .map(|_| {
            let f = rng.gen_range(0.5f32..max_freq);
            let theta = rng.gen_range(0.0f32..std::f32::consts::TAU);
            Wave {
                fx: f * theta.cos(),
                fy: f * theta.sin(),
                phase: rng.gen_range(0.0..std::f32::consts::TAU),
                // ~1/f amplitude: low frequencies dominate, as in photos.
                amp: 1.0 / f,
            }
        })
        .collect()
}

/// Evaluates a wave sum at pixel `(x, y)` of an image with extent `size`.
fn field(waves: &[Wave], x: usize, y: usize, size: usize) -> f32 {
    let (xf, yf) = (x as f32 / size as f32, y as f32 / size as f32);
    waves
        .iter()
        .map(|w| w.amp * (std::f32::consts::TAU * (w.fx * xf + w.fy * yf) + w.phase).sin())
        .sum()
}

/// Generates one natural-image-like plane in `[0, 1]`, shape
/// `[1, channels, size, size]`.
///
/// Channels share the same structure with small offsets, like the RGB
/// planes of a photo.
pub fn natural_image(channels: usize, size: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    // Enough components to populate the whole spectrum (with 1/f decay),
    // as photographs do.
    let waves = random_waves(&mut rng, 24, 14.0);
    let chan_offsets: Vec<f32> = (0..channels).map(|_| rng.gen_range(-0.1..0.1)).collect();
    // Real photographs contain objects: sharp occlusion boundaries that
    // keep the spectrum from decaying too fast.  Add a few random
    // rectangles with hard edges.
    let n_rects = 3usize;
    let rects: Vec<(f32, f32, f32, f32, f32)> = (0..n_rects)
        .map(|_| {
            (
                rng.gen_range(0.0f32..0.8),
                rng.gen_range(0.0f32..0.8),
                rng.gen_range(0.1f32..0.4),
                rng.gen_range(0.1f32..0.4),
                rng.gen_range(-0.35f32..0.35),
            )
        })
        .collect();
    let shape = Shape::nchw(1, channels, size, size);
    let mut data = vec![0.0f32; shape.len()];
    // Normalize the wave sum to roughly unit range first.
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    let mut base = vec![0.0f32; size * size];
    for y in 0..size {
        for x in 0..size {
            let mut v = field(&waves, x, y, size);
            let (xf, yf) = (x as f32 / size as f32, y as f32 / size as f32);
            for &(rx, ry, rw, rh, amp) in &rects {
                if xf >= rx && xf < rx + rw && yf >= ry && yf < ry + rh {
                    v += amp;
                }
            }
            lo = lo.min(v);
            hi = hi.max(v);
            base[y * size + x] = v;
        }
    }
    let span = (hi - lo).max(1e-6);
    for (ci, &off) in chan_offsets.iter().enumerate() {
        for (i, &b) in base.iter().enumerate() {
            data[ci * size * size + i] = (((b - lo) / span) + off).clamp(0.0, 1.0);
        }
    }
    Tensor::from_vec(shape, data)
}

/// Generates a batch of natural images, shape `[n, channels, size, size]`.
pub fn natural_batch(n: usize, channels: usize, size: usize, seed: u64) -> Tensor {
    let shape = Shape::nchw(n, channels, size, size);
    let mut data = Vec::with_capacity(shape.len());
    for i in 0..n {
        let img = natural_image(channels, size, seed.wrapping_add(i as u64 * 7919));
        data.extend_from_slice(img.as_slice());
    }
    Tensor::from_vec(shape, data)
}

/// Spatial autocorrelation at lag 1 (horizontal), averaged over planes —
/// a quick measure that generated images are smooth, not white noise.
pub fn lag1_autocorrelation(x: &Tensor) -> f64 {
    let (n, c, h, w) = (x.shape().n(), x.shape().c(), x.shape().h(), x.shape().w());
    let mean = x.mean() as f64;
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    let a = x.get4(ni, ci, hi, wi) as f64 - mean;
                    den += a * a;
                    if wi + 1 < w {
                        let b = x.get4(ni, ci, hi, wi + 1) as f64 - mean;
                        num += a * b;
                    }
                }
            }
        }
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_deterministic_per_seed() {
        let a = natural_image(3, 16, 42);
        let b = natural_image(3, 16, 42);
        let c = natural_image(3, 16, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pixel_range_is_unit_interval() {
        let img = natural_image(3, 32, 7);
        assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Uses a reasonable part of the range.
        assert!(img.max_abs() > 0.5);
    }

    #[test]
    fn images_are_spatially_correlated() {
        let img = natural_image(1, 32, 9);
        let rho = lag1_autocorrelation(&img);
        assert!(rho > 0.7, "lag-1 autocorrelation only {rho}");
    }

    #[test]
    fn batch_stacks_distinct_images() {
        let b = natural_batch(3, 1, 16, 100);
        assert_eq!(b.shape().dims(), &[3, 1, 16, 16]);
        let first: Vec<f32> = b.as_slice()[0..256].to_vec();
        let second: Vec<f32> = b.as_slice()[256..512].to_vec();
        assert_ne!(first, second);
    }
}

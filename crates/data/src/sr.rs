//! Super-resolution pairs (Div2K substitute).
//!
//! The paper evaluates VDSR on 64×64 random crops of Div2K (Sec. V).
//! Here targets are procedural high-detail textures, and inputs are the
//! classic SR degradation: 2× box downsampling followed by nearest
//! upsampling, plus mild noise.  The network learns the residual detail.

use crate::image;
use jact_dnn::train::SrBatch;
use jact_tensor::{Shape, Tensor};
use jact_rng::rngs::StdRng;
use jact_rng::{Rng, SeedableRng};

/// 2× box-downsample then nearest-upsample — the low-resolution proxy.
///
/// # Panics
///
/// Panics if height/width are odd.
pub fn degrade(x: &Tensor, noise: f32, rng: &mut StdRng) -> Tensor {
    let (n, c, h, w) = (x.shape().n(), x.shape().c(), x.shape().h(), x.shape().w());
    assert!(h % 2 == 0 && w % 2 == 0, "extent must be even");
    let mut out = Tensor::zeros(x.shape().clone());
    for ni in 0..n {
        for ci in 0..c {
            for by in 0..h / 2 {
                for bx in 0..w / 2 {
                    let avg = (x.get4(ni, ci, 2 * by, 2 * bx)
                        + x.get4(ni, ci, 2 * by, 2 * bx + 1)
                        + x.get4(ni, ci, 2 * by + 1, 2 * bx)
                        + x.get4(ni, ci, 2 * by + 1, 2 * bx + 1))
                        / 4.0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let v = (avg + rng.gen_range(-1.0f32..1.0) * noise).clamp(0.0, 1.0);
                            out.set4(ni, ci, 2 * by + dy, 2 * bx + dx, v);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Generates `n_batches` super-resolution batches of `batch_size` crops.
pub fn sr_batches(
    n_batches: usize,
    batch_size: usize,
    channels: usize,
    size: usize,
    seed: u64,
) -> Vec<SrBatch> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_batches)
        .map(|bi| {
            let shape = Shape::nchw(batch_size, channels, size, size);
            let mut data = Vec::with_capacity(shape.len());
            for ii in 0..batch_size {
                let img_seed = seed
                    .wrapping_mul(40_503)
                    .wrapping_add((bi * batch_size + ii) as u64);
                let img = image::natural_image(channels, size, img_seed);
                data.extend_from_slice(img.as_slice());
            }
            let target = Tensor::from_vec(shape, data);
            let input = degrade(&target, 0.01, &mut rng);
            SrBatch { input, target }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jact_dnn::metrics::psnr;

    #[test]
    fn degrade_removes_detail_but_keeps_range() {
        let target = image::natural_image(1, 32, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let input = degrade(&target, 0.0, &mut rng);
        assert!(input.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Degraded differs from target but not wildly (> 15 dB PSNR).
        let p = psnr(&input, &target, 1.0);
        assert!(p > 15.0 && p.is_finite(), "psnr={p}");
        assert!(target.mse(&input) > 0.0);
    }

    #[test]
    fn degrade_is_blockwise_constant_without_noise() {
        let target = image::natural_image(1, 16, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let input = degrade(&target, 0.0, &mut rng);
        for by in 0..8 {
            for bx in 0..8 {
                let v = input.get4(0, 0, 2 * by, 2 * bx);
                assert_eq!(input.get4(0, 0, 2 * by + 1, 2 * bx + 1), v);
            }
        }
    }

    #[test]
    fn batches_are_shaped_and_deterministic() {
        let a = sr_batches(2, 3, 1, 16, 9);
        let b = sr_batches(2, 3, 1, 16, 9);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].input.shape().dims(), &[3, 1, 16, 16]);
        assert_eq!(a[0].input, b[0].input);
        assert_eq!(a[0].target, b[0].target);
    }
}

//! Zigzag run-length encoding + Huffman coding — the JPEG-BASE back end
//! (Sec. III-E).
//!
//! Quantized 8×8 blocks are scanned in zigzag order and coded as JPEG-style
//! `(run, size)` symbols followed by `size` amplitude bits, with `EOB`
//! (end-of-block) and `ZRL` (16-zero run) escapes.  Symbols are Huffman
//! coded with a static table — the hardware design uses fixed tables
//! (OpenCores encoder/decoder in the paper), so no per-tensor table is
//! transmitted.
//!
//! Unlike baseline JPEG we do not differentially code the DC coefficient:
//! blocks are independent so that the multi-CDU collector can interleave
//! them freely (Sec. III-G).

use crate::bits::{BitReader, BitWriter};
use crate::dqt::ZIGZAG;
use jact_par::Pool;
use std::sync::LazyLock;

/// Blocks per parallel encoding chunk.  Chunk streams are joined at bit
/// granularity ([`BitWriter::append`]), so the coded bytes are identical to
/// sequential encoding for any thread count.
const RLE_BLOCKS_PER_CHUNK: usize = 256;

/// End-of-block symbol: `(run=0, size=0)`.
const EOB: u8 = 0x00;
/// 16-zero-run escape symbol: `(run=15, size=0)`.
const ZRL: u8 = 0xF0;

/// Amplitude size class of a quantized value: number of bits needed for
/// `|v|` (0 for zero, 8 for ±128).
fn size_class(v: i16) -> u32 {
    let a = v.unsigned_abs() as u32;
    32 - a.leading_zeros()
}

/// JPEG-style amplitude bits: positives as-is, negatives one's-complement
/// within the size class.
fn amplitude_bits(v: i16, size: u32) -> u32 {
    if v >= 0 {
        v as u32
    } else {
        (v + ((1 << size) - 1)) as u32
    }
}

fn amplitude_decode(bits: u32, size: u32) -> i16 {
    if size == 0 {
        return 0;
    }
    if bits < (1 << (size - 1)) {
        bits as i16 - ((1 << size) - 1)
    } else {
        bits as i16
    }
}

/// A static Huffman code over the 256 `(run, size)` symbols.
struct HuffmanTable {
    /// `(code, bit length)` per symbol.
    codes: [(u32, u8); 256],
    /// Flattened decode tree: nodes of `(left, right)` child indices;
    /// leaves store `symbol + 512`.
    tree: Vec<(u32, u32)>,
}

const LEAF_BASE: u32 = 512;

impl HuffmanTable {
    /// Builds a Huffman code from symbol weights.
    fn from_weights(weights: &[u64; 256]) -> Self {
        // Simple O(n^2) Huffman construction; runs once per process.
        #[derive(Clone)]
        struct Node {
            weight: u64,
            idx: u32, // tree index or LEAF_BASE + symbol
        }
        let mut tree: Vec<(u32, u32)> = Vec::new();
        let mut heap: Vec<Node> = weights
            .iter()
            .enumerate()
            .map(|(s, &w)| Node {
                weight: w.max(1),
                idx: LEAF_BASE + s as u32,
            })
            .collect();
        // Pop the two lightest nodes each round; the loop guard makes
        // both pops infallible, expressed with let-else so no panic path
        // survives in the hot-path crate.
        while heap.len() > 1 {
            heap.sort_by(|a, b| b.weight.cmp(&a.weight));
            let (Some(a), Some(b)) = (heap.pop(), heap.pop()) else {
                break;
            };
            tree.push((a.idx, b.idx));
            heap.push(Node {
                weight: a.weight + b.weight,
                idx: (tree.len() - 1) as u32,
            });
        }
        let root = heap[0].idx;
        let mut codes = [(0u32, 0u8); 256];
        // Root may be a single leaf only in degenerate cases; weights are
        // all >= 1 so with 256 symbols the root is always internal.
        fn assign(tree: &[(u32, u32)], codes: &mut [(u32, u8); 256], node: u32, code: u32, len: u8) {
            if node >= LEAF_BASE {
                codes[(node - LEAF_BASE) as usize] = (code, len.max(1));
                return;
            }
            let (l, r) = tree[node as usize];
            assign(tree, codes, l, code << 1, len + 1);
            assign(tree, codes, r, (code << 1) | 1, len + 1);
        }
        assign(&tree, &mut codes, root, 0, 0);
        // Re-root the tree vector so the last node is the root (it already
        // is, by construction).
        HuffmanTable { codes, tree }
    }

    fn encode(&self, w: &mut BitWriter, symbol: u8) {
        let (code, len) = self.codes[symbol as usize];
        w.write_bits(code, len as u32);
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Option<u8> {
        let mut node = (self.tree.len() - 1) as u32;
        loop {
            let bit = r.read_bit()?;
            let (l, rgt) = self.tree[node as usize];
            node = if bit { rgt } else { l };
            if node >= LEAF_BASE {
                return Some((node - LEAF_BASE) as u8);
            }
        }
    }
}

/// Code length of a `(run, size)` symbol in the standard JPEG AC
/// luminance Huffman table (Annex K), approximated by its structure:
/// short codes for small run/size, 4 bits for EOB, 11 for ZRL, growing
/// roughly linearly in `run + size`.  The hardware encoder (OpenCores,
/// Sec. III-E) uses the standard fixed tables, so the software model must
/// not use a better-matched code than the hardware would.
fn standard_code_len(run: u32, size: u32) -> u32 {
    match (run, size) {
        (0, 0) => 4,  // EOB
        (15, 0) => 11, // ZRL
        (0, 1) | (0, 2) => 2,
        (0, 3) => 3,
        (0, 4) => 4,
        (0, 5) => 5,
        (0, 6) => 7,
        (0, 7) => 8,
        (0, 8) => 10,
        (1, 1) => 4,
        (1, 2) => 5,
        (1, 3) => 7,
        (1, 4) => 9,
        (2, 1) => 5,
        (2, 2) => 8,
        (3, 1) => 6,
        (3, 2) => 9,
        (4, 1) => 6,
        (5, 1) => 7,
        (6, 1) => 7,
        (7, 1) => 8,
        (r, s) => (3 + r + 2 * s).min(16),
    }
}

/// The static Huffman code, weighted to reproduce the standard JPEG AC
/// table's code lengths (weight `2^(18 - length)`).
static TABLE: LazyLock<HuffmanTable> = LazyLock::new(|| {
    let mut weights = [1u64; 256];
    for run in 0..16u32 {
        for size in 0..=15u32 {
            let sym = ((run << 4) | size) as usize;
            let len = standard_code_len(run, size);
            weights[sym] = 1u64 << (18u32.saturating_sub(len));
        }
    }
    HuffmanTable::from_weights(&weights)
});

/// Encodes one quantized 8×8 block (row-major) into the bit stream.
pub fn encode_block(w: &mut BitWriter, quant: &[i8; 64]) {
    let table = &*TABLE;
    let mut zz = [0i16; 64];
    for (k, z) in zz.iter_mut().enumerate() {
        *z = quant[ZIGZAG[k]] as i16;
    }
    let mut i = 0usize;
    while i < 64 {
        if zz[i] == 0 {
            // Count the zero run.
            let mut j = i;
            while j < 64 && zz[j] == 0 {
                j += 1;
            }
            if j == 64 {
                table.encode(w, EOB);
                return;
            }
            let mut run = j - i;
            while run >= 16 {
                table.encode(w, ZRL);
                run -= 16;
            }
            let v = zz[j];
            let size = size_class(v);
            table.encode(w, ((run as u8) << 4) | size as u8);
            w.write_bits(amplitude_bits(v, size), size);
            i = j + 1;
        } else {
            let v = zz[i];
            let size = size_class(v);
            table.encode(w, size as u8);
            w.write_bits(amplitude_bits(v, size), size);
            i += 1;
        }
    }
}

/// Decodes one quantized 8×8 block (row-major) from the bit stream.
///
/// Returns `None` if the stream ends mid-block.
pub fn decode_block(r: &mut BitReader<'_>) -> Option<[i8; 64]> {
    let table = &*TABLE;
    let mut zz = [0i16; 64];
    let mut i = 0usize;
    while i < 64 {
        let sym = table.decode(r)?;
        if sym == EOB {
            break;
        }
        if sym == ZRL {
            i += 16;
            continue;
        }
        let run = (sym >> 4) as usize;
        let size = (sym & 0xF) as u32;
        i += run;
        if i >= 64 {
            return None; // corrupt stream
        }
        let bits = r.read_bits(size)?;
        zz[i] = amplitude_decode(bits, size);
        i += 1;
    }
    let mut out = [0i8; 64];
    for (k, &z) in zz.iter().enumerate() {
        out[ZIGZAG[k]] = z.clamp(i8::MIN as i16, i8::MAX as i16) as i8;
    }
    Some(out)
}

/// Encodes a sequence of quantized blocks into a byte vector.
pub fn encode_blocks(blocks: &[[i8; 64]]) -> Vec<u8> {
    let pool = Pool::current();
    // Small-input shortcut only: gating on the thread count here would make
    // the observability event stream differ between thread counts, breaking
    // golden-trace byte equality. `par_chunks` already degrades to a
    // sequential fast path on a single worker.
    if blocks.len() < 2 * RLE_BLOCKS_PER_CHUNK {
        let mut w = BitWriter::new();
        for b in blocks {
            encode_block(&mut w, b);
        }
        return w.finish();
    }
    let writers = pool.par_chunks(blocks, RLE_BLOCKS_PER_CHUNK, |_, _, chunk| {
        let mut w = BitWriter::new();
        for b in chunk {
            encode_block(&mut w, b);
        }
        w
    });
    let mut out = BitWriter::new();
    for w in writers {
        out.append(w);
    }
    out.finish()
}

/// Decodes `count` quantized blocks from a byte slice.
///
/// Returns `None` if the stream is truncated or corrupt.
pub fn decode_blocks(bytes: &[u8], count: usize) -> Option<Vec<[i8; 64]>> {
    let mut r = BitReader::new(bytes);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_block(&mut r)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_boundaries() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(1), 1);
        assert_eq!(size_class(-1), 1);
        assert_eq!(size_class(2), 2);
        assert_eq!(size_class(3), 2);
        assert_eq!(size_class(127), 7);
        assert_eq!(size_class(-128), 8);
    }

    #[test]
    fn amplitude_roundtrip_all_i8() {
        for v in i8::MIN..=i8::MAX {
            let v = v as i16;
            let s = size_class(v);
            let bits = amplitude_bits(v, s);
            assert_eq!(amplitude_decode(bits, s), v, "v={v}");
        }
    }

    #[test]
    fn all_zero_block_is_one_eob() {
        let block = [0i8; 64];
        let bytes = encode_blocks(&[block]);
        // EOB is the most frequent symbol: codes to very few bits.
        assert!(bytes.len() <= 2, "EOB block took {} bytes", bytes.len());
        let dec = decode_blocks(&bytes, 1).expect("decodes");
        assert_eq!(dec[0], block);
    }

    #[test]
    fn roundtrip_sparse_block() {
        let mut block = [0i8; 64];
        block[0] = 37;
        block[9] = -4;
        block[63] = 1;
        let bytes = encode_blocks(&[block]);
        let dec = decode_blocks(&bytes, 1).expect("decodes");
        assert_eq!(dec[0], block);
    }

    #[test]
    fn roundtrip_dense_block() {
        let mut block = [0i8; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i as i32 * 11 % 255) - 127) as i8;
        }
        let bytes = encode_blocks(&[block]);
        let dec = decode_blocks(&bytes, 1).expect("decodes");
        assert_eq!(dec[0], block);
    }

    #[test]
    fn roundtrip_long_zero_runs_need_zrl() {
        let mut block = [0i8; 64];
        block[63] = -77; // 63 zeros then a value: requires 3 ZRLs.
        let bytes = encode_blocks(&[block]);
        let dec = decode_blocks(&bytes, 1).expect("decodes");
        assert_eq!(dec[0], block);
    }

    #[test]
    fn roundtrip_multiple_blocks() {
        let mut blocks = Vec::new();
        for b in 0..10 {
            let mut block = [0i8; 64];
            for i in 0..64 {
                if (i + b) % 5 == 0 {
                    block[i] = ((i as i32 - 32) / 2) as i8;
                }
            }
            blocks.push(block);
        }
        let bytes = encode_blocks(&blocks);
        let dec = decode_blocks(&bytes, blocks.len()).expect("decodes");
        assert_eq!(dec, blocks);
    }

    #[test]
    fn sparse_blocks_compress_well() {
        // 90% zeros: should beat 64 bytes/block comfortably.
        let mut blocks = Vec::new();
        for b in 0..100usize {
            let mut block = [0i8; 64];
            for i in (0..64).step_by(10) {
                block[i] = ((b + i) % 7) as i8 + 1;
            }
            blocks.push(block);
        }
        let bytes = encode_blocks(&blocks);
        let ratio = (blocks.len() * 64) as f64 / bytes.len() as f64;
        assert!(ratio > 3.0, "ratio={ratio}");
    }

    #[test]
    fn parallel_encode_matches_sequential_bitwise() {
        // Enough blocks to cross the parallel threshold, with varied
        // content so chunk boundaries land mid-byte in the bit stream.
        let blocks: Vec<[i8; 64]> = (0..2 * super::RLE_BLOCKS_PER_CHUNK + 19)
            .map(|b| {
                let mut block = [0i8; 64];
                for i in 0..64 {
                    if (i * 7 + b) % 5 == 0 {
                        block[i] = (((i * 31 + b * 13) % 255) as i32 - 127) as i8;
                    }
                }
                block
            })
            .collect();
        let base = jact_par::with_threads(1, || encode_blocks(&blocks));
        for threads in [2, 3, 8] {
            let bytes = jact_par::with_threads(threads, || encode_blocks(&blocks));
            assert_eq!(bytes, base, "threads={threads}");
        }
        let dec = decode_blocks(&base, blocks.len()).expect("decodes");
        assert_eq!(dec, blocks);
    }

    #[test]
    fn truncated_stream_returns_none() {
        let mut block = [0i8; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as i8).wrapping_mul(3);
        }
        let bytes = encode_blocks(&[block]);
        assert!(decode_blocks(&bytes[..bytes.len() / 2], 1).is_none());
    }
}

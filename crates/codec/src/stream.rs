//! Collector and splitter: multi-CDU stream aggregation (Sec. III-G,
//! Fig. 15).
//!
//! Several Compression/Decompression Units (CDUs) each emit one
//! variable-sized ZVC block payload (8-byte non-zero mask + packed values,
//! up to 72 B) per cycle slot.  The **collector** joins these streams with
//! deterministic round-robin scheduling into 128 B DMA packets; the
//! **splitter** reverses the process on the way back from CPU memory by
//! peeking each block's mask to learn its length.
//!
//! Because scheduling is deterministic, no side-band metadata is needed —
//! the splitter recomputes the interleave exactly.  This module is the
//! functional model; `jact-gpusim` layers timing on top of it.
//!
//! The splitter consumes bytes that crossed the DMA link, so every decode
//! failure is a typed [`CodecError::Stream`] naming the CDU index and the
//! byte offset where decoding failed — never a panic or a bare `None`.

use crate::error::CodecError;
use jact_par::Pool;

/// DMA packet size in bytes (two 64 B flits on the PCIe DMA path).
pub const PACKET_BYTES: usize = 128;

/// Blocks per parallel framing chunk (input-derived, thread-count
/// independent).
const FRAME_BLOCKS_PER_CHUNK: usize = 256;

/// One CDU output block: the ZVC form of a quantized 8×8 block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPayload {
    /// 64-bit non-zero mask (one bit per coefficient, LSB-first).
    pub mask: [u8; 8],
    /// Packed non-zero bytes; length must equal the mask popcount.
    pub values: Vec<u8>,
}

impl BlockPayload {
    /// Builds a payload from a quantized block, applying ZVC framing.
    pub fn from_block(block: &[i8; 64]) -> Self {
        let nonzero = block.iter().filter(|&&v| v != 0).count();
        let mut mask = [0u8; 8];
        let mut values = Vec::with_capacity(nonzero);
        for (i, &v) in block.iter().enumerate() {
            if v != 0 {
                mask[i / 8] |= 1 << (i % 8);
                values.push(v as u8);
            }
        }
        BlockPayload { mask, values }
    }

    /// Reconstructs the dense quantized block.
    ///
    /// Returns [`CodecError::Corrupt`] if the value count does not match
    /// the mask popcount.
    pub fn to_block(&self) -> Result<[i8; 64], CodecError> {
        if self.values.len() != self.popcount() {
            return Err(CodecError::Corrupt(
                "block payload value count does not match mask popcount",
            ));
        }
        let mut out = [0i8; 64];
        let mut vi = 0usize;
        for (i, o) in out.iter_mut().enumerate() {
            if self.mask[i / 8] >> (i % 8) & 1 == 1 {
                *o = self.values[vi] as i8;
                vi += 1;
            }
        }
        Ok(out)
    }

    /// Number of non-zero values announced by the mask.
    pub fn popcount(&self) -> usize {
        self.mask.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Bytes this payload occupies on the wire (mask + values).
    pub fn wire_bytes(&self) -> usize {
        8 + self.values.len()
    }
}

/// Frames a contiguous run of quantized 8×8 blocks into per-block ZVC
/// payloads, one CDU's worth of work per chunk, across the current pool.
/// Payload order matches block order for any thread count, so the
/// collector's deterministic round-robin schedule is unaffected.
pub fn payloads_from_blocks(blocks: &[[i8; 64]]) -> Vec<BlockPayload> {
    let mut out = vec![
        BlockPayload {
            mask: [0u8; 8],
            values: Vec::new(),
        };
        blocks.len()
    ];
    Pool::current().par_chunks_mut(&mut out, FRAME_BLOCKS_PER_CHUNK, |_, off, chunk| {
        for (k, p) in chunk.iter_mut().enumerate() {
            *p = BlockPayload::from_block(&blocks[off + k]);
        }
    });
    out
}

/// Collects per-CDU block streams into a single 128 B-packet DMA stream.
///
/// CDUs are drained round-robin, one block per slot; exhausted CDUs are
/// skipped (the hardware stalls them out of the schedule identically).
/// The final packet is zero-padded to [`PACKET_BYTES`].
///
/// Returns the packed byte stream, or [`CodecError::Stream`] naming the
/// CDU and output offset if a payload's value count disagrees with its
/// mask popcount.
pub fn collect(streams: &[Vec<BlockPayload>]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    let mut cursors = vec![0usize; streams.len()];
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut emitted = 0usize;
    while emitted < total {
        for (ci, stream) in streams.iter().enumerate() {
            if cursors[ci] < stream.len() {
                let b = &stream[cursors[ci]];
                if b.values.len() != b.popcount() {
                    return Err(CodecError::Stream {
                        cdu: ci,
                        offset: out.len(),
                        what: "payload value count does not match mask popcount",
                    });
                }
                out.extend_from_slice(&b.mask);
                out.extend_from_slice(&b.values);
                cursors[ci] += 1;
                emitted += 1;
            }
        }
    }
    // Pad to a whole number of DMA packets.
    let rem = out.len() % PACKET_BYTES;
    if rem != 0 {
        out.resize(out.len() + PACKET_BYTES - rem, 0);
    }
    Ok(out)
}

/// Splits a collected DMA stream back into per-CDU block streams.
///
/// `counts[c]` is the number of blocks CDU `c` contributed; the splitter
/// re-derives the round-robin interleave from these counts alone.
///
/// Returns [`CodecError::Stream`] naming the CDU index and byte offset if
/// the stream ends before the announced counts are satisfied.
pub fn split(bytes: &[u8], counts: &[usize]) -> Result<Vec<Vec<BlockPayload>>, CodecError> {
    let mut outs: Vec<Vec<BlockPayload>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    let total: usize = counts.iter().sum();
    let mut pos = 0usize;
    let mut emitted = 0usize;
    while emitted < total {
        for (ci, &count) in counts.iter().enumerate() {
            if outs[ci].len() < count {
                if pos + 8 > bytes.len() {
                    return Err(CodecError::Stream {
                        cdu: ci,
                        offset: pos,
                        what: "stream ends inside block mask",
                    });
                }
                let mut mask = [0u8; 8];
                mask.copy_from_slice(&bytes[pos..pos + 8]);
                pos += 8;
                let n: usize = mask.iter().map(|b| b.count_ones() as usize).sum();
                if pos + n > bytes.len() {
                    return Err(CodecError::Stream {
                        cdu: ci,
                        offset: pos,
                        what: "stream ends inside block values",
                    });
                }
                let values = bytes[pos..pos + n].to_vec();
                pos += n;
                outs[ci].push(BlockPayload { mask, values });
                emitted += 1;
            }
        }
    }
    Ok(outs)
}

/// Number of 128 B DMA packets a byte total occupies.
pub fn packets_for(bytes: usize) -> usize {
    bytes.div_ceil(PACKET_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_with(nonzeros: &[(usize, i8)]) -> [i8; 64] {
        let mut b = [0i8; 64];
        for &(i, v) in nonzeros {
            b[i] = v;
        }
        b
    }

    #[test]
    fn payload_roundtrip() {
        let b = block_with(&[(0, 3), (5, -1), (63, 12)]);
        let p = BlockPayload::from_block(&b);
        assert_eq!(p.popcount(), 3);
        assert_eq!(p.wire_bytes(), 11);
        assert_eq!(p.to_block().unwrap(), b);
    }

    #[test]
    fn empty_block_is_mask_only() {
        let p = BlockPayload::from_block(&[0i8; 64]);
        assert_eq!(p.wire_bytes(), 8);
        assert_eq!(p.to_block().unwrap(), [0i8; 64]);
    }

    #[test]
    fn malformed_payload_to_block_is_an_error() {
        let p = BlockPayload {
            mask: [0xff; 8],
            values: vec![1, 2, 3],
        };
        assert!(matches!(p.to_block(), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn collect_split_roundtrip_equal_streams() {
        let streams: Vec<Vec<BlockPayload>> = (0..4)
            .map(|c| {
                (0..5)
                    .map(|i| {
                        BlockPayload::from_block(&block_with(&[
                            (i, (c + 1) as i8),
                            ((i + c) % 64, -2),
                        ]))
                    })
                    .collect()
            })
            .collect();
        let bytes = collect(&streams).expect("well-formed streams");
        assert_eq!(bytes.len() % PACKET_BYTES, 0);
        let counts: Vec<usize> = streams.iter().map(|s| s.len()).collect();
        let back = split(&bytes, &counts).expect("splits");
        assert_eq!(back, streams);
    }

    #[test]
    fn collect_split_roundtrip_unequal_streams() {
        let streams: Vec<Vec<BlockPayload>> = vec![
            (0..7)
                .map(|i| BlockPayload::from_block(&block_with(&[(i, 1)])))
                .collect(),
            (0..3)
                .map(|i| BlockPayload::from_block(&block_with(&[(i * 2, -3), (50, 9)])))
                .collect(),
            Vec::new(),
            (0..1)
                .map(|_| BlockPayload::from_block(&[0i8; 64]))
                .collect(),
        ];
        let bytes = collect(&streams).expect("well-formed streams");
        let counts: Vec<usize> = streams.iter().map(|s| s.len()).collect();
        let back = split(&bytes, &counts).expect("splits");
        assert_eq!(back, streams);
    }

    #[test]
    fn collect_rejects_malformed_payload_with_cdu_index() {
        let good = vec![BlockPayload::from_block(&block_with(&[(0, 1)]))];
        let bad = vec![BlockPayload {
            mask: [0xff; 8],
            values: vec![1],
        }];
        let err = collect(&[good, bad]).unwrap_err();
        assert_eq!(
            err,
            CodecError::Stream {
                cdu: 1,
                offset: 9,
                what: "payload value count does not match mask popcount",
            }
        );
    }

    #[test]
    fn interleave_is_round_robin() {
        // CDU0 block then CDU1 block: first 8 bytes on the wire are CDU0's
        // mask.
        let b0 = BlockPayload::from_block(&block_with(&[(0, 7)]));
        let b1 = BlockPayload::from_block(&block_with(&[(1, 8)]));
        let bytes = collect(&[vec![b0.clone()], vec![b1.clone()]]).expect("well-formed");
        assert_eq!(&bytes[0..8], &b0.mask);
        assert_eq!(bytes[8], 7u8);
        assert_eq!(&bytes[9..17], &b1.mask);
    }

    #[test]
    fn truncated_stream_names_cdu_and_offset() {
        let streams = vec![vec![BlockPayload::from_block(&block_with(&[(0, 1)]))]];
        let bytes = collect(&streams).expect("well-formed");
        let err = split(&bytes[..4], &[1]).unwrap_err();
        assert_eq!(
            err,
            CodecError::Stream {
                cdu: 0,
                offset: 0,
                what: "stream ends inside block mask",
            }
        );
    }

    #[test]
    fn truncated_values_name_cdu_and_offset() {
        // A dense mask announcing 64 values followed by only 2 bytes.
        let mut bytes = vec![0xffu8; 8];
        bytes.extend_from_slice(&[1, 2]);
        let err = split(&bytes, &[1]).unwrap_err();
        assert_eq!(
            err,
            CodecError::Stream {
                cdu: 0,
                offset: 8,
                what: "stream ends inside block values",
            }
        );
    }

    #[test]
    fn parallel_framing_matches_per_block_framing() {
        let blocks: Vec<[i8; 64]> = (0..600)
            .map(|b| block_with(&[(b % 64, (b % 120) as i8 - 60), ((b * 7) % 64, 3)]))
            .collect();
        let want: Vec<BlockPayload> = blocks.iter().map(BlockPayload::from_block).collect();
        for threads in [1, 2, 8] {
            let got = jact_par::with_threads(threads, || payloads_from_blocks(&blocks));
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn packets_for_rounds_up() {
        assert_eq!(packets_for(0), 0);
        assert_eq!(packets_for(1), 1);
        assert_eq!(packets_for(128), 1);
        assert_eq!(packets_for(129), 2);
    }
}

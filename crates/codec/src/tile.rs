//! Streaming tile pipeline: one 8×8 block travels gather → DCT →
//! quantize → entropy code without any intermediate `Vec<[i8; 64]>`
//! tensor ever being materialized — the software mirror of the paper's
//! CDU datapath (Sec. III, Fig. 11), where a block streams through the
//! alignment buffer, transform, quantizer, and coder in one pass.
//!
//! A [`TileStage`] maps one tile to the next representation; [`Then`]
//! composes stages so a whole encode front end is a single object the
//! coding drivers ([`encode_rle`], [`encode_zvc`]) pull tiles from.
//! The decode direction runs the mirrored stages ([`Dequantize`],
//! [`InverseDct`]) inside the scatter drivers ([`decode_zvc`],
//! [`untile_blocks`]), which write reconstructed rows straight into the
//! unpadded value plane.
//!
//! ## Determinism and byte compatibility
//!
//! Work is chunked by [`TILES_PER_CHUNK`] = 256 blocks = 16 384 ZVC
//! words — exactly the chunk sizes the staged `rle::encode_blocks` and
//! `Zvc::compress_i8` paths used, and the same small-input shortcut
//! threshold (2 chunks).  Per-chunk results merge in chunk-index order
//! (`jact-par` contract), RLE streams join at bit granularity, and ZVC
//! mask/value streams concatenate on whole-byte boundaries (64 words per
//! block ⇒ 8 mask bytes per block), so the fused output is bitwise
//! identical to the staged pipeline at any `JACT_THREADS`.

use crate::bits::BitWriter;
use crate::block::{BlockLayout, PadStrategy};
use crate::dct::{dct2d_i8, idct2d_to_i8};
use crate::error::CodecError;
use crate::quant::QuantTables;
use crate::rle;
use crate::zvc::Zvc;
use jact_par::Pool;

/// 8×8 tiles per parallel chunk.  Matches the staged coders' chunk sizes
/// (256 blocks = 16 384 one-byte ZVC words), so fused chunk boundaries
/// land exactly where the staged pipeline's did.  Input-derived only.
pub const TILES_PER_CHUNK: usize = 256;

/// One step of the streaming pipeline: maps a tile-sized input to a
/// tile-sized output.  `Sync` because drivers apply stages from worker
/// threads.
pub trait TileStage: Sync {
    /// Input tile representation.
    type In;
    /// Output tile representation.
    type Out;
    /// Transforms one tile.
    fn apply(&self, tile: Self::In) -> Self::Out;
}

/// Sequential composition of two stages.
pub struct Then<A, B>(pub A, pub B);

impl<A: TileStage, B: TileStage<In = A::Out>> TileStage for Then<A, B> {
    type In = A::In;
    type Out = B::Out;
    #[inline]
    fn apply(&self, tile: Self::In) -> Self::Out {
        self.1.apply(self.0.apply(tile))
    }
}

/// Tile source: gathers block `bi` directly from the unpadded value
/// plane (zero-filling padding lanes inline).
pub struct Gather<'a> {
    /// The block tiling of the tensor.
    pub layout: &'a BlockLayout,
    /// The SFPR value plane (unpadded).
    pub values: &'a [i8],
}

impl TileStage for Gather<'_> {
    type In = usize;
    type Out = [i8; 64];
    #[inline]
    fn apply(&self, bi: usize) -> [i8; 64] {
        self.layout.gather_block(self.values, bi)
    }
}

/// Tile source over already-materialized blocks — lets tests and benches
/// drive the coding back end from a staged block list.
pub struct FromBlocks<'a>(pub &'a [[i8; 64]]);

impl TileStage for FromBlocks<'_> {
    type In = usize;
    type Out = [i8; 64];
    #[inline]
    fn apply(&self, bi: usize) -> [i8; 64] {
        self.0[bi]
    }
}

/// Forward fixed-point 2-D DCT stage.
pub struct ForwardDct;

impl TileStage for ForwardDct {
    type In = [i8; 64];
    type Out = [i16; 64];
    #[inline]
    fn apply(&self, tile: [i8; 64]) -> [i16; 64] {
        dct2d_i8(&tile)
    }
}

/// Quantize stage over per-tensor precomputed tables.
pub struct Quantize<'a>(pub &'a QuantTables);

impl TileStage for Quantize<'_> {
    type In = [i16; 64];
    type Out = [i8; 64];
    #[inline]
    fn apply(&self, tile: [i16; 64]) -> [i8; 64] {
        self.0.quantize_block(&tile)
    }
}

/// Dequantize stage (decode mirror of [`Quantize`]).
pub struct Dequantize<'a>(pub &'a QuantTables);

impl TileStage for Dequantize<'_> {
    type In = [i8; 64];
    type Out = [i16; 64];
    #[inline]
    fn apply(&self, tile: [i8; 64]) -> [i16; 64] {
        self.0.dequantize_block(&tile)
    }
}

/// Inverse fixed-point 2-D DCT stage (decode mirror of [`ForwardDct`]).
pub struct InverseDct;

impl TileStage for InverseDct {
    type In = [i16; 64];
    type Out = [i8; 64];
    #[inline]
    fn apply(&self, tile: [i16; 64]) -> [i8; 64] {
        idct2d_to_i8(&tile)
    }
}

/// Materializes every tile of an index-driven stage — the escape hatch
/// for consumers that need the full quantized block list (entropy and
/// rate-distortion metrics), not the streaming coders.
pub fn collect_tiles<S>(stage: &S, num_blocks: usize) -> Vec<[i8; 64]>
where
    S: TileStage<In = usize, Out = [i8; 64]>,
{
    let mut out = vec![[0i8; 64]; num_blocks];
    Pool::current().par_chunks_mut(&mut out, TILES_PER_CHUNK, |_, off, chunk| {
        for (k, o) in chunk.iter_mut().enumerate() {
            *o = stage.apply(off + k);
        }
    });
    out
}

/// Streams `num_blocks` tiles out of `stage` into an RLE + Huffman byte
/// stream — byte-identical to `rle::encode_blocks` over the same tiles.
pub fn encode_rle<S>(stage: &S, num_blocks: usize) -> Vec<u8>
where
    S: TileStage<In = usize, Out = [i8; 64]>,
{
    // Small-input shortcut on input size only (never the thread count),
    // same threshold as the staged coder, so obs event streams stay
    // byte-equal across thread counts.
    if num_blocks < 2 * TILES_PER_CHUNK {
        let mut w = BitWriter::new();
        for bi in 0..num_blocks {
            rle::encode_block(&mut w, &stage.apply(bi));
        }
        return w.finish();
    }
    let num_chunks = num_blocks.div_ceil(TILES_PER_CHUNK);
    let writers = Pool::current().run_chunks(num_chunks, |ci| {
        let b0 = ci * TILES_PER_CHUNK;
        let b1 = (b0 + TILES_PER_CHUNK).min(num_blocks);
        let mut w = BitWriter::new();
        for bi in b0..b1 {
            rle::encode_block(&mut w, &stage.apply(bi));
        }
        w
    });
    let mut out = BitWriter::new();
    for w in writers {
        out.append(w);
    }
    out.finish()
}

/// Streams `num_blocks` tiles out of `stage` into a ZVC stream —
/// equal to `Zvc::compress_i8` over the flattened tiles.
pub fn encode_zvc<S>(stage: &S, num_blocks: usize) -> Zvc
where
    S: TileStage<In = usize, Out = [i8; 64]>,
{
    // 64 one-byte words per tile: 8 whole mask bytes per tile, so chunk
    // mask/value streams concatenate on byte boundaries.
    let encode_span = |b0: usize, b1: usize| {
        let mut mask = vec![0u8; (b1 - b0) * 8];
        let mut values = Vec::new();
        for (k, bi) in (b0..b1).enumerate() {
            let tile = stage.apply(bi);
            for (w, &v) in tile.iter().enumerate() {
                if v != 0 {
                    mask[k * 8 + w / 8] |= 1 << (w % 8);
                    values.push(v as u8);
                }
            }
        }
        (mask, values)
    };
    // Same small-input shortcut threshold as the staged coder
    // (`2 * WORDS_PER_CHUNK` words = `2 * TILES_PER_CHUNK` blocks).
    if num_blocks < 2 * TILES_PER_CHUNK {
        let (mask, values) = encode_span(0, num_blocks);
        return Zvc::from_parts_trusted(mask, values, num_blocks * 64, 1);
    }
    let num_chunks = num_blocks.div_ceil(TILES_PER_CHUNK);
    let parts = Pool::current().run_chunks(num_chunks, |ci| {
        let b0 = ci * TILES_PER_CHUNK;
        encode_span(b0, (b0 + TILES_PER_CHUNK).min(num_blocks))
    });
    let mut mask = Vec::with_capacity(num_blocks * 8);
    let mut values = Vec::with_capacity(parts.iter().map(|(_, v)| v.len()).sum::<usize>());
    for (m, v) in parts {
        mask.extend_from_slice(&m);
        values.extend_from_slice(&v);
    }
    Zvc::from_parts_trusted(mask, values, num_blocks * 64, 1)
}

/// Writes the reconstructed rows of one spatial tile into the slice of
/// the unpadded output plane starting at element `chunk_off`, dropping
/// padding rows/columns inline (the streaming inverse of
/// `BlockLayout::gather_block`).
#[inline]
fn scatter_tile(layout: &BlockLayout, bi: usize, tile: &[i8; 64], chunk: &mut [i8], chunk_off: usize) {
    let (cols, bw) = (layout.cols(), layout.blocks_wide());
    let (br, bc) = (bi / bw, bi % bw);
    let c0 = bc * 8;
    let cw = (cols - c0).min(8);
    for (r, row) in tile.chunks_exact(8).enumerate() {
        if let Some(sr) = layout.source_row(br * 8 + r) {
            let dst = sr * cols + c0 - chunk_off;
            chunk[dst..dst + cw].copy_from_slice(&row[..cw]);
        }
    }
}

/// Streams quantized tiles through `stage` (dequantize → inverse DCT)
/// and scatters the spatial rows into a fresh unpadded value plane —
/// the decode mirror of a [`Gather`]-fed encode.
pub fn untile_blocks<S>(layout: &BlockLayout, quantized: &[[i8; 64]], stage: &S) -> Vec<i8>
where
    S: TileStage<In = [i8; 64], Out = [i8; 64]>,
{
    let mut out = vec![0i8; layout.shape().len()];
    for_scatter_chunks(layout, &mut out, |blocks, chunk, chunk_off| {
        for bi in blocks {
            let tile = stage.apply(quantized[bi]);
            scatter_tile(layout, bi, &tile, chunk, chunk_off);
        }
    });
    out
}

/// Streams a ZVC-coded stream through `stage` (dequantize → inverse DCT)
/// directly into the unpadded value plane, reconstructing each quantized
/// tile from the mask and packed values without materializing the flat
/// decompressed buffer or a block list.
///
/// # Errors
///
/// Returns [`CodecError::Corrupt`] if the stream's word width is not one
/// byte or its word count disagrees with the layout's block count.
pub fn decode_zvc<S>(layout: &BlockLayout, z: &Zvc, stage: &S) -> Result<Vec<i8>, CodecError>
where
    S: TileStage<In = [i8; 64], Out = [i8; 64]>,
{
    if z.word_bytes() != 1 {
        return Err(CodecError::Corrupt("not an i8 ZVC stream"));
    }
    if z.words() != layout.num_blocks() * 64 {
        return Err(CodecError::Corrupt("ZVC word count disagrees with layout"));
    }
    let (mask, values) = (z.mask_bytes(), z.value_bytes());
    // Each block owns mask bytes `bi*8..bi*8+8`; its packed values start
    // at the popcount of everything before it.  Each chunk computes its
    // starting offset with one prefix scan, then walks its own blocks
    // contiguously — no cross-chunk state, so merge order is irrelevant.
    let mut out = vec![0i8; layout.shape().len()];
    for_scatter_chunks(layout, &mut out, |blocks, chunk, chunk_off| {
        let mut vi: usize = mask[..blocks.start * 8]
            .iter()
            .map(|b| b.count_ones() as usize)
            .sum();
        for bi in blocks {
            let mut q = [0i8; 64];
            for (w, o) in q.iter_mut().enumerate() {
                if mask[bi * 8 + w / 8] >> (w % 8) & 1 == 1 {
                    *o = values[vi] as i8;
                    vi += 1;
                }
            }
            let tile = stage.apply(q);
            scatter_tile(layout, bi, &tile, chunk, chunk_off);
        }
    });
    Ok(out)
}

/// Drives a block-range decode closure over the unpadded output plane in
/// stripe-aligned parallel chunks (NCH,W layouts) or as one sequential
/// range (H,W layouts, whose per-image padding rows do not tile the
/// unpadded plane uniformly).  `f(blocks, chunk, chunk_off)` must write
/// only those blocks' unpadded rows, which lie inside `chunk` by
/// construction.
fn for_scatter_chunks(
    layout: &BlockLayout,
    out: &mut [i8],
    f: impl Fn(core::ops::Range<usize>, &mut [i8], usize) + Sync,
) {
    let bw = layout.blocks_wide();
    if layout.strategy() != PadStrategy::NchW {
        f(0..layout.num_blocks(), out, 0);
        return;
    }
    // One stripe = one row of blocks = 8 unpadded matrix rows (the last
    // may be ragged); stripes are contiguous in the unpadded plane, so
    // chunking by whole stripes gives each worker a disjoint range and a
    // contiguous, row-major block range.
    let stripe = 8 * layout.cols();
    let stripes_per_chunk = (TILES_PER_CHUNK / bw.max(1)).max(1);
    Pool::current().par_chunks_mut(out, stripe * stripes_per_chunk, |_, off, chunk| {
        let br0 = off / stripe;
        let stripes = chunk.len().div_ceil(stripe);
        f(br0 * bw..(br0 + stripes) * bw, chunk, off);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dqt::Dqt;
    use crate::quant::{quantize, QuantKind};
    use jact_tensor::Shape;

    fn ramp(n: usize) -> Vec<i8> {
        (0..n).map(|i| ((i * 7 % 251) as i32 - 125) as i8).collect()
    }

    /// Staged reference: materialize blocks, transform each, then run the
    /// staged coders — what the pipeline did before fusion.
    fn staged_quantized(layout: &BlockLayout, values: &[i8], kind: QuantKind, dqt: &Dqt) -> Vec<[i8; 64]> {
        layout
            .to_blocks(values)
            .iter()
            .map(|b| quantize(kind, &dct2d_i8(b), dqt))
            .collect()
    }

    fn encode_stage<'a>(
        layout: &'a BlockLayout,
        values: &'a [i8],
        tables: &'a QuantTables,
    ) -> impl TileStage<In = usize, Out = [i8; 64]> + 'a {
        Then(Gather { layout, values }, Then(ForwardDct, Quantize(tables)))
    }

    #[test]
    fn fused_rle_matches_staged_bytes() {
        for shape in [Shape::nchw(1, 2, 8, 16), Shape::nchw(4, 16, 32, 32)] {
            let layout = BlockLayout::new(&shape);
            let values = ramp(shape.len());
            let dqt = Dqt::jpeg_quality(80);
            let tables = QuantTables::new(QuantKind::Div, &dqt);
            let staged = staged_quantized(&layout, &values, QuantKind::Div, &dqt);
            let want = rle::encode_blocks(&staged);
            let stage = encode_stage(&layout, &values, &tables);
            assert_eq!(encode_rle(&stage, layout.num_blocks()), want, "{shape:?}");
        }
    }

    #[test]
    fn fused_zvc_matches_staged_stream() {
        for shape in [Shape::nchw(1, 2, 8, 16), Shape::nchw(4, 16, 32, 32)] {
            let layout = BlockLayout::new(&shape);
            let values = ramp(shape.len());
            let dqt = Dqt::opt_h();
            let tables = QuantTables::new(QuantKind::Shift, &dqt);
            let staged = staged_quantized(&layout, &values, QuantKind::Shift, &dqt);
            let flat: Vec<i8> = staged.iter().flatten().copied().collect();
            let want = Zvc::compress_i8(&flat);
            let stage = encode_stage(&layout, &values, &tables);
            assert_eq!(encode_zvc(&stage, layout.num_blocks()), want, "{shape:?}");
        }
    }

    #[test]
    fn collect_tiles_matches_staged_blocks() {
        let shape = Shape::nchw(2, 3, 13, 17);
        let layout = BlockLayout::new(&shape);
        let values = ramp(shape.len());
        let dqt = Dqt::opt_l();
        let tables = QuantTables::new(QuantKind::Shift, &dqt);
        let stage = encode_stage(&layout, &values, &tables);
        assert_eq!(
            collect_tiles(&stage, layout.num_blocks()),
            staged_quantized(&layout, &values, QuantKind::Shift, &dqt)
        );
    }

    #[test]
    fn decode_zvc_rejects_mismatched_streams() {
        let shape = Shape::nchw(1, 1, 8, 8);
        let layout = BlockLayout::new(&shape);
        let dqt = Dqt::opt_l();
        let tables = QuantTables::new(QuantKind::Shift, &dqt);
        let stage = Then(Dequantize(&tables), InverseDct);
        // Wrong word width.
        let z4 = Zvc::compress(&[0u8; 64 * 4], 4).expect("aligned");
        assert!(decode_zvc(&layout, &z4, &stage).is_err());
        // Wrong word count (two blocks' worth for a one-block layout).
        let z = Zvc::compress_i8(&vec![1i8; 128]);
        assert!(decode_zvc(&layout, &z, &stage).is_err());
    }

    #[test]
    fn zvc_decode_inverts_encode_through_scatter() {
        // Encode with the fused path, decode with the fused path, and
        // compare against the staged decode (decompress → untransform →
        // from_blocks) element for element.
        for shape in [
            Shape::nchw(1, 2, 8, 16),
            Shape::nchw(3, 2, 5, 11),
            Shape::nchw(4, 16, 32, 32),
        ] {
            let layout = BlockLayout::new(&shape);
            let values = ramp(shape.len());
            let dqt = Dqt::opt_h();
            let tables = QuantTables::new(QuantKind::Shift, &dqt);
            let enc = encode_stage(&layout, &values, &tables);
            let z = encode_zvc(&enc, layout.num_blocks());
            let dec = Then(Dequantize(&tables), InverseDct);
            let got = decode_zvc(&layout, &z, &dec).expect("valid stream");
            // Staged reference decode.
            let staged_q = staged_quantized(&layout, &values, QuantKind::Shift, &dqt);
            let staged_spatial: Vec<[i8; 64]> = staged_q
                .iter()
                .map(|q| idct2d_to_i8(&tables.dequantize_block(q)))
                .collect();
            let want = layout.from_blocks(&staged_spatial);
            assert_eq!(got, want, "{shape:?}");
        }
    }

    #[test]
    fn untile_matches_staged_scatter_for_hw_layout() {
        // The H,W fallback path must agree with the staged scatter too.
        let shape = Shape::nchw(2, 3, 6, 10);
        let layout = BlockLayout::with_strategy(&shape, PadStrategy::Hw);
        let values = ramp(shape.len());
        let dqt = Dqt::opt_l();
        let tables = QuantTables::new(QuantKind::Div, &dqt);
        let q = staged_quantized(&layout, &values, QuantKind::Div, &dqt);
        let dec = Then(Dequantize(&tables), InverseDct);
        let got = untile_blocks(&layout, &q, &dec);
        let staged_spatial: Vec<[i8; 64]> = q
            .iter()
            .map(|b| idct2d_to_i8(&tables.dequantize_block(b)))
            .collect();
        assert_eq!(got, layout.from_blocks(&staged_spatial));
    }
}

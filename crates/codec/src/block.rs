//! NCHW → 8×8 block layout: the functional model of the alignment buffer
//! (Sec. III-C, Fig. 12).
//!
//! JPEG operates on 8×8 blocks of adjacent pixels.  Rather than padding
//! every channel's height, the accelerator reshapes the 4-D activation
//! `N×C×H×W` to a 2-D `(N·C·H) × W` matrix (free — only indices change)
//! and zero-pads:
//!
//! * the width `W` up to a multiple of 8 ("W pad"),
//! * the row count `N·C·H` up to a multiple of 8 ("NCH pad").
//!
//! Blocks are gathered row-major over the padded matrix.  The module also
//! implements the paper's alternative per-channel `H,W` padding so the
//! storage-overhead comparison (6.4 % vs 3.0 % on ResNet50) can be
//! reproduced.

use jact_par::Pool;
use jact_tensor::Shape;

/// Target 8×8 blocks per parallel chunk (≈32 KiB of i8 data).  Input-derived
/// only, so gather/scatter output is identical for any thread count.
const BLOCKS_PER_CHUNK: usize = 512;

/// How the activation is padded to 8×8 block granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PadStrategy {
    /// Pad each channel's `H` and `W` to multiples of 8 independently.
    Hw,
    /// Reshape to `(N·C·H) × W`, then pad rows and width (the paper's
    /// choice — no data movement, lower overhead).
    NchW,
}

/// The block tiling of one activation tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLayout {
    shape: Shape,
    strategy: PadStrategy,
    /// Rows of the (possibly reshaped) 2-D matrix before padding.
    rows: usize,
    /// Columns before padding.
    cols: usize,
    padded_rows: usize,
    padded_cols: usize,
}

impl BlockLayout {
    /// Computes the layout for an NCHW activation with the paper's
    /// `NCH,W` padding.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not rank 4.
    pub fn new(shape: &Shape) -> Self {
        Self::with_strategy(shape, PadStrategy::NchW)
    }

    /// Computes the layout with an explicit padding strategy.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not rank 4.
    pub fn with_strategy(shape: &Shape, strategy: PadStrategy) -> Self {
        let (n, c, h, w) = (shape.n(), shape.c(), shape.h(), shape.w());
        let (rows, cols) = match strategy {
            PadStrategy::NchW => (n * c * h, w),
            PadStrategy::Hw => (n * c * h.next_multiple_of(8), w),
        };
        BlockLayout {
            shape: shape.clone(),
            strategy,
            rows,
            cols,
            padded_rows: rows.next_multiple_of(8),
            padded_cols: cols.next_multiple_of(8),
        }
    }

    /// The original activation shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The padding strategy this layout was built with.
    pub fn strategy(&self) -> PadStrategy {
        self.strategy
    }

    /// Rows of the (possibly reshaped) 2-D matrix before padding.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns before padding.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Blocks per padded-matrix row (`padded_cols / 8`).
    pub fn blocks_wide(&self) -> usize {
        self.padded_cols / 8
    }

    /// Number of 8×8 blocks in the padded matrix.
    pub fn num_blocks(&self) -> usize {
        (self.padded_rows / 8) * (self.padded_cols / 8)
    }

    /// Elements in the padded matrix (what actually gets compressed).
    pub fn padded_len(&self) -> usize {
        self.padded_rows * self.padded_cols
    }

    /// Fractional storage overhead introduced by padding
    /// (`padded / original − 1`); Sec. III-C reports 3.0 % for ResNet50
    /// under `NCH,W` padding vs 6.4 % under `H,W`.
    pub fn padding_overhead(&self) -> f64 {
        self.padded_len() as f64 / self.shape.len() as f64 - 1.0
    }

    /// Maps a padded-matrix row back to its unpadded source row, or
    /// `None` for rows that are pure padding.
    #[inline]
    pub(crate) fn source_row(&self, r: usize) -> Option<usize> {
        match self.strategy {
            PadStrategy::NchW => (r < self.rows).then_some(r),
            PadStrategy::Hw => {
                let h = self.shape.h();
                let hp = h.next_multiple_of(8);
                let (img, y) = (r / hp, r % hp);
                (y < h && r < self.rows).then(|| img * h + y)
            }
        }
    }

    /// Gathers one 8×8 block (row-major block index `bi`) directly from
    /// the unpadded value plane, zero-filling padding lanes inline — the
    /// streaming pipeline's tile source, with no padded intermediate.
    ///
    /// # Panics
    ///
    /// Panics if `bi >= self.num_blocks()` or the plane is undersized.
    pub fn gather_block(&self, values: &[i8], bi: usize) -> [i8; 64] {
        let bw = self.padded_cols / 8;
        let (br, bc) = (bi / bw, bi % bw);
        let c0 = bc * 8;
        let cw = self.cols.saturating_sub(c0).min(8);
        let mut tile = [0i8; 64];
        if cw != 0 {
            for (r, row) in tile.chunks_exact_mut(8).enumerate() {
                if let Some(sr) = self.source_row(br * 8 + r) {
                    let src = sr * self.cols + c0;
                    row[..cw].copy_from_slice(&values[src..src + cw]);
                }
            }
        }
        tile
    }

    /// Gathers the value plane into 8×8 blocks (row-major over blocks).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != shape.len()`.
    pub fn to_blocks(&self, values: &[i8]) -> Vec<[i8; 64]> {
        assert_eq!(values.len(), self.shape.len(), "value plane size mismatch");
        let mut blocks = vec![[0i8; 64]; self.num_blocks()];
        Pool::current().par_chunks_mut(&mut blocks, BLOCKS_PER_CHUNK, |_, off, chunk| {
            for (k, block) in chunk.iter_mut().enumerate() {
                *block = self.gather_block(values, off + k);
            }
        });
        blocks
    }

    /// Scatters 8×8 blocks back into a value plane, dropping padding.
    ///
    /// # Panics
    ///
    /// Panics if `blocks.len() != self.num_blocks()`.
    pub fn from_blocks(&self, blocks: &[[i8; 64]]) -> Vec<i8> {
        assert_eq!(blocks.len(), self.num_blocks(), "block count mismatch");
        let bw = self.padded_cols / 8;
        // One stripe = one row of blocks = 8 padded matrix rows; stripes
        // are contiguous in the padded buffer, so chunking by stripes gives
        // each worker a disjoint write range.
        let stripe = 8 * self.padded_cols;
        let stripes_per_chunk = (BLOCKS_PER_CHUNK / bw.max(1)).max(1);
        let mut padded = vec![0i8; self.padded_len()];
        Pool::current().par_chunks_mut(&mut padded, stripe * stripes_per_chunk, |_, off, out| {
            for (si, srow) in out.chunks_mut(stripe).enumerate() {
                let br = off / stripe + si;
                for bc in 0..bw {
                    let block = &blocks[br * bw + bc];
                    for r in 0..8 {
                        let dst = r * self.padded_cols + bc * 8;
                        srow[dst..dst + 8].copy_from_slice(&block[r * 8..r * 8 + 8]);
                    }
                }
            }
        });
        self.unpad(&padded)
    }

    /// Drops padding from a padded matrix (inverse of the zero-padding
    /// [`BlockLayout::gather_block`] applies inline).
    fn unpad(&self, padded: &[i8]) -> Vec<i8> {
        let mut out = vec![0i8; self.shape.len()];
        match self.strategy {
            PadStrategy::NchW => {
                for r in 0..self.rows {
                    let src = r * self.padded_cols;
                    let dst = r * self.cols;
                    out[dst..dst + self.cols].copy_from_slice(&padded[src..src + self.cols]);
                }
            }
            PadStrategy::Hw => {
                let (n, c, h, w) = (
                    self.shape.n(),
                    self.shape.c(),
                    self.shape.h(),
                    self.shape.w(),
                );
                let hp = h.next_multiple_of(8);
                for img in 0..n * c {
                    for y in 0..h {
                        let src = (img * hp + y) * self.padded_cols;
                        let dst = (img * h + y) * w;
                        out[dst..dst + w].copy_from_slice(&padded[src..src + w]);
                    }
                }
            }
        }
        out
    }
}

/// Gathers an f32 plane into 8×8 blocks with the `NCH,W` layout — used by
/// the entropy analyses (Figs. 2, 6), which transform float activations.
///
/// # Panics
///
/// Panics if `shape` is not rank 4 or the plane size mismatches.
pub fn to_blocks_f32(values: &[f32], shape: &Shape) -> Vec<[f32; 64]> {
    assert_eq!(values.len(), shape.len(), "value plane size mismatch");
    let layout = BlockLayout::new(shape);
    let mut padded = vec![0.0f32; layout.padded_len()];
    for r in 0..layout.rows {
        let src = r * layout.cols;
        let dst = r * layout.padded_cols;
        padded[dst..dst + layout.cols].copy_from_slice(&values[src..src + layout.cols]);
    }
    let bw = layout.padded_cols / 8;
    let mut blocks = vec![[0.0f32; 64]; layout.num_blocks()];
    for (bi, block) in blocks.iter_mut().enumerate() {
        let (br, bc) = (bi / bw, bi % bw);
        for r in 0..8 {
            let src = (br * 8 + r) * layout.padded_cols + bc * 8;
            block[r * 8..r * 8 + 8].copy_from_slice(&padded[src..src + 8]);
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<i8> {
        (0..n).map(|i| ((i % 251) as i32 - 125) as i8).collect()
    }

    #[test]
    fn aligned_shape_has_no_padding() {
        // Fig. 12a-like: 5x1x6x6 needs padding; 1x4x8x8 does not.
        let l = BlockLayout::new(&Shape::nchw(1, 4, 8, 8));
        assert_eq!(l.padding_overhead(), 0.0);
        assert_eq!(l.num_blocks(), 4 * 8 * 8 / 64);
    }

    #[test]
    fn figure12a_overhead() {
        // 5x1x6x6: rows = 30 -> 32, cols = 6 -> 8.
        let l = BlockLayout::new(&Shape::nchw(5, 1, 6, 6));
        assert_eq!(l.padded_len(), 32 * 8);
        assert_eq!(l.num_blocks(), 4);
        assert!(l.padding_overhead() > 0.0);
    }

    #[test]
    fn figure12b_nch_pad() {
        // 1x2x7x14: rows = 14 -> 16, cols = 14 -> 16.
        let l = BlockLayout::new(&Shape::nchw(1, 2, 7, 14));
        assert_eq!(l.padded_len(), 16 * 16);
        assert_eq!(l.num_blocks(), 4);
    }

    #[test]
    fn roundtrip_unaligned() {
        let shape = Shape::nchw(3, 2, 5, 11);
        let vals = ramp(shape.len());
        let l = BlockLayout::new(&shape);
        let blocks = l.to_blocks(&vals);
        assert_eq!(blocks.len(), l.num_blocks());
        assert_eq!(l.from_blocks(&blocks), vals);
    }

    #[test]
    fn roundtrip_aligned() {
        let shape = Shape::nchw(2, 4, 8, 16);
        let vals = ramp(shape.len());
        let l = BlockLayout::new(&shape);
        assert_eq!(l.from_blocks(&l.to_blocks(&vals)), vals);
    }

    #[test]
    fn roundtrip_hw_strategy() {
        let shape = Shape::nchw(2, 3, 6, 10);
        let vals = ramp(shape.len());
        let l = BlockLayout::with_strategy(&shape, PadStrategy::Hw);
        assert_eq!(l.from_blocks(&l.to_blocks(&vals)), vals);
    }

    #[test]
    fn nchw_pad_cheaper_than_hw_pad() {
        // The paper's ResNet50 observation in miniature: H,W padding
        // pads every channel's height; NCH,W pads once globally.
        let shape = Shape::nchw(8, 64, 6, 8);
        let nch = BlockLayout::with_strategy(&shape, PadStrategy::NchW);
        let hw = BlockLayout::with_strategy(&shape, PadStrategy::Hw);
        assert!(
            nch.padding_overhead() < hw.padding_overhead(),
            "nch={} hw={}",
            nch.padding_overhead(),
            hw.padding_overhead()
        );
    }

    #[test]
    fn blocks_preserve_spatial_rows() {
        // First block's first row should be the tensor's first 8 width
        // elements (W >= 8 aligned case).
        let shape = Shape::nchw(1, 1, 8, 8);
        let vals = ramp(shape.len());
        let l = BlockLayout::new(&shape);
        let blocks = l.to_blocks(&vals);
        assert_eq!(&blocks[0][0..8], &vals[0..8]);
        assert_eq!(&blocks[0][8..16], &vals[8..16]);
    }

    #[test]
    fn f32_blocks_match_layout() {
        let shape = Shape::nchw(1, 2, 7, 9);
        let vals: Vec<f32> = (0..shape.len()).map(|i| i as f32).collect();
        let blocks = to_blocks_f32(&vals, &shape);
        assert_eq!(blocks.len(), BlockLayout::new(&shape).num_blocks());
        assert_eq!(blocks[0][0], 0.0);
        assert_eq!(blocks[0][1], 1.0);
        // Padded column 9..16 of the first row is zero.
        assert_eq!(blocks[1][1], 0.0);
    }

    /// Staged reference: explicitly build the zero-padded matrix (as the
    /// pre-fusion `pad()` helper did) and gather blocks from it.
    fn staged_to_blocks(l: &BlockLayout, values: &[i8]) -> Vec<[i8; 64]> {
        let (pr, pc) = (l.padded_rows, l.padded_cols);
        let mut padded = vec![0i8; pr * pc];
        match l.strategy {
            PadStrategy::NchW => {
                for r in 0..l.rows {
                    padded[r * pc..r * pc + l.cols]
                        .copy_from_slice(&values[r * l.cols..(r + 1) * l.cols]);
                }
            }
            PadStrategy::Hw => {
                let (h, w) = (l.shape.h(), l.shape.w());
                let hp = h.next_multiple_of(8);
                for img in 0..l.shape.n() * l.shape.c() {
                    for y in 0..h {
                        let src = (img * h + y) * w;
                        let dst = (img * hp + y) * pc;
                        padded[dst..dst + w].copy_from_slice(&values[src..src + w]);
                    }
                }
            }
        }
        let bw = pc / 8;
        (0..l.num_blocks())
            .map(|bi| {
                let (br, bc) = (bi / bw, bi % bw);
                let mut block = [0i8; 64];
                for r in 0..8 {
                    let src = (br * 8 + r) * pc + bc * 8;
                    block[r * 8..r * 8 + 8].copy_from_slice(&padded[src..src + 8]);
                }
                block
            })
            .collect()
    }

    #[test]
    fn gather_block_matches_staged_pad_then_gather() {
        for strategy in [PadStrategy::NchW, PadStrategy::Hw] {
            for shape in [
                Shape::nchw(1, 1, 8, 8),
                Shape::nchw(3, 2, 5, 11),
                Shape::nchw(2, 3, 6, 10),
                Shape::nchw(1, 2, 7, 14),
                Shape::nchw(5, 1, 6, 6),
            ] {
                let vals = ramp(shape.len());
                let l = BlockLayout::with_strategy(&shape, strategy);
                let expect = staged_to_blocks(&l, &vals);
                assert_eq!(l.to_blocks(&vals), expect, "{strategy:?} {shape:?}");
                for (bi, e) in expect.iter().enumerate() {
                    assert_eq!(
                        &l.gather_block(&vals, bi),
                        e,
                        "{strategy:?} {shape:?} block {bi}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_plane_size_panics() {
        let l = BlockLayout::new(&Shape::nchw(1, 1, 8, 8));
        let _ = l.to_blocks(&[0i8; 10]);
    }
}

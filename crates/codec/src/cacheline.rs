//! Cache-line access model of the alignment buffer (Sec. III-C).
//!
//! The alignment buffer is sized so that gathering four 8×8 JPEG blocks
//! never re-reads a cache line.  With 128 B lines and 32-bit activations
//! (32 elements per line), the access pattern over the reshaped
//! `(N·C·H) × W` matrix depends on the row width:
//!
//! * `W ≤ 32`: a line spans one or more whole rows — the buffer loads
//!   **eight sequential lines**, which contain exactly four 8-row blocks;
//! * `W > 32`: a line covers part of one row — the buffer loads **eight
//!   lines with a stride of `W` elements** (one per block row).
//!
//! This module computes the per-activation line traffic and verifies the
//! "no duplicate accesses" property the buffer sizing guarantees.

use crate::block::BlockLayout;
use jact_tensor::Shape;

/// Cache line size in bytes (Volta L2, Sec. III-C).
pub const LINE_BYTES: usize = 128;
/// 32-bit activation elements per cache line.
pub const ELEMS_PER_LINE: usize = LINE_BYTES / 4;

/// Access pattern class for an activation (Sec. III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// `W ≤ 32`: eight sequential cache lines per buffer fill.
    Sequential,
    /// `W > 32`: eight lines strided by the row width.
    Strided,
}

/// The alignment-buffer access plan for one activation tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessPlan {
    /// Sequential or strided line fetches.
    pub pattern: AccessPattern,
    /// Total cache lines fetched to compress the whole tensor.
    pub total_lines: usize,
    /// Number of alignment-buffer fills (4 blocks each).
    pub buffer_fills: usize,
}

/// Computes the access plan for an NCHW activation.
///
/// # Panics
///
/// Panics if `shape` is not rank 4.
pub fn access_plan(shape: &Shape) -> AccessPlan {
    let layout = BlockLayout::new(shape);
    let padded_cols = shape.w().next_multiple_of(8);
    let pattern = if padded_cols <= ELEMS_PER_LINE {
        AccessPattern::Sequential
    } else {
        AccessPattern::Strided
    };
    // Every padded element is read exactly once (the buffer prevents
    // duplicate line accesses), so line traffic is padded bytes / line.
    let padded_bytes = layout.padded_len() * 4;
    let total_lines = padded_bytes.div_ceil(LINE_BYTES);
    // Each fill covers four 8x8 blocks = 256 elements = 1 KiB = 8 lines.
    let buffer_fills = layout.num_blocks().div_ceil(4);
    AccessPlan {
        pattern,
        total_lines,
        buffer_fills,
    }
}

/// Lines fetched per buffer fill (8 by construction — the sizing
/// argument of Sec. III-C).
pub fn lines_per_fill() -> usize {
    (4 * 64 * 4) / LINE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_activations_are_sequential() {
        // Fig. 12 examples: W <= 32.
        for w in [6usize, 8, 14, 16, 32] {
            let p = access_plan(&Shape::nchw(4, 8, 8, w));
            assert_eq!(p.pattern, AccessPattern::Sequential, "w={w}");
        }
    }

    #[test]
    fn wide_activations_are_strided() {
        for w in [56usize, 64, 112, 224] {
            let p = access_plan(&Shape::nchw(4, 8, 8, w));
            assert_eq!(p.pattern, AccessPattern::Strided, "w={w}");
        }
    }

    #[test]
    fn every_line_read_exactly_once() {
        // Aligned tensor: lines = bytes / 128 exactly.
        let shape = Shape::nchw(2, 4, 8, 32);
        let p = access_plan(&shape);
        assert_eq!(p.total_lines, shape.len() * 4 / LINE_BYTES);
    }

    #[test]
    fn buffer_fill_is_eight_lines() {
        assert_eq!(lines_per_fill(), 8);
        // Consistency: total lines ~= fills * 8 for aligned tensors.
        let shape = Shape::nchw(2, 4, 8, 32);
        let p = access_plan(&shape);
        assert_eq!(p.total_lines, p.buffer_fills * 8);
    }

    #[test]
    fn padding_increases_line_traffic() {
        // W=30 pads to 32: the padded tensor moves as many lines as the
        // aligned W=32 tensor, i.e. more than its logical bytes need.
        let aligned = access_plan(&Shape::nchw(1, 8, 8, 32));
        let padded = access_plan(&Shape::nchw(1, 8, 8, 30));
        assert_eq!(aligned.total_lines, padded.total_lines);
        let logical_lines = (8 * 8 * 30 * 4usize).div_ceil(LINE_BYTES);
        assert!(padded.total_lines > logical_lines, "padding must cost lines");
    }
}

//! DCT coefficient quantization: DIV (JPEG-BASE) and SH (JPEG-ACT).
//!
//! DIV divides each coefficient by its DQT entry with round-to-nearest —
//! the standard JPEG quantizer, implemented in hardware as a parallel
//! multiplier (Sec. III-E).  SH replaces the divider with an arithmetic
//! shift by the `log2`-rounded DQT entry, cutting quantizer area by 88 %
//! at the cost of restricting DQT values to powers of two (Sec. III-F).
//!
//! Both quantizers saturate the result to `i8`, matching the 8-bit
//! compression pipeline enabled by SFPR.

use crate::dqt::Dqt;

/// Which quantizer back end a JPEG pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantKind {
    /// Division by the DQT entry with round-to-nearest (JPEG standard).
    Div,
    /// Arithmetic shift by `round(log2(dqt))` (JPEG-ACT).
    Shift,
}

impl std::fmt::Display for QuantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QuantKind::Div => "DIV",
            QuantKind::Shift => "SH",
        })
    }
}

/// DIV quantization: `q_i = round(c_i / dqt_i)` saturated to `i8`.
pub fn quantize_div(coefs: &[i16; 64], dqt: &Dqt) -> [i8; 64] {
    let mut out = [0i8; 64];
    for i in 0..64 {
        let d = dqt.entry(i) as i32;
        let c = coefs[i] as i32;
        // Round half away from zero, as a hardware divider with rounding
        // constant would.
        let q = if c >= 0 { (c + d / 2) / d } else { (c - d / 2) / d };
        out[i] = q.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
    }
    out
}

/// DIV dequantization: `c_i = q_i * dqt_i`.
pub fn dequantize_div(quant: &[i8; 64], dqt: &Dqt) -> [i16; 64] {
    let mut out = [0i16; 64];
    for i in 0..64 {
        let v = quant[i] as i32 * dqt.entry(i) as i32;
        out[i] = v.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
    }
    out
}

/// SH quantization: arithmetic right shift by the 3-bit log-DQT, with the
/// rounding constant a hardware shifter adds (half of the discarded range).
pub fn quantize_shift(coefs: &[i16; 64], dqt: &Dqt) -> [i8; 64] {
    let shifts = dqt.log2_shifts();
    let mut out = [0i8; 64];
    for i in 0..64 {
        let s = shifts[i] as u32;
        let c = coefs[i] as i32;
        let q = if s == 0 {
            c
        } else {
            // Symmetric rounding shift: round half away from zero.
            let bias = 1i32 << (s - 1);
            if c >= 0 { (c + bias) >> s } else { -((-c + bias) >> s) }
        };
        out[i] = q.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
    }
    out
}

/// SH dequantization: left shift by the 3-bit log-DQT.
pub fn dequantize_shift(quant: &[i8; 64], dqt: &Dqt) -> [i16; 64] {
    let shifts = dqt.log2_shifts();
    let mut out = [0i16; 64];
    for i in 0..64 {
        let v = (quant[i] as i32) << shifts[i];
        out[i] = v.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
    }
    out
}

/// Quantizes with the selected back end.
pub fn quantize(kind: QuantKind, coefs: &[i16; 64], dqt: &Dqt) -> [i8; 64] {
    match kind {
        QuantKind::Div => quantize_div(coefs, dqt),
        QuantKind::Shift => quantize_shift(coefs, dqt),
    }
}

/// Dequantizes with the selected back end.
pub fn dequantize(kind: QuantKind, quant: &[i8; 64], dqt: &Dqt) -> [i16; 64] {
    match kind {
        QuantKind::Div => dequantize_div(quant, dqt),
        QuantKind::Shift => dequantize_shift(quant, dqt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dqt::Dqt;

    fn flat_dqt(v: u16) -> Dqt {
        Dqt::from_entries(format!("flat{v}"), [v; 64])
    }

    #[test]
    fn div_quantize_rounds_to_nearest() {
        let mut coefs = [0i16; 64];
        coefs[0] = 100; // /16 = 6.25 -> 6
        coefs[1] = 104; // 6.5 -> 7 (half away from zero)
        coefs[2] = -104; // -6.5 -> -7
        let q = quantize_div(&coefs, &flat_dqt(16));
        assert_eq!(q[0], 6);
        assert_eq!(q[1], 7);
        assert_eq!(q[2], -7);
    }

    #[test]
    fn div_saturates_to_i8() {
        let mut coefs = [0i16; 64];
        coefs[0] = 10_000;
        coefs[1] = -10_000;
        let q = quantize_div(&coefs, &flat_dqt(1));
        assert_eq!(q[0], 127);
        assert_eq!(q[1], -128);
    }

    #[test]
    fn div_roundtrip_error_bounded_by_half_step() {
        let dqt = flat_dqt(16);
        let mut coefs = [0i16; 64];
        for (i, c) in coefs.iter_mut().enumerate() {
            *c = (i as i16 - 32) * 13;
        }
        let rec = dequantize_div(&quantize_div(&coefs, &dqt), &dqt);
        for i in 0..64 {
            assert!(
                (rec[i] as i32 - coefs[i] as i32).abs() <= 8,
                "i={i}: {} vs {}",
                rec[i],
                coefs[i]
            );
        }
    }

    #[test]
    fn shift_matches_div_for_pow2_tables() {
        let dqt = flat_dqt(16); // exactly a power of two
        let mut coefs = [0i16; 64];
        for (i, c) in coefs.iter_mut().enumerate() {
            *c = (i as i16 - 30) * 21;
        }
        let qd = quantize_div(&coefs, &dqt);
        let qs = quantize_shift(&coefs, &dqt);
        for i in 0..64 {
            assert!(
                (qd[i] as i32 - qs[i] as i32).abs() <= 1,
                "i={i}: div={} sh={}",
                qd[i],
                qs[i]
            );
        }
    }

    #[test]
    fn shift_zero_shift_is_identity_within_range() {
        let dqt = flat_dqt(1);
        let mut coefs = [0i16; 64];
        coefs[0] = 55;
        coefs[1] = -89;
        let q = quantize_shift(&coefs, &dqt);
        assert_eq!(q[0], 55);
        assert_eq!(q[1], -89);
        let d = dequantize_shift(&q, &dqt);
        assert_eq!(d[0], 55);
        assert_eq!(d[1], -89);
    }

    #[test]
    fn shift_is_symmetric_in_sign() {
        let dqt = flat_dqt(8);
        let mut pos = [0i16; 64];
        let mut neg = [0i16; 64];
        for i in 0..64 {
            pos[i] = (i as i16) * 5 + 3;
            neg[i] = -pos[i];
        }
        let qp = quantize_shift(&pos, &dqt);
        let qn = quantize_shift(&neg, &dqt);
        for i in 0..64 {
            assert_eq!(qp[i] as i32, -(qn[i] as i32), "i={i}");
        }
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        let dqt = Dqt::opt_h();
        let mut coefs = [0i16; 64];
        for (i, c) in coefs.iter_mut().enumerate() {
            *c = (i as i16) * 7 - 100;
        }
        assert_eq!(
            quantize(QuantKind::Div, &coefs, &dqt),
            quantize_div(&coefs, &dqt)
        );
        assert_eq!(
            quantize(QuantKind::Shift, &coefs, &dqt),
            quantize_shift(&coefs, &dqt)
        );
        let q = quantize_div(&coefs, &dqt);
        assert_eq!(
            dequantize(QuantKind::Div, &q, &dqt),
            dequantize_div(&q, &dqt)
        );
    }

    #[test]
    fn higher_dqt_produces_more_zeros() {
        let mut coefs = [0i16; 64];
        for (i, c) in coefs.iter_mut().enumerate() {
            *c = (i as i16) - 32;
        }
        let zeros = |q: &[i8; 64]| q.iter().filter(|&&v| v == 0).count();
        let q_small = quantize_div(&coefs, &flat_dqt(2));
        let q_large = quantize_div(&coefs, &flat_dqt(64));
        assert!(zeros(&q_large) > zeros(&q_small));
    }
}

//! DCT coefficient quantization: DIV (JPEG-BASE) and SH (JPEG-ACT).
//!
//! DIV divides each coefficient by its DQT entry with round-to-nearest —
//! the standard JPEG quantizer, implemented in hardware as a parallel
//! multiplier (Sec. III-E).  SH replaces the divider with an arithmetic
//! shift by the `log2`-rounded DQT entry, cutting quantizer area by 88 %
//! at the cost of restricting DQT values to powers of two (Sec. III-F).
//!
//! Both quantizers saturate the result to `i8`, matching the 8-bit
//! compression pipeline enabled by SFPR.
//!
//! The hot path goes through [`QuantTables`], built once per tensor: the
//! SH path reads the shift table cached in [`Dqt`] (never recomputing the
//! 64 `f64::log2` calls per block that made SH slower than DIV), and the
//! DIV path replaces the per-lane integer division with an exact
//! multiply-shift (`q = (n * M) >> 24` with `M = ceil(2^24 / d)`), the
//! same reciprocal trick the paper's parallel-multiplier divider uses in
//! hardware.

use crate::dqt::Dqt;

/// Which quantizer back end a JPEG pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantKind {
    /// Division by the DQT entry with round-to-nearest (JPEG standard).
    Div,
    /// Arithmetic shift by `round(log2(dqt))` (JPEG-ACT).
    Shift,
}

impl std::fmt::Display for QuantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QuantKind::Div => "DIV",
            QuantKind::Shift => "SH",
        })
    }
}

/// Reciprocal magic constants use a 24-bit fixed-point shift: for
/// `d <= 255` and numerators below `2^16`, `(n * ceil(2^24 / d)) >> 24`
/// equals `n / d` exactly (the error term `M*d - 2^24` is in `[0, d)`,
/// so `n * (M*d - 2^24) < 2^24` for all reachable `n`).
const MAGIC_SHIFT: u32 = 24;

/// Per-tensor quantizer state, precomputed once from a [`Dqt`] so the
/// per-block kernels are pure lane loops with no division, no `f64`
/// math, and no table derivation.
pub struct QuantTables {
    kind: QuantKind,
    /// DQT entries widened to `i32` (DIV dequantize multiplier).
    div: [i32; 64],
    /// `entry / 2`: the round-half-away-from-zero bias for DIV.
    half: [i32; 64],
    /// `ceil(2^24 / entry)`: exact-division multipliers for DIV.
    magic: [u64; 64],
    /// 3-bit shift amounts for SH (cached in the `Dqt`).
    shifts: [u8; 64],
    /// Shift amounts widened to `u32` lanes for the SH quantize kernel.
    shifts32: [u32; 64],
    /// `(1 << shift) >> 1`: the SH rounding bias, precomputed per lane.
    sbias: [i32; 64],
}

impl QuantTables {
    /// Precomputes quantizer tables for `kind` over `dqt`.
    pub fn new(kind: QuantKind, dqt: &Dqt) -> Self {
        let mut div = [0i32; 64];
        let mut half = [0i32; 64];
        let mut magic = [0u64; 64];
        for (i, &e) in dqt.entries().iter().enumerate() {
            let d = e as i32;
            div[i] = d;
            half[i] = d / 2;
            magic[i] = (1u64 << MAGIC_SHIFT).div_ceil(e as u64);
        }
        let shifts = *dqt.log2_shifts();
        let mut shifts32 = [0u32; 64];
        let mut sbias = [0i32; 64];
        for (i, &s) in shifts.iter().enumerate() {
            shifts32[i] = s as u32;
            sbias[i] = (1i32 << s) >> 1;
        }
        QuantTables {
            kind,
            div,
            half,
            magic,
            shifts,
            shifts32,
            sbias,
        }
    }

    /// The back end these tables were built for.
    pub fn kind(&self) -> QuantKind {
        self.kind
    }

    /// Quantizes one block with the precomputed tables.
    pub fn quantize_block(&self, coefs: &[i16; 64]) -> [i8; 64] {
        match self.kind {
            QuantKind::Div => self.quantize_div_magic(coefs),
            QuantKind::Shift => self.quantize_shift_tables(coefs),
        }
    }

    /// SH with the per-lane bias precomputed — add, shift, negate, clamp;
    /// identical results to [`quantize_shift`].
    fn quantize_shift_tables(&self, coefs: &[i16; 64]) -> [i8; 64] {
        let mut out = [0i8; 64];
        for (((o, &c), &s), &b) in out.iter_mut().zip(coefs).zip(&self.shifts32).zip(&self.sbias) {
            let c = c as i32;
            let a = (c.abs() + b) >> s;
            let q = if c < 0 { -a } else { a };
            *o = q.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
        }
        out
    }

    /// Dequantizes one block with the precomputed tables.
    pub fn dequantize_block(&self, quant: &[i8; 64]) -> [i16; 64] {
        match self.kind {
            QuantKind::Div => {
                let mut out = [0i16; 64];
                for ((o, &q), &d) in out.iter_mut().zip(quant).zip(&self.div) {
                    // |q * d| <= 128 * 255 = 32640 < i16::MAX: no clamp.
                    *o = (q as i32 * d) as i16;
                }
                out
            }
            QuantKind::Shift => dequantize_shift(quant, &self.shifts),
        }
    }

    /// DIV via exact multiply-shift.  For the quantizer's numerator range
    /// (`|c| + d/2 <= 32767 + 127 < 2^16`) this reproduces truncating
    /// integer division bit-for-bit; see [`MAGIC_SHIFT`].
    fn quantize_div_magic(&self, coefs: &[i16; 64]) -> [i8; 64] {
        let mut out = [0i8; 64];
        for (((o, &c), &h), &m) in out.iter_mut().zip(coefs).zip(&self.half).zip(&self.magic) {
            let c = c as i32;
            let n = (c.abs() + h) as u64;
            let q = ((n * m) >> MAGIC_SHIFT) as i32;
            let q = if c < 0 { -q } else { q };
            *o = q.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
        }
        out
    }
}

/// DIV quantization: `q_i = round(c_i / dqt_i)` saturated to `i8`.
///
/// Reference implementation with a hardware-style divider; the hot path
/// uses the multiply-shift equivalent in [`QuantTables::quantize_block`].
pub fn quantize_div(coefs: &[i16; 64], dqt: &Dqt) -> [i8; 64] {
    let mut out = [0i8; 64];
    for ((o, &c), &e) in out.iter_mut().zip(coefs).zip(dqt.entries()) {
        let d = e as i32;
        let c = c as i32;
        // Round half away from zero, as a hardware divider with rounding
        // constant would.
        let q = if c >= 0 { (c + d / 2) / d } else { (c - d / 2) / d };
        *o = q.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
    }
    out
}

/// DIV dequantization: `c_i = q_i * dqt_i`.
pub fn dequantize_div(quant: &[i8; 64], dqt: &Dqt) -> [i16; 64] {
    let mut out = [0i16; 64];
    for ((o, &q), &e) in out.iter_mut().zip(quant).zip(dqt.entries()) {
        let v = q as i32 * e as i32;
        *o = v.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
    }
    out
}

/// SH quantization: arithmetic right shift by the 3-bit log-DQT, with the
/// rounding constant a hardware shifter adds (half of the discarded
/// range).  Takes the per-tensor shift table (`Dqt::log2_shifts`) so the
/// per-block loop is a pure lane kernel.
pub fn quantize_shift(coefs: &[i16; 64], shifts: &[u8; 64]) -> [i8; 64] {
    let mut out = [0i8; 64];
    for ((o, &c), &s) in out.iter_mut().zip(coefs).zip(shifts) {
        let s = s as u32;
        let c = c as i32;
        // `(1 << s) >> 1` is the symmetric rounding bias — zero at s = 0,
        // so no branch on the shift amount.
        let bias = (1i32 << s) >> 1;
        let a = (c.abs() + bias) >> s;
        let q = if c < 0 { -a } else { a };
        *o = q.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
    }
    out
}

/// SH dequantization: left shift by the 3-bit log-DQT.
pub fn dequantize_shift(quant: &[i8; 64], shifts: &[u8; 64]) -> [i16; 64] {
    let mut out = [0i16; 64];
    for ((o, &q), &s) in out.iter_mut().zip(quant).zip(shifts) {
        // |q << s| <= 128 << 7 = 16384: always representable.
        *o = ((q as i32) << s) as i16;
    }
    out
}

/// Quantizes with the selected back end.
pub fn quantize(kind: QuantKind, coefs: &[i16; 64], dqt: &Dqt) -> [i8; 64] {
    match kind {
        QuantKind::Div => quantize_div(coefs, dqt),
        QuantKind::Shift => quantize_shift(coefs, dqt.log2_shifts()),
    }
}

/// Dequantizes with the selected back end.
pub fn dequantize(kind: QuantKind, quant: &[i8; 64], dqt: &Dqt) -> [i16; 64] {
    match kind {
        QuantKind::Div => dequantize_div(quant, dqt),
        QuantKind::Shift => dequantize_shift(quant, dqt.log2_shifts()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dqt::Dqt;

    fn flat_dqt(v: u16) -> Dqt {
        Dqt::from_entries(format!("flat{v}"), [v; 64]).expect("valid entries")
    }

    #[test]
    fn div_quantize_rounds_to_nearest() {
        let mut coefs = [0i16; 64];
        coefs[0] = 100; // /16 = 6.25 -> 6
        coefs[1] = 104; // 6.5 -> 7 (half away from zero)
        coefs[2] = -104; // -6.5 -> -7
        let q = quantize_div(&coefs, &flat_dqt(16));
        assert_eq!(q[0], 6);
        assert_eq!(q[1], 7);
        assert_eq!(q[2], -7);
    }

    #[test]
    fn div_saturates_to_i8() {
        let mut coefs = [0i16; 64];
        coefs[0] = 10_000;
        coefs[1] = -10_000;
        let q = quantize_div(&coefs, &flat_dqt(1));
        assert_eq!(q[0], 127);
        assert_eq!(q[1], -128);
    }

    #[test]
    fn div_roundtrip_error_bounded_by_half_step() {
        let dqt = flat_dqt(16);
        let mut coefs = [0i16; 64];
        for (i, c) in coefs.iter_mut().enumerate() {
            *c = (i as i16 - 32) * 13;
        }
        let rec = dequantize_div(&quantize_div(&coefs, &dqt), &dqt);
        for i in 0..64 {
            assert!(
                (rec[i] as i32 - coefs[i] as i32).abs() <= 8,
                "i={i}: {} vs {}",
                rec[i],
                coefs[i]
            );
        }
    }

    #[test]
    fn magic_divide_matches_plain_division_exhaustively() {
        // The multiply-shift DIV kernel must equal the reference divider
        // for every DQT entry and the full coefficient range reachable
        // from the Q12 DCT.  Sweep all 255 divisors against stepped and
        // boundary numerators.
        for d in 1u16..=255 {
            let dqt = flat_dqt(d);
            let tables = QuantTables::new(QuantKind::Div, &dqt);
            let probe = |vals: &[i16]| {
                let mut coefs = [0i16; 64];
                for (c, &v) in coefs.iter_mut().zip(vals.iter().cycle()) {
                    *c = v;
                }
                assert_eq!(
                    tables.quantize_block(&coefs),
                    quantize_div(&coefs, &dqt),
                    "d={d}"
                );
            };
            probe(&[i16::MIN, i16::MAX, 0, 1, -1, 127, -128]);
            let stepped: Vec<i16> = (0..64).map(|i| ((i as i32 * 1021) - 32000) as i16).collect();
            probe(&stepped);
        }
    }

    #[test]
    fn tables_dequantize_matches_reference() {
        for dqt in [flat_dqt(255), Dqt::jpeg_quality(40), Dqt::opt_h()] {
            let tables = QuantTables::new(QuantKind::Div, &dqt);
            let mut q = [0i8; 64];
            for (i, v) in q.iter_mut().enumerate() {
                *v = (i as i32 * 4 - 128) as i8;
            }
            assert_eq!(tables.dequantize_block(&q), dequantize_div(&q, &dqt));
        }
    }

    #[test]
    fn shift_tables_match_free_functions() {
        let dqt = Dqt::opt_h();
        let tables = QuantTables::new(QuantKind::Shift, &dqt);
        let mut coefs = [0i16; 64];
        for (i, c) in coefs.iter_mut().enumerate() {
            *c = (i as i16) * 31 - 900;
        }
        let q = quantize_shift(&coefs, dqt.log2_shifts());
        assert_eq!(tables.quantize_block(&coefs), q);
        assert_eq!(
            tables.dequantize_block(&q),
            dequantize_shift(&q, dqt.log2_shifts())
        );
    }

    #[test]
    fn shift_matches_div_for_pow2_tables() {
        let dqt = flat_dqt(16); // exactly a power of two
        let mut coefs = [0i16; 64];
        for (i, c) in coefs.iter_mut().enumerate() {
            *c = (i as i16 - 30) * 21;
        }
        let qd = quantize_div(&coefs, &dqt);
        let qs = quantize_shift(&coefs, dqt.log2_shifts());
        for i in 0..64 {
            assert!(
                (qd[i] as i32 - qs[i] as i32).abs() <= 1,
                "i={i}: div={} sh={}",
                qd[i],
                qs[i]
            );
        }
    }

    #[test]
    fn shift_zero_shift_is_identity_within_range() {
        let dqt = flat_dqt(1);
        let mut coefs = [0i16; 64];
        coefs[0] = 55;
        coefs[1] = -89;
        let q = quantize_shift(&coefs, dqt.log2_shifts());
        assert_eq!(q[0], 55);
        assert_eq!(q[1], -89);
        let d = dequantize_shift(&q, dqt.log2_shifts());
        assert_eq!(d[0], 55);
        assert_eq!(d[1], -89);
    }

    #[test]
    fn shift_is_symmetric_in_sign() {
        let dqt = flat_dqt(8);
        let mut pos = [0i16; 64];
        let mut neg = [0i16; 64];
        for i in 0..64 {
            pos[i] = (i as i16) * 5 + 3;
            neg[i] = -pos[i];
        }
        let qp = quantize_shift(&pos, dqt.log2_shifts());
        let qn = quantize_shift(&neg, dqt.log2_shifts());
        for i in 0..64 {
            assert_eq!(qp[i] as i32, -(qn[i] as i32), "i={i}");
        }
    }

    #[test]
    fn shift_roundtrip_property_non_pow2_tables() {
        // Non-power-of-two DQT entries snap to the nearest power of two
        // via the cached shift table; the round trip must still bound the
        // reconstruction error by half the *effective* (pow2) step, and
        // quantize(dequantize(q)) must be the identity on in-range codes.
        use jact_rng::{Rng, SeedableRng, rngs::StdRng};
        let mut rng = StdRng::seed_from_u64(0x5157_0001);
        for name in ["a", "b", "c"] {
            let mut entries = [0u16; 64];
            for e in entries.iter_mut() {
                // Skewed to small non-pow2 values: 3..=97.
                *e = rng.gen_range(3u16..98);
            }
            let dqt = Dqt::from_entries(format!("np2-{name}"), entries).expect("in range");
            let shifts = dqt.log2_shifts();
            let mut coefs = [0i16; 64];
            for c in coefs.iter_mut() {
                *c = rng.gen_range(-1024i16..1024);
            }
            let q = quantize_shift(&coefs, shifts);
            let rec = dequantize_shift(&q, shifts);
            for i in 0..64 {
                // Codes pinned at the i8 rails lost magnitude to
                // saturation, not rounding; the step bound applies only to
                // in-range codes.
                if q[i] == i8::MAX || q[i] == i8::MIN {
                    continue;
                }
                let step = 1i32 << shifts[i];
                let err = (rec[i] as i32 - coefs[i] as i32).abs();
                assert!(
                    err <= step / 2 + step,
                    "i={i}: err {err} vs step {step} (entry {})",
                    entries[i]
                );
            }
            // Idempotence: re-quantizing the reconstruction returns the
            // same codes whenever no saturation occurred.
            let q2 = quantize_shift(&rec, shifts);
            assert_eq!(q, q2, "{name}: round trip must be idempotent");
        }
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        let dqt = Dqt::opt_h();
        let mut coefs = [0i16; 64];
        for (i, c) in coefs.iter_mut().enumerate() {
            *c = (i as i16) * 7 - 100;
        }
        assert_eq!(
            quantize(QuantKind::Div, &coefs, &dqt),
            quantize_div(&coefs, &dqt)
        );
        assert_eq!(
            quantize(QuantKind::Shift, &coefs, &dqt),
            quantize_shift(&coefs, dqt.log2_shifts())
        );
        let q = quantize_div(&coefs, &dqt);
        assert_eq!(
            dequantize(QuantKind::Div, &q, &dqt),
            dequantize_div(&q, &dqt)
        );
    }

    #[test]
    fn higher_dqt_produces_more_zeros() {
        let mut coefs = [0i16; 64];
        for (i, c) in coefs.iter_mut().enumerate() {
            *c = (i as i16) - 32;
        }
        let zeros = |q: &[i8; 64]| q.iter().filter(|&&v| v == 0).count();
        let q_small = quantize_div(&coefs, &flat_dqt(2));
        let q_large = quantize_div(&coefs, &flat_dqt(64));
        assert!(zeros(&q_large) > zeros(&q_small));
    }
}

//! 8-point and 8×8 two-dimensional Discrete Cosine Transforms.
//!
//! The JPEG-ACT hardware implements the Loeffler–Ligtenberg–Moschytz (LLM)
//! fast 8-point DCT (11 multiplies) and builds the 2-D transform as two
//! passes through eight 1-D units with a transpose in between (Sec. III-D,
//! Fig. 13).  This module provides:
//!
//! * a float path ([`dct8`], [`idct8`], [`dct2d`], [`idct2d`]) using the
//!   orthonormal DCT-II basis — the functional reference;
//! * a fixed-point path ([`dct2d_i8`], [`idct2d_to_i8`]) that mirrors the
//!   hardware datapath: `i8` inputs, Q12 fixed-point multiplies, `i16`
//!   coefficients, saturating reconstruction — this is what the JPEG-ACT
//!   compression pipelines use.
//!
//! With the orthonormal normalization, a constant block of value `v` has
//! DC coefficient `8·v` and zero AC, so `i8` inputs produce coefficients in
//! `[-1024, 1024]`, comfortably inside `i16`.

use std::sync::LazyLock;

/// Orthonormal 8-point DCT-II basis matrix: `C[k][n] = a_k cos((2n+1)kπ/16)`
/// with `a_0 = 1/√8` and `a_k = 1/2` otherwise.
static BASIS: LazyLock<[[f32; 8]; 8]> = LazyLock::new(|| {
    let mut c = [[0.0f32; 8]; 8];
    for (k, row) in c.iter_mut().enumerate() {
        let ak = if k == 0 {
            (1.0 / 8.0f64).sqrt()
        } else {
            0.5
        };
        for (n, v) in row.iter_mut().enumerate() {
            let angle = ((2 * n + 1) as f64) * (k as f64) * std::f64::consts::PI / 16.0;
            *v = (ak * angle.cos()) as f32;
        }
    }
    c
});

/// Q12 fixed-point copy of the basis used by the hardware-faithful path —
/// `round(4096 · BASIS[k][n])`, spelled out as a `const` (the hardware's
/// constant ROM) so the lane kernels see literal immediates instead of a
/// `LazyLock` load.  `basis_q12_matches_float_basis` pins it to the float
/// basis.
const BASIS_Q12: [[i32; 8]; 8] = [
    [1448, 1448, 1448, 1448, 1448, 1448, 1448, 1448],
    [2009, 1703, 1138, 400, -400, -1138, -1703, -2009],
    [1892, 784, -784, -1892, -1892, -784, 784, 1892],
    [1703, -400, -2009, -1138, 1138, 2009, 400, -1703],
    [1448, -1448, -1448, 1448, 1448, -1448, -1448, 1448],
    [1138, -2009, 400, 1703, -1703, -400, 2009, -1138],
    [784, -1892, 1892, -784, -784, 1892, -1892, 784],
    [400, -1138, 1703, -2009, 2009, -1703, 1138, -400],
];

/// `BASIS_Q12` transposed, so `Bᵀ` products use the same lane kernels.
const BASIS_Q12_T: [[i32; 8]; 8] = transpose_basis(&BASIS_Q12);

const fn transpose_basis(b: &[[i32; 8]; 8]) -> [[i32; 8]; 8] {
    let mut t = [[0i32; 8]; 8];
    let mut k = 0;
    while k < 8 {
        let mut n = 0;
        while n < 8 {
            t[n][k] = b[k][n];
            n += 1;
        }
        k += 1;
    }
    t
}

/// Forward 8-point orthonormal DCT-II.
pub fn dct8(x: &[f32; 8]) -> [f32; 8] {
    let mut out = [0.0f32; 8];
    for (k, o) in out.iter_mut().enumerate() {
        let row = &BASIS[k];
        let mut acc = 0.0f32;
        for n in 0..8 {
            acc += row[n] * x[n];
        }
        *o = acc;
    }
    out
}

/// Inverse 8-point DCT (transpose of the orthonormal forward transform).
pub fn idct8(x: &[f32; 8]) -> [f32; 8] {
    let mut out = [0.0f32; 8];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for k in 0..8 {
            acc += BASIS[k][n] * x[k];
        }
        *o = acc;
    }
    out
}

/// In-place 2-D DCT of an 8×8 block in row-major order: rows, then columns
/// (the two-pass structure of the hardware unit).
pub fn dct2d(block: &mut [f32; 64]) {
    for r in 0..8 {
        let mut row = [0.0f32; 8];
        row.copy_from_slice(&block[r * 8..r * 8 + 8]);
        let t = dct8(&row);
        block[r * 8..r * 8 + 8].copy_from_slice(&t);
    }
    for c in 0..8 {
        let mut col = [0.0f32; 8];
        for r in 0..8 {
            col[r] = block[r * 8 + c];
        }
        let t = dct8(&col);
        for r in 0..8 {
            block[r * 8 + c] = t[r];
        }
    }
}

/// In-place 2-D inverse DCT of an 8×8 block (columns, then rows).
pub fn idct2d(block: &mut [f32; 64]) {
    for c in 0..8 {
        let mut col = [0.0f32; 8];
        for r in 0..8 {
            col[r] = block[r * 8 + c];
        }
        let t = idct8(&col);
        for r in 0..8 {
            block[r * 8 + c] = t[r];
        }
    }
    for r in 0..8 {
        let mut row = [0.0f32; 8];
        row.copy_from_slice(&block[r * 8..r * 8 + 8]);
        let t = idct8(&row);
        block[r * 8..r * 8 + 8].copy_from_slice(&t);
    }
}

/// Hardware-faithful forward 2-D DCT: `i8` spatial block in, `i16`
/// frequency coefficients out.
///
/// The staged reference applies the row transform then the column
/// transform, rounding after each with `round12(a) = (a + 2048) >> 12`
/// (a hardware multiplier with a 12-bit fractional constant ROM):
/// `Y = round(B · round(X·Bᵀ))`.  Here that is a right-multiply pass
/// (`round(X·Bᵀ)`, scalars broadcast from `X`, lanes from `Bᵀ` rows)
/// followed by a left-multiply pass (`round(B·…)`, scalars from the
/// `B` ROM, lanes from the intermediate's rows) — identical per-element
/// rounding, **no transposes**, and every inner loop a fixed-width,
/// bounds-check-free 8-lane multiply-accumulate the compiler can
/// vectorize.  The `i8` widening and `i16` narrowing are folded into
/// the passes, so the block makes exactly two trips through the lanes.
///
/// `i32` accumulators suffice: column sums of `|BASIS_Q12|` are below
/// 15 784, and the largest intermediates in either transform direction
/// stay under `15 784 × 126 278 < 2³¹`.  Coefficients are bounded by
/// `±1024` for `i8` inputs, so the `i16` narrowing cannot overflow
/// (the clamp is a hardware saturator's belt-and-suspenders).
pub fn dct2d_i8(block: &[i8; 64]) -> [i16; 64] {
    // Row pass: rows[r][j] = round12(Σ_n X[r][n] · Bᵀ[n][j]).
    let mut rows = [0i32; 64];
    for r in 0..8 {
        let xrow = &block[r * 8..r * 8 + 8];
        let mut acc = [0i32; 8];
        for (n, &x) in xrow.iter().enumerate() {
            let s = x as i32;
            for (a, &b) in acc.iter_mut().zip(&BASIS_Q12_T[n]) {
                *a += s * b;
            }
        }
        for (o, a) in rows[r * 8..r * 8 + 8].iter_mut().zip(acc) {
            *o = (a + 2048) >> 12;
        }
    }
    // Column pass: out[k][j] = round12(Σ_n B[k][n] · rows[n][j]).
    let mut out = [0i16; 64];
    for k in 0..8 {
        let brow = &BASIS_Q12[k];
        let mut acc = [0i32; 8];
        for (n, &b) in brow.iter().enumerate() {
            let row = &rows[n * 8..n * 8 + 8];
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += b * v;
            }
        }
        for (o, a) in out[k * 8..k * 8 + 8].iter_mut().zip(acc) {
            *o = ((a + 2048) >> 12).clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        }
    }
    out
}

/// Hardware-faithful inverse 2-D DCT: `i16` frequency coefficients in,
/// saturated `i8` spatial block out.
///
/// The staged reference applies the column transform then the row
/// transform: `x = round(round(Bᵀ·X) · B)` — here a left-multiply pass
/// with the `Bᵀ` ROM followed by a right-multiply pass against `B`,
/// with the same rounding, lane structure, widening/narrowing fusion,
/// and overflow bounds as [`dct2d_i8`].
pub fn idct2d_to_i8(coefs: &[i16; 64]) -> [i8; 64] {
    // Column pass: cols[k][j] = round12(Σ_n Bᵀ[k][n] · X[n][j]).
    let mut cols = [0i32; 64];
    for k in 0..8 {
        let brow = &BASIS_Q12_T[k];
        let mut acc = [0i32; 8];
        for (n, &b) in brow.iter().enumerate() {
            let row = &coefs[n * 8..n * 8 + 8];
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += b * v as i32;
            }
        }
        for (o, a) in cols[k * 8..k * 8 + 8].iter_mut().zip(acc) {
            *o = (a + 2048) >> 12;
        }
    }
    // Row pass: out[r][j] = round12(Σ_n cols[r][n] · B[n][j]).
    let mut out = [0i8; 64];
    for r in 0..8 {
        let mrow = &cols[r * 8..r * 8 + 8];
        let mut acc = [0i32; 8];
        for (n, &s) in mrow.iter().enumerate() {
            for (a, &b) in acc.iter_mut().zip(&BASIS_Q12[n]) {
                *a += s * b;
            }
        }
        for (o, a) in out[r * 8..r * 8 + 8].iter_mut().zip(acc) {
            *o = ((a + 2048) >> 12).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dct8(x: &[f32; 8]) -> [f32; 8] {
        let mut out = [0.0f32; 8];
        for k in 0..8 {
            let ak = if k == 0 { (1.0 / 8.0f64).sqrt() } else { 0.5 };
            let mut acc = 0.0f64;
            for (n, &v) in x.iter().enumerate() {
                let ang = ((2 * n + 1) as f64) * (k as f64) * std::f64::consts::PI / 16.0;
                acc += v as f64 * ang.cos();
            }
            out[k] = (ak * acc) as f32;
        }
        out
    }

    #[test]
    fn basis_q12_matches_float_basis() {
        // The const ROM is round(4096 · BASIS) — re-derive it from the
        // float basis so a typo in the literals cannot survive.
        for k in 0..8 {
            for n in 0..8 {
                let want = (BASIS[k][n] as f64 * 4096.0).round() as i32;
                assert_eq!(BASIS_Q12[k][n], want, "k={k} n={n}");
                assert_eq!(BASIS_Q12_T[n][k], want, "transpose k={k} n={n}");
            }
        }
    }

    #[test]
    fn dct8_matches_naive_definition() {
        let x = [1.0, -3.0, 2.5, 0.0, 4.0, -1.5, 0.25, 7.0];
        let a = dct8(&x);
        let b = naive_dct8(&x);
        for k in 0..8 {
            assert!((a[k] - b[k]).abs() < 1e-4, "k={k}: {} vs {}", a[k], b[k]);
        }
    }

    #[test]
    fn dct8_of_constant_is_dc_only() {
        let x = [5.0; 8];
        let y = dct8(&x);
        assert!((y[0] - 5.0 * 8.0f32.sqrt()).abs() < 1e-4);
        for &v in &y[1..] {
            assert!(v.abs() < 1e-4);
        }
    }

    #[test]
    fn dct8_idct8_roundtrip() {
        let x = [1.0, -3.0, 2.5, 0.0, 4.0, -1.5, 0.25, 7.0];
        let y = idct8(&dct8(&x));
        for n in 0..8 {
            assert!((x[n] - y[n]).abs() < 1e-4);
        }
    }

    #[test]
    fn dct8_preserves_energy() {
        // Orthonormal transform: ||X||_2 == ||x||_2.
        let x = [1.0, -3.0, 2.5, 0.0, 4.0, -1.5, 0.25, 7.0];
        let y = dct8(&x);
        let ex: f32 = x.iter().map(|v| v * v).sum();
        let ey: f32 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-3);
    }

    #[test]
    fn dct2d_roundtrip() {
        let mut block = [0.0f32; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 31 % 17) as f32) - 8.0;
        }
        let orig = block;
        dct2d(&mut block);
        idct2d(&mut block);
        for i in 0..64 {
            assert!((block[i] - orig[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn dct2d_constant_block_dc() {
        let mut block = [16.0f32; 64];
        dct2d(&mut block);
        assert!((block[0] - 16.0 * 8.0).abs() < 1e-3, "dc={}", block[0]);
        assert!(block[1..].iter().all(|v| v.abs() < 1e-3));
    }

    #[test]
    fn fixed_point_matches_float_within_tolerance() {
        let mut spatial = [0i8; 64];
        for (i, s) in spatial.iter_mut().enumerate() {
            *s = (((i * 97) % 255) as i32 - 127) as i8;
        }
        let coefs = dct2d_i8(&spatial);
        let mut fblock = [0.0f32; 64];
        for i in 0..64 {
            fblock[i] = spatial[i] as f32;
        }
        dct2d(&mut fblock);
        for i in 0..64 {
            assert!(
                (coefs[i] as f32 - fblock[i]).abs() < 2.0,
                "i={i}: fixed={} float={}",
                coefs[i],
                fblock[i]
            );
        }
    }

    #[test]
    fn fixed_point_roundtrip_error_small() {
        let mut spatial = [0i8; 64];
        for (i, s) in spatial.iter_mut().enumerate() {
            *s = (((i * 53) % 200) as i32 - 100) as i8;
        }
        let rec = idct2d_to_i8(&dct2d_i8(&spatial));
        for i in 0..64 {
            let d = (rec[i] as i32 - spatial[i] as i32).abs();
            assert!(d <= 1, "i={i}: {} vs {}", rec[i], spatial[i]);
        }
    }

    /// Staged 1-D reference of the fixed-point transforms, exactly as the
    /// pre-fusion code computed them: per-row then per-column 8-point
    /// passes with `i64` accumulators.  The lane kernels must match it
    /// bit for bit.
    fn staged_dct2d_i8(block: &[i8; 64]) -> [i16; 64] {
        let dct8_q12 = |x: &[i32; 8]| {
            let mut out = [0i32; 8];
            for (k, o) in out.iter_mut().enumerate() {
                let mut acc = 0i64;
                for n in 0..8 {
                    acc += BASIS_Q12[k][n] as i64 * x[n] as i64;
                }
                *o = ((acc + 2048) >> 12) as i32;
            }
            out
        };
        let mut work = [0i32; 64];
        for (w, &b) in work.iter_mut().zip(block.iter()) {
            *w = b as i32;
        }
        for r in 0..8 {
            let mut row = [0i32; 8];
            row.copy_from_slice(&work[r * 8..r * 8 + 8]);
            let t = dct8_q12(&row);
            work[r * 8..r * 8 + 8].copy_from_slice(&t);
        }
        for c in 0..8 {
            let mut col = [0i32; 8];
            for r in 0..8 {
                col[r] = work[r * 8 + c];
            }
            let t = dct8_q12(&col);
            for r in 0..8 {
                work[r * 8 + c] = t[r];
            }
        }
        let mut out = [0i16; 64];
        for (o, &w) in out.iter_mut().zip(work.iter()) {
            *o = w.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        }
        out
    }

    fn staged_idct2d_to_i8(coefs: &[i16; 64]) -> [i8; 64] {
        let idct8_q12 = |x: &[i32; 8]| {
            let mut out = [0i32; 8];
            for (n, o) in out.iter_mut().enumerate() {
                let mut acc = 0i64;
                for k in 0..8 {
                    acc += BASIS_Q12[k][n] as i64 * x[k] as i64;
                }
                *o = ((acc + 2048) >> 12) as i32;
            }
            out
        };
        let mut work = [0i32; 64];
        for (w, &c) in work.iter_mut().zip(coefs.iter()) {
            *w = c as i32;
        }
        for c in 0..8 {
            let mut col = [0i32; 8];
            for r in 0..8 {
                col[r] = work[r * 8 + c];
            }
            let t = idct8_q12(&col);
            for r in 0..8 {
                work[r * 8 + c] = t[r];
            }
        }
        for r in 0..8 {
            let mut row = [0i32; 8];
            row.copy_from_slice(&work[r * 8..r * 8 + 8]);
            let t = idct8_q12(&row);
            work[r * 8..r * 8 + 8].copy_from_slice(&t);
        }
        let mut out = [0i8; 64];
        for (o, &w) in out.iter_mut().zip(work.iter()) {
            *o = w.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
        }
        out
    }

    #[test]
    fn lane_kernels_match_staged_reference_bitwise() {
        use jact_rng::{Rng, SeedableRng, rngs::StdRng};
        let mut rng = StdRng::seed_from_u64(0xdc7_2d);
        // Extremes plus random blocks: the refactor from per-row/column
        // i64 loops to transposed i32 lane passes must be bit-exact.
        let mut batteries: Vec<[i8; 64]> = vec![[i8::MIN; 64], [i8::MAX; 64], [0i8; 64]];
        let mut alt = [0i8; 64];
        for (i, v) in alt.iter_mut().enumerate() {
            *v = if (i / 8 + i % 8) % 2 == 0 { 127 } else { -128 };
        }
        batteries.push(alt);
        for _ in 0..64 {
            let mut b = [0i8; 64];
            for v in b.iter_mut() {
                *v = rng.gen::<i8>();
            }
            batteries.push(b);
        }
        for b in &batteries {
            let coefs = dct2d_i8(b);
            assert_eq!(coefs, staged_dct2d_i8(b));
            assert_eq!(idct2d_to_i8(&coefs), staged_idct2d_to_i8(&coefs));
        }
        // Inverse on extreme coefficient blocks too.
        let hot = [i16::MAX; 64];
        assert_eq!(idct2d_to_i8(&hot), staged_idct2d_to_i8(&hot));
        let cold = [i16::MIN; 64];
        assert_eq!(idct2d_to_i8(&cold), staged_idct2d_to_i8(&cold));
    }

    #[test]
    fn fixed_point_dc_range_max_input() {
        let spatial = [i8::MIN; 64];
        let coefs = dct2d_i8(&spatial);
        assert_eq!(coefs[0], -1024);
        let spatial = [i8::MAX; 64];
        let coefs = dct2d_i8(&spatial);
        assert!((coefs[0] as i32 - 127 * 8).abs() <= 1);
    }
}

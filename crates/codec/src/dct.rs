//! 8-point and 8×8 two-dimensional Discrete Cosine Transforms.
//!
//! The JPEG-ACT hardware implements the Loeffler–Ligtenberg–Moschytz (LLM)
//! fast 8-point DCT (11 multiplies) and builds the 2-D transform as two
//! passes through eight 1-D units with a transpose in between (Sec. III-D,
//! Fig. 13).  This module provides:
//!
//! * a float path ([`dct8`], [`idct8`], [`dct2d`], [`idct2d`]) using the
//!   orthonormal DCT-II basis — the functional reference;
//! * a fixed-point path ([`dct2d_i8`], [`idct2d_to_i8`]) that mirrors the
//!   hardware datapath: `i8` inputs, Q12 fixed-point multiplies, `i16`
//!   coefficients, saturating reconstruction — this is what the JPEG-ACT
//!   compression pipelines use.
//!
//! With the orthonormal normalization, a constant block of value `v` has
//! DC coefficient `8·v` and zero AC, so `i8` inputs produce coefficients in
//! `[-1024, 1024]`, comfortably inside `i16`.

use std::sync::LazyLock;

/// Orthonormal 8-point DCT-II basis matrix: `C[k][n] = a_k cos((2n+1)kπ/16)`
/// with `a_0 = 1/√8` and `a_k = 1/2` otherwise.
static BASIS: LazyLock<[[f32; 8]; 8]> = LazyLock::new(|| {
    let mut c = [[0.0f32; 8]; 8];
    for (k, row) in c.iter_mut().enumerate() {
        let ak = if k == 0 {
            (1.0 / 8.0f64).sqrt()
        } else {
            0.5
        };
        for (n, v) in row.iter_mut().enumerate() {
            let angle = ((2 * n + 1) as f64) * (k as f64) * std::f64::consts::PI / 16.0;
            *v = (ak * angle.cos()) as f32;
        }
    }
    c
});

/// Q12 fixed-point copy of the basis used by the hardware-faithful path.
static BASIS_Q12: LazyLock<[[i32; 8]; 8]> = LazyLock::new(|| {
    let mut c = [[0i32; 8]; 8];
    for k in 0..8 {
        for n in 0..8 {
            c[k][n] = (BASIS[k][n] as f64 * 4096.0).round() as i32;
        }
    }
    c
});

/// Forward 8-point orthonormal DCT-II.
pub fn dct8(x: &[f32; 8]) -> [f32; 8] {
    let mut out = [0.0f32; 8];
    for (k, o) in out.iter_mut().enumerate() {
        let row = &BASIS[k];
        let mut acc = 0.0f32;
        for n in 0..8 {
            acc += row[n] * x[n];
        }
        *o = acc;
    }
    out
}

/// Inverse 8-point DCT (transpose of the orthonormal forward transform).
pub fn idct8(x: &[f32; 8]) -> [f32; 8] {
    let mut out = [0.0f32; 8];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for k in 0..8 {
            acc += BASIS[k][n] * x[k];
        }
        *o = acc;
    }
    out
}

/// In-place 2-D DCT of an 8×8 block in row-major order: rows, then columns
/// (the two-pass structure of the hardware unit).
pub fn dct2d(block: &mut [f32; 64]) {
    for r in 0..8 {
        let mut row = [0.0f32; 8];
        row.copy_from_slice(&block[r * 8..r * 8 + 8]);
        let t = dct8(&row);
        block[r * 8..r * 8 + 8].copy_from_slice(&t);
    }
    for c in 0..8 {
        let mut col = [0.0f32; 8];
        for r in 0..8 {
            col[r] = block[r * 8 + c];
        }
        let t = dct8(&col);
        for r in 0..8 {
            block[r * 8 + c] = t[r];
        }
    }
}

/// In-place 2-D inverse DCT of an 8×8 block (columns, then rows).
pub fn idct2d(block: &mut [f32; 64]) {
    for c in 0..8 {
        let mut col = [0.0f32; 8];
        for r in 0..8 {
            col[r] = block[r * 8 + c];
        }
        let t = idct8(&col);
        for r in 0..8 {
            block[r * 8 + c] = t[r];
        }
    }
    for r in 0..8 {
        let mut row = [0.0f32; 8];
        row.copy_from_slice(&block[r * 8..r * 8 + 8]);
        let t = idct8(&row);
        block[r * 8..r * 8 + 8].copy_from_slice(&t);
    }
}

/// Fixed-point forward 8-point DCT on Q12-scaled integers.
///
/// Inputs and outputs share the caller's fixed-point scale; the Q12 basis
/// product is rounded back down by 12 bits, matching a hardware multiplier
/// with a 12-bit fractional constant ROM.
fn dct8_q12(x: &[i32; 8]) -> [i32; 8] {
    let mut out = [0i32; 8];
    for (k, o) in out.iter_mut().enumerate() {
        let row = &BASIS_Q12[k];
        let mut acc = 0i64;
        for n in 0..8 {
            acc += row[n] as i64 * x[n] as i64;
        }
        *o = ((acc + 2048) >> 12) as i32;
    }
    out
}

fn idct8_q12(x: &[i32; 8]) -> [i32; 8] {
    let mut out = [0i32; 8];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc = 0i64;
        for k in 0..8 {
            acc += BASIS_Q12[k][n] as i64 * x[k] as i64;
        }
        *o = ((acc + 2048) >> 12) as i32;
    }
    out
}

/// Hardware-faithful forward 2-D DCT: `i8` spatial block in, `i16`
/// frequency coefficients out.
///
/// Coefficients are bounded by `±1024` for `i8` inputs, so the `i16`
/// narrowing cannot overflow.
pub fn dct2d_i8(block: &[i8; 64]) -> [i16; 64] {
    let mut work = [0i32; 64];
    for (w, &b) in work.iter_mut().zip(block.iter()) {
        *w = b as i32;
    }
    for r in 0..8 {
        let mut row = [0i32; 8];
        row.copy_from_slice(&work[r * 8..r * 8 + 8]);
        let t = dct8_q12(&row);
        work[r * 8..r * 8 + 8].copy_from_slice(&t);
    }
    for c in 0..8 {
        let mut col = [0i32; 8];
        for r in 0..8 {
            col[r] = work[r * 8 + c];
        }
        let t = dct8_q12(&col);
        for r in 0..8 {
            work[r * 8 + c] = t[r];
        }
    }
    let mut out = [0i16; 64];
    for (o, &w) in out.iter_mut().zip(work.iter()) {
        *o = w.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
    }
    out
}

/// Hardware-faithful inverse 2-D DCT: `i16` frequency coefficients in,
/// saturated `i8` spatial block out.
pub fn idct2d_to_i8(coefs: &[i16; 64]) -> [i8; 64] {
    let mut work = [0i32; 64];
    for (w, &c) in work.iter_mut().zip(coefs.iter()) {
        *w = c as i32;
    }
    for c in 0..8 {
        let mut col = [0i32; 8];
        for r in 0..8 {
            col[r] = work[r * 8 + c];
        }
        let t = idct8_q12(&col);
        for r in 0..8 {
            work[r * 8 + c] = t[r];
        }
    }
    for r in 0..8 {
        let mut row = [0i32; 8];
        row.copy_from_slice(&work[r * 8..r * 8 + 8]);
        let t = idct8_q12(&row);
        work[r * 8..r * 8 + 8].copy_from_slice(&t);
    }
    let mut out = [0i8; 64];
    for (o, &w) in out.iter_mut().zip(work.iter()) {
        *o = w.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dct8(x: &[f32; 8]) -> [f32; 8] {
        let mut out = [0.0f32; 8];
        for k in 0..8 {
            let ak = if k == 0 { (1.0 / 8.0f64).sqrt() } else { 0.5 };
            let mut acc = 0.0f64;
            for (n, &v) in x.iter().enumerate() {
                let ang = ((2 * n + 1) as f64) * (k as f64) * std::f64::consts::PI / 16.0;
                acc += v as f64 * ang.cos();
            }
            out[k] = (ak * acc) as f32;
        }
        out
    }

    #[test]
    fn dct8_matches_naive_definition() {
        let x = [1.0, -3.0, 2.5, 0.0, 4.0, -1.5, 0.25, 7.0];
        let a = dct8(&x);
        let b = naive_dct8(&x);
        for k in 0..8 {
            assert!((a[k] - b[k]).abs() < 1e-4, "k={k}: {} vs {}", a[k], b[k]);
        }
    }

    #[test]
    fn dct8_of_constant_is_dc_only() {
        let x = [5.0; 8];
        let y = dct8(&x);
        assert!((y[0] - 5.0 * 8.0f32.sqrt()).abs() < 1e-4);
        for &v in &y[1..] {
            assert!(v.abs() < 1e-4);
        }
    }

    #[test]
    fn dct8_idct8_roundtrip() {
        let x = [1.0, -3.0, 2.5, 0.0, 4.0, -1.5, 0.25, 7.0];
        let y = idct8(&dct8(&x));
        for n in 0..8 {
            assert!((x[n] - y[n]).abs() < 1e-4);
        }
    }

    #[test]
    fn dct8_preserves_energy() {
        // Orthonormal transform: ||X||_2 == ||x||_2.
        let x = [1.0, -3.0, 2.5, 0.0, 4.0, -1.5, 0.25, 7.0];
        let y = dct8(&x);
        let ex: f32 = x.iter().map(|v| v * v).sum();
        let ey: f32 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-3);
    }

    #[test]
    fn dct2d_roundtrip() {
        let mut block = [0.0f32; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 31 % 17) as f32) - 8.0;
        }
        let orig = block;
        dct2d(&mut block);
        idct2d(&mut block);
        for i in 0..64 {
            assert!((block[i] - orig[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn dct2d_constant_block_dc() {
        let mut block = [16.0f32; 64];
        dct2d(&mut block);
        assert!((block[0] - 16.0 * 8.0).abs() < 1e-3, "dc={}", block[0]);
        assert!(block[1..].iter().all(|v| v.abs() < 1e-3));
    }

    #[test]
    fn fixed_point_matches_float_within_tolerance() {
        let mut spatial = [0i8; 64];
        for (i, s) in spatial.iter_mut().enumerate() {
            *s = (((i * 97) % 255) as i32 - 127) as i8;
        }
        let coefs = dct2d_i8(&spatial);
        let mut fblock = [0.0f32; 64];
        for i in 0..64 {
            fblock[i] = spatial[i] as f32;
        }
        dct2d(&mut fblock);
        for i in 0..64 {
            assert!(
                (coefs[i] as f32 - fblock[i]).abs() < 2.0,
                "i={i}: fixed={} float={}",
                coefs[i],
                fblock[i]
            );
        }
    }

    #[test]
    fn fixed_point_roundtrip_error_small() {
        let mut spatial = [0i8; 64];
        for (i, s) in spatial.iter_mut().enumerate() {
            *s = (((i * 53) % 200) as i32 - 100) as i8;
        }
        let rec = idct2d_to_i8(&dct2d_i8(&spatial));
        for i in 0..64 {
            let d = (rec[i] as i32 - spatial[i] as i32).abs();
            assert!(d <= 1, "i={i}: {} vs {}", rec[i], spatial[i]);
        }
    }

    #[test]
    fn fixed_point_dc_range_max_input() {
        let spatial = [i8::MIN; 64];
        let coefs = dct2d_i8(&spatial);
        assert_eq!(coefs[0], -1024);
        let spatial = [i8::MAX; 64];
        let coefs = dct2d_i8(&spatial);
        assert!((coefs[0] as i32 - 127 * 8).abs() <= 1);
    }
}

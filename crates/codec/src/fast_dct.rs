//! Factored fast 8-point DCT.
//!
//! The JPEG-ACT hardware uses the Loeffler–Ligtenberg–Moschytz (LLM)
//! 8-point DCT with 11 multipliers (Sec. III-D); this module implements
//! the same even/odd butterfly factorization in software:
//!
//! * the even half reduces to a 4-point DCT — two scaled butterflies for
//!   `X0/X4` plus one planar rotation for `X2/X6`;
//! * the odd half is a 4-point DCT-IV on the input differences, whose
//!   (scaled) matrix `M[k][n] = cos((2n+1)(2k+1)π/16)` is symmetric and
//!   satisfies `M·M = 2I`, making the inverse a single re-application.
//!
//! This costs 22 multiplies per 8-point transform (LLM reaches 11 by
//! further factoring the odd half; the hardware cost model in
//! `jact-hwmodel` accounts the LLM multiplier count).  The results agree
//! with the matrix-form reference in [`crate::dct`] to float precision,
//! which the tests verify exhaustively.

use std::f32::consts::PI;
use std::sync::LazyLock;

/// `1 / (2·√2)` — the X0/X4 butterfly scale.
static INV_2R2: LazyLock<f32> = LazyLock::new(|| 1.0 / (2.0 * 2.0f32.sqrt()));
/// `cos(π/8)` and `cos(3π/8)` — the X2/X6 rotation.
static C1: LazyLock<f32> = LazyLock::new(|| (PI / 8.0).cos());
static C3: LazyLock<f32> = LazyLock::new(|| (3.0 * PI / 8.0).cos());
/// The symmetric scaled DCT-IV matrix of the odd half.
static M4: LazyLock<[[f32; 4]; 4]> = LazyLock::new(|| {
    let mut m = [[0.0f32; 4]; 4];
    for (k, row) in m.iter_mut().enumerate() {
        for (n, v) in row.iter_mut().enumerate() {
            *v = (((2 * n + 1) * (2 * k + 1)) as f32 * PI / 16.0).cos();
        }
    }
    m
});

/// Forward 8-point orthonormal DCT-II via even/odd butterflies.
pub fn fast_dct8(x: &[f32; 8]) -> [f32; 8] {
    // Stage 1: symmetric/antisymmetric split.
    let s = [x[0] + x[7], x[1] + x[6], x[2] + x[5], x[3] + x[4]];
    let d = [x[0] - x[7], x[1] - x[6], x[2] - x[5], x[3] - x[4]];

    // Even half: 4-point DCT of s.
    let e0 = s[0] + s[3];
    let e1 = s[1] + s[2];
    let o0 = s[0] - s[3];
    let o1 = s[1] - s[2];
    let x0 = (e0 + e1) * *INV_2R2;
    let x4 = (e0 - e1) * *INV_2R2;
    let x2 = 0.5 * (o0 * *C1 + o1 * *C3);
    let x6 = 0.5 * (o0 * *C3 - o1 * *C1);

    // Odd half: scaled DCT-IV of d.
    let m = &*M4;
    let mut odd = [0.0f32; 4];
    for (k, o) in odd.iter_mut().enumerate() {
        *o = 0.5 * (m[k][0] * d[0] + m[k][1] * d[1] + m[k][2] * d[2] + m[k][3] * d[3]);
    }

    [x0, odd[0], x2, odd[1], x4, odd[2], x6, odd[3]]
}

/// Inverse of [`fast_dct8`] (the transpose flow-graph).
pub fn fast_idct8(x: &[f32; 8]) -> [f32; 8] {
    let r2 = 2.0f32.sqrt();
    // Even half inverse: undo the X0/X4 butterfly (scale 1/(2√2) → √2)
    // and the X2/X6 rotation (orthogonal and symmetric → apply twice the
    // same rotation).
    let e0 = r2 * (x[0] + x[4]);
    let e1 = r2 * (x[0] - x[4]);
    let o0 = 2.0 * (x[2] * *C1 + x[6] * *C3);
    let o1 = 2.0 * (x[2] * *C3 - x[6] * *C1);
    let s = [
        0.5 * (e0 + o0),
        0.5 * (e1 + o1),
        0.5 * (e1 - o1),
        0.5 * (e0 - o0),
    ];

    // Odd half inverse: M·M = 2I, so d = M · X_odd.
    let m = &*M4;
    let xo = [x[1], x[3], x[5], x[7]];
    let mut d = [0.0f32; 4];
    for (n, dv) in d.iter_mut().enumerate() {
        *dv = m[n][0] * xo[0] + m[n][1] * xo[1] + m[n][2] * xo[2] + m[n][3] * xo[3];
    }

    let mut out = [0.0f32; 8];
    for n in 0..4 {
        out[n] = 0.5 * (s[n] + d[n]);
        out[7 - n] = 0.5 * (s[n] - d[n]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::{dct8, idct8};

    /// Fixed sample battery: four hand-picked rows plus 32 pseudorandom
    /// rows, filled through a fixed working array into a fixed-size output
    /// — no per-call heap growth.
    fn samples() -> [[f32; 8]; 36] {
        let mut v = [[0.0f32; 8]; 36];
        v[1] = [1.0; 8];
        v[2] = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        v[3] = [127.0, -128.0, 64.0, -64.0, 32.0, -32.0, 16.0, -16.0];
        let mut x = [0.0f32; 8];
        for s in 0..32usize {
            for (i, xv) in x.iter_mut().enumerate() {
                *xv = ((((s * 8 + i) * 2654435761) % 2001) as f32 / 10.0) - 100.0;
            }
            v[s + 4] = x;
        }
        v
    }

    #[test]
    fn fast_forward_matches_matrix_reference() {
        for x in samples() {
            let a = fast_dct8(&x);
            let b = dct8(&x);
            for k in 0..8 {
                assert!(
                    (a[k] - b[k]).abs() < 1e-3 * (1.0 + b[k].abs()),
                    "k={k}: fast={} ref={} for {x:?}",
                    a[k],
                    b[k]
                );
            }
        }
    }

    #[test]
    fn fast_inverse_matches_matrix_reference() {
        for x in samples() {
            let a = fast_idct8(&x);
            let b = idct8(&x);
            for k in 0..8 {
                assert!(
                    (a[k] - b[k]).abs() < 1e-3 * (1.0 + b[k].abs()),
                    "k={k}: fast={} ref={}",
                    a[k],
                    b[k]
                );
            }
        }
    }

    #[test]
    fn fast_roundtrip_is_identity() {
        for x in samples() {
            let y = fast_idct8(&fast_dct8(&x));
            for k in 0..8 {
                assert!((y[k] - x[k]).abs() < 1e-3 * (1.0 + x[k].abs()));
            }
        }
    }

    #[test]
    fn dct_iv_matrix_squares_to_2i() {
        let m = &*M4;
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0f32;
                for k in 0..4 {
                    acc += m[i][k] * m[k][j];
                }
                let expect = if i == j { 2.0 } else { 0.0 };
                assert!((acc - expect).abs() < 1e-5, "({i},{j}): {acc}");
            }
        }
    }
}

//! # jact-codec
//!
//! Compression primitives for the JPEG-ACT reproduction (Evans, Liu,
//! Aamodt, *JPEG-ACT: Accelerating Deep Learning via Transform-based Lossy
//! Compression*, ISCA 2020).
//!
//! This crate implements, from scratch, every compression building block
//! the paper uses or compares against:
//!
//! | Module | Paper section | What it is |
//! |---|---|---|
//! | [`sfpr`] | III-B | Scaled Fix-point Precision Reduction: f32 → i8 with per-channel max scaling |
//! | [`block`] | III-C | NCHW → `(N·C·H) × W` reshape, zero padding, 8×8 block gather (alignment buffer) |
//! | [`dct`] | III-D | 8-point / 8×8 2-D DCT and inverse, float reference + fixed-point datapath |
//! | [`dqt`] | II-B5, IV | Discrete quantization tables: JPEG quality tables, optimized `optL`/`optH`, zigzag order |
//! | [`quant`] | III-E, III-F | DIV (divide) and SH (shift) quantization of DCT coefficients |
//! | [`rle`] | III-E | Zigzag run-length encoding + Huffman coding (JPEG-BASE back end) |
//! | [`zvc`] | II-B4, III-F | Zero-value compression: non-zero mask + packed values (cDMA / JPEG-ACT back end) |
//! | [`brc`] | II-B1 | Binary ReLU compression: 1-bit sign masks |
//! | [`csr`] | II-B2 | GIST-style sparse storage (value + column index per non-zero) |
//! | [`dpr`] | II-B2 | Dynamic precision reduction: f32 → f16 / f8 casts |
//! | [`pipeline`] | III | Composed codecs: SFPR-only, JPEG-BASE, JPEG-ACT, and the DIV/SH × RLE/ZVC matrix |
//! | [`tile`] | III, Fig. 11 | Streaming tile pipeline: stage trait fusing gather → DCT → quantize → code per 8×8 block |
//! | [`stream`] | III-G | Collector / splitter: round-robin multi-CDU stream aggregation into 128 B DMA packets |
//! | [`wire`] | III-G | Framed wire format: magic + version + tag + CRC32 container, panic-free decode of arbitrary bytes |
//! | [`bits`] | — | Bit-level I/O shared by the entropy coders |
//!
//! ## Quick start
//!
//! ```
//! use jact_codec::pipeline::{Codec, JpegActCodec};
//! use jact_codec::dqt::Dqt;
//! use jact_tensor::{Tensor, Shape};
//!
//! // A smooth activation-like tensor compresses well.
//! let shape = Shape::nchw(1, 4, 16, 16);
//! let data: Vec<f32> = (0..shape.len())
//!     .map(|i| ((i % 16) as f32 * 0.2).sin())
//!     .collect();
//! let x = Tensor::from_vec(shape, data);
//!
//! let codec = JpegActCodec::new(Dqt::opt_h());
//! let compressed = codec.compress(&x);
//! let recovered = codec.decompress(&compressed).expect("same codec");
//!
//! assert!(compressed.ratio() > 2.0);
//! assert!(x.mse(&recovered) < 1e-2);
//! ```

#![forbid(unsafe_code)]

pub mod bits;
pub mod block;
pub mod brc;
pub mod cacheline;
pub mod csr;
pub mod dct;
pub mod dpr;
pub mod dqt;
pub mod error;
pub mod fast_dct;
pub mod pipeline;
pub mod quant;
pub mod rle;
pub mod sfpr;
pub mod stream;
pub mod tile;
pub mod wire;
pub mod zvc;

pub use error::CodecError;
pub use pipeline::{Codec, CompressedActivation};

//! Binary ReLU Compression (BRC).
//!
//! BRC (Jain et al., GIST, ISCA 2018; Sec. II-B1) exploits the ReLU
//! backward identity `∇x = (x > 0) ? ∇r : 0`: instead of memoizing the
//! ReLU activation itself, only the 1-bit sign mask `(x > 0)` is saved —
//! a fixed 32× compression over f32.
//!
//! BRC is applicable only when the ReLU output is *not* consumed by a
//! following convolution (which needs the values, not just the mask);
//! the per-layer policy lives in `jact-core`'s method selection (Table II).

use crate::error::CodecError;
use jact_tensor::{Shape, Tensor};

/// A 1-bit-per-element positivity mask of an activation tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrcMask {
    bits: Vec<u8>,
    len: usize,
    shape: Shape,
}

impl BrcMask {
    /// Compresses an activation into its `(x > 0)` mask.
    pub fn compress(x: &Tensor) -> Self {
        let len = x.len();
        let mut bits = vec![0u8; len.div_ceil(8)];
        for (i, &v) in x.iter().enumerate() {
            if v > 0.0 {
                bits[i / 8] |= 1 << (i % 8);
            }
        }
        BrcMask {
            bits,
            len,
            shape: x.shape().clone(),
        }
    }

    /// Rebuilds a mask from wire-decoded parts, validating that the bit
    /// buffer covers exactly the shape's element count.
    pub fn from_parts(bits: Vec<u8>, shape: Shape) -> Result<Self, CodecError> {
        let len = shape.len();
        if bits.len() != len.div_ceil(8) {
            return Err(CodecError::Corrupt("BRC bit buffer length mismatch"));
        }
        Ok(BrcMask { bits, len, shape })
    }

    /// The packed mask bytes.
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }

    /// The original activation shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Whether element `i` was positive.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn is_positive(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of bounds");
        self.bits[i / 8] >> (i % 8) & 1 == 1
    }

    /// Applies the mask to an upstream gradient, producing the ReLU input
    /// gradient: `∇x_i = mask_i ? ∇r_i : 0` (Eqn. 3).
    ///
    /// # Panics
    ///
    /// Panics if `grad` has a different shape than the masked activation.
    pub fn apply_to_gradient(&self, grad: &Tensor) -> Tensor {
        assert_eq!(
            grad.shape(),
            &self.shape,
            "gradient shape does not match mask"
        );
        let data = grad
            .iter()
            .enumerate()
            .map(|(i, &g)| if self.is_positive(i) { g } else { 0.0 })
            .collect();
        Tensor::from_vec(self.shape.clone(), data)
    }

    /// Reconstructs the binary `{0, 1}` activation surrogate.  Note this is
    /// *not* the original activation — BRC is only valid where the mask
    /// suffices for the backward pass.
    pub fn to_binary_tensor(&self) -> Tensor {
        let data = (0..self.len)
            .map(|i| if self.is_positive(i) { 1.0 } else { 0.0 })
            .collect();
        Tensor::from_vec(self.shape.clone(), data)
    }

    /// Number of mask elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the mask has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes (the packed bit mask).
    pub fn compressed_bytes(&self) -> usize {
        self.bits.len()
    }

    /// Original activation size in bytes (f32).
    pub fn uncompressed_bytes(&self) -> usize {
        self.len * 4
    }

    /// Compression ratio — 32× in the limit.
    pub fn ratio(&self) -> f64 {
        self.uncompressed_bytes() as f64 / self.compressed_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relu_output() -> Tensor {
        Tensor::from_vec(
            Shape::nchw(1, 1, 2, 4),
            vec![1.0, 0.0, 2.5, 0.0, 0.0, 3.0, 0.0, 0.5],
        )
    }

    #[test]
    fn mask_captures_positivity() {
        let m = BrcMask::compress(&relu_output());
        let expect = [true, false, true, false, false, true, false, true];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(m.is_positive(i), e, "i={i}");
        }
    }

    #[test]
    fn gradient_masking_matches_relu_backward() {
        let x = relu_output();
        let m = BrcMask::compress(&x);
        let grad = Tensor::from_vec(
            x.shape().clone(),
            vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0],
        );
        let gx = m.apply_to_gradient(&grad);
        assert_eq!(
            gx.as_slice(),
            &[10.0, 0.0, 30.0, 0.0, 0.0, 60.0, 0.0, 80.0]
        );
    }

    #[test]
    fn negative_values_mask_to_zero() {
        let x = Tensor::from_slice(&[-1.0, -0.0, 0.0, 2.0]);
        let m = BrcMask::compress(&x);
        assert!(!m.is_positive(0));
        assert!(!m.is_positive(1));
        assert!(!m.is_positive(2));
        assert!(m.is_positive(3));
    }

    #[test]
    fn ratio_is_32x_for_multiple_of_8() {
        let x = Tensor::zeros(Shape::nchw(2, 4, 8, 8));
        let m = BrcMask::compress(&x);
        assert_eq!(m.ratio(), 32.0);
    }

    #[test]
    fn binary_tensor_roundtrip() {
        let x = relu_output();
        let m = BrcMask::compress(&x);
        let b = m.to_binary_tensor();
        assert_eq!(b.shape(), x.shape());
        for (i, &v) in b.iter().enumerate() {
            assert_eq!(v > 0.0, m.is_positive(i));
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn shape_mismatch_panics() {
        let m = BrcMask::compress(&relu_output());
        let bad = Tensor::zeros(Shape::nchw(1, 1, 4, 2));
        let _ = m.apply_to_gradient(&bad);
    }
}

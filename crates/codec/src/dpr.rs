//! Dynamic Precision Reduction (DPR) — GIST's lossy float casts.
//!
//! GIST (Jain et al., ISCA 2018; Sec. II-B2) casts 32-bit activations to
//! 16-bit or 8-bit floating point after the forward pass.  This module
//! implements both casts from scratch:
//!
//! * **f16** — IEEE 754 binary16 (1-5-10), round-to-nearest-even,
//! * **f8** — a 1-4-3 minifloat with IEEE-style subnormals (the 8-bit
//!   "float" GIST uses; Jain et al. note its difficulty on deep networks,
//!   which Table I reproduces via the accuracy drop of 8-bit GIST).
//!
//! The casts are value maps (f32 → smaller float → f32); the byte-level
//! encodings are exposed for storage accounting.

use jact_tensor::Tensor;

/// Converts an `f32` to IEEE binary16 bits (round-to-nearest-even).
pub fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x7f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        let frac16 = if frac != 0 { 0x200 } else { 0 };
        return sign | 0x7c00 | frac16;
    }
    // Re-bias: f32 bias 127, f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal range: keep 10 fraction bits with round-to-nearest-even.
        let exp16 = (unbiased + 15) as u16;
        let shift = 13u32;
        let halfway = 1u32 << (shift - 1);
        let rem = frac & ((1 << shift) - 1);
        let mut frac16 = (frac >> shift) as u16;
        let mut e = exp16;
        if rem > halfway || (rem == halfway && frac16 & 1 == 1) {
            frac16 += 1;
            if frac16 == 0x400 {
                frac16 = 0;
                e += 1;
                if e >= 31 {
                    return sign | 0x7c00;
                }
            }
        }
        return sign | (e << 10) | frac16;
    }
    if unbiased >= -24 {
        // Subnormal f16.
        let full = frac | 0x80_0000; // implicit leading 1
        let shift = (13 - (unbiased + 14)) as u32; // 14..24 -> shift 14..24
        let halfway = 1u32 << (shift - 1);
        let rem = full & ((1 << shift) - 1);
        let mut frac16 = (full >> shift) as u16;
        if rem > halfway || (rem == halfway && frac16 & 1 == 1) {
            frac16 += 1;
        }
        return sign | frac16;
    }
    sign // underflow to zero
}

/// Converts IEEE binary16 bits back to `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let frac = (h & 0x3ff) as u32;
    let bits = if exp == 0x1f {
        // Inf / NaN.
        sign | 0x7f80_0000 | (frac << 13)
    } else if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: normalize.  The leading one of `frac` sits at bit
            // `p = 10 - lead`; shifting by `lead` moves it to the implicit
            // position, and the value is `1.xxx · 2^(p - 24)`.
            let lead = frac.leading_zeros() - 21;
            let norm_frac = (frac << lead) & 0x3ff;
            let e = 127 - 15 + 1 - lead;
            sign | (e << 23) | (norm_frac << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(bits)
}

/// Rounds an `f32` through binary16 precision.
pub fn round_f16(v: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(v))
}

/// 1-4-3 minifloat parameters: bias 7, 3 fraction bits.
const F8_BIAS: i32 = 7;
const F8_FRAC_BITS: u32 = 3;

/// Converts an `f32` to 1-4-3 minifloat bits (round-to-nearest, saturating
/// to the maximum finite value rather than producing infinities — a common
/// hardware choice that GIST's 8-bit mode needs to avoid blowups).
pub fn f32_to_f8_bits(v: f32) -> u8 {
    if v.is_nan() {
        return 0x7f;
    }
    let sign = if v.is_sign_negative() { 0x80u8 } else { 0 };
    let a = v.abs();
    if a == 0.0 {
        return sign;
    }
    // Max finite: exp=15 (unbiased 8), frac=7 -> (1 + 7/8) * 2^8 = 480.
    let max_finite = 480.0f32;
    if a >= max_finite {
        return sign | 0x7f;
    }
    let e = a.log2().floor() as i32;
    let e = e.clamp(-F8_BIAS - F8_FRAC_BITS as i32, 8);
    if e < 1 - F8_BIAS {
        // Subnormal: value = frac/8 * 2^(1-bias).
        let scale = (1.0f32).powi(0) * 2f32.powi(1 - F8_BIAS - F8_FRAC_BITS as i32);
        let q = (a / scale).round() as u32;
        if q == 0 {
            return sign;
        }
        if q <= 7 {
            return sign | q as u8;
        }
        // Rounded up into normal range.
        return sign | 0x08;
    }
    let mantissa = a / 2f32.powi(e); // in [1, 2)
    let frac = ((mantissa - 1.0) * 8.0).round() as u32;
    let (e, frac) = if frac == 8 { (e + 1, 0) } else { (e, frac) };
    if e > 8 {
        return sign | 0x7f;
    }
    let exp_bits = (e + F8_BIAS) as u8;
    sign | (exp_bits << 3) | frac as u8
}

/// Converts 1-4-3 minifloat bits back to `f32`.
pub fn f8_bits_to_f32(b: u8) -> f32 {
    let sign = if b & 0x80 != 0 { -1.0f32 } else { 1.0 };
    let exp = ((b >> 3) & 0x0f) as i32;
    let frac = (b & 0x07) as f32;
    if exp == 0 {
        return sign * (frac / 8.0) * 2f32.powi(1 - F8_BIAS);
    }
    sign * (1.0 + frac / 8.0) * 2f32.powi(exp - F8_BIAS)
}

/// Rounds an `f32` through 1-4-3 minifloat precision.
pub fn round_f8(v: f32) -> f32 {
    f8_bits_to_f32(f32_to_f8_bits(v))
}

/// DPR bit width selection (Sec. II-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DprWidth {
    /// 16-bit float: 2× storage reduction.
    F16,
    /// 8-bit float: 4× storage reduction, risky on deep networks.
    F8,
}

impl DprWidth {
    /// Bytes per element after the cast.
    pub fn bytes(self) -> usize {
        match self {
            DprWidth::F16 => 2,
            DprWidth::F8 => 1,
        }
    }
}

/// Applies the DPR cast to a whole tensor, returning the value-rounded
/// tensor (what the backward pass will see).
pub fn dpr_round(x: &Tensor, width: DprWidth) -> Tensor {
    match width {
        DprWidth::F16 => x.map(round_f16),
        DprWidth::F8 => x.map(round_f8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_exact_small_integers() {
        for v in [-8.0f32, -1.0, 0.0, 0.5, 1.0, 2.0, 100.0, 2047.0] {
            assert_eq!(round_f16(v), v, "v={v}");
        }
    }

    #[test]
    fn f16_relative_error_bounded() {
        // binary16 has 11 significand bits: rel err <= 2^-11.
        for i in 1..1000 {
            let v = i as f32 * 0.137;
            let r = round_f16(v);
            assert!(((r - v) / v).abs() <= 1.0 / 2048.0 + 1e-7, "v={v} r={r}");
        }
    }

    #[test]
    fn f16_handles_overflow_and_subnormals() {
        assert!(round_f16(1e6).is_infinite());
        let tiny = 1e-7f32;
        let r = round_f16(tiny);
        assert!(r >= 0.0 && r < 1e-6);
        assert_eq!(round_f16(0.0), 0.0);
        assert_eq!(round_f16(-0.0), 0.0);
        assert!(round_f16(f32::NAN).is_nan());
    }

    #[test]
    fn f16_sign_preserved() {
        assert_eq!(round_f16(-1.5), -1.5);
        assert!(round_f16(-1e6).is_infinite());
        assert!(round_f16(-1e6) < 0.0);
    }

    #[test]
    fn f8_exact_powers_of_two() {
        for v in [0.25f32, 0.5, 1.0, 2.0, 4.0, 128.0, 256.0] {
            assert_eq!(round_f8(v), v, "v={v}");
        }
    }

    #[test]
    fn f8_relative_error_bounded() {
        // 4 significand bits: rel err <= 2^-4 = 6.25%.
        for i in 1..500 {
            let v = i as f32 * 0.173;
            let r = round_f8(v);
            assert!(((r - v) / v).abs() <= 1.0 / 16.0 + 1e-6, "v={v} r={r}");
        }
    }

    #[test]
    fn f8_saturates_not_infinite() {
        let r = round_f8(1e9);
        assert!(r.is_finite());
        assert_eq!(r, 480.0);
        assert_eq!(round_f8(-1e9), -480.0);
    }

    #[test]
    fn f8_small_values_truncate_to_zero() {
        // f8 min subnormal = (1/8) * 2^-6 = 2^-9 ~ 0.00195.
        assert_eq!(round_f8(1e-4), 0.0);
        assert!(round_f8(0.002).abs() > 0.0);
    }

    #[test]
    fn f8_roundtrip_all_bit_patterns() {
        // Every f8 value must map back to itself exactly.
        for b in 0u8..=255 {
            let v = f8_bits_to_f32(b);
            if v == 0.0 {
                continue; // +0/-0 collapse
            }
            let b2 = f32_to_f8_bits(v);
            assert_eq!(
                f8_bits_to_f32(b2),
                v,
                "b={b:#04x} v={v} -> b2={b2:#04x}"
            );
        }
    }

    #[test]
    fn f16_roundtrip_random_patterns() {
        // Value-level idempotence: round(round(v)) == round(v).
        for i in 0..2000u32 {
            let v = f32::from_bits(i.wrapping_mul(0x9E37_79B9) & 0x7fff_ffff);
            if !v.is_finite() {
                continue;
            }
            let r = round_f16(v);
            assert_eq!(round_f16(r), r, "v={v}");
        }
    }

    #[test]
    fn dpr_round_tensor_widths() {
        let x = Tensor::from_slice(&[0.1, 1.0, -3.3, 100.7]);
        let x16 = dpr_round(&x, DprWidth::F16);
        let x8 = dpr_round(&x, DprWidth::F8);
        assert_eq!(x16.len(), 4);
        // f8 is strictly coarser than f16.
        let e16 = x.mse(&x16);
        let e8 = x.mse(&x8);
        assert!(e8 > e16);
        assert_eq!(DprWidth::F16.bytes(), 2);
        assert_eq!(DprWidth::F8.bytes(), 1);
    }
}

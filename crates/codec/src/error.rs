//! Typed errors for the codec pipelines and the offload wire path.
//!
//! Decompression and wire decoding are the fallible codec operations: a
//! payload can be handed to the wrong codec, a coded byte stream can be
//! corrupt, and — once activations travel the DMA link as framed bytes
//! ([`crate::wire`]) — *any* byte sequence can arrive at the decoder.
//! Every such condition surfaces as a [`CodecError`] instead of a panic
//! so the offload layers above (`jact-core`, `jact-dnn`) can attach
//! context, retry the transfer, or substitute a recovery tensor.

use std::fmt;

/// Why a decompression or wire decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload was produced by a different codec than the one asked
    /// to decompress it.
    WrongPayload {
        /// Name of the codec that was asked to decompress.
        expected: &'static str,
        /// Name of the codec that produced the payload.
        actual: String,
    },
    /// The coded byte stream is malformed (truncated or inconsistent).
    Corrupt(&'static str),
    /// A quantization-table entry is outside the valid `1..=255` range.
    /// A zero entry would make the DIV quantizer divide by zero on the
    /// hot path, so [`crate::dqt::Dqt::from_entries`] rejects it up
    /// front with this variant.
    BadDqt {
        /// Row-major index of the offending entry.
        index: usize,
        /// The rejected entry value.
        entry: u16,
    },
    /// A wire frame field holds an invalid or inconsistent value.
    BadFrame {
        /// Byte offset of the offending field within the frame.
        offset: usize,
        /// What is wrong with the field.
        what: &'static str,
    },
    /// The frame's CRC32 does not match its contents.
    ChecksumMismatch {
        /// Checksum announced by the frame trailer.
        expected: u32,
        /// Checksum recomputed over the received bytes.
        actual: u32,
    },
    /// The byte buffer ends before a read completes.
    Truncated {
        /// Byte offset at which the read started.
        offset: usize,
        /// Bytes the read required.
        needed: usize,
        /// Bytes actually available at `offset`.
        available: usize,
    },
    /// A collected multi-CDU stream failed to split back into block
    /// payloads.
    Stream {
        /// Index of the CDU whose block failed to decode.
        cdu: usize,
        /// Byte offset into the collected stream where decoding failed.
        offset: usize,
        /// What went wrong at that offset.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::WrongPayload { expected, actual } => write!(
                f,
                "codec {expected} cannot decompress payload from {actual}"
            ),
            CodecError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
            CodecError::BadDqt { index, entry } => write!(
                f,
                "DQT entry {entry} at index {index} outside 1..=255"
            ),
            CodecError::BadFrame { offset, what } => {
                write!(f, "bad wire frame at byte {offset}: {what}")
            }
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "wire frame checksum mismatch: expected {expected:#010x}, computed {actual:#010x}"
            ),
            CodecError::Truncated {
                offset,
                needed,
                available,
            } => write!(
                f,
                "truncated buffer: needed {needed} bytes at offset {offset}, only {available} available"
            ),
            CodecError::Stream { cdu, offset, what } => {
                write!(f, "stream split failed for CDU {cdu} at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = CodecError::WrongPayload {
            expected: "sfpr",
            actual: "raw".into(),
        };
        assert_eq!(
            e.to_string(),
            "codec sfpr cannot decompress payload from raw"
        );
        assert_eq!(
            CodecError::Corrupt("RLE stream truncated").to_string(),
            "corrupt payload: RLE stream truncated"
        );
        assert_eq!(
            CodecError::BadDqt { index: 3, entry: 0 }.to_string(),
            "DQT entry 0 at index 3 outside 1..=255"
        );
    }

    #[test]
    fn wire_display_forms() {
        let e = CodecError::BadFrame {
            offset: 6,
            what: "unknown codec tag",
        };
        assert_eq!(e.to_string(), "bad wire frame at byte 6: unknown codec tag");
        let e = CodecError::ChecksumMismatch {
            expected: 0xdead_beef,
            actual: 0x1234_5678,
        };
        assert!(e.to_string().contains("0xdeadbeef"));
        assert!(e.to_string().contains("0x12345678"));
        let e = CodecError::Truncated {
            offset: 10,
            needed: 8,
            available: 3,
        };
        assert_eq!(
            e.to_string(),
            "truncated buffer: needed 8 bytes at offset 10, only 3 available"
        );
        let e = CodecError::Stream {
            cdu: 2,
            offset: 136,
            what: "mask extends past stream end",
        };
        assert_eq!(
            e.to_string(),
            "stream split failed for CDU 2 at byte 136: mask extends past stream end"
        );
    }
}

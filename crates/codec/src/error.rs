//! Typed errors for the codec pipelines.
//!
//! Decompression is the only fallible codec operation: a payload can be
//! handed to the wrong codec, or a coded byte stream can be corrupt.
//! Both conditions surface as a [`CodecError`] instead of a panic so the
//! offload layers above (`jact-core`, `jact-dnn`) can attach context and
//! propagate.

use std::fmt;

/// Why a decompression failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload was produced by a different codec than the one asked
    /// to decompress it.
    WrongPayload {
        /// Name of the codec that was asked to decompress.
        expected: &'static str,
        /// Name of the codec that produced the payload.
        actual: String,
    },
    /// The coded byte stream is malformed (truncated or inconsistent).
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::WrongPayload { expected, actual } => write!(
                f,
                "codec {expected} cannot decompress payload from {actual}"
            ),
            CodecError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = CodecError::WrongPayload {
            expected: "sfpr",
            actual: "raw".into(),
        };
        assert_eq!(
            e.to_string(),
            "codec sfpr cannot decompress payload from raw"
        );
        assert_eq!(
            CodecError::Corrupt("RLE stream truncated").to_string(),
            "corrupt payload: RLE stream truncated"
        );
    }
}

//! Scaled Fix-point Precision Reduction (SFPR) — Sec. III-B.
//!
//! SFPR converts 32-bit float activations to `m`-bit signed integers with a
//! per-channel max scale, so the whole integer range is used by every
//! channel regardless of its dynamic range:
//!
//! ```text
//! s_c = S / max_nhw(|x_nchw|)                                  (Eqn. 4)
//! y   = clip(round(2^(m-1) · s_c · x), -2^(m-1), 2^(m-1) - 1)  (Eqn. 5)
//! ```
//!
//! The global scale `S` trades clipping error (large `S`) against
//! truncation error (small `S`); the paper selects `S = 1.125` by
//! minimizing recovered activation error across pipelines (Fig. 10).
//!
//! SFPR is both a standalone 4× codec (8-bit) and the mandatory front end
//! of JPEG-BASE and JPEG-ACT, whose integer DCT needs `i8` inputs.

use crate::error::CodecError;
use jact_obs as obs;
use jact_par::Pool;
use jact_tensor::{Shape, Tensor};

/// Target elements per parallel chunk.  Chunk sizes are derived from the
/// input only — never the thread count — so partitioning (and therefore
/// output) is identical for any `JACT_THREADS`.
const ELEMS_PER_CHUNK: usize = 1 << 15;

/// The paper's selected global scaling factor (Sec. III-B, Fig. 10).
pub const DEFAULT_S: f32 = 1.125;

/// SFPR configuration: global scale and integer bit width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SfprParams {
    /// Global scaling factor `S` (how much of the range may clip).
    pub s: f32,
    /// Integer bit width `m`; the paper uses 8, Fig. 16 sweeps 2–4.
    pub bits: u32,
}

impl SfprParams {
    /// The paper's default: `S = 1.125`, 8-bit integers.
    pub fn paper_default() -> Self {
        SfprParams {
            s: DEFAULT_S,
            bits: 8,
        }
    }

    /// Custom scale with 8-bit integers.
    pub fn with_scale(s: f32) -> Self {
        SfprParams { s, bits: 8 }
    }

    /// Reduced bit width (Fig. 16's SFPR 2-/3-/4-bit curves).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=8`.
    pub fn with_bits(bits: u32) -> Self {
        assert!((2..=8).contains(&bits), "SFPR bits must be in 2..=8");
        SfprParams {
            s: DEFAULT_S,
            bits,
        }
    }
}

impl Default for SfprParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// An SFPR-compressed activation: per-channel scales plus `i8` values.
#[derive(Debug, Clone, PartialEq)]
pub struct SfprEncoded {
    values: Vec<i8>,
    /// `s_c` per channel; `0.0` marks an all-zero channel.
    scales: Vec<f32>,
    shape: Shape,
    params: SfprParams,
}

impl SfprEncoded {
    /// Rebuilds an encoded activation from wire-decoded parts, validating
    /// every invariant [`decompress_values`] relies on: rank-4 shape, one
    /// scale per channel, bits in `2..=8`, and a value plane that is
    /// either empty (JPEG metadata form) or exactly `shape.len()` long.
    pub fn from_parts(
        values: Vec<i8>,
        scales: Vec<f32>,
        shape: Shape,
        params: SfprParams,
    ) -> Result<Self, CodecError> {
        if shape.rank() != 4 {
            return Err(CodecError::Corrupt("SFPR shape must be rank 4"));
        }
        if !(2..=8).contains(&params.bits) {
            return Err(CodecError::Corrupt("SFPR bits out of 2..=8"));
        }
        if scales.len() != shape.c() {
            return Err(CodecError::Corrupt("SFPR scale count must equal channels"));
        }
        if !values.is_empty() && values.len() != shape.len() {
            return Err(CodecError::Corrupt(
                "SFPR value plane size disagrees with shape",
            ));
        }
        Ok(SfprEncoded {
            values,
            scales,
            shape,
            params,
        })
    }

    /// The quantized integer values in NCHW order.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// Mutable access for downstream pipeline stages (DCT operates on the
    /// integer plane in place of a hardware buffer).
    pub fn values_mut(&mut self) -> &mut [i8] {
        &mut self.values
    }

    /// Takes the value plane out, leaving the scale/shape metadata behind.
    /// The JPEG pipelines use this to avoid storing the plane twice: after
    /// coding, values are reconstructed from the coded blocks.
    pub fn take_values(&mut self) -> Vec<i8> {
        std::mem::take(&mut self.values)
    }

    /// Per-channel scale factors.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Original tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Parameters used for encoding.
    pub fn params(&self) -> SfprParams {
        self.params
    }

    /// Compressed payload size: one byte per element plus the f32 scales.
    pub fn compressed_bytes(&self) -> usize {
        self.values.len() + self.scales.len() * 4
    }

    /// Fraction of the integer code space actually used, averaged over
    /// channels — the "integer utilization" the paper uses to explain why
    /// SFPR beats DPR on small-range channels (Sec. VI-B).
    pub fn integer_utilization(&self) -> f64 {
        let c = self.scales.len();
        if c == 0 {
            return 0.0;
        }
        let (n, h, w) = (self.shape.n(), self.shape.h(), self.shape.w());
        let plane = h * w;
        let mut total = 0.0f64;
        for ci in 0..c {
            // Values are i8, so a 256-slot bitmap counts distinct codes
            // without any iteration-order-sensitive container.
            let mut used = [false; 256];
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for &v in &self.values[base..base + plane] {
                    used[(v as u8) as usize] = true;
                }
            }
            let distinct = used.iter().filter(|&&u| u).count();
            let levels = 1usize << self.params.bits;
            total += distinct as f64 / levels as f64;
        }
        total / c as f64
    }
}

/// Compresses an NCHW activation with SFPR.
///
/// Under an open observability capture this records the `stage.sfpr`
/// span (with the `stage.scale` scan nested inside), the stage byte
/// funnel, and the per-chunk `sfpr.clipped` / `sfpr.elems` counters
/// behind the paper's clip-rate metric.  Counters are emitted per
/// parallel chunk and merged in chunk-index order, so they are
/// thread-count-invariant like the values themselves.
///
/// # Panics
///
/// Panics if `x` is not rank 4.
pub fn compress(x: &Tensor, params: SfprParams) -> SfprEncoded {
    obs::span("stage.sfpr", || compress_impl(x, params))
}

fn compress_impl(x: &Tensor, params: SfprParams) -> SfprEncoded {
    assert!(
        (2..=8).contains(&params.bits),
        "SFPR bits must be in 2..=8"
    );
    let (n, c, h, w) = (
        x.shape().n(),
        x.shape().c(),
        x.shape().h(),
        x.shape().w(),
    );
    let plane = h * w;
    let xv = x.as_slice();
    let maxes = obs::span("stage.scale", || channel_max_abs_par(xv, c, plane));
    let scales: Vec<f32> = maxes
        .iter()
        .map(|&m| if m == 0.0 { 0.0 } else { params.s / m })
        .collect();

    let half = 1i32 << (params.bits - 1);
    let (lo, hi) = (-half, half - 1);
    let mut values = vec![0i8; xv.len()];
    if plane > 0 && c > 0 && n > 0 {
        // Chunks are whole (ni, ci) planes so each chunk sees a single
        // scale per plane segment; the chunk size is input-derived only.
        let chunk_len = plane * (ELEMS_PER_CHUNK / plane).max(1);
        Pool::current().par_chunks_mut(&mut values, chunk_len, |_, off, out| {
            let mut clipped = 0u64;
            for (k, seg) in out.chunks_mut(plane).enumerate() {
                let p = off / plane + k;
                let sc = scales[p % c];
                if sc == 0.0 {
                    continue;
                }
                let base = off + k * plane;
                for (j, o) in seg.iter_mut().enumerate() {
                    let q = (half as f32 * sc * xv[base + j]).round() as i32;
                    if q < lo || q > hi {
                        clipped += 1;
                    }
                    *o = q.clamp(lo, hi) as i8;
                }
            }
            if obs::is_active() {
                obs::count("sfpr.clipped", clipped);
                obs::count("sfpr.elems", out.len() as u64);
            }
        });
    }
    let enc = SfprEncoded {
        values,
        scales,
        shape: x.shape().clone(),
        params,
    };
    if obs::is_active() {
        obs::count("stage.sfpr.bytes_in", (xv.len() * 4) as u64);
        obs::count("stage.sfpr.bytes_out", enc.compressed_bytes() as u64);
    }
    enc
}

/// Decompresses an SFPR activation back to f32.
pub fn decompress(enc: &SfprEncoded) -> Tensor {
    decompress_values(enc.values(), enc)
}

/// Decompresses an explicit value plane using `enc`'s scales/shape —
/// used by the JPEG pipelines whose DCT stage recovered a modified plane.
/// Records the `stage.unsfpr` span under an open capture.
///
/// # Panics
///
/// Panics if `values.len()` differs from the encoded length.
pub fn decompress_values(values: &[i8], enc: &SfprEncoded) -> Tensor {
    obs::span("stage.unsfpr", || decompress_values_impl(values, enc))
}

fn decompress_values_impl(values: &[i8], enc: &SfprEncoded) -> Tensor {
    assert_eq!(values.len(), enc.shape.len(), "value plane size mismatch");
    let (n, c, h, w) = (
        enc.shape.n(),
        enc.shape.c(),
        enc.shape.h(),
        enc.shape.w(),
    );
    let plane = h * w;
    let half = (1i32 << (enc.params.bits - 1)) as f32;
    let mut out = vec![0.0f32; values.len()];
    if plane > 0 && c > 0 && n > 0 {
        let chunk_len = plane * (ELEMS_PER_CHUNK / plane).max(1);
        Pool::current().par_chunks_mut(&mut out, chunk_len, |_, off, seg_out| {
            for (k, seg) in seg_out.chunks_mut(plane).enumerate() {
                let p = off / plane + k;
                let sc = enc.scales[p % c];
                if sc == 0.0 {
                    continue;
                }
                let inv = 1.0 / (half * sc);
                let base = off + k * plane;
                for (j, o) in seg.iter_mut().enumerate() {
                    *o = values[base + j] as f32 * inv;
                }
            }
        });
    }
    Tensor::from_vec(enc.shape.clone(), out)
}

/// Per-channel `max |x|` over NCHW data laid out as `(n·c)` planes of
/// `plane` elements — the parallel equivalent of
/// `Tensor::channel_max_abs`.  Partial per-chunk maxima are folded with an
/// elementwise `max`, which is order-insensitive in f32, so the result is
/// bitwise identical for any thread count.
fn channel_max_abs_par(xv: &[f32], c: usize, plane: usize) -> Vec<f32> {
    if c == 0 {
        return Vec::new();
    }
    if plane == 0 || xv.is_empty() {
        return vec![0.0; c];
    }
    let num_planes = xv.len() / plane;
    let planes_per_chunk = (ELEMS_PER_CHUNK / plane).max(1);
    let num_chunks = num_planes.div_ceil(planes_per_chunk);
    let parts = Pool::current().run_chunks(num_chunks, |ci| {
        let p0 = ci * planes_per_chunk;
        let p1 = (p0 + planes_per_chunk).min(num_planes);
        let mut m = vec![0.0f32; c];
        for p in p0..p1 {
            let slot = p % c;
            let mut best = m[slot];
            for &v in &xv[p * plane..(p + 1) * plane] {
                let a = v.abs();
                if a > best {
                    best = a;
                }
            }
            m[slot] = best;
        }
        m
    });
    let mut maxes = vec![0.0f32; c];
    for part in parts {
        for (mm, pv) in maxes.iter_mut().zip(part) {
            if pv > *mm {
                *mm = pv;
            }
        }
    }
    maxes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_tensor() -> Tensor {
        let shape = Shape::nchw(2, 3, 4, 4);
        let data = (0..shape.len())
            .map(|i| (i as f32 / 10.0).sin() * ((i % 7) as f32 + 0.1))
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn roundtrip_error_small_at_8bit() {
        let x = ramp_tensor();
        let enc = compress(&x, SfprParams::paper_default());
        let rec = decompress(&enc);
        // 8-bit quantization with S=1.125: error per element bounded by
        // roughly max/128 (plus clipping of the top 11% of the range).
        let max = x.max_abs();
        let tol = (max / 128.0 * 1.2 + 0.02) as f64;
        for (a, b) in x.iter().zip(rec.iter()) {
            // Values in the top 1/1.125 of the range clip by design; allow
            // the corresponding relative error there.
            let allowed = tol.max(a.abs() as f64 * 0.13);
            assert!(((a - b).abs() as f64) < allowed, "{a} vs {b}");
        }
    }

    #[test]
    fn s_one_never_clips() {
        // With S=1, the max element maps to exactly 2^(m-1), clipped to
        // 2^(m-1)-1 — only the single max value saturates.
        let x = ramp_tensor();
        let enc = compress(&x, SfprParams::with_scale(1.0));
        let hi = enc.values().iter().fold(i8::MIN, |m, &v| m.max(v));
        let lo = enc.values().iter().fold(i8::MAX, |m, &v| m.min(v));
        assert!(hi as i32 <= 127 && lo as i32 >= -128);
    }

    #[test]
    fn large_s_clips_many_values() {
        let x = ramp_tensor();
        let e1 = compress(&x, SfprParams::with_scale(1.0));
        let e4 = compress(&x, SfprParams::with_scale(4.0));
        let sat = |e: &SfprEncoded| {
            e.values()
                .iter()
                .filter(|&&v| v == 127 || v == -128)
                .count()
        };
        assert!(sat(&e4) > sat(&e1));
    }

    #[test]
    fn zero_channel_handled() {
        let mut x = Tensor::zeros(Shape::nchw(1, 2, 2, 2));
        x.set4(0, 1, 0, 0, 5.0);
        let enc = compress(&x, SfprParams::paper_default());
        assert_eq!(enc.scales()[0], 0.0);
        let rec = decompress(&enc);
        assert_eq!(rec.get4(0, 0, 0, 0), 0.0);
        // The channel max clips under S=1.125: recovered = 5·127/144.
        assert!((rec.get4(0, 1, 0, 0) - 5.0 * 127.0 / 144.0).abs() < 0.05);
    }

    #[test]
    fn per_channel_scaling_uses_full_range() {
        // One channel tiny, one huge: both should use most of the range.
        let mut x = Tensor::zeros(Shape::nchw(1, 2, 2, 2));
        for i in 0..4 {
            x.set4(0, 0, i / 2, i % 2, 0.001 * (i as f32 + 1.0));
            x.set4(0, 1, i / 2, i % 2, 1000.0 * (i as f32 + 1.0));
        }
        let enc = compress(&x, SfprParams::with_scale(1.0));
        let vmax = |ch: usize| {
            (0..4)
                .map(|i| enc.values()[ch * 4 + i].unsigned_abs())
                .max()
                .unwrap()
        };
        assert!(vmax(0) >= 120, "small channel underutilized: {}", vmax(0));
        assert!(vmax(1) >= 120, "large channel underutilized: {}", vmax(1));
    }

    #[test]
    fn reduced_bits_are_coarser() {
        let x = ramp_tensor();
        let e2 = compress(&x, SfprParams::with_bits(2));
        let e4 = compress(&x, SfprParams::with_bits(4));
        let e8 = compress(&x, SfprParams::with_bits(8));
        let err2 = x.mse(&decompress(&e2));
        let err4 = x.mse(&decompress(&e4));
        let err8 = x.mse(&decompress(&e8));
        assert!(err2 > err4 && err4 > err8, "{err2} {err4} {err8}");
        assert!(e2.values().iter().all(|&v| (-2..=1).contains(&v)));
    }

    #[test]
    fn compressed_bytes_accounting() {
        let x = ramp_tensor();
        let enc = compress(&x, SfprParams::paper_default());
        assert_eq!(enc.compressed_bytes(), x.len() + 3 * 4);
    }

    #[test]
    fn integer_utilization_higher_with_scaling() {
        // A channel with range 0.16 (the paper's observed minimum) uses
        // ~66% of levels under SFPR; without scale normalization (simulate
        // by S tuned to a global max of 1.0) it would use ~15%.
        let shape = Shape::nchw(1, 1, 16, 16);
        let data: Vec<f32> = (0..256).map(|i| (i as f32 / 255.0) * 0.16).collect();
        let x = Tensor::from_vec(shape, data);
        let enc = compress(&x, SfprParams::paper_default());
        // All-positive data can reach at most half the signed levels; the
        // point is that this beats DPR's ~15% utilization by a wide margin.
        assert!(
            enc.integer_utilization() > 0.4,
            "util={}",
            enc.integer_utilization()
        );
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn bad_bits_rejected() {
        let _ = SfprParams::with_bits(1);
    }
}

//! Framed wire format for compressed activations (the offload DMA path).
//!
//! JPEG-ACT ships compressed activations across a PCIe DMA link
//! (Sec. III-G); once bytes cross that boundary, the decoder must assume
//! the wire can lie — truncated packets, flipped bits, payloads routed to
//! the wrong codec.  This module serializes every [`Payload`] variant into
//! a self-describing framed container and decodes **any** byte sequence
//! back into a `Result`: every length read is bounds-checked, every enum
//! tag is validated, and every structural invariant the downstream
//! decompressors rely on is re-established before a payload is rebuilt,
//! so there are zero panic paths for arbitrary input.
//!
//! ## Frame layout (all integers little-endian)
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0 | 4 | magic `b"JACT"` |
//! | 4 | 2 | format version ([`VERSION`]) |
//! | 6 | 1 | codec tag (0=Raw .. 7=Brc) |
//! | 7 | 1 | reserved, must be 0 |
//! | 8 | 8 | body length `L` |
//! | 16 | `L` | body |
//! | 16+`L` | 4 | CRC32 (IEEE, poly `0xEDB88320`) over bytes `0..16+L` |
//!
//! The body starts with a common prelude — codec name (u32-length UTF-8
//! string), uncompressed byte count, compressed byte count — followed by
//! the tag-specific payload encoding.  A frame must be *exactly*
//! `16 + L + 4` bytes: trailing garbage is a [`CodecError::BadFrame`],
//! a short buffer is a [`CodecError::Truncated`], and a checksum
//! disagreement is a [`CodecError::ChecksumMismatch`].
//!
//! Version policy: [`VERSION`] bumps on any layout change; decoders reject
//! every version other than their own (offloaded activations never
//! outlive the process that wrote them, so no cross-version decode is
//! needed).

use crate::brc::BrcMask;
use crate::csr::Csr;
use crate::csr::MAX_ROW;
use crate::dqt::Dqt;
use crate::error::CodecError;
use crate::pipeline::{CodedBlocks, CompressedActivation, JpegPayload, Payload, QuantKind2};
use crate::sfpr::{SfprEncoded, SfprParams};
use crate::zvc::Zvc;
use jact_tensor::{Shape, Tensor};

/// Frame magic: the first four bytes of every serialized activation.
pub const MAGIC: [u8; 4] = *b"JACT";

/// Wire format version; bumped on any layout change.
pub const VERSION: u16 = 1;

/// Header length in bytes (magic + version + tag + reserved + body length).
pub const HEADER_BYTES: usize = 16;

/// Upper bound on the element count of any shape accepted off the wire —
/// a denial-of-service guard so a mutated dimension field cannot demand
/// an absurd allocation (2^32 elements = 16 GiB of f32).
pub const MAX_WIRE_ELEMS: usize = 1 << 32;

/// Maximum tensor rank accepted off the wire.
pub const MAX_WIRE_RANK: usize = 8;

const TAG_RAW: u8 = 0;
const TAG_ZVC_F32: u8 = 1;
const TAG_DPR: u8 = 2;
const TAG_GIST_CSR: u8 = 3;
const TAG_SFPR: u8 = 4;
const TAG_SFPR_ZVC: u8 = 5;
const TAG_JPEG: u8 = 6;
const TAG_BRC: u8 = 7;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — hand-rolled so
// the workspace stays hermetic.
// ---------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE) of a byte buffer — the checksum used by the frame trailer.
/// Public so corruption tests can re-seal mutated frames and exercise the
/// deep field validation behind the checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Little-endian writer helpers.
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_shape(out: &mut Vec<u8>, shape: &Shape) {
    out.push(shape.rank() as u8);
    for &d in shape.dims() {
        put_u64(out, d as u64);
    }
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    put_shape(out, t.shape());
    for &v in t.as_slice() {
        put_f32(out, v);
    }
}

fn put_zvc(out: &mut Vec<u8>, z: &Zvc) {
    put_u64(out, z.words() as u64);
    out.push(z.word_bytes() as u8);
    out.extend_from_slice(z.mask_bytes());
    out.extend_from_slice(z.value_bytes());
}

fn put_sfpr(out: &mut Vec<u8>, enc: &SfprEncoded) {
    put_f32(out, enc.params().s);
    put_u32(out, enc.params().bits);
    put_shape(out, enc.shape());
    for &s in enc.scales() {
        put_f32(out, s);
    }
    if enc.values().is_empty() {
        out.push(0);
    } else {
        out.push(1);
        out.extend(enc.values().iter().map(|&v| v as u8));
    }
}

fn put_dqt(out: &mut Vec<u8>, dqt: &Dqt) {
    put_str(out, dqt.name());
    for &e in dqt.entries() {
        put_u16(out, e);
    }
}

// ---------------------------------------------------------------------
// Bounds-checked little-endian reader.
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// A structural-validation error at the current cursor.
    fn bad(&self, what: &'static str) -> CodecError {
        CodecError::BadFrame {
            offset: self.pos,
            what,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let available = self.buf.len().saturating_sub(self.pos);
        if n > available {
            return Err(CodecError::Truncated {
                offset: self.pos,
                needed: n,
                available,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, CodecError> {
        let s = self.take(4)?;
        Ok(f32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a u64 length field and narrows it to `usize`.
    fn len_u64(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::BadFrame {
            offset: self.pos - 8,
            what: "length field exceeds platform word size",
        })
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let start = self.pos;
        let len = self.u32()? as usize;
        let bytes = self.take(len)?.to_vec();
        String::from_utf8(bytes).map_err(|_| CodecError::BadFrame {
            offset: start,
            what: "string is not valid UTF-8",
        })
    }

    fn shape(&mut self) -> Result<Shape, CodecError> {
        let rank = self.u8()? as usize;
        if rank == 0 {
            return Err(self.bad("shape rank must be positive"));
        }
        if rank > MAX_WIRE_RANK {
            return Err(self.bad("shape rank too large"));
        }
        let mut dims = Vec::with_capacity(rank);
        let mut elems = 1usize;
        for _ in 0..rank {
            let d = self.len_u64()?;
            if d == 0 {
                return Err(self.bad("shape dimension must be positive"));
            }
            elems = elems
                .checked_mul(d)
                .filter(|&e| e <= MAX_WIRE_ELEMS)
                .ok_or_else(|| self.bad("shape element count too large"))?;
            dims.push(d);
        }
        Ok(Shape::new(&dims))
    }

    fn tensor(&mut self) -> Result<Tensor, CodecError> {
        let shape = self.shape()?;
        let n = shape.len();
        let bytes = self.take(n * 4)?;
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(Tensor::from_vec(shape, data))
    }

    fn zvc(&mut self) -> Result<Zvc, CodecError> {
        let words = self.len_u64()?;
        let word_bytes = self.u8()? as usize;
        if word_bytes == 0 {
            return Err(self.bad("ZVC word width must be positive"));
        }
        let mask = self.take(words.div_ceil(8))?.to_vec();
        let popcount: usize = mask.iter().map(|b| b.count_ones() as usize).sum();
        let value_len = popcount
            .checked_mul(word_bytes)
            .ok_or_else(|| self.bad("ZVC value size overflow"))?;
        let values = self.take(value_len)?.to_vec();
        Zvc::from_parts(mask, values, words, word_bytes)
    }

    /// Reads an SFPR block.  When `require_values`, the value plane must
    /// be present (the standalone SFPR payload decompresses it directly);
    /// metadata-only forms (JPEG, SFPR+ZVC) may carry either.
    fn sfpr(&mut self, require_values: bool) -> Result<SfprEncoded, CodecError> {
        let s = self.f32()?;
        let bits = self.u32()?;
        let shape = self.shape()?;
        if shape.rank() != 4 {
            return Err(self.bad("SFPR shape must be rank 4"));
        }
        let scale_bytes = self.take(shape.c() * 4)?;
        let scales: Vec<f32> = scale_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let values = match self.u8()? {
            0 if require_values => {
                return Err(self.bad("SFPR payload requires a value plane"));
            }
            0 => Vec::new(),
            1 => self.take(shape.len())?.iter().map(|&b| b as i8).collect(),
            _ => return Err(self.bad("SFPR value-plane flag must be 0 or 1")),
        };
        SfprEncoded::from_parts(values, scales, shape, SfprParams { s, bits })
    }

    fn dqt(&mut self) -> Result<Dqt, CodecError> {
        let name = self.string()?;
        let mut entries = [0u16; 64];
        for e in entries.iter_mut() {
            let v = self.u16()?;
            if !(1..=255).contains(&v) {
                return Err(CodecError::BadFrame {
                    offset: self.pos - 2,
                    what: "DQT entry out of 1..=255",
                });
            }
            *e = v;
        }
        // Every entry was just range-checked, so this cannot fail; map the
        // typed rejection into this decoder's frame error anyway rather
        // than unwrapping in the panic-free wire path.
        Dqt::from_entries(name, entries).map_err(|_| CodecError::BadFrame {
            offset: self.pos,
            what: "DQT entries out of 1..=255",
        })
    }
}

/// Number of 8×8 blocks the JPEG pipelines produce for `shape`, computed
/// with overflow-checked arithmetic (mirrors `BlockLayout` with the
/// paper's `NCH,W` padding).
fn checked_num_blocks(shape: &Shape) -> Option<usize> {
    let rows = shape.n().checked_mul(shape.c())?.checked_mul(shape.h())?;
    let block_rows = rows.checked_add(7)? / 8;
    let block_cols = shape.w().checked_add(7)? / 8;
    block_rows.checked_mul(block_cols)
}

// ---------------------------------------------------------------------
// Serialize.
// ---------------------------------------------------------------------

/// Serializes a compressed activation into a framed byte container
/// suitable for the offload DMA path.  Always succeeds — every payload a
/// codec can produce has a wire encoding.
pub fn serialize(c: &CompressedActivation) -> Vec<u8> {
    let mut body = Vec::new();
    put_str(&mut body, c.codec_name());
    put_u64(&mut body, c.uncompressed_bytes() as u64);
    put_u64(&mut body, c.compressed_bytes() as u64);

    let tag = match c.payload() {
        Payload::Raw(t) => {
            put_tensor(&mut body, t);
            TAG_RAW
        }
        Payload::ZvcF32 { z, shape } => {
            put_shape(&mut body, shape);
            put_zvc(&mut body, z);
            TAG_ZVC_F32
        }
        Payload::Dpr { rounded } => {
            put_tensor(&mut body, rounded);
            TAG_DPR
        }
        Payload::GistCsr { csr, shape } => {
            put_shape(&mut body, shape);
            put_u16(&mut body, csr.row_len() as u16);
            for &p in csr.row_ptr() {
                put_u32(&mut body, p);
            }
            body.extend_from_slice(csr.cols());
            body.extend(csr.vals().iter().map(|&v| v as u8));
            TAG_GIST_CSR
        }
        Payload::Sfpr(enc) => {
            put_sfpr(&mut body, enc);
            TAG_SFPR
        }
        Payload::SfprZvc { meta, z } => {
            put_sfpr(&mut body, meta);
            put_zvc(&mut body, z);
            TAG_SFPR_ZVC
        }
        Payload::Jpeg(p) => {
            put_sfpr(&mut body, &p.meta);
            body.push(match p.quant {
                QuantKind2::Div => 0,
                QuantKind2::Shift => 1,
            });
            put_dqt(&mut body, &p.dqt);
            match &p.coded {
                CodedBlocks::Rle { bytes, count } => {
                    body.push(0);
                    put_u64(&mut body, *count as u64);
                    put_u64(&mut body, bytes.len() as u64);
                    body.extend_from_slice(bytes);
                }
                CodedBlocks::Zvc(z) => {
                    body.push(1);
                    put_zvc(&mut body, z);
                }
            }
            TAG_JPEG
        }
        Payload::Brc(m) => {
            put_shape(&mut body, m.shape());
            body.extend_from_slice(m.bits());
            TAG_BRC
        }
    };

    let mut out = Vec::with_capacity(HEADER_BYTES + body.len() + 4);
    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, VERSION);
    out.push(tag);
    out.push(0); // reserved
    put_u64(&mut out, body.len() as u64);
    out.extend_from_slice(&body);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

// ---------------------------------------------------------------------
// Deserialize.
// ---------------------------------------------------------------------

/// Decodes a framed byte container back into a compressed activation.
///
/// Total function over arbitrary input: any malformation — short buffer,
/// bad magic, unknown tag, checksum mismatch, inconsistent payload
/// structure — is a typed [`CodecError`]; there are no panic paths.
pub fn deserialize(bytes: &[u8]) -> Result<CompressedActivation, CodecError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(CodecError::BadFrame {
            offset: 0,
            what: "bad magic",
        });
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(CodecError::BadFrame {
            offset: 4,
            what: "unsupported wire version",
        });
    }
    let tag = r.u8()?;
    if tag > TAG_BRC {
        return Err(CodecError::BadFrame {
            offset: 6,
            what: "unknown codec tag",
        });
    }
    if r.u8()? != 0 {
        return Err(CodecError::BadFrame {
            offset: 7,
            what: "reserved byte must be zero",
        });
    }
    let body_len = r.len_u64()?;
    let total = HEADER_BYTES
        .checked_add(body_len)
        .and_then(|t| t.checked_add(4))
        .ok_or(CodecError::BadFrame {
            offset: 8,
            what: "body length overflows frame size",
        })?;
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            offset: bytes.len(),
            needed: total - bytes.len(),
            available: 0,
        });
    }
    if bytes.len() > total {
        return Err(CodecError::BadFrame {
            offset: total,
            what: "trailing bytes after frame",
        });
    }
    let announced = u32::from_le_bytes([
        bytes[total - 4],
        bytes[total - 3],
        bytes[total - 2],
        bytes[total - 1],
    ]);
    let actual = crc32(&bytes[..total - 4]);
    if announced != actual {
        return Err(CodecError::ChecksumMismatch {
            expected: announced,
            actual,
        });
    }

    // Body prelude.
    let codec_name = r.string()?;
    let uncompressed_bytes = r.len_u64()?;
    let compressed_bytes = r.len_u64()?;

    let payload = match tag {
        TAG_RAW => Payload::Raw(r.tensor()?),
        TAG_ZVC_F32 => {
            let shape = r.shape()?;
            let z = r.zvc()?;
            if z.word_bytes() != 4 {
                return Err(r.bad("ZVC-f32 payload requires 4-byte words"));
            }
            if z.words() != shape.len() {
                return Err(r.bad("ZVC word count disagrees with shape"));
            }
            Payload::ZvcF32 { z, shape }
        }
        TAG_DPR => Payload::Dpr {
            rounded: r.tensor()?,
        },
        TAG_GIST_CSR => {
            let shape = r.shape()?;
            let len = shape.len();
            let row_len = r.u16()? as usize;
            if !(1..=MAX_ROW).contains(&row_len) {
                return Err(r.bad("CSR row length out of 1..=256"));
            }
            let rows = len.div_ceil(row_len);
            let ptr_bytes = rows
                .checked_add(1)
                .and_then(|n| n.checked_mul(4))
                .ok_or_else(|| r.bad("CSR row pointer count overflow"))?;
            let row_ptr: Vec<u32> = r
                .take(ptr_bytes)?
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            let nnz = row_ptr.last().map(|&p| p as usize).unwrap_or(0);
            let cols = r.take(nnz)?.to_vec();
            let vals: Vec<i8> = r.take(nnz)?.iter().map(|&b| b as i8).collect();
            let csr = Csr::from_parts(row_ptr, cols, vals, len, row_len)?;
            Payload::GistCsr { csr, shape }
        }
        TAG_SFPR => Payload::Sfpr(r.sfpr(true)?),
        TAG_SFPR_ZVC => {
            let meta = r.sfpr(false)?;
            let z = r.zvc()?;
            if z.word_bytes() != 1 {
                return Err(r.bad("SFPR+ZVC payload requires 1-byte words"));
            }
            if z.words() != meta.shape().len() {
                return Err(r.bad("ZVC word count disagrees with SFPR shape"));
            }
            Payload::SfprZvc { meta, z }
        }
        TAG_JPEG => {
            let meta = r.sfpr(false)?;
            let quant = match r.u8()? {
                0 => QuantKind2::Div,
                1 => QuantKind2::Shift,
                _ => return Err(r.bad("unknown quantizer tag")),
            };
            let dqt = r.dqt()?;
            let num_blocks = checked_num_blocks(meta.shape())
                .ok_or_else(|| r.bad("block count overflow"))?;
            let coded = match r.u8()? {
                0 => {
                    let count = r.len_u64()?;
                    let byte_len = r.len_u64()?;
                    let bytes = r.take(byte_len)?.to_vec();
                    if count != num_blocks {
                        return Err(r.bad("RLE block count disagrees with shape"));
                    }
                    // Every coded block consumes at least one bit, so a
                    // plausible count is bounded by the stream length —
                    // this caps the decoder's up-front allocation.
                    if count > bytes.len().saturating_mul(8) {
                        return Err(r.bad("RLE block count exceeds stream capacity"));
                    }
                    CodedBlocks::Rle { bytes, count }
                }
                1 => {
                    let z = r.zvc()?;
                    if z.word_bytes() != 1 {
                        return Err(r.bad("JPEG ZVC payload requires 1-byte words"));
                    }
                    if Some(z.words()) != num_blocks.checked_mul(64) {
                        return Err(r.bad("ZVC word count disagrees with block count"));
                    }
                    CodedBlocks::Zvc(z)
                }
                _ => return Err(r.bad("unknown coded-blocks tag")),
            };
            Payload::Jpeg(JpegPayload {
                meta,
                coded,
                quant,
                dqt,
            })
        }
        TAG_BRC => {
            let shape = r.shape()?;
            let bits = r.take(shape.len().div_ceil(8))?.to_vec();
            Payload::Brc(BrcMask::from_parts(bits, shape)?)
        }
        _ => {
            // Tag range was validated above.
            return Err(r.bad("unknown codec tag"));
        }
    };

    if r.pos != HEADER_BYTES + body_len {
        return Err(CodecError::BadFrame {
            offset: r.pos,
            what: "body has trailing bytes",
        });
    }

    Ok(CompressedActivation::from_wire_parts(
        payload,
        uncompressed_bytes,
        compressed_bytes,
        codec_name,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpr::DprWidth;
    use crate::pipeline::{
        BrcCodec, Codec, DprCodec, GistCsrCodec, JpegActCodec, JpegBaseCodec, RawCodec, SfprCodec,
        SfprZvcCodec, ZvcF32Codec,
    };

    fn smooth_tensor() -> Tensor {
        let shape = Shape::nchw(1, 2, 8, 16);
        let data = (0..shape.len())
            .map(|i| {
                if i % 4 == 0 {
                    0.0
                } else {
                    ((i % 16) as f32 * 0.3).sin() * 1.5
                }
            })
            .collect();
        Tensor::from_vec(shape, data)
    }

    fn all_codecs() -> Vec<Box<dyn Codec>> {
        vec![
            Box::new(RawCodec),
            Box::new(ZvcF32Codec),
            Box::new(DprCodec::new(DprWidth::F16)),
            Box::new(GistCsrCodec),
            Box::new(SfprCodec::new()),
            Box::new(SfprZvcCodec::new()),
            Box::new(JpegBaseCodec::new(Dqt::opt_l())),
            Box::new(JpegActCodec::new(Dqt::opt_h())),
            Box::new(BrcCodec),
        ]
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_all_codecs_bit_exact() {
        let x = smooth_tensor();
        for codec in all_codecs() {
            let c = codec.compress(&x);
            let wire = serialize(&c);
            let back = deserialize(&wire).unwrap_or_else(|e| {
                panic!("{}: deserialize failed: {e}", codec.name())
            });
            // Frame re-serialization is byte-identical...
            assert_eq!(serialize(&back), wire, "{}", codec.name());
            // ...and accounting plus decompression agree exactly.
            assert_eq!(back.codec_name(), c.codec_name());
            assert_eq!(back.compressed_bytes(), c.compressed_bytes());
            assert_eq!(back.uncompressed_bytes(), c.uncompressed_bytes());
            let a = codec.decompress(&c).expect("original decompresses");
            let b = codec.decompress(&back).expect("wire copy decompresses");
            assert_eq!(a.as_slice(), b.as_slice(), "{}", codec.name());
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_typed_errors() {
        assert!(matches!(
            deserialize(&[]),
            Err(CodecError::Truncated { .. })
        ));
        assert!(matches!(
            deserialize(b"JA"),
            Err(CodecError::Truncated { .. })
        ));
        assert!(matches!(
            deserialize(b"NOPE00000000000000000000"),
            Err(CodecError::BadFrame { offset: 0, .. })
        ));
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let wire = serialize(&SfprCodec::new().compress(&smooth_tensor()));
        for cut in 0..wire.len() {
            let err = deserialize(&wire[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. })
                    || matches!(err, CodecError::ChecksumMismatch { .. })
                    || matches!(err, CodecError::BadFrame { .. }),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut wire = serialize(&RawCodec.compress(&smooth_tensor()));
        wire.push(0);
        assert!(matches!(
            deserialize(&wire),
            Err(CodecError::BadFrame {
                what: "trailing bytes after frame",
                ..
            })
        ));
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let wire = serialize(&JpegActCodec::new(Dqt::opt_h()).compress(&smooth_tensor()));
        // Flip one bit in the body: the checksum catches it.
        let mut corrupt = wire.clone();
        corrupt[HEADER_BYTES + 3] ^= 0x10;
        assert!(matches!(
            deserialize(&corrupt),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn resealed_bad_tag_is_still_rejected() {
        // Recompute the CRC after mutating the tag, so the deep field
        // validation (not just the checksum) must reject the frame.
        let mut wire = serialize(&SfprCodec::new().compress(&smooth_tensor()));
        wire[6] = 99;
        let n = wire.len();
        let crc = crc32(&wire[..n - 4]);
        wire[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            deserialize(&wire),
            Err(CodecError::BadFrame {
                offset: 6,
                what: "unknown codec tag",
            })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut wire = serialize(&RawCodec.compress(&smooth_tensor()));
        wire[4] = VERSION as u8 + 1;
        let n = wire.len();
        let crc = crc32(&wire[..n - 4]);
        wire[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            deserialize(&wire),
            Err(CodecError::BadFrame {
                offset: 4,
                what: "unsupported wire version",
            })
        ));
    }

    #[test]
    fn checksum_mismatch_reports_both_values() {
        let mut wire = serialize(&RawCodec.compress(&smooth_tensor()));
        let n = wire.len();
        wire[n - 1] ^= 0xFF;
        match deserialize(&wire) {
            Err(CodecError::ChecksumMismatch { expected, actual }) => {
                assert_ne!(expected, actual);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }
}

//! GIST-style sparse storage: Compressed Sparse Row over 8-bit values.
//!
//! GIST's "Sparse Storage Dense Compute" (Jain et al., ISCA 2018;
//! Sec. II-B2, VI-B) first casts activations to 8-bit (DPR), then stores
//! only the non-zero values together with an 8-bit column index each.
//! With the optimizations of Jain et al. this costs 16 bits per non-zero,
//! so it only wins over dense 8-bit storage when sparsity exceeds 50 % —
//! exactly the break-even the paper observes failing for dropout-free
//! ResNets (Table I).
//!
//! Rows are segments of up to 256 elements so the column index fits in a
//! byte; a `u32` row-pointer per segment completes the layout.

use crate::error::CodecError;

/// Maximum row segment length with an 8-bit column index.
pub const MAX_ROW: usize = 256;

/// A CSR-compressed buffer of 8-bit values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// Row pointer per segment (start offset into `cols`/`vals`).
    row_ptr: Vec<u32>,
    /// 8-bit column index of each non-zero within its segment.
    cols: Vec<u8>,
    /// The non-zero values.
    vals: Vec<i8>,
    /// Original element count.
    len: usize,
    /// Segment length used at compression time.
    row_len: usize,
}

impl Csr {
    /// Compresses `data` using segments of `row_len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `row_len` is 0 or exceeds [`MAX_ROW`].
    pub fn compress(data: &[i8], row_len: usize) -> Self {
        assert!(
            (1..=MAX_ROW).contains(&row_len),
            "row_len must be in 1..={MAX_ROW}"
        );
        let rows = data.len().div_ceil(row_len);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            let start = r * row_len;
            let end = (start + row_len).min(data.len());
            for (c, &v) in data[start..end].iter().enumerate() {
                if v != 0 {
                    cols.push(c as u8);
                    vals.push(v);
                }
            }
            row_ptr.push(vals.len() as u32);
        }
        Csr {
            row_ptr,
            cols,
            vals,
            len: data.len(),
            row_len,
        }
    }

    /// Compresses with the default 256-element segments.
    pub fn compress_default(data: &[i8]) -> Self {
        Csr::compress(data, MAX_ROW)
    }

    /// Rebuilds a CSR buffer from wire-decoded parts, validating every
    /// invariant [`Csr::decompress`] relies on: row pointers are monotone,
    /// start at 0, end at the non-zero count, and every column index stays
    /// inside its (possibly partial, final) row segment.
    pub fn from_parts(
        row_ptr: Vec<u32>,
        cols: Vec<u8>,
        vals: Vec<i8>,
        len: usize,
        row_len: usize,
    ) -> Result<Self, CodecError> {
        if !(1..=MAX_ROW).contains(&row_len) {
            return Err(CodecError::Corrupt("CSR row length out of 1..=256"));
        }
        let rows = len.div_ceil(row_len);
        if row_ptr.len() != rows + 1 {
            return Err(CodecError::Corrupt("CSR row pointer count mismatch"));
        }
        if row_ptr[0] != 0 {
            return Err(CodecError::Corrupt("CSR row pointers must start at 0"));
        }
        if cols.len() != vals.len() {
            return Err(CodecError::Corrupt(
                "CSR column and value counts disagree",
            ));
        }
        if row_ptr[rows] as usize != vals.len() {
            return Err(CodecError::Corrupt(
                "CSR row pointers must end at the non-zero count",
            ));
        }
        for r in 0..rows {
            let (a, b) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
            if a > b {
                return Err(CodecError::Corrupt("CSR row pointers not monotone"));
            }
            // An intermediate pointer past the buffer would only fail the
            // monotone check one pair later — after slicing with it here.
            if b > vals.len() {
                return Err(CodecError::Corrupt("CSR row pointer out of bounds"));
            }
            let base = r * row_len;
            let limit = row_len.min(len - base);
            for &c in &cols[a..b] {
                if c as usize >= limit {
                    return Err(CodecError::Corrupt(
                        "CSR column index out of row bounds",
                    ));
                }
            }
        }
        Ok(Csr {
            row_ptr,
            cols,
            vals,
            len,
            row_len,
        })
    }

    /// Row pointers (one start offset per segment, plus the final count).
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Column index of each non-zero within its segment.
    pub fn cols(&self) -> &[u8] {
        &self.cols
    }

    /// The non-zero values.
    pub fn vals(&self) -> &[i8] {
        &self.vals
    }

    /// Segment length used at compression time.
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// Decompresses back to the dense buffer.
    pub fn decompress(&self) -> Vec<i8> {
        let mut out = vec![0i8; self.len];
        for r in 0..self.row_ptr.len() - 1 {
            let (a, b) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let base = r * self.row_len;
            for i in a..b {
                out[base + self.cols[i] as usize] = self.vals[i];
            }
        }
        out
    }

    /// Number of non-zero values stored.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Compressed size: 16 bits per non-zero plus the row pointers —
    /// the storage model of GIST's optimized CSR.
    pub fn compressed_bytes(&self) -> usize {
        self.vals.len() + self.cols.len() + self.row_ptr.len() * 4
    }

    /// Dense 8-bit size of the original buffer.
    pub fn dense_bytes(&self) -> usize {
        self.len
    }

    /// Compression ratio relative to dense 8-bit storage (can be < 1 when
    /// sparsity is below ~50 %, reproducing the paper's observation).
    pub fn ratio_vs_dense8(&self) -> f64 {
        self.dense_bytes() as f64 / self.compressed_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sparse() {
        let mut data = vec![0i8; 1000];
        data[3] = 7;
        data[255] = -2;
        data[256] = 1;
        data[999] = 127;
        let c = Csr::compress_default(&data);
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.decompress(), data);
    }

    #[test]
    fn roundtrip_dense() {
        let data: Vec<i8> = (0..512).map(|i| ((i % 255) as i8).wrapping_sub(100)).collect();
        let c = Csr::compress_default(&data);
        assert_eq!(c.decompress(), data);
    }

    #[test]
    fn roundtrip_all_zero() {
        let data = vec![0i8; 300];
        let c = Csr::compress_default(&data);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.decompress(), data);
    }

    #[test]
    fn break_even_at_half_sparsity() {
        // 50% sparsity: 16 bits/nnz == 8 bits/element -> ratio ~1 (minus
        // row pointer overhead).
        let mut data = vec![0i8; 4096];
        for i in (0..4096).step_by(2) {
            data[i] = 1;
        }
        let c = Csr::compress_default(&data);
        let r = c.ratio_vs_dense8();
        assert!(r < 1.05, "ratio={r}");
        // 90% sparsity clearly wins.
        let mut sparse = vec![0i8; 4096];
        for i in (0..4096).step_by(10) {
            sparse[i] = 1;
        }
        let r = Csr::compress_default(&sparse).ratio_vs_dense8();
        assert!(r > 3.0, "ratio={r}");
    }

    #[test]
    fn dense_input_grows() {
        // 0% sparsity: CSR doubles the storage (value + index).
        let data = vec![1i8; 4096];
        let r = Csr::compress_default(&data).ratio_vs_dense8();
        assert!(r < 0.55, "ratio={r}");
    }

    #[test]
    fn short_row_segments() {
        let data: Vec<i8> = vec![0, 1, 0, 2, 0, 0, 3];
        let c = Csr::compress(&data, 4);
        assert_eq!(c.decompress(), data);
    }

    #[test]
    fn non_multiple_length() {
        let mut data = vec![0i8; 300];
        data[299] = -5;
        let c = Csr::compress(&data, 256);
        assert_eq!(c.decompress(), data);
    }

    #[test]
    #[should_panic(expected = "row_len")]
    fn oversized_row_rejected() {
        let _ = Csr::compress(&[1i8], 257);
    }

    #[test]
    fn from_parts_rejects_out_of_bounds_intermediate_pointer() {
        // Three segments of 4 over 10 elements, 2 non-zeros; the middle
        // pointer shoots past the buffer while the final one is correct.
        let r = Csr::from_parts(vec![0, 1_895_825_888, 2, 2], vec![0, 1], vec![1, 2], 10, 4);
        assert_eq!(
            r.unwrap_err(),
            CodecError::Corrupt("CSR row pointer out of bounds")
        );
    }
}

//! Composed compression pipelines.
//!
//! Each codec pairs a `compress` and `decompress` implementing one of the
//! paper's schemes end-to-end on an NCHW activation tensor:
//!
//! | Codec | Scheme | Paper |
//! |---|---|---|
//! | [`RawCodec`] | no compression (vDNN offload) | Rhu et al. 2016 |
//! | [`ZvcF32Codec`] | ZVC over f32 words (cDMA+) | Rhu et al. 2018 |
//! | [`DprCodec`] | f16/f8 precision cast (GIST DPR) | Jain et al. 2018 |
//! | [`GistCsrCodec`] | f8 DPR + CSR sparse storage | Jain et al. 2018 |
//! | [`SfprCodec`] | scaled fix-point reduction | Sec. III-B |
//! | [`JpegCodec`] | SFPR + DCT + {DIV,SH} + {RLE,ZVC} | Secs. III-D..F |
//!
//! [`JpegBaseCodec`] (DIV+RLE) and [`JpegActCodec`] (SH+ZVC) are the two
//! named corners of the [`JpegCodec`] matrix evaluated in Table III.

use crate::block::BlockLayout;
use crate::brc::BrcMask;
use crate::csr::Csr;
use crate::dpr::{self, DprWidth};
use crate::dqt::Dqt;
use crate::error::CodecError;
use crate::quant::{QuantKind, QuantTables};
use crate::rle;
use crate::sfpr::{self, SfprEncoded, SfprParams};
use crate::tile::{self, Dequantize, ForwardDct, Gather, InverseDct, Quantize, Then};
use crate::zvc::Zvc;
use jact_obs as obs;
use jact_tensor::{Shape, Tensor};

/// Wraps one compression in the `codec.compress` span and records the
/// single-funnel byte counters (`codec.bytes_in` / `codec.bytes_out`)
/// the generative consistency test reconciles against
/// `CompressionStats`.  Zero-cost when no capture is open.  The
/// delegating named codecs (`JpegBaseCodec`, `JpegActCodec`) do *not*
/// call this — their inner [`JpegCodec`] records once on their behalf.
fn observed_compress(
    name: impl Fn() -> String,
    f: impl FnOnce() -> CompressedActivation,
) -> CompressedActivation {
    obs::span_with(
        "codec.compress",
        || vec![("codec".to_string(), obs::Value::Str(name()))],
        || {
            let c = f();
            if obs::is_active() {
                obs::count("codec.compressions", 1);
                obs::count("codec.bytes_in", c.uncompressed_bytes as u64);
                obs::count("codec.bytes_out", c.compressed_bytes as u64);
            }
            c
        },
    )
}

/// Decompression counterpart of [`observed_compress`].
fn observed_decompress(
    name: impl Fn() -> String,
    f: impl FnOnce() -> Result<Tensor, CodecError>,
) -> Result<Tensor, CodecError> {
    obs::span_with(
        "codec.decompress",
        || vec![("codec".to_string(), obs::Value::Str(name()))],
        || {
            let r = f();
            if obs::is_active() {
                obs::count("codec.decompressions", 1);
                if r.is_err() {
                    obs::count("codec.decompress_errors", 1);
                }
            }
            r
        },
    )
}

/// Records one stage's byte funnel (`stage.<name>.bytes_in/out`).
fn note_stage(stage: &str, bytes_in: usize, bytes_out: usize) {
    if obs::is_active() {
        obs::count(&format!("stage.{stage}.bytes_in"), bytes_in as u64);
        obs::count(&format!("stage.{stage}.bytes_out"), bytes_out as u64);
    }
}

/// Which lossless coder terminates a JPEG pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoderKind {
    /// Zigzag run-length + Huffman coding (JPEG standard back end).
    Rle,
    /// Zero-value compression (JPEG-ACT back end).
    Zvc,
}

impl std::fmt::Display for CoderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CoderKind::Rle => "RLE",
            CoderKind::Zvc => "ZVC",
        })
    }
}

/// The compressed form of one activation tensor, together with size
/// accounting.  Produced by a [`Codec`]; opaque to everything else.
#[derive(Debug, Clone)]
pub struct CompressedActivation {
    payload: Payload,
    uncompressed_bytes: usize,
    compressed_bytes: usize,
    codec_name: String,
}

#[derive(Debug, Clone)]
pub(crate) enum Payload {
    Raw(Tensor),
    ZvcF32 { z: Zvc, shape: Shape },
    Dpr { rounded: Tensor },
    GistCsr { csr: Csr, shape: Shape },
    Sfpr(SfprEncoded),
    SfprZvc { meta: SfprEncoded, z: Zvc },
    Jpeg(JpegPayload),
    Brc(BrcMask),
}

#[derive(Debug, Clone)]
pub(crate) struct JpegPayload {
    /// SFPR metadata (scales, shape, params) with an *empty* value plane;
    /// the values travel through the coded blocks instead.
    pub(crate) meta: SfprEncoded,
    pub(crate) coded: CodedBlocks,
    pub(crate) quant: QuantKind2,
    pub(crate) dqt: Dqt,
}

// Local serializable mirrors of the codec enums (kept crate-private so the
// public enums stay dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QuantKind2 {
    Div,
    Shift,
}

impl From<QuantKind> for QuantKind2 {
    fn from(k: QuantKind) -> Self {
        match k {
            QuantKind::Div => QuantKind2::Div,
            QuantKind::Shift => QuantKind2::Shift,
        }
    }
}

impl From<QuantKind2> for QuantKind {
    fn from(k: QuantKind2) -> Self {
        match k {
            QuantKind2::Div => QuantKind::Div,
            QuantKind2::Shift => QuantKind::Shift,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum CodedBlocks {
    Rle { bytes: Vec<u8>, count: usize },
    Zvc(Zvc),
}

impl CompressedActivation {
    /// Compressed size in bytes, including per-channel scale metadata.
    pub fn compressed_bytes(&self) -> usize {
        self.compressed_bytes
    }

    /// The payload, for wire serialization.
    pub(crate) fn payload(&self) -> &Payload {
        &self.payload
    }

    /// Rebuilds a compressed activation from wire-decoded parts.  The
    /// caller ([`crate::wire`]) is responsible for having validated every
    /// payload invariant first.
    pub(crate) fn from_wire_parts(
        payload: Payload,
        uncompressed_bytes: usize,
        compressed_bytes: usize,
        codec_name: String,
    ) -> Self {
        CompressedActivation {
            payload,
            uncompressed_bytes,
            compressed_bytes,
            codec_name,
        }
    }

    /// Original activation size in bytes (f32 elements).
    pub fn uncompressed_bytes(&self) -> usize {
        self.uncompressed_bytes
    }

    /// Compression ratio (uncompressed / compressed).  Degenerate sizes
    /// — an empty tensor or a zero-byte payload — report 1.0 so
    /// aggregates over many activations stay finite.
    pub fn ratio(&self) -> f64 {
        if self.uncompressed_bytes == 0 || self.compressed_bytes == 0 {
            return 1.0;
        }
        self.uncompressed_bytes as f64 / self.compressed_bytes as f64
    }

    /// Name of the codec that produced this payload.
    pub fn codec_name(&self) -> &str {
        &self.codec_name
    }
}

/// A compression scheme for activation tensors.
///
/// Implementations are value objects: configure once, apply to many
/// activations.  `decompress` must accept exactly the payloads produced by
/// the same codec's `compress`.
pub trait Codec: Send + Sync {
    /// Compresses an activation.
    fn compress(&self, x: &Tensor) -> CompressedActivation;

    /// Decompresses a payload produced by this codec.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::WrongPayload`] if `c` was produced by a
    /// different codec, and [`CodecError::Corrupt`] if the coded byte
    /// stream is malformed.
    fn decompress(&self, c: &CompressedActivation) -> Result<Tensor, CodecError>;

    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> String;

    /// `true` if decompression reproduces the input bit-exactly.
    fn is_lossless(&self) -> bool {
        false
    }
}

fn wrong_payload(expected: &'static str, c: &CompressedActivation) -> CodecError {
    CodecError::WrongPayload {
        expected,
        actual: c.codec_name().to_string(),
    }
}

// ---------------------------------------------------------------------
// vDNN: raw offload.
// ---------------------------------------------------------------------

/// No compression — the vDNN baseline (activations offloaded as-is).
#[derive(Debug, Clone, Copy, Default)]
pub struct RawCodec;

impl Codec for RawCodec {
    fn compress(&self, x: &Tensor) -> CompressedActivation {
        observed_compress(
            || self.name(),
            || {
                let bytes = x.len() * 4;
                CompressedActivation {
                    payload: Payload::Raw(x.clone()),
                    uncompressed_bytes: bytes,
                    compressed_bytes: bytes,
                    codec_name: self.name(),
                }
            },
        )
    }

    fn decompress(&self, c: &CompressedActivation) -> Result<Tensor, CodecError> {
        observed_decompress(
            || self.name(),
            || match &c.payload {
                Payload::Raw(t) => Ok(t.clone()),
                _ => Err(wrong_payload("raw", c)),
            },
        )
    }

    fn name(&self) -> String {
        "raw".into()
    }

    fn is_lossless(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// cDMA+: ZVC over f32 words.
// ---------------------------------------------------------------------

/// Zero-value compression of raw f32 activations — the cDMA+ baseline.
/// Lossless; effective only on sparse (ReLU/dropout) activations.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZvcF32Codec;

impl Codec for ZvcF32Codec {
    fn compress(&self, x: &Tensor) -> CompressedActivation {
        observed_compress(
            || self.name(),
            || {
                let z = obs::span("stage.zvc", || Zvc::compress_f32(x.as_slice()));
                let compressed = z.compressed_bytes();
                note_stage("zvc", x.len() * 4, compressed);
                CompressedActivation {
                    payload: Payload::ZvcF32 {
                        z,
                        shape: x.shape().clone(),
                    },
                    uncompressed_bytes: x.len() * 4,
                    compressed_bytes: compressed,
                    codec_name: self.name(),
                }
            },
        )
    }

    fn decompress(&self, c: &CompressedActivation) -> Result<Tensor, CodecError> {
        observed_decompress(
            || self.name(),
            || match &c.payload {
                Payload::ZvcF32 { z, shape } => {
                    Ok(Tensor::from_vec(shape.clone(), z.decompress_f32()?))
                }
                _ => Err(wrong_payload("zvc-f32", c)),
            },
        )
    }

    fn name(&self) -> String {
        "zvc-f32".into()
    }

    fn is_lossless(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// GIST DPR and DPR + CSR.
// ---------------------------------------------------------------------

/// GIST's Dynamic Precision Reduction: cast to f16 or f8.
#[derive(Debug, Clone, Copy)]
pub struct DprCodec {
    width: DprWidth,
}

impl DprCodec {
    /// Creates a DPR codec with the given float width.
    pub fn new(width: DprWidth) -> Self {
        DprCodec { width }
    }
}

impl Codec for DprCodec {
    fn compress(&self, x: &Tensor) -> CompressedActivation {
        observed_compress(
            || self.name(),
            || {
                let rounded = obs::span("stage.dpr", || dpr::dpr_round(x, self.width));
                note_stage("dpr", x.len() * 4, x.len() * self.width.bytes());
                CompressedActivation {
                    payload: Payload::Dpr { rounded },
                    uncompressed_bytes: x.len() * 4,
                    compressed_bytes: x.len() * self.width.bytes(),
                    codec_name: self.name(),
                }
            },
        )
    }

    fn decompress(&self, c: &CompressedActivation) -> Result<Tensor, CodecError> {
        observed_decompress(
            || self.name(),
            || match &c.payload {
                Payload::Dpr { rounded } => Ok(rounded.clone()),
                _ => Err(wrong_payload("dpr", c)),
            },
        )
    }

    fn name(&self) -> String {
        match self.width {
            DprWidth::F16 => "dpr-f16".into(),
            DprWidth::F8 => "dpr-f8".into(),
        }
    }
}

/// GIST's sparse path: 8-bit DPR cast followed by CSR storage
/// (value + column index per non-zero).
#[derive(Debug, Clone, Copy, Default)]
pub struct GistCsrCodec;

impl Codec for GistCsrCodec {
    fn compress(&self, x: &Tensor) -> CompressedActivation {
        observed_compress(
            || self.name(),
            || {
                let bits: Vec<i8> = obs::span("stage.dpr", || {
                    x.iter().map(|&v| dpr::f32_to_f8_bits(v) as i8).collect()
                });
                note_stage("dpr", x.len() * 4, bits.len());
                let csr = obs::span("stage.csr", || Csr::compress_default(&bits));
                let compressed = csr.compressed_bytes();
                note_stage("csr", bits.len(), compressed);
                CompressedActivation {
                    payload: Payload::GistCsr {
                        csr,
                        shape: x.shape().clone(),
                    },
                    uncompressed_bytes: x.len() * 4,
                    compressed_bytes: compressed,
                    codec_name: self.name(),
                }
            },
        )
    }

    fn decompress(&self, c: &CompressedActivation) -> Result<Tensor, CodecError> {
        observed_decompress(
            || self.name(),
            || match &c.payload {
                Payload::GistCsr { csr, shape } => {
                    let data = csr
                        .decompress()
                        .into_iter()
                        .map(|b| dpr::f8_bits_to_f32(b as u8))
                        .collect();
                    Ok(Tensor::from_vec(shape.clone(), data))
                }
                _ => Err(wrong_payload("gist-csr", c)),
            },
        )
    }

    fn name(&self) -> String {
        "gist-csr".into()
    }
}

// ---------------------------------------------------------------------
// SFPR.
// ---------------------------------------------------------------------

/// Standalone SFPR: 8-bit fix-point with per-channel scale normalization.
#[derive(Debug, Clone, Copy, Default)]
pub struct SfprCodec {
    params: SfprParams,
}

impl SfprCodec {
    /// SFPR with the paper's defaults (`S = 1.125`, 8 bits).
    pub fn new() -> Self {
        Self::default()
    }

    /// SFPR with explicit parameters.
    pub fn with_params(params: SfprParams) -> Self {
        SfprCodec { params }
    }
}

impl Codec for SfprCodec {
    fn compress(&self, x: &Tensor) -> CompressedActivation {
        observed_compress(
            || self.name(),
            || {
                let enc = sfpr::compress(x, self.params);
                let compressed = enc.compressed_bytes();
                CompressedActivation {
                    payload: Payload::Sfpr(enc),
                    uncompressed_bytes: x.len() * 4,
                    compressed_bytes: compressed,
                    codec_name: self.name(),
                }
            },
        )
    }

    fn decompress(&self, c: &CompressedActivation) -> Result<Tensor, CodecError> {
        observed_decompress(
            || self.name(),
            || match &c.payload {
                Payload::Sfpr(enc) => Ok(sfpr::decompress(enc)),
                _ => Err(wrong_payload("sfpr", c)),
            },
        )
    }

    fn name(&self) -> String {
        "sfpr".into()
    }
}

// ---------------------------------------------------------------------
// JPEG pipelines.
// ---------------------------------------------------------------------

/// The full transform pipeline: SFPR → 8×8 blocks → DCT → quantize → code.
///
/// The quantizer/coder pair selects the paper's variants:
/// `(Div, Rle)` = JPEG-BASE, `(Shift, Zvc)` = JPEG-ACT, plus the two mixed
/// corners evaluated in Table III.
#[derive(Debug, Clone)]
pub struct JpegCodec {
    dqt: Dqt,
    quant: QuantKind,
    coder: CoderKind,
    sfpr: SfprParams,
}

impl JpegCodec {
    /// Creates a pipeline with explicit quantizer and coder back ends.
    pub fn new(dqt: Dqt, quant: QuantKind, coder: CoderKind) -> Self {
        JpegCodec {
            dqt,
            quant,
            coder,
            sfpr: SfprParams::paper_default(),
        }
    }

    /// Overrides the SFPR front-end parameters (Fig. 10 sweeps `S`).
    pub fn with_sfpr(mut self, params: SfprParams) -> Self {
        self.sfpr = params;
        self
    }

    /// The DQT in use.
    pub fn dqt(&self) -> &Dqt {
        &self.dqt
    }

    /// Quantized DCT blocks of an activation — exposed for the entropy /
    /// rate-distortion metrics (Sec. IV) that need `q` before coding.
    pub fn quantized_blocks(&self, x: &Tensor) -> Vec<[i8; 64]> {
        let enc = sfpr::compress(x, self.sfpr);
        let layout = BlockLayout::new(x.shape());
        let tables = QuantTables::new(self.quant, &self.dqt);
        let stage = Self::encode_stage(&layout, enc.values(), &tables);
        tile::collect_tiles(&stage, layout.num_blocks())
    }

    /// The fused encode front end: gather → DCT → quantize, one tile at a
    /// time, with per-tensor precomputed quantizer tables.
    fn encode_stage<'a>(
        layout: &'a BlockLayout,
        values: &'a [i8],
        tables: &'a QuantTables,
    ) -> impl tile::TileStage<In = usize, Out = [i8; 64]> + 'a {
        Then(Gather { layout, values }, Then(ForwardDct, Quantize(tables)))
    }
}

impl Codec for JpegCodec {
    fn compress(&self, x: &Tensor) -> CompressedActivation {
        observed_compress(
            || self.name(),
            || {
                let enc = sfpr::compress(x, self.sfpr);
                let layout = BlockLayout::new(x.shape());
                let tables = QuantTables::new(self.quant, &self.dqt);
                let num_blocks = layout.num_blocks();
                // One streaming pass: each tile flows gather → DCT →
                // quantize → coder without a materialized block tensor.
                // The per-stage byte funnels are all arithmetic over the
                // layout, so fusion reports the exact totals the staged
                // pipeline did.
                let coded = {
                    let stage = Self::encode_stage(&layout, enc.values(), &tables);
                    obs::span("stage.fused", || match self.coder {
                        CoderKind::Rle => CodedBlocks::Rle {
                            bytes: tile::encode_rle(&stage, num_blocks),
                            count: num_blocks,
                        },
                        CoderKind::Zvc => CodedBlocks::Zvc(tile::encode_zvc(&stage, num_blocks)),
                    })
                };
                let coded_bytes = match &coded {
                    CodedBlocks::Rle { bytes, .. } => bytes.len(),
                    CodedBlocks::Zvc(z) => z.compressed_bytes(),
                };
                note_stage("block", enc.values().len(), num_blocks * 64);
                note_stage("transform", num_blocks * 64, num_blocks * 64);
                note_stage("code", num_blocks * 64, coded_bytes);
                let scales_bytes = enc.scales().len() * 4;

                // The value plane is reconstructed from the coded blocks;
                // drop it from the stored metadata to avoid double storage.
                let mut meta = enc;
                let _ = meta.take_values();

                CompressedActivation {
                    payload: Payload::Jpeg(JpegPayload {
                        meta,
                        coded,
                        quant: self.quant.into(),
                        dqt: self.dqt.clone(),
                    }),
                    uncompressed_bytes: x.len() * 4,
                    compressed_bytes: coded_bytes + scales_bytes,
                    codec_name: self.name(),
                }
            },
        )
    }

    fn decompress(&self, c: &CompressedActivation) -> Result<Tensor, CodecError> {
        observed_decompress(
            || self.name(),
            || {
                let p = match &c.payload {
                    Payload::Jpeg(p) => p,
                    _ => return Err(wrong_payload("jpeg", c)),
                };
                let layout = BlockLayout::new(p.meta.shape());
                let tables = QuantTables::new(p.quant.into(), &p.dqt);
                // Mirrored streaming pass: each coded tile flows decode →
                // dequantize → inverse DCT → scatter straight into the
                // unpadded value plane.
                let dec = Then(Dequantize(&tables), InverseDct);
                let values = obs::span("stage.unfused", || match &p.coded {
                    CodedBlocks::Rle { bytes, count } => {
                        if *count != layout.num_blocks() {
                            return Err(CodecError::Corrupt(
                                "RLE block count disagrees with shape",
                            ));
                        }
                        let quantized = rle::decode_blocks(bytes, *count).ok_or(
                            CodecError::Corrupt("RLE stream truncated or inconsistent"),
                        )?;
                        Ok(tile::untile_blocks(&layout, &quantized, &dec))
                    }
                    CodedBlocks::Zvc(z) => tile::decode_zvc(&layout, z, &dec),
                })?;
                Ok(sfpr::decompress_values(&values, &p.meta))
            },
        )
    }

    fn name(&self) -> String {
        format!("jpeg[{}+{}:{}]", self.quant, self.coder, self.dqt.name())
    }
}

/// JPEG-BASE: the standard JPEG back end (DIV quantization + RLE/Huffman)
/// behind the SFPR front end.
#[derive(Debug, Clone)]
pub struct JpegBaseCodec(JpegCodec);

impl JpegBaseCodec {
    /// Creates JPEG-BASE with the given (image or optimized) DQT.
    pub fn new(dqt: Dqt) -> Self {
        JpegBaseCodec(JpegCodec::new(dqt, QuantKind::Div, CoderKind::Rle))
    }

    /// The underlying configurable pipeline.
    pub fn inner(&self) -> &JpegCodec {
        &self.0
    }
}

impl Codec for JpegBaseCodec {
    fn compress(&self, x: &Tensor) -> CompressedActivation {
        self.0.compress(x)
    }
    fn decompress(&self, c: &CompressedActivation) -> Result<Tensor, CodecError> {
        self.0.decompress(c)
    }
    fn name(&self) -> String {
        format!("jpeg-base:{}", self.0.dqt.name())
    }
}

/// JPEG-ACT: the paper's hardware-optimized back end (SH shift
/// quantization + ZVC) behind the SFPR front end.
#[derive(Debug, Clone)]
pub struct JpegActCodec(JpegCodec);

impl JpegActCodec {
    /// Creates JPEG-ACT with the given (normally optimized) DQT.
    pub fn new(dqt: Dqt) -> Self {
        JpegActCodec(JpegCodec::new(dqt, QuantKind::Shift, CoderKind::Zvc))
    }

    /// The underlying configurable pipeline.
    pub fn inner(&self) -> &JpegCodec {
        &self.0
    }
}

impl Codec for JpegActCodec {
    fn compress(&self, x: &Tensor) -> CompressedActivation {
        self.0.compress(x)
    }
    fn decompress(&self, c: &CompressedActivation) -> Result<Tensor, CodecError> {
        self.0.decompress(c)
    }
    fn name(&self) -> String {
        format!("jpeg-act:{}", self.0.dqt.name())
    }
}

/// SFPR followed by ZVC over the quantized bytes — JPEG-ACT's treatment of
/// sparse ReLU/pool/dropout activations (Table II): the 4× fix-point
/// reduction composes with zero packing for a further ~2× on sparse data.
#[derive(Debug, Clone, Copy, Default)]
pub struct SfprZvcCodec {
    params: SfprParams,
}

impl SfprZvcCodec {
    /// Creates the codec with the paper's SFPR defaults.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Codec for SfprZvcCodec {
    fn compress(&self, x: &Tensor) -> CompressedActivation {
        observed_compress(
            || self.name(),
            || {
                let mut enc = sfpr::compress(x, self.params);
                let values = enc.take_values();
                let z = obs::span("stage.zvc", || Zvc::compress_i8(&values));
                note_stage("zvc", values.len(), z.compressed_bytes());
                let compressed = z.compressed_bytes() + enc.scales().len() * 4;
                CompressedActivation {
                    payload: Payload::SfprZvc { meta: enc, z },
                    uncompressed_bytes: x.len() * 4,
                    compressed_bytes: compressed,
                    codec_name: self.name(),
                }
            },
        )
    }

    fn decompress(&self, c: &CompressedActivation) -> Result<Tensor, CodecError> {
        observed_decompress(
            || self.name(),
            || match &c.payload {
                Payload::SfprZvc { meta, z } => {
                    Ok(sfpr::decompress_values(&z.decompress_i8()?, meta))
                }
                _ => Err(wrong_payload("sfpr+zvc", c)),
            },
        )
    }

    fn name(&self) -> String {
        "sfpr+zvc".into()
    }
}

/// BRC as a [`Codec`]: stores the positivity mask; decompression yields the
/// binary surrogate tensor.  Valid only where the backward pass needs the
/// mask alone (ReLU not feeding a conv — Table II).
#[derive(Debug, Clone, Copy, Default)]
pub struct BrcCodec;

impl Codec for BrcCodec {
    fn compress(&self, x: &Tensor) -> CompressedActivation {
        observed_compress(
            || self.name(),
            || {
                let m = obs::span("stage.brc", || BrcMask::compress(x));
                let compressed = m.compressed_bytes();
                note_stage("brc", x.len() * 4, compressed);
                CompressedActivation {
                    payload: Payload::Brc(m),
                    uncompressed_bytes: x.len() * 4,
                    compressed_bytes: compressed,
                    codec_name: self.name(),
                }
            },
        )
    }

    fn decompress(&self, c: &CompressedActivation) -> Result<Tensor, CodecError> {
        observed_decompress(
            || self.name(),
            || match &c.payload {
                Payload::Brc(m) => Ok(m.to_binary_tensor()),
                _ => Err(wrong_payload("brc", c)),
            },
        )
    }

    fn name(&self) -> String {
        "brc".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A spatially-smooth activation-like tensor (images stay correlated
    /// after convolution — the paper's core observation).
    fn smooth_tensor(n: usize, c: usize, h: usize, w: usize) -> Tensor {
        let shape = Shape::nchw(n, c, h, w);
        let data = (0..shape.len())
            .map(|i| {
                let x = (i % w) as f32;
                let y = ((i / w) % h) as f32;
                ((x * 0.3).sin() + (y * 0.2).cos()) * ((i / (h * w)) as f32 * 0.1 + 1.0)
            })
            .collect();
        Tensor::from_vec(shape, data)
    }

    /// A sparse ReLU-like tensor: ~60% zeros.
    fn sparse_tensor() -> Tensor {
        let shape = Shape::nchw(2, 4, 8, 8);
        let data = (0..shape.len())
            .map(|i| {
                if i % 5 < 3 {
                    0.0
                } else {
                    (i % 13) as f32 * 0.1
                }
            })
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn raw_codec_is_identity() {
        let x = smooth_tensor(1, 2, 8, 8);
        let c = RawCodec.compress(&x);
        assert_eq!(c.ratio(), 1.0);
        assert_eq!(RawCodec.decompress(&c).unwrap(), x);
        assert!(RawCodec.is_lossless());
    }

    #[test]
    fn zvc_f32_lossless_and_sparse_wins() {
        let x = sparse_tensor();
        let c = ZvcF32Codec.compress(&x);
        assert_eq!(ZvcF32Codec.decompress(&c).unwrap(), x);
        assert!(c.ratio() > 1.3, "ratio={}", c.ratio());
    }

    #[test]
    fn sfpr_is_4x_with_small_error() {
        let x = smooth_tensor(2, 4, 16, 16);
        let codec = SfprCodec::new();
        let c = codec.compress(&x);
        assert!(c.ratio() > 3.5 && c.ratio() <= 4.0, "ratio={}", c.ratio());
        let rec = codec.decompress(&c).unwrap();
        // Quantization plus the deliberate S=1.125 clipping of the top of
        // the range: small relative to the signal power (~1.0).
        assert!(x.mse(&rec) < 5e-3, "mse={}", x.mse(&rec));
    }

    #[test]
    fn jpeg_act_beats_sfpr_on_smooth_data() {
        let x = smooth_tensor(2, 4, 16, 16);
        let sfpr = SfprCodec::new().compress(&x);
        let jact = JpegActCodec::new(Dqt::opt_h()).compress(&x);
        assert!(
            jact.ratio() > sfpr.ratio(),
            "jpeg-act {} vs sfpr {}",
            jact.ratio(),
            sfpr.ratio()
        );
    }

    #[test]
    fn jpeg_base_roundtrip_error_bounded() {
        let x = smooth_tensor(1, 2, 16, 16);
        let codec = JpegBaseCodec::new(Dqt::jpeg_quality(80));
        let rec = codec.decompress(&codec.compress(&x)).unwrap();
        let rel = x.mse(&rec).sqrt() / x.max_abs() as f64;
        assert!(rel < 0.1, "relative rms error {rel}");
    }

    #[test]
    fn jpeg_act_roundtrip_error_bounded() {
        let x = smooth_tensor(1, 2, 16, 16);
        let codec = JpegActCodec::new(Dqt::opt_l());
        let rec = codec.decompress(&codec.compress(&x)).unwrap();
        let rel = x.mse(&rec).sqrt() / x.max_abs() as f64;
        assert!(rel < 0.1, "relative rms error {rel}");
    }

    #[test]
    fn harder_dqt_compresses_more_with_more_error() {
        let x = smooth_tensor(2, 2, 16, 16);
        let low = JpegActCodec::new(Dqt::opt_l());
        let high = JpegActCodec::new(Dqt::opt_h());
        let cl = low.compress(&x);
        let ch = high.compress(&x);
        assert!(ch.ratio() > cl.ratio());
        let el = x.mse(&low.decompress(&cl).unwrap());
        let eh = x.mse(&high.decompress(&ch).unwrap());
        assert!(eh >= el);
    }

    #[test]
    fn all_four_backend_corners_roundtrip() {
        let x = smooth_tensor(1, 2, 8, 16);
        for quant in [QuantKind::Div, QuantKind::Shift] {
            for coder in [CoderKind::Rle, CoderKind::Zvc] {
                let codec = JpegCodec::new(Dqt::opt_l(), quant, coder);
                let c = codec.compress(&x);
                let rec = codec.decompress(&c).unwrap();
                let rel = x.mse(&rec).sqrt() / x.max_abs() as f64;
                assert!(rel < 0.12, "{quant}+{coder}: rel={rel}");
                assert!(c.ratio() > 1.0, "{quant}+{coder}: ratio={}", c.ratio());
            }
        }
    }

    #[test]
    fn dpr_f16_low_error_f8_higher() {
        let x = smooth_tensor(1, 2, 8, 8);
        let f16 = DprCodec::new(DprWidth::F16);
        let f8 = DprCodec::new(DprWidth::F8);
        let c16 = f16.compress(&x);
        let c8 = f8.compress(&x);
        assert_eq!(c16.ratio(), 2.0);
        assert_eq!(c8.ratio(), 4.0);
        assert!(x.mse(&f16.decompress(&c16).unwrap()) < x.mse(&f8.decompress(&c8).unwrap()));
    }

    #[test]
    fn gist_csr_on_sparse_relu() {
        let x = sparse_tensor();
        let codec = GistCsrCodec;
        let c = codec.compress(&x);
        assert!(c.ratio() > 4.0, "ratio={}", c.ratio()); // 60% sparse
        let rec = codec.decompress(&c).unwrap();
        // Lossless on zeros; f8-lossy on values.
        for (a, b) in x.iter().zip(rec.iter()) {
            if *a == 0.0 {
                assert_eq!(*b, 0.0);
            } else {
                assert!(((a - b) / a).abs() < 0.07);
            }
        }
    }

    #[test]
    fn brc_codec_ratio_and_mask() {
        let x = sparse_tensor();
        let c = BrcCodec.compress(&x);
        assert!((c.ratio() - 32.0).abs() < 0.01);
        let bin = BrcCodec.decompress(&c).unwrap();
        for (a, b) in x.iter().zip(bin.iter()) {
            assert_eq!(*a > 0.0, *b == 1.0);
        }
    }

    #[test]
    fn cross_codec_decompress_is_a_typed_error() {
        let x = smooth_tensor(1, 1, 8, 8);
        let c = RawCodec.compress(&x);
        let err = SfprCodec::new().decompress(&c).unwrap_err();
        assert_eq!(
            err,
            CodecError::WrongPayload {
                expected: "sfpr",
                actual: "raw".into()
            }
        );
        assert!(err.to_string().contains("cannot decompress"));
    }

    #[test]
    fn quantized_blocks_counts() {
        let x = smooth_tensor(1, 2, 8, 16);
        let codec = JpegCodec::new(Dqt::opt_h(), QuantKind::Shift, CoderKind::Zvc);
        let blocks = codec.quantized_blocks(&x);
        assert_eq!(blocks.len(), BlockLayout::new(x.shape()).num_blocks());
    }

    #[test]
    fn degenerate_byte_totals_report_ratio_one() {
        // `Shape` forbids zero-sized dimensions, so zero-byte totals only
        // arise from wire-decoded or aggregated stats.  Either zero side
        // must report 1.0 instead of dividing by zero or claiming an
        // infinite win.
        let payload = || Payload::Raw(smooth_tensor(1, 1, 8, 8));
        let zero_out =
            CompressedActivation::from_wire_parts(payload(), 128, 0, "raw".to_string());
        assert_eq!(zero_out.ratio(), 1.0);
        let zero_in =
            CompressedActivation::from_wire_parts(payload(), 0, 64, "raw".to_string());
        assert_eq!(zero_in.ratio(), 1.0);
        let both_zero =
            CompressedActivation::from_wire_parts(payload(), 0, 0, "raw".to_string());
        assert_eq!(both_zero.ratio(), 1.0);
    }

    #[test]
    fn trace_counters_match_compression_stats() {
        let x = smooth_tensor(2, 3, 16, 16);
        let codec = JpegActCodec::new(Dqt::jpeg_quality(80));
        let (c, trace) = jact_obs::collect_with(false, || {
            let c = codec.compress(&x);
            codec.decompress(&c).unwrap();
            c
        });
        let totals = trace.counter_totals();
        assert_eq!(totals["codec.compressions"], 1);
        assert_eq!(totals["codec.decompressions"], 1);
        assert_eq!(totals["codec.bytes_in"], c.uncompressed_bytes as u64);
        assert_eq!(totals["codec.bytes_out"], c.compressed_bytes as u64);
        // The JPEG pipeline reports its internal stage funnel too.
        for stage in ["block", "transform", "code"] {
            assert!(
                totals.contains_key(&format!("stage.{stage}.bytes_in")),
                "missing stage funnel for {stage}"
            );
        }
    }

    /// Pre-fusion staged reference: materialize the block tensor, run the
    /// transform over it, then hand the whole quantized list to the staged
    /// coders — exactly what `JpegCodec::compress` did before the
    /// streaming tile pipeline.
    fn staged_coded(x: &Tensor, dqt: &Dqt, quant: QuantKind, coder: CoderKind) -> CodedBlocks {
        use crate::dct::dct2d_i8;
        use crate::quant::quantize;
        let enc = sfpr::compress(x, SfprParams::paper_default());
        let layout = BlockLayout::new(x.shape());
        let quantized: Vec<[i8; 64]> = layout
            .to_blocks(enc.values())
            .iter()
            .map(|b| quantize(quant, &dct2d_i8(b), dqt))
            .collect();
        match coder {
            CoderKind::Rle => CodedBlocks::Rle {
                bytes: rle::encode_blocks(&quantized),
                count: quantized.len(),
            },
            CoderKind::Zvc => {
                let flat: Vec<i8> = quantized.iter().flatten().copied().collect();
                CodedBlocks::Zvc(Zvc::compress_i8(&flat))
            }
        }
    }

    /// A seeded noisy tensor so the generative matrix also covers data with
    /// no spatial structure (worst case for RLE run lengths).
    fn noisy_tensor(seed: u64, n: usize, c: usize, h: usize, w: usize) -> Tensor {
        use jact_rng::{Rng, SeedableRng};
        let mut rng = jact_rng::rngs::StdRng::seed_from_u64(seed);
        let shape = Shape::nchw(n, c, h, w);
        let data = (0..shape.len()).map(|_| rng.sample_normal_f32()).collect();
        Tensor::from_vec(shape, data)
    }

    /// The fused streaming pipeline must produce byte-identical coded
    /// payloads to the staged reference for the full Table III codec
    /// matrix, at every thread count, and decompress to the same tensor.
    /// Shapes cross the 512-block parallel-coding threshold in both
    /// directions and include ragged (non-multiple-of-8) layouts.
    #[test]
    fn fused_pipeline_matches_staged_reference_bitwise() {
        let tensors = [
            smooth_tensor(1, 2, 8, 16),   // 4 blocks: sequential shortcut
            smooth_tensor(2, 3, 13, 17),  // ragged rows and columns
            noisy_tensor(0xf05e_d, 1, 4, 16, 16),
            smooth_tensor(4, 16, 32, 32), // 1024 blocks: parallel coders
        ];
        for x in &tensors {
            for dqt in [Dqt::jpeg_quality(80), Dqt::opt_l(), Dqt::opt_h()] {
                for quant in [QuantKind::Div, QuantKind::Shift] {
                    for coder in [CoderKind::Rle, CoderKind::Zvc] {
                        let want = staged_coded(x, &dqt, quant, coder);
                        for threads in [1usize, 2, 8] {
                            let codec = JpegCodec::new(dqt.clone(), quant, coder);
                            let c = jact_par::with_threads(threads, || codec.compress(x));
                            let ctx = format!(
                                "{quant}+{coder}:{} {:?} threads={threads}",
                                dqt.name(),
                                x.shape()
                            );
                            match (&want, match &c.payload {
                                Payload::Jpeg(p) => &p.coded,
                                _ => unreachable!("jpeg codec emits jpeg payloads"),
                            }) {
                                (
                                    CodedBlocks::Rle { bytes: a, count: na },
                                    CodedBlocks::Rle { bytes: b, count: nb },
                                ) => {
                                    assert_eq!(na, nb, "{ctx}");
                                    assert_eq!(a, b, "{ctx}");
                                }
                                (CodedBlocks::Zvc(a), CodedBlocks::Zvc(b)) => {
                                    assert_eq!(a, b, "{ctx}")
                                }
                                _ => panic!("coder kind mismatch: {ctx}"),
                            }
                            let rec = jact_par::with_threads(threads, || codec.decompress(&c))
                                .unwrap();
                            let rec1 = codec.decompress(&c).unwrap();
                            assert_eq!(rec, rec1, "thread-dependent decode: {ctx}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rle_count_mismatch_is_a_typed_error() {
        // A payload whose RLE block count disagrees with its shape must
        // surface as `Corrupt`, not a panic in the scatter path.
        let x = smooth_tensor(1, 2, 8, 16);
        let codec = JpegCodec::new(Dqt::opt_l(), QuantKind::Div, CoderKind::Rle);
        let c = codec.compress(&x);
        let p = match &c.payload {
            Payload::Jpeg(p) => p,
            _ => unreachable!("jpeg codec emits jpeg payloads"),
        };
        let (bytes, count) = match &p.coded {
            CodedBlocks::Rle { bytes, count } => (bytes.clone(), *count),
            _ => unreachable!("RLE coder emits RLE payloads"),
        };
        let forged = CompressedActivation {
            payload: Payload::Jpeg(JpegPayload {
                meta: p.meta.clone(),
                coded: CodedBlocks::Rle {
                    bytes,
                    count: count - 1,
                },
                quant: p.quant,
                dqt: p.dqt.clone(),
            }),
            uncompressed_bytes: c.uncompressed_bytes,
            compressed_bytes: c.compressed_bytes,
            codec_name: c.codec_name.clone(),
        };
        assert!(matches!(
            codec.decompress(&forged),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn sfpr_clip_counters_cover_every_element() {
        // One channel holds a large outlier so S = 1.125 clips the rest of
        // that channel's top of range: the clip counter must see it.
        let shape = Shape::nchw(1, 2, 8, 8);
        let data = (0..shape.len())
            .map(|i| if i == 0 { 100.0 } else { (i % 7) as f32 - 3.0 })
            .collect();
        let x = Tensor::from_vec(shape, data);
        let (c, trace) = jact_obs::collect_with(false, || SfprCodec::new().compress(&x));
        let totals = trace.counter_totals();
        assert_eq!(totals["sfpr.elems"], x.len() as u64);
        assert_eq!(totals["stage.sfpr.bytes_in"], (x.len() * 4) as u64);
        assert_eq!(totals["stage.sfpr.bytes_out"], c.compressed_bytes as u64);
        assert!(totals["sfpr.clipped"] > 0, "outlier channel must clip");
        assert!(totals["sfpr.clipped"] < totals["sfpr.elems"]);
    }
}

//! Zero-Value Compression (ZVC).
//!
//! ZVC (Rhu et al., HPCA 2018; Sec. II-B4) stores a 1-bit non-zero mask per
//! word plus the packed non-zero words.  It compresses equally well for any
//! spatial distribution of zeros — which is why JPEG-ACT uses it instead of
//! run-length coding on frequency-domain activations, whose zeros are
//! randomly spread across mid and high frequencies (Sec. III-F).
//!
//! Two word widths are used in this workspace:
//!
//! * 1-byte words over quantized `i8` coefficients (the JPEG-ACT back end;
//!   max ratio 8×: one mask bit per byte),
//! * 4-byte words over raw `f32` activations (cDMA-style compression of
//!   sparse ReLU/dropout outputs; max ratio 32×).
//!
//! All fallible entry points return [`CodecError`] instead of panicking:
//! ZVC streams cross the offload wire ([`crate::wire`]) and must reject
//! malformed input gracefully.

use crate::error::CodecError;
use jact_par::Pool;

/// Words per parallel chunk.  A multiple of 8 so every chunk owns whole
/// mask bytes; input-derived only, so the mask/value streams are bitwise
/// identical to sequential compression for any thread count.
const WORDS_PER_CHUNK: usize = 1 << 14;

/// A ZVC-compressed buffer: non-zero bit mask plus packed non-zero words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zvc {
    /// One bit per source word, LSB-first within each mask byte.
    mask: Vec<u8>,
    /// The non-zero words, packed in order.
    values: Vec<u8>,
    /// Number of source words.
    words: usize,
    /// Word width in bytes (1 or 4 in practice).
    word_bytes: usize,
}

impl Zvc {
    /// Compresses a byte buffer interpreted as `word_bytes`-wide words.
    ///
    /// Returns [`CodecError::Corrupt`] if `word_bytes` is zero or
    /// `data.len()` is not a multiple of `word_bytes`.
    pub fn compress(data: &[u8], word_bytes: usize) -> Result<Self, CodecError> {
        if word_bytes == 0 {
            return Err(CodecError::Corrupt("ZVC word width must be positive"));
        }
        if data.len() % word_bytes != 0 {
            return Err(CodecError::Corrupt(
                "ZVC data length not a multiple of word width",
            ));
        }
        Ok(Self::compress_infallible(data, word_bytes))
    }

    /// Compresses a slice of `i8` values (1-byte words).
    pub fn compress_i8(data: &[i8]) -> Self {
        let bytes: Vec<u8> = data.iter().map(|&v| v as u8).collect();
        Self::compress_infallible(&bytes, 1)
    }

    /// Compresses a slice of `f32` values (4-byte words); only exact `+0.0`
    /// bit patterns count as zero, matching a hardware word comparator.
    pub fn compress_f32(data: &[f32]) -> Self {
        let mut bytes = vec![0u8; data.len() * 4];
        Pool::current().par_chunks_mut(&mut bytes, WORDS_PER_CHUNK * 4, |_, off, out| {
            for (k, word) in out.chunks_exact_mut(4).enumerate() {
                // Normalize -0.0 to +0.0 so the mask sees it as zero, as
                // the cDMA hardware does for sign-magnitude zero.
                let v = data[off / 4 + k];
                let v = if v == 0.0 { 0.0 } else { v };
                word.copy_from_slice(&v.to_le_bytes());
            }
        });
        Self::compress_infallible(&bytes, 4)
    }

    /// Compression core for callers that construct aligned buffers
    /// themselves; the width invariants hold by construction.
    fn compress_infallible(data: &[u8], word_bytes: usize) -> Self {
        let words = data.len() / word_bytes;
        let pool = Pool::current();
        // Input-size shortcut only (never the thread count): the chunked
        // path must run — and emit its region events — identically for any
        // pool size so traces stay byte-equal across thread counts.
        if words < 2 * WORDS_PER_CHUNK {
            return Self::compress_chunk(data, word_bytes, words);
        }
        // Chunks own whole mask bytes (WORDS_PER_CHUNK is a multiple of 8),
        // so concatenating per-chunk mask/value streams in chunk order
        // reproduces the sequential output byte for byte.
        let num_chunks = words.div_ceil(WORDS_PER_CHUNK);
        let parts = pool.run_chunks(num_chunks, |ci| {
            let w0 = ci * WORDS_PER_CHUNK;
            let w1 = (w0 + WORDS_PER_CHUNK).min(words);
            let chunk = &data[w0 * word_bytes..w1 * word_bytes];
            let z = Self::compress_chunk(chunk, word_bytes, w1 - w0);
            (z.mask, z.values)
        });
        let mut mask = Vec::with_capacity(words.div_ceil(8));
        let mut values =
            Vec::with_capacity(parts.iter().map(|(_, v)| v.len()).sum::<usize>());
        for (m, v) in parts {
            mask.extend_from_slice(&m);
            values.extend_from_slice(&v);
        }
        Zvc {
            mask,
            values,
            words,
            word_bytes,
        }
    }

    /// Sequential compression of one aligned span: counts non-zero words
    /// first so `values` is allocated exactly once at its final size.
    fn compress_chunk(data: &[u8], word_bytes: usize, words: usize) -> Zvc {
        let nonzero = data
            .chunks_exact(word_bytes)
            .filter(|w| w.iter().any(|&b| b != 0))
            .count();
        let mut mask = vec![0u8; words.div_ceil(8)];
        let mut values = Vec::with_capacity(nonzero * word_bytes);
        for w in 0..words {
            let chunk = &data[w * word_bytes..(w + 1) * word_bytes];
            if chunk.iter().any(|&b| b != 0) {
                mask[w / 8] |= 1 << (w % 8);
                values.extend_from_slice(chunk);
            }
        }
        Zvc {
            mask,
            values,
            words,
            word_bytes,
        }
    }

    /// Rebuilds a `Zvc` from wire-decoded parts, validating every
    /// invariant the decompressor relies on:
    ///
    /// * `word_bytes` is positive,
    /// * the mask has exactly `words.div_ceil(8)` bytes,
    /// * trailing mask bits past `words` are zero,
    /// * `values.len()` equals mask popcount × `word_bytes`.
    pub fn from_parts(
        mask: Vec<u8>,
        values: Vec<u8>,
        words: usize,
        word_bytes: usize,
    ) -> Result<Self, CodecError> {
        if word_bytes == 0 {
            return Err(CodecError::Corrupt("ZVC word width must be positive"));
        }
        if mask.len() != words.div_ceil(8) {
            return Err(CodecError::Corrupt("ZVC mask length mismatch"));
        }
        // Bits past the last word must be clear or decompress would
        // disagree with compress on the value count.
        if words % 8 != 0 {
            if let Some(&last) = mask.last() {
                if last >> (words % 8) != 0 {
                    return Err(CodecError::Corrupt("ZVC trailing mask bits set"));
                }
            }
        }
        let popcount: usize = mask.iter().map(|b| b.count_ones() as usize).sum();
        let expected = popcount.checked_mul(word_bytes);
        if expected != Some(values.len()) {
            return Err(CodecError::Corrupt(
                "ZVC value bytes disagree with mask popcount",
            ));
        }
        Ok(Zvc {
            mask,
            values,
            words,
            word_bytes,
        })
    }

    /// Rebuilds a `Zvc` from parts whose invariants hold by construction
    /// — the streaming tile encoder emits mask and value streams in lock
    /// step, so re-validating popcounts would only re-scan what it just
    /// wrote.  Callers must uphold the [`Zvc::from_parts`] invariants.
    pub(crate) fn from_parts_trusted(
        mask: Vec<u8>,
        values: Vec<u8>,
        words: usize,
        word_bytes: usize,
    ) -> Self {
        debug_assert_eq!(mask.len(), words.div_ceil(8));
        debug_assert_eq!(
            mask.iter().map(|b| b.count_ones() as usize).sum::<usize>() * word_bytes,
            values.len()
        );
        Zvc {
            mask,
            values,
            words,
            word_bytes,
        }
    }

    /// Decompresses back to the original byte buffer.
    pub fn decompress(&self) -> Vec<u8> {
        let pool = Pool::current();
        let mut out = vec![0u8; self.words * self.word_bytes];
        // Input-size shortcut only; see `compress_infallible`.
        if self.words < 2 * WORDS_PER_CHUNK {
            self.scatter_words(0, 0, &mut out);
            return out;
        }
        // Each chunk's starting value offset is the popcount of all mask
        // bits before it — a cheap sequential prefix scan over mask bytes,
        // after which every chunk scatters into a disjoint output range.
        let num_chunks = self.words.div_ceil(WORDS_PER_CHUNK);
        let mut starts = Vec::with_capacity(num_chunks);
        let mut acc = 0usize;
        for ci in 0..num_chunks {
            starts.push(acc);
            let b0 = ci * WORDS_PER_CHUNK / 8;
            let b1 = (b0 + WORDS_PER_CHUNK / 8).min(self.mask.len());
            acc += self.mask[b0..b1]
                .iter()
                .map(|b| b.count_ones() as usize)
                .sum::<usize>()
                * self.word_bytes;
        }
        pool.par_chunks_mut(&mut out, WORDS_PER_CHUNK * self.word_bytes, |ci, off, chunk| {
            self.scatter_words(off / self.word_bytes, starts[ci], chunk);
        });
        out
    }

    /// Scatters words `first_word..` into `out` (whose length determines the
    /// word count), reading packed values from `value_offset` onward.
    fn scatter_words(&self, first_word: usize, value_offset: usize, out: &mut [u8]) {
        let count = out.len() / self.word_bytes;
        let mut vi = value_offset;
        for k in 0..count {
            let w = first_word + k;
            if self.mask[w / 8] >> (w % 8) & 1 == 1 {
                out[k * self.word_bytes..(k + 1) * self.word_bytes]
                    .copy_from_slice(&self.values[vi..vi + self.word_bytes]);
                vi += self.word_bytes;
            }
        }
    }

    /// Decompresses to `i8` values.
    ///
    /// Returns [`CodecError::Corrupt`] if the stream was not compressed
    /// with 1-byte words.
    pub fn decompress_i8(&self) -> Result<Vec<i8>, CodecError> {
        if self.word_bytes != 1 {
            return Err(CodecError::Corrupt("not an i8 ZVC stream"));
        }
        Ok(self.decompress().into_iter().map(|b| b as i8).collect())
    }

    /// Decompresses to `f32` values.
    ///
    /// Returns [`CodecError::Corrupt`] if the stream was not compressed
    /// with 4-byte words.
    pub fn decompress_f32(&self) -> Result<Vec<f32>, CodecError> {
        if self.word_bytes != 4 {
            return Err(CodecError::Corrupt("not an f32 ZVC stream"));
        }
        let bytes = self.decompress();
        let mut out = vec![0.0f32; self.words];
        Pool::current().par_chunks_mut(&mut out, WORDS_PER_CHUNK, |_, off, seg| {
            for (k, o) in seg.iter_mut().enumerate() {
                let i = (off + k) * 4;
                *o = f32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
            }
        });
        Ok(out)
    }

    /// Compressed size in bytes: mask plus packed values.
    pub fn compressed_bytes(&self) -> usize {
        self.mask.len() + self.values.len()
    }

    /// Uncompressed size in bytes.
    pub fn uncompressed_bytes(&self) -> usize {
        self.words * self.word_bytes
    }

    /// Compression ratio (uncompressed / compressed).
    pub fn ratio(&self) -> f64 {
        self.uncompressed_bytes() as f64 / self.compressed_bytes() as f64
    }

    /// Number of non-zero words.
    pub fn nonzero_words(&self) -> usize {
        self.values.len() / self.word_bytes
    }

    /// The non-zero mask bytes (for collector/splitter framing).
    pub fn mask_bytes(&self) -> &[u8] {
        &self.mask
    }

    /// The packed non-zero value bytes.
    pub fn value_bytes(&self) -> &[u8] {
        &self.values
    }

    /// Number of source words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word width in bytes.
    pub fn word_bytes(&self) -> usize {
        self.word_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_i8_mixed() {
        let data: Vec<i8> = vec![3, 0, -1, 0, 0, 12, 0, 0, 3, 2, -1, 1, 0, 0, 0, 0];
        let z = Zvc::compress_i8(&data);
        assert_eq!(z.decompress_i8().unwrap(), data);
    }

    #[test]
    fn figure4_example() {
        // Fig. 4 of the paper: 8 values [3,0,-1,0,0,12,0,0] -> mask
        // 10100100 (LSB-first here) + packed [3,-1,12].
        let data: Vec<i8> = vec![3, 0, -1, 0, 0, 12, 0, 0];
        let z = Zvc::compress_i8(&data);
        assert_eq!(z.nonzero_words(), 3);
        assert_eq!(z.compressed_bytes(), 1 + 3);
        assert_eq!(z.ratio(), 2.0);
    }

    #[test]
    fn all_zero_hits_max_ratio() {
        let data = vec![0i8; 64];
        let z = Zvc::compress_i8(&data);
        assert_eq!(z.compressed_bytes(), 8); // mask only
        assert_eq!(z.ratio(), 8.0);
        assert_eq!(z.decompress_i8().unwrap(), data);
    }

    #[test]
    fn all_nonzero_has_mask_overhead() {
        let data = vec![1i8; 64];
        let z = Zvc::compress_i8(&data);
        assert_eq!(z.compressed_bytes(), 8 + 64);
        assert!(z.ratio() < 1.0);
    }

    #[test]
    fn ratio_independent_of_zero_placement() {
        // Clustered vs scattered zeros, same count -> same size.
        let mut clustered = vec![0i8; 64];
        let mut scattered = vec![0i8; 64];
        for i in 0..32 {
            clustered[i] = 5;
            scattered[i * 2] = 5;
        }
        let zc = Zvc::compress_i8(&clustered);
        let zs = Zvc::compress_i8(&scattered);
        assert_eq!(zc.compressed_bytes(), zs.compressed_bytes());
    }

    #[test]
    fn roundtrip_f32() {
        let data = vec![0.0f32, 1.5, 0.0, -2.25, 0.0, 0.0, 3.75, 0.0];
        let z = Zvc::compress_f32(&data);
        assert_eq!(z.decompress_f32().unwrap(), data);
        // 8 words -> 1 mask byte + 3 * 4 value bytes.
        assert_eq!(z.compressed_bytes(), 1 + 12);
    }

    #[test]
    fn negative_zero_compresses_as_zero() {
        let data = vec![-0.0f32, 1.0];
        let z = Zvc::compress_f32(&data);
        assert_eq!(z.nonzero_words(), 1);
        let out = z.decompress_f32().unwrap();
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], 1.0);
    }

    #[test]
    fn non_multiple_of_8_words() {
        let data: Vec<i8> = vec![1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6];
        let z = Zvc::compress_i8(&data);
        assert_eq!(z.decompress_i8().unwrap(), data);
        assert_eq!(z.mask_bytes().len(), 2);
    }

    #[test]
    fn misaligned_data_is_an_error() {
        assert_eq!(
            Zvc::compress(&[1, 2, 3], 4),
            Err(CodecError::Corrupt(
                "ZVC data length not a multiple of word width"
            ))
        );
        assert_eq!(
            Zvc::compress(&[1, 2, 3], 0),
            Err(CodecError::Corrupt("ZVC word width must be positive"))
        );
    }

    #[test]
    fn wrong_width_decompress_is_an_error() {
        let z = Zvc::compress_i8(&[1, 0, 2]);
        assert!(z.decompress_f32().is_err());
        let z = Zvc::compress_f32(&[1.0, 0.0]);
        assert!(z.decompress_i8().is_err());
    }

    #[test]
    fn from_parts_roundtrip() {
        let z = Zvc::compress_i8(&[3, 0, -1, 0, 0, 12, 0, 0, 5]);
        let back = Zvc::from_parts(
            z.mask_bytes().to_vec(),
            z.value_bytes().to_vec(),
            z.words(),
            z.word_bytes(),
        )
        .unwrap();
        assert_eq!(back, z);
    }

    #[test]
    fn from_parts_rejects_bad_invariants() {
        // Mask length mismatch.
        assert!(Zvc::from_parts(vec![0xff, 0x00], vec![1; 8], 8, 1).is_err());
        // Popcount / value length disagreement.
        assert!(Zvc::from_parts(vec![0x0f], vec![1, 2, 3], 8, 1).is_err());
        // Trailing mask bits set past the word count.
        assert!(Zvc::from_parts(vec![0xff], vec![1; 8], 4, 1).is_err());
        // Zero word width.
        assert!(Zvc::from_parts(vec![], vec![], 0, 0).is_err());
    }

    #[test]
    fn empty_input() {
        let z = Zvc::compress_i8(&[]);
        assert_eq!(z.compressed_bytes(), 0);
        assert!(z.decompress_i8().unwrap().is_empty());
    }

    #[test]
    fn parallel_compress_matches_sequential_bitwise() {
        // Large enough to cross the parallel threshold (2 * WORDS_PER_CHUNK
        // words) with a ragged tail; every thread count must produce the
        // same mask and value streams as single-threaded compression.
        let n = 2 * super::WORDS_PER_CHUNK * 4 + 37 * 4;
        let data: Vec<u8> = (0..n)
            .map(|i| if i % 7 < 4 { 0 } else { (i % 251) as u8 })
            .collect();
        let base = jact_par::with_threads(1, || Zvc::compress(&data, 4).unwrap());
        for threads in [2, 3, 8] {
            let z = jact_par::with_threads(threads, || Zvc::compress(&data, 4).unwrap());
            assert_eq!(z, base, "threads={threads}");
            let out = jact_par::with_threads(threads, || z.decompress());
            assert_eq!(out, data, "threads={threads}");
        }
    }
}

//! Discrete Quantization Tables (DQTs) and the zigzag scan order.
//!
//! JPEG-BASE uses the standard JPEG luminance table scaled to a quality
//! level (jpeg40/60/80/90 in the paper).  JPEG-ACT replaces these with
//! DQTs optimized for CNN activations (`optL`, `optH`; Sec. IV): flatter
//! profiles with the DC entry fixed to 8.  The SH quantizer additionally
//! restricts entries to powers of two (3-bit shift amounts; Sec. III-F).

use crate::error::CodecError;
use std::fmt;

/// Zigzag scan order: `ZIGZAG[k]` is the row-major index of the `k`-th
/// coefficient visited, exactly as in the JPEG standard.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27,
    20, 13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58,
    59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// The JPEG Annex K luminance base quantization table (row-major).
const JPEG_BASE_TABLE: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// An 8×8 Discrete Quantization Table in row-major order.
///
/// Entries are in `1..=255` (as in baseline JPEG).  Construct standard image
/// tables with [`Dqt::jpeg_quality`] and the paper's activation-optimized
/// tables with [`Dqt::opt_l`] / [`Dqt::opt_h`], or any custom table with
/// [`Dqt::from_entries`].
///
/// # Example
///
/// ```
/// use jact_codec::dqt::Dqt;
/// let q80 = Dqt::jpeg_quality(80);
/// assert!(q80.entry(0) < Dqt::jpeg_quality(40).entry(0));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Dqt {
    entries: [u16; 64],
    /// The SH quantizer's 3-bit shift amounts, cached at construction so
    /// the per-block hot path never recomputes 64 `f64::log2` calls.
    shifts: [u8; 64],
    name: String,
}

impl Dqt {
    /// Builds a DQT from explicit row-major entries.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadDqt`] if any entry is outside `1..=255`;
    /// a zero entry would otherwise divide by zero in the DIV quantizer.
    pub fn from_entries(
        name: impl Into<String>,
        entries: [u16; 64],
    ) -> Result<Self, CodecError> {
        for (index, &entry) in entries.iter().enumerate() {
            if !(1..=255).contains(&entry) {
                return Err(CodecError::BadDqt { index, entry });
            }
        }
        Ok(Self::from_valid(name, entries))
    }

    /// Construction core for entries already known to lie in `1..=255`
    /// (the named tables guarantee this by clamping or by constant
    /// choice).  Precomputes the SH shift table once.
    fn from_valid(name: impl Into<String>, entries: [u16; 64]) -> Self {
        let mut shifts = [0u8; 64];
        for (o, &e) in shifts.iter_mut().zip(entries.iter()) {
            *o = ((e as f64).log2().round() as i64).clamp(0, 7) as u8;
        }
        Dqt {
            entries,
            shifts,
            name: name.into(),
        }
    }

    /// The standard JPEG luminance table scaled to `quality` in `1..=100`
    /// using the libjpeg quality-scaling formula.
    ///
    /// # Panics
    ///
    /// Panics if `quality` is outside `1..=100`.
    pub fn jpeg_quality(quality: u32) -> Self {
        assert!((1..=100).contains(&quality), "quality must be in 1..=100");
        let scale = if quality < 50 {
            5000 / quality
        } else {
            200 - 2 * quality
        };
        let mut entries = [0u16; 64];
        for (e, &base) in entries.iter_mut().zip(JPEG_BASE_TABLE.iter()) {
            let v = (base as u32 * scale + 50) / 100;
            *e = v.clamp(1, 255) as u16;
        }
        Dqt::from_valid(format!("jpeg{quality}"), entries)
    }

    /// The paper's low-compression / low-error optimized table (`optL`,
    /// α = 0.025): gentle, flat quantization with DC fixed to 8.
    ///
    /// The concrete entries reproduce the *profile* found by the Sec. IV
    /// optimizer (rerunnable via `jact-core`'s `dqt_opt`): much flatter than
    /// image DQTs, power-of-two friendly for the SH quantizer.
    pub fn opt_l() -> Self {
        Dqt::from_valid("optL", radial_table(8, &[(1, 8), (3, 8), (5, 12)], 16))
    }

    /// The paper's high-compression optimized table (`optH`, α = 0.005).
    pub fn opt_h() -> Self {
        Dqt::from_valid(
            "optH",
            radial_table(8, &[(1, 16), (3, 24), (5, 32)], 48),
        )
    }

    /// Entry at row-major index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub fn entry(&self, i: usize) -> u16 {
        self.entries[i]
    }

    /// All 64 entries in row-major order.
    pub fn entries(&self) -> &[u16; 64] {
        &self.entries
    }

    /// Human-readable table name (e.g. `jpeg80`, `optL`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The 3-bit shift amounts used by the SH quantizer: per entry,
    /// `round(log2(q))` clamped to `0..=7` (Sec. III-F limits the DQT to
    /// powers of two with eight available quantization modes).  Computed
    /// once at construction; this accessor is free.
    pub fn log2_shifts(&self) -> &[u8; 64] {
        &self.shifts
    }

    /// A copy of this table with every entry snapped to the nearest power
    /// of two — the effective table the SH quantizer implements.
    pub fn to_pow2(&self) -> Dqt {
        let mut entries = [0u16; 64];
        for (e, &s) in entries.iter_mut().zip(self.shifts.iter()) {
            *e = 1u16 << s;
        }
        Dqt::from_valid(format!("{}-pow2", self.name), entries)
    }

    /// Returns a copy with the DC entry replaced.
    ///
    /// The paper pins DC to 8 during optimization and notes that lowering
    /// DC quantization mitigates batch-norm divergence (Sec. VI-B).
    ///
    /// # Panics
    ///
    /// Panics if `dc` is outside `1..=255`.
    pub fn with_dc(&self, dc: u16) -> Dqt {
        assert!((1..=255).contains(&dc), "DC entry must be in 1..=255");
        let mut entries = self.entries;
        entries[0] = dc;
        Dqt::from_valid(self.name.clone(), entries)
    }
}

/// Builds a table from `(max_radius, value)` bands over `u + v` (frequency
/// radius), with an explicit DC entry.  Radii beyond the last band take
/// `beyond`, so every cell is covered without a fallible lookup.
fn radial_table(dc: u16, bands: &[(u32, u16)], beyond: u16) -> [u16; 64] {
    let mut entries = [0u16; 64];
    for u in 0..8u32 {
        for v in 0..8u32 {
            let r = u + v;
            let val = bands
                .iter()
                .find(|&&(max_r, _)| r <= max_r)
                .map(|&(_, q)| q)
                .unwrap_or(beyond);
            entries[(u * 8 + v) as usize] = val;
        }
    }
    entries[0] = dc;
    entries
}

impl fmt::Debug for Dqt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dqt({}, dc={})", self.name, self.entries[0])
    }
}

impl fmt::Display for Dqt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn zigzag_is_permutation() {
        let set: HashSet<usize> = ZIGZAG.iter().copied().collect();
        assert_eq!(set.len(), 64);
        assert!(set.contains(&0) && set.contains(&63));
    }

    #[test]
    fn zigzag_known_prefix_and_suffix() {
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(&ZIGZAG[61..], &[55, 62, 63]);
    }

    #[test]
    fn zigzag_steps_are_adjacent_diagonals() {
        // Each successive pair differs by a move within the 8x8 lattice.
        for w in ZIGZAG.windows(2) {
            let (r0, c0) = (w[0] / 8, w[0] % 8);
            let (r1, c1) = (w[1] / 8, w[1] % 8);
            let dr = (r1 as i32 - r0 as i32).abs();
            let dc = (c1 as i32 - c0 as i32).abs();
            assert!(dr <= 1 && dc <= 1 || (dr == 1 && dc == 1), "{w:?}");
        }
    }

    #[test]
    fn quality_scaling_monotone() {
        let q40 = Dqt::jpeg_quality(40);
        let q60 = Dqt::jpeg_quality(60);
        let q80 = Dqt::jpeg_quality(80);
        let q90 = Dqt::jpeg_quality(90);
        for i in 0..64 {
            assert!(q40.entry(i) >= q60.entry(i));
            assert!(q60.entry(i) >= q80.entry(i));
            assert!(q80.entry(i) >= q90.entry(i));
        }
    }

    #[test]
    fn jpeg50_is_base_table() {
        let q50 = Dqt::jpeg_quality(50);
        assert_eq!(q50.entries(), &JPEG_BASE_TABLE);
    }

    #[test]
    fn opt_tables_are_flatter_than_images() {
        // Flatness: ratio of max to min entry.
        let flat = |d: &Dqt| {
            let mx = d.entries().iter().fold(u16::MIN, |m, &e| m.max(e)) as f64;
            let mn = d.entries().iter().fold(u16::MAX, |m, &e| m.min(e)) as f64;
            mx / mn
        };
        assert!(flat(&Dqt::opt_l()) < flat(&Dqt::jpeg_quality(80)));
        assert!(flat(&Dqt::opt_h()) < flat(&Dqt::jpeg_quality(80)));
    }

    #[test]
    fn opt_tables_have_dc_8() {
        assert_eq!(Dqt::opt_l().entry(0), 8);
        assert_eq!(Dqt::opt_h().entry(0), 8);
    }

    #[test]
    fn opt_h_quantizes_harder_than_opt_l() {
        let l = Dqt::opt_l();
        let h = Dqt::opt_h();
        assert!((1..64).all(|i| h.entry(i) >= l.entry(i)));
    }

    #[test]
    fn log2_shifts_clamped_3bit() {
        let d = Dqt::jpeg_quality(40);
        let s = d.log2_shifts();
        assert!(s.iter().all(|&v| v <= 7));
        // Entry 16 -> shift 4; entry 1 -> shift 0.
        let custom = Dqt::from_entries("t", {
            let mut e = [1u16; 64];
            e[1] = 16;
            e[2] = 255;
            e
        })
        .expect("valid entries");
        let s = custom.log2_shifts();
        assert_eq!(s[0], 0);
        assert_eq!(s[1], 4);
        assert_eq!(s[2], 7); // log2(255) ~ 7.99 -> 8 -> clamped 7
    }

    #[test]
    fn to_pow2_snaps_entries() {
        let d = Dqt::from_entries("t", {
            let mut e = [3u16; 64];
            e[0] = 8;
            e
        })
        .expect("valid entries");
        let p = d.to_pow2();
        assert_eq!(p.entry(0), 8);
        assert_eq!(p.entry(1), 4); // log2(3)=1.58 -> 2 -> 4
    }

    #[test]
    fn zero_entry_rejected_with_typed_error() {
        // A zero DQT entry would divide by zero in `quantize_div`; the
        // constructor is the single guard for the whole pipeline.
        let mut e = [16u16; 64];
        e[5] = 0;
        assert_eq!(
            Dqt::from_entries("bad", e).unwrap_err(),
            CodecError::BadDqt { index: 5, entry: 0 }
        );
    }

    #[test]
    fn oversized_entry_rejected_with_typed_error() {
        let mut e = [16u16; 64];
        e[63] = 256;
        assert_eq!(
            Dqt::from_entries("bad", e).unwrap_err(),
            CodecError::BadDqt {
                index: 63,
                entry: 256
            }
        );
    }

    #[test]
    fn cached_shifts_match_recomputation() {
        for dqt in [
            Dqt::jpeg_quality(40),
            Dqt::jpeg_quality(80),
            Dqt::opt_l(),
            Dqt::opt_h(),
        ] {
            for (i, (&s, &e)) in dqt
                .log2_shifts()
                .iter()
                .zip(dqt.entries().iter())
                .enumerate()
            {
                let expect = ((e as f64).log2().round() as i64).clamp(0, 7) as u8;
                assert_eq!(s, expect, "{}: entry {i}", dqt.name());
            }
        }
    }

    #[test]
    fn with_dc_replaces_only_dc() {
        let d = Dqt::opt_h().with_dc(4);
        assert_eq!(d.entry(0), 4);
        assert_eq!(d.entry(1), Dqt::opt_h().entry(1));
    }
}

//! Bit-level I/O used by the entropy coders.
//!
//! The RLE + Huffman back end of JPEG-BASE (Sec. III-E) produces a variable
//! width code stream; [`BitWriter`] and [`BitReader`] provide the MSB-first
//! bit packing that stream needs.

/// Accumulates bits MSB-first into a byte vector.
///
/// # Example
///
/// ```
/// use jact_codec::bits::{BitWriter, BitReader};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xff, 8);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3), Some(0b101));
/// assert_eq!(r.read_bits(8), Some(0xff));
/// ```
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits currently buffered in `acc` (0..8).
    nbits: u32,
    acc: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn write_bits(&mut self, value: u32, n: u32) {
        assert!(n <= 32, "cannot write more than 32 bits at once");
        for i in (0..n).rev() {
            let bit = ((value >> i) & 1) as u8;
            self.acc = (self.acc << 1) | bit;
            self.nbits += 1;
            if self.nbits == 8 {
                self.bytes.push(self.acc);
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u32, 1);
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.nbits as usize
    }

    /// Flushes (zero-padding the final partial byte) and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.acc <<= 8 - self.nbits;
            self.bytes.push(self.acc);
        }
        self.bytes
    }

    /// Appends another writer's bit stream at bit granularity: the result
    /// is exactly as if every bit of `other` had been written to `self`
    /// directly.  This is what lets the RLE coder encode chunks of blocks
    /// in parallel and still emit a byte stream identical to sequential
    /// encoding.
    pub fn append(&mut self, other: BitWriter) {
        if self.nbits == 0 {
            // Byte-aligned: splice the full bytes in one move.
            if self.bytes.is_empty() {
                self.bytes = other.bytes;
            } else {
                self.bytes.extend_from_slice(&other.bytes);
            }
        } else {
            for &b in &other.bytes {
                self.write_bits(b as u32, 8);
            }
        }
        if other.nbits > 0 {
            self.write_bits(other.acc as u32, other.nbits);
        }
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `n` bits MSB-first; `None` if the stream is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn read_bits(&mut self, n: u32) -> Option<u32> {
        assert!(n <= 32);
        if self.pos + n as usize > self.bytes.len() * 8 {
            return None;
        }
        let mut v = 0u32;
        for _ in 0..n {
            let byte = self.bytes[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | bit as u32;
            self.pos += 1;
        }
        Some(v)
    }

    /// Reads one bit; `None` at end of stream.
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits(1).map(|b| b != 0)
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let fields: Vec<(u32, u32)> = vec![
            (0b1, 1),
            (0b0, 1),
            (0b1011, 4),
            (0xdead, 16),
            (0x7fffffff, 31),
            (0, 5),
            (0b111, 3),
        ];
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        let total: u32 = fields.iter().map(|&(_, n)| n).sum();
        assert_eq!(w.bit_len(), total as usize);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read_bits(n), Some(v), "field ({v},{n})");
        }
    }

    #[test]
    fn read_past_end_is_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.finish(); // padded to 1 byte
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b1010_0000));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn empty_writer_produces_no_bytes() {
        assert!(BitWriter::new().finish().is_empty());
    }

    #[test]
    fn append_matches_sequential_writes_at_any_split() {
        // Write a fixed field sequence either into one writer or split
        // across two writers joined by `append`; the byte streams must be
        // identical for every split point (including unaligned ones).
        let fields: Vec<(u32, u32)> = (0..40u64)
            .map(|i| {
                let n = (i % 13 + 1) as u32;
                (((i * 2654435761) % (1u64 << n)) as u32, n)
            })
            .collect();
        let mut all = BitWriter::new();
        for &(v, n) in &fields {
            all.write_bits(v, n);
        }
        let want = all.finish();
        for split in 0..=fields.len() {
            let mut a = BitWriter::new();
            for &(v, n) in &fields[..split] {
                a.write_bits(v, n);
            }
            let mut b = BitWriter::new();
            for &(v, n) in &fields[split..] {
                b.write_bits(v, n);
            }
            a.append(b);
            assert_eq!(a.finish(), want, "split={split}");
        }
    }

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        for i in 0..10 {
            w.write_bit(i % 3 == 0);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for i in 0..10 {
            assert_eq!(r.read_bit(), Some(i % 3 == 0));
        }
    }
}

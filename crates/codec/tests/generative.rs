//! Deterministic generative tests of the codec invariants.
//!
//! The former `proptest` suite, re-expressed over seeded [`jact_rng`]
//! streams (hermetic-build policy): each test runs ≥256 cases where case
//! `i` is fully determined by `(TEST_SEED, i)`, so a failure report of
//! the case index reproduces exactly on any machine.
//!
//! Lossless codecs must roundtrip bit-exactly for *any* input; lossy
//! codecs must bound their error by their quantization step; the block
//! layout must be a bijection up to padding for any tensor geometry.

use jact_codec::bits::{BitReader, BitWriter};
use jact_codec::block::{BlockLayout, PadStrategy};
use jact_codec::brc::BrcMask;
use jact_codec::csr::Csr;
use jact_codec::dct::{dct2d, dct2d_i8, idct2d, idct2d_to_i8};
use jact_codec::dpr::{round_f16, round_f8};
use jact_codec::dqt::{Dqt, ZIGZAG};
use jact_codec::quant::{dequantize, quantize, QuantKind};
use jact_codec::rle;
use jact_codec::sfpr::{self, SfprParams};
use jact_codec::stream::{collect, split, BlockPayload};
use jact_codec::zvc::Zvc;
use jact_rng::{rngs::StdRng, Rng, SeedableRng};
use jact_tensor::{Shape, Tensor};

const CASES: usize = 256;

/// Runs `f` over `CASES` independent streams; stream `i` depends only on
/// `(seed, i)` so any failing case index is a complete repro.
fn cases(seed: u64, mut f: impl FnMut(&mut StdRng, usize)) {
    for i in 0..CASES {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f(&mut rng, i);
    }
}

fn gen_i8_vec(rng: &mut StdRng, len: usize) -> Vec<i8> {
    (0..len).map(|_| rng.gen::<i8>()).collect()
}

fn gen_block(rng: &mut StdRng) -> [i8; 64] {
    let mut b = [0i8; 64];
    for v in &mut b {
        *v = rng.gen::<i8>();
    }
    b
}

/// ~3:1 zeros to arbitrary bytes, mirroring the old sparse strategy.
fn gen_sparse_block(rng: &mut StdRng) -> [i8; 64] {
    let mut b = [0i8; 64];
    for v in &mut b {
        if rng.gen_range(0..4usize) == 3 {
            *v = rng.gen::<i8>();
        }
    }
    b
}

fn gen_f32_vec(rng: &mut StdRng, len: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn bits_roundtrip() {
    cases(0xB175, |rng, _| {
        let n_fields = rng.gen_range(0..50usize);
        let fields: Vec<(u32, u32)> = (0..n_fields)
            .map(|_| (rng.gen::<u32>(), rng.gen_range(1..33u32)))
            .collect();
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.write_bits(v & ((1u64 << n) - 1) as u32, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read_bits(n), Some(v & ((1u64 << n) - 1) as u32));
        }
    });
}

#[test]
fn zvc_roundtrip_any_bytes() {
    cases(0x2C01, |rng, _| {
        let len = rng.gen_range(0..512usize);
        let data = gen_i8_vec(rng, len);
        let z = Zvc::compress_i8(&data);
        assert_eq!(z.decompress_i8().expect("i8 stream"), data);
    });
}

#[test]
fn zvc_f32_roundtrip() {
    cases(0x2C02, |rng, _| {
        let len = rng.gen_range(0..200usize);
        let data = gen_f32_vec(rng, len, -100.0, 100.0);
        let z = Zvc::compress_f32(&data);
        let out = z.decompress_f32().expect("f32 stream");
        assert_eq!(out.len(), data.len());
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(if *a == 0.0 { 0.0 } else { *a }, *b);
        }
    });
}

#[test]
fn zvc_size_depends_only_on_popcount() {
    cases(0x2C03, |rng, _| {
        // Mix dense and sparse so both popcount extremes are exercised.
        let data = if rng.gen_bool(0.5) {
            gen_i8_vec(rng, 64)
        } else {
            gen_sparse_block(rng).to_vec()
        };
        let z = Zvc::compress_i8(&data);
        let nz = data.iter().filter(|&&v| v != 0).count();
        assert_eq!(z.compressed_bytes(), 8 + nz);
    });
}

#[test]
fn csr_roundtrip() {
    cases(0xC5A0, |rng, _| {
        let len = rng.gen_range(0..1000usize);
        let data = gen_i8_vec(rng, len);
        let row = rng.gen_range(1..257usize);
        let c = Csr::compress(&data, row);
        assert_eq!(c.decompress(), data);
    });
}

#[test]
fn rle_roundtrip_any_blocks() {
    cases(0x51E1, |rng, _| {
        let blocks: Vec<[i8; 64]> = (0..rng.gen_range(1..8usize))
            .map(|_| gen_block(rng))
            .collect();
        let bytes = rle::encode_blocks(&blocks);
        let dec = rle::decode_blocks(&bytes, blocks.len());
        assert_eq!(dec, Some(blocks));
    });
}

#[test]
fn rle_roundtrip_sparse_blocks() {
    cases(0x51E2, |rng, _| {
        let blocks: Vec<[i8; 64]> = (0..rng.gen_range(1..8usize))
            .map(|_| gen_sparse_block(rng))
            .collect();
        let bytes = rle::encode_blocks(&blocks);
        let dec = rle::decode_blocks(&bytes, blocks.len());
        assert_eq!(dec, Some(blocks));
    });
}

#[test]
fn brc_mask_matches_positivity() {
    cases(0xB2C0, |rng, _| {
        let len = rng.gen_range(1..256usize);
        let data = gen_f32_vec(rng, len, -10.0, 10.0);
        let t = Tensor::from_slice(&data);
        let m = BrcMask::compress(&t);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(m.is_positive(i), v > 0.0);
        }
    });
}

#[test]
fn dct_roundtrip_float() {
    cases(0xDC70, |rng, _| {
        let mut block = [0.0f32; 64];
        for v in &mut block {
            *v = rng.gen_range(-100.0f32..100.0);
        }
        let orig = block;
        dct2d(&mut block);
        idct2d(&mut block);
        for i in 0..64 {
            assert!((block[i] - orig[i]).abs() < 1e-2);
        }
    });
}

#[test]
fn dct_fixed_point_roundtrip_error_bounded() {
    cases(0xDC71, |rng, _| {
        let block = gen_block(rng);
        let rec = idct2d_to_i8(&dct2d_i8(&block));
        for i in 0..64 {
            let d = (rec[i] as i32 - block[i] as i32).abs();
            assert!(d <= 2, "i={i}: {} vs {}", rec[i], block[i]);
        }
    });
}

#[test]
fn dct_energy_preserved() {
    cases(0xDC72, |rng, _| {
        let mut block = [0.0f32; 64];
        for v in &mut block {
            *v = rng.gen_range(-50.0f32..50.0);
        }
        let e_in: f64 = block.iter().map(|&v| (v as f64).powi(2)).sum();
        dct2d(&mut block);
        let e_out: f64 = block.iter().map(|&v| (v as f64).powi(2)).sum();
        assert!((e_in - e_out).abs() <= 1e-2 * e_in.max(1.0));
    });
}

#[test]
fn quantize_error_bounded_by_step() {
    cases(0x0DA7, |rng, _| {
        let mut c = [0i16; 64];
        for v in &mut c {
            *v = rng.gen_range(-2000i16..2000);
        }
        let q = rng.gen_range(1u16..256);
        let dqt = Dqt::from_entries("flat", [q; 64]).expect("entries in 1..=255");
        for kind in [QuantKind::Div, QuantKind::Shift] {
            let quantized = quantize(kind, &c, &dqt);
            let rec = dequantize(kind, &quantized, &dqt);
            // Effective step: DIV uses q, SH the nearest power of two.
            let step = match kind {
                QuantKind::Div => q as i32,
                QuantKind::Shift => 1i32 << dqt.log2_shifts()[0],
            };
            for i in 0..64 {
                let saturated = quantized[i] == i8::MAX || quantized[i] == i8::MIN;
                if !saturated {
                    let d = (rec[i] as i32 - c[i] as i32).abs();
                    assert!(d <= step, "kind={kind:?} i={i} d={d} step={step}");
                }
            }
        }
    });
}

#[test]
fn block_layout_roundtrip_any_geometry() {
    cases(0xB10C, |rng, _| {
        let n = rng.gen_range(1..4usize);
        let c = rng.gen_range(1..6usize);
        let h = rng.gen_range(1..12usize);
        let w = rng.gen_range(1..20usize);
        let strategy = if rng.gen_bool(0.5) {
            PadStrategy::NchW
        } else {
            PadStrategy::Hw
        };
        let shape = Shape::nchw(n, c, h, w);
        let vals: Vec<i8> = (0..shape.len()).map(|i| ((i * 37) % 251) as i8).collect();
        let l = BlockLayout::with_strategy(&shape, strategy);
        assert_eq!(l.from_blocks(&l.to_blocks(&vals)), vals);
    });
}

#[test]
fn sfpr_values_respect_bit_width() {
    cases(0x5F91, |rng, _| {
        let vals = gen_f32_vec(rng, 64, -100.0, 100.0);
        let bits = rng.gen_range(2u32..9);
        let x = Tensor::from_vec(Shape::nchw(1, 1, 8, 8), vals);
        let enc = sfpr::compress(&x, SfprParams::with_bits(bits));
        let half = 1i32 << (bits - 1);
        for &v in enc.values() {
            assert!((v as i32) >= -half && (v as i32) < half);
        }
    });
}

#[test]
fn sfpr_roundtrip_error_bounded() {
    cases(0x5F92, |rng, _| {
        let vals = gen_f32_vec(rng, 64, -100.0, 100.0);
        let x = Tensor::from_vec(Shape::nchw(1, 1, 8, 8), vals);
        let enc = sfpr::compress(&x, SfprParams::paper_default());
        let rec = sfpr::decompress(&enc);
        let max = x.max_abs();
        for (a, b) in x.iter().zip(rec.iter()) {
            // Quantization step + S=1.125 clipping of the top ~11%.
            let bound = max / 128.0 + 0.112 * a.abs() + 1e-6;
            assert!((a - b).abs() <= bound, "{a} vs {b} (max {max})");
        }
    });
}

#[test]
fn f16_round_is_idempotent_and_monotone() {
    cases(0xF160, |rng, _| {
        let a = rng.gen_range(-1e4f32..1e4);
        let b = rng.gen_range(-1e4f32..1e4);
        let ra = round_f16(a);
        assert_eq!(round_f16(ra), ra);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(round_f16(lo) <= round_f16(hi));
    });
}

#[test]
fn f8_round_is_idempotent_and_monotone() {
    cases(0xF080, |rng, _| {
        let a = rng.gen_range(-400.0f32..400.0);
        let b = rng.gen_range(-400.0f32..400.0);
        let ra = round_f8(a);
        assert_eq!(round_f8(ra), ra);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(round_f8(lo) <= round_f8(hi));
    });
}

#[test]
fn collector_splitter_roundtrip() {
    cases(0xC011, |rng, _| {
        let blocks: Vec<Vec<[i8; 64]>> = (0..rng.gen_range(1..5usize))
            .map(|_| (0..rng.gen_range(0..6usize)).map(|_| gen_sparse_block(rng)).collect())
            .collect();
        let streams: Vec<Vec<BlockPayload>> = blocks
            .iter()
            .map(|s| s.iter().map(BlockPayload::from_block).collect())
            .collect();
        let bytes = collect(&streams).expect("well-formed streams");
        let counts: Vec<usize> = streams.iter().map(|s| s.len()).collect();
        let back = split(&bytes, &counts).expect("splits");
        assert_eq!(back, streams);
    });
}

#[test]
fn zigzag_is_involution_safe() {
    cases(0x2122, |rng, _| {
        // Scatter then gather through ZIGZAG is the identity.
        let block = gen_block(rng);
        let mut zz = [0i8; 64];
        for (k, &src) in ZIGZAG.iter().enumerate() {
            zz[k] = block[src];
        }
        let mut back = [0i8; 64];
        for (k, &dst) in ZIGZAG.iter().enumerate() {
            back[dst] = zz[k];
        }
        assert_eq!(back, block);
    });
}

//! Property-based tests of the codec invariants.
//!
//! Lossless codecs must roundtrip bit-exactly for *any* input; lossy
//! codecs must bound their error by their quantization step; the block
//! layout must be a bijection up to padding for any tensor geometry.

use jact_codec::bits::{BitReader, BitWriter};
use jact_codec::block::{BlockLayout, PadStrategy};
use jact_codec::brc::BrcMask;
use jact_codec::csr::Csr;
use jact_codec::dct::{dct2d, dct2d_i8, idct2d, idct2d_to_i8};
use jact_codec::dpr::{round_f16, round_f8};
use jact_codec::dqt::{Dqt, ZIGZAG};
use jact_codec::quant::{dequantize, quantize, QuantKind};
use jact_codec::rle;
use jact_codec::sfpr::{self, SfprParams};
use jact_codec::stream::{collect, split, BlockPayload};
use jact_codec::zvc::Zvc;
use jact_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn arb_block() -> impl Strategy<Value = [i8; 64]> {
    prop::collection::vec(any::<i8>(), 64).prop_map(|v| {
        let mut b = [0i8; 64];
        b.copy_from_slice(&v);
        b
    })
}

fn arb_sparse_block() -> impl Strategy<Value = [i8; 64]> {
    prop::collection::vec(
        prop_oneof![3 => Just(0i8), 1 => any::<i8>()],
        64,
    )
    .prop_map(|v| {
        let mut b = [0i8; 64];
        b.copy_from_slice(&v);
        b
    })
}

proptest! {
    #[test]
    fn bits_roundtrip(fields in prop::collection::vec((any::<u32>(), 1u32..=32), 0..50)) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.write_bits(v & ((1u64 << n) - 1) as u32, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            prop_assert_eq!(r.read_bits(n), Some(v & ((1u64 << n) - 1) as u32));
        }
    }

    #[test]
    fn zvc_roundtrip_any_bytes(data in prop::collection::vec(any::<i8>(), 0..512)) {
        let z = Zvc::compress_i8(&data);
        prop_assert_eq!(z.decompress_i8(), data);
    }

    #[test]
    fn zvc_f32_roundtrip(data in prop::collection::vec(-100.0f32..100.0, 0..200)) {
        let z = Zvc::compress_f32(&data);
        let out = z.decompress_f32();
        prop_assert_eq!(out.len(), data.len());
        for (a, b) in data.iter().zip(&out) {
            prop_assert_eq!(if *a == 0.0 { 0.0 } else { *a }, *b);
        }
    }

    #[test]
    fn zvc_size_depends_only_on_popcount(data in prop::collection::vec(any::<i8>(), 64)) {
        let z = Zvc::compress_i8(&data);
        let nz = data.iter().filter(|&&v| v != 0).count();
        prop_assert_eq!(z.compressed_bytes(), 8 + nz);
    }

    #[test]
    fn csr_roundtrip(data in prop::collection::vec(any::<i8>(), 0..1000), row in 1usize..=256) {
        let c = Csr::compress(&data, row);
        prop_assert_eq!(c.decompress(), data);
    }

    #[test]
    fn rle_roundtrip_any_blocks(blocks in prop::collection::vec(arb_block(), 1..8)) {
        let bytes = rle::encode_blocks(&blocks);
        let dec = rle::decode_blocks(&bytes, blocks.len());
        prop_assert_eq!(dec, Some(blocks));
    }

    #[test]
    fn rle_roundtrip_sparse_blocks(blocks in prop::collection::vec(arb_sparse_block(), 1..8)) {
        let bytes = rle::encode_blocks(&blocks);
        let dec = rle::decode_blocks(&bytes, blocks.len());
        prop_assert_eq!(dec, Some(blocks));
    }

    #[test]
    fn brc_mask_matches_positivity(data in prop::collection::vec(-10.0f32..10.0, 1..256)) {
        let t = Tensor::from_slice(&data);
        let m = BrcMask::compress(&t);
        for (i, &v) in data.iter().enumerate() {
            prop_assert_eq!(m.is_positive(i), v > 0.0);
        }
    }

    #[test]
    fn dct_roundtrip_float(vals in prop::collection::vec(-100.0f32..100.0, 64)) {
        let mut block = [0.0f32; 64];
        block.copy_from_slice(&vals);
        let orig = block;
        dct2d(&mut block);
        idct2d(&mut block);
        for i in 0..64 {
            prop_assert!((block[i] - orig[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn dct_fixed_point_roundtrip_error_bounded(block in arb_block()) {
        let rec = idct2d_to_i8(&dct2d_i8(&block));
        for i in 0..64 {
            let d = (rec[i] as i32 - block[i] as i32).abs();
            prop_assert!(d <= 2, "i={i}: {} vs {}", rec[i], block[i]);
        }
    }

    #[test]
    fn dct_energy_preserved(vals in prop::collection::vec(-50.0f32..50.0, 64)) {
        let mut block = [0.0f32; 64];
        block.copy_from_slice(&vals);
        let e_in: f64 = block.iter().map(|&v| (v as f64).powi(2)).sum();
        dct2d(&mut block);
        let e_out: f64 = block.iter().map(|&v| (v as f64).powi(2)).sum();
        prop_assert!((e_in - e_out).abs() <= 1e-2 * e_in.max(1.0));
    }

    #[test]
    fn quantize_error_bounded_by_step(
        coefs in prop::collection::vec(-2000i16..2000, 64),
        q in 1u16..=255,
    ) {
        let mut c = [0i16; 64];
        c.copy_from_slice(&coefs);
        let dqt = Dqt::from_entries("flat", [q; 64]);
        for kind in [QuantKind::Div, QuantKind::Shift] {
            let quantized = quantize(kind, &c, &dqt);
            let rec = dequantize(kind, &quantized, &dqt);
            // Effective step: DIV uses q, SH the nearest power of two.
            let step = match kind {
                QuantKind::Div => q as i32,
                QuantKind::Shift => 1i32 << dqt.log2_shifts()[0],
            };
            for i in 0..64 {
                let saturated = quantized[i] == i8::MAX || quantized[i] == i8::MIN;
                if !saturated {
                    let d = (rec[i] as i32 - c[i] as i32).abs();
                    prop_assert!(d <= step, "kind={kind:?} i={i} d={d} step={step}");
                }
            }
        }
    }

    #[test]
    fn block_layout_roundtrip_any_geometry(
        n in 1usize..4, c in 1usize..6, h in 1usize..12, w in 1usize..20,
        strategy in prop_oneof![Just(PadStrategy::NchW), Just(PadStrategy::Hw)],
    ) {
        let shape = Shape::nchw(n, c, h, w);
        let vals: Vec<i8> = (0..shape.len()).map(|i| ((i * 37) % 251) as i8).collect();
        let l = BlockLayout::with_strategy(&shape, strategy);
        prop_assert_eq!(l.from_blocks(&l.to_blocks(&vals)), vals);
    }

    #[test]
    fn sfpr_values_respect_bit_width(
        vals in prop::collection::vec(-100.0f32..100.0, 64),
        bits in 2u32..=8,
    ) {
        let x = Tensor::from_vec(Shape::nchw(1, 1, 8, 8), vals);
        let enc = sfpr::compress(&x, SfprParams::with_bits(bits));
        let half = 1i32 << (bits - 1);
        for &v in enc.values() {
            prop_assert!((v as i32) >= -half && (v as i32) < half);
        }
    }

    #[test]
    fn sfpr_roundtrip_error_bounded(vals in prop::collection::vec(-100.0f32..100.0, 64)) {
        let x = Tensor::from_vec(Shape::nchw(1, 1, 8, 8), vals);
        let enc = sfpr::compress(&x, SfprParams::paper_default());
        let rec = sfpr::decompress(&enc);
        let max = x.max_abs();
        for (a, b) in x.iter().zip(rec.iter()) {
            // Quantization step + S=1.125 clipping of the top ~11%.
            let bound = max / 128.0 + 0.112 * a.abs() + 1e-6;
            prop_assert!((a - b).abs() <= bound, "{a} vs {b} (max {max})");
        }
    }

    #[test]
    fn f16_round_is_idempotent_and_monotone(a in -1e4f32..1e4, b in -1e4f32..1e4) {
        let ra = round_f16(a);
        prop_assert_eq!(round_f16(ra), ra);
        if a <= b {
            prop_assert!(round_f16(a) <= round_f16(b));
        }
    }

    #[test]
    fn f8_round_is_idempotent_and_monotone(a in -400.0f32..400.0, b in -400.0f32..400.0) {
        let ra = round_f8(a);
        prop_assert_eq!(round_f8(ra), ra);
        if a <= b {
            prop_assert!(round_f8(a) <= round_f8(b));
        }
    }

    #[test]
    fn collector_splitter_roundtrip(
        blocks in prop::collection::vec(prop::collection::vec(arb_sparse_block(), 0..6), 1..5),
    ) {
        let streams: Vec<Vec<BlockPayload>> = blocks
            .iter()
            .map(|s| s.iter().map(BlockPayload::from_block).collect())
            .collect();
        let bytes = collect(&streams);
        let counts: Vec<usize> = streams.iter().map(|s| s.len()).collect();
        let back = split(&bytes, &counts);
        prop_assert_eq!(back, Some(streams));
    }

    #[test]
    fn zigzag_is_involution_safe(block in arb_block()) {
        // Scatter then gather through ZIGZAG is the identity.
        let mut zz = [0i8; 64];
        for (k, &src) in ZIGZAG.iter().enumerate() {
            zz[k] = block[src];
        }
        let mut back = [0i8; 64];
        for (k, &dst) in ZIGZAG.iter().enumerate() {
            back[dst] = zz[k];
        }
        prop_assert_eq!(back, block);
    }
}

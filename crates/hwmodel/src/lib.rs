//! # jact-hwmodel
//!
//! Synthesis cost model for the JPEG-ACT accelerator designs.
//!
//! The paper synthesizes RTL with Synopsys DC at 45 nm (FreePDK45), scales
//! to 15 nm, and adds 50 % wire overhead (Sec. V).  This crate models that
//! flow analytically:
//!
//! * [`component`] — per-component area/power, calibrated to the
//!   published Table IV, plus an analytic gate-count model that lets the
//!   SH-vs-DIV and ZVC-vs-RLE cost ratios be *derived* rather than
//!   merely restated;
//! * [`design`] — design composition (which components each accelerator
//!   instantiates, CDU counts, buffers, collector/splitter) producing the
//!   Table V totals and effective offload bandwidth;
//! * [`tech`] — technology-node scaling (45 nm → 15 nm with wire
//!   overhead).

#![forbid(unsafe_code)]

pub mod component;
pub mod design;
pub mod tech;

pub use component::Component;
pub use design::{Design, DesignCost};

//! Technology-node scaling (Sec. V: FreePDK45 synthesis scaled to 15 nm
//! with 50 % wire overhead, following Rhu et al. and the 15 nm open cell
//! library methodology).


/// A CMOS technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Feature size in nanometres.
    pub nm: f64,
    /// Supply voltage in volts (for power scaling).
    pub vdd: f64,
}

/// FreePDK45 (the synthesis node).
pub const NODE_45: TechNode = TechNode { nm: 45.0, vdd: 1.1 };
/// The 15 nm open cell library node the paper scales to.
pub const NODE_15: TechNode = TechNode { nm: 15.0, vdd: 0.8 };

/// Fractional wire overhead added after scaling (paper: 50 %).
pub const WIRE_OVERHEAD: f64 = 0.5;

/// Scales a synthesized area from one node to another: area scales with
/// the square of the feature size, then wire overhead is applied.
pub fn scale_area(area_um2: f64, from: TechNode, to: TechNode) -> f64 {
    let s = (to.nm / from.nm).powi(2);
    area_um2 * s * (1.0 + WIRE_OVERHEAD)
}

/// Scales dynamic power: `P ∝ C·V²·f`; capacitance tracks feature size
/// linearly, voltage quadratically, at constant frequency, with wire
/// overhead on capacitance.
pub fn scale_power(power_mw: f64, from: TechNode, to: TechNode) -> f64 {
    let c = to.nm / from.nm;
    let v = (to.vdd / from.vdd).powi(2);
    power_mw * c * v * (1.0 + WIRE_OVERHEAD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scales_quadratically_plus_wires() {
        // 45 -> 15 nm: (1/3)^2 * 1.5 = 1/6.
        let scaled = scale_area(600.0, NODE_45, NODE_15);
        assert!((scaled - 100.0).abs() < 1e-9, "{scaled}");
    }

    #[test]
    fn power_scales_linearly_with_c_quadratically_with_v() {
        let scaled = scale_power(100.0, NODE_45, NODE_15);
        // (1/3) * (0.8/1.1)^2 * 1.5 = 0.2645
        assert!((scaled - 26.446).abs() < 0.01, "{scaled}");
    }

    #[test]
    fn identity_scaling_is_wire_overhead_only() {
        let a = scale_area(100.0, NODE_45, NODE_45);
        assert!((a - 150.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_down_shrinks() {
        assert!(scale_area(1000.0, NODE_45, NODE_15) < 1000.0);
        assert!(scale_power(1000.0, NODE_45, NODE_15) < 1000.0);
    }
}

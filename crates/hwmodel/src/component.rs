//! Per-component synthesis costs (Table IV) and the gate-count rationale
//! behind them.


/// A hardware component of the JPEG-ACT accelerator family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Scaled fix-point precision reduction unit (8 SPEs, Fig. 11).
    Sfpr,
    /// Forward + inverse 2-D DCT (16 LLM 8-point units, Fig. 13).
    DctPair,
    /// DIV quantizer (64 parallel multipliers).
    QuantizeDiv,
    /// SH quantizer (64 parallel 3-bit shifters, Fig. 14).
    QuantizeShift,
    /// RLE encoder + RLD decoder (zigzag + Huffman).
    CodingRle,
    /// ZVC compressor + ZVD decompressor.
    CodingZvc,
    /// Collector + splitter FIFOs (Fig. 15).
    CollectorSplitter,
    /// Per-CDU alignment and staging buffers (256 B alignment buffer +
    /// pipeline registers).
    CduBuffers,
    /// Crossbar expansion for 3 additional ports.
    CrossbarPorts,
}

impl Component {
    /// Synthesized area in µm² (15 nm, 50 % wire overhead) — Table IV;
    /// `CduBuffers` is the residual Table V attributes to buffers.
    pub fn area_um2(self) -> f64 {
        match self {
            Component::Sfpr => 44_924.0,
            Component::DctPair => 229_118.0,
            Component::QuantizeDiv => 12_507.0,
            Component::QuantizeShift => 1_593.0,
            Component::CodingRle => 125_890.0,
            Component::CodingZvc => 21_519.0,
            Component::CollectorSplitter => 173_445.0,
            Component::CduBuffers => 29_500.0,
            Component::CrossbarPorts => 2_253_427.0,
        }
    }

    /// Synthesized power in mW — Table IV.
    pub fn power_mw(self) -> f64 {
        match self {
            Component::Sfpr => 34.3,
            Component::DctPair => 273.4,
            Component::QuantizeDiv => 14.4,
            Component::QuantizeShift => 2.5,
            Component::CodingRle => 176.0,
            Component::CodingZvc => 17.1,
            Component::CollectorSplitter => 170.3,
            Component::CduBuffers => 12.0,
            Component::CrossbarPorts => 1_668.0,
        }
    }

    /// Approximate equivalent NAND2 gate count, from the datapath
    /// structure — the analytic model behind the area ratios:
    ///
    /// * a `w`-bit multiplier ≈ `w²` gates; the LLM DCT needs 11
    ///   multipliers per 8-point unit × 16 units, plus adders;
    /// * DIV is 64 parallel 16×8 multiplier-equivalents; SH is 64 3-bit
    ///   barrel shifters (≈ 24 muxes each) — the 88 % area reduction of
    ///   Sec. III-F falls out of this ratio;
    /// * RLE/Huffman needs symbol LUTs and barrel alignment; ZVC is a
    ///   popcount + byte-packing crossbar, an order of magnitude smaller.
    pub fn approx_gates(self) -> u64 {
        match self {
            // 8 SPEs × (fp32 multiply ≈ 27×27 partial products + cast).
            Component::Sfpr => 8 * (27 * 27 + 600),
            // 16 LLM units × (11 multipliers ≈ 16×12 + 29 adders×16b).
            Component::DctPair => 16 * (11 * (16 * 12) + 29 * 16 * 9),
            Component::QuantizeDiv => 64 * (16 * 8),
            Component::QuantizeShift => 64 * 24,
            Component::CodingRle => 2 * (256 * 96 + 4096),
            Component::CodingZvc => 2 * (64 * 8 + 512),
            Component::CollectorSplitter => 2 * (256 * 8 * 6 + 2048),
            Component::CduBuffers => 256 * 8 * 6,
            Component::CrossbarPorts => 3 * 32 * 8 * 500,
        }
    }
}

/// All Table IV components in presentation order.
pub const TABLE_IV: [Component; 8] = [
    Component::Sfpr,
    Component::DctPair,
    Component::QuantizeDiv,
    Component::QuantizeShift,
    Component::CodingRle,
    Component::CodingZvc,
    Component::CollectorSplitter,
    Component::CrossbarPorts,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values_match_paper() {
        assert_eq!(Component::Sfpr.area_um2(), 44_924.0);
        assert_eq!(Component::DctPair.power_mw(), 273.4);
        assert_eq!(Component::QuantizeShift.area_um2(), 1_593.0);
        assert_eq!(Component::CrossbarPorts.power_mw(), 1_668.0);
    }

    #[test]
    fn sh_saves_88_percent_over_div() {
        // Sec. III-F: "the area associated with the quantization
        // operation can be reduced by 88%".
        let div = Component::QuantizeDiv.area_um2();
        let sh = Component::QuantizeShift.area_um2();
        let saving = 1.0 - sh / div;
        assert!((saving - 0.88).abs() < 0.01, "saving={saving}");
        // The gate model agrees on the direction and rough magnitude.
        let g_ratio =
            Component::QuantizeShift.approx_gates() as f64 / Component::QuantizeDiv.approx_gates() as f64;
        assert!(g_ratio < 0.25, "gate ratio {g_ratio}");
    }

    #[test]
    fn zvc_much_cheaper_than_rle() {
        assert!(Component::CodingZvc.area_um2() * 4.0 < Component::CodingRle.area_um2());
        assert!(Component::CodingZvc.power_mw() * 4.0 < Component::CodingRle.power_mw());
        assert!(Component::CodingZvc.approx_gates() < Component::CodingRle.approx_gates());
    }

    #[test]
    fn dct_is_the_most_expensive_cdu_component() {
        // Sec. VI-F: "the DCT is the most expensive component".
        for c in TABLE_IV {
            if c != Component::DctPair && c != Component::CrossbarPorts {
                assert!(Component::DctPair.area_um2() > c.area_um2(), "{c:?}");
            }
        }
    }

    #[test]
    fn gate_model_tracks_published_area_ordering() {
        // Spearman-ish sanity: bigger published area => bigger gate count
        // for datapath components.
        let pairs = [
            (Component::QuantizeShift, Component::QuantizeDiv),
            (Component::CodingZvc, Component::CodingRle),
            (Component::QuantizeDiv, Component::Sfpr),
            (Component::Sfpr, Component::DctPair),
        ];
        for (small, big) in pairs {
            assert!(small.area_um2() < big.area_um2());
            assert!(
                small.approx_gates() < big.approx_gates(),
                "{small:?} vs {big:?}"
            );
        }
    }
}

//! Design composition and the Table V aggregation.

use crate::component::Component;

/// NVIDIA Titan V reference die area in mm² (for the "<1 % of a modern
/// GPU" claim).
pub const TITAN_V_AREA_MM2: f64 = 815.0;
/// NVIDIA Titan V TDP in watts.
pub const TITAN_V_TDP_W: f64 = 250.0;
/// Effective PCIe 3.0 transfer rate in GB/s (Sec. V).
pub const PCIE_GBPS: f64 = 12.8;

/// An accelerator design: which components each CDU instantiates, how
/// many CDUs, and its average compression ratio.
#[derive(Debug, Clone)]
pub struct Design {
    /// Display name.
    pub name: String,
    /// Components inside each CDU.
    pub cdu_components: Vec<Component>,
    /// Number of CDUs (Table V uses 4).
    pub cdus: u32,
    /// Shared (non-replicated) components.
    pub shared_components: Vec<Component>,
    /// Average compression ratio (Table V row).
    pub compression_ratio: f64,
}

/// Aggregated cost of a design.
#[derive(Debug, Clone, Copy)]
pub struct DesignCost {
    /// Total area in mm².
    pub area_mm2: f64,
    /// Total power in W.
    pub power_w: f64,
    /// Effective offload bandwidth in GB/s (`ratio × PCIe`).
    pub offload_gbps: f64,
    /// Area as a fraction of the Titan V die.
    pub gpu_area_fraction: f64,
    /// Power as a fraction of the Titan V TDP.
    pub gpu_power_fraction: f64,
}

impl Design {
    /// cDMA+: ZVC/ZVD CDUs at the DMA (Table V column 1).
    pub fn cdma_plus() -> Self {
        Design {
            name: "cDMA+".into(),
            cdu_components: vec![Component::CodingZvc, Component::CduBuffers],
            cdus: 4,
            shared_components: vec![Component::CollectorSplitter],
            compression_ratio: 1.3,
        }
    }

    /// SFPR-only accelerator.  No alignment buffer: SFPR streams values
    /// without gathering 8×8 blocks, so `CduBuffers` is not instantiated.
    pub fn sfpr() -> Self {
        Design {
            name: "SFPR".into(),
            cdu_components: vec![Component::Sfpr],
            cdus: 4,
            shared_components: vec![Component::CollectorSplitter],
            compression_ratio: 4.0,
        }
    }

    /// JPEG-BASE (jpeg80): SFPR + DCT + DIV + RLE.
    pub fn jpeg_base() -> Self {
        Design {
            name: "JPEG-BASE".into(),
            cdu_components: vec![
                Component::Sfpr,
                Component::DctPair,
                Component::QuantizeDiv,
                Component::CodingRle,
                Component::CduBuffers,
            ],
            cdus: 4,
            shared_components: vec![Component::CollectorSplitter],
            compression_ratio: 5.8,
        }
    }

    /// JPEG-ACT (optL5H): SFPR + DCT + SH + ZVC.
    pub fn jpeg_act() -> Self {
        Design {
            name: "JPEG-ACT".into(),
            cdu_components: vec![
                Component::Sfpr,
                Component::DctPair,
                Component::QuantizeShift,
                Component::CodingZvc,
                Component::CduBuffers,
            ],
            cdus: 4,
            shared_components: vec![Component::CollectorSplitter],
            compression_ratio: 8.5,
        }
    }

    /// All Table V designs in column order.
    pub fn table_v() -> Vec<Design> {
        vec![
            Design::cdma_plus(),
            Design::sfpr(),
            Design::jpeg_base(),
            Design::jpeg_act(),
        ]
    }

    /// Overrides the compression ratio (wire measured ratios in).
    pub fn with_ratio(mut self, ratio: f64) -> Self {
        self.compression_ratio = ratio;
        self
    }

    /// Overrides the CDU count (area/power scale with replication; the
    /// Fig. 21 performance sweep has a matching cost sweep here).
    pub fn with_cdus(mut self, cdus: u32) -> Self {
        assert!(cdus >= 1, "need at least one CDU");
        self.cdus = cdus;
        self
    }

    /// A cache-side variant: one CDU per L2 partition (48 on Volta) —
    /// the replication cost that makes cache-side placement unattractive
    /// (Sec. III-A).
    pub fn cache_side(mut self) -> Self {
        self.cdus = 48;
        self.name = format!("{} (cache-side)", self.name);
        self
    }

    /// Aggregates the design cost (Table V arithmetic; crossbar
    /// excluded, as in the paper).
    pub fn cost(&self) -> DesignCost {
        let cdu_area: f64 = self.cdu_components.iter().map(|c| c.area_um2()).sum();
        let cdu_power: f64 = self.cdu_components.iter().map(|c| c.power_mw()).sum();
        let shared_area: f64 = self.shared_components.iter().map(|c| c.area_um2()).sum();
        let shared_power: f64 = self.shared_components.iter().map(|c| c.power_mw()).sum();
        let area_mm2 = (cdu_area * self.cdus as f64 + shared_area) / 1e6;
        let power_w = (cdu_power * self.cdus as f64 + shared_power) / 1e3;
        DesignCost {
            area_mm2,
            power_w,
            offload_gbps: self.compression_ratio * PCIE_GBPS,
            gpu_area_fraction: area_mm2 / TITAN_V_AREA_MM2,
            gpu_power_fraction: power_w / TITAN_V_TDP_W,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jpeg_act_within_one_percent_of_gpu() {
        // The abstract's headline hardware claim.
        let c = Design::jpeg_act().cost();
        assert!(c.gpu_area_fraction < 0.01, "area frac {}", c.gpu_area_fraction);
        assert!(c.gpu_power_fraction < 0.01, "power frac {}", c.gpu_power_fraction);
    }

    #[test]
    fn table5_area_close_to_paper() {
        // Paper: cDMA+ 0.35, SFPR 0.31, JPEG-BASE 2.16, JPEG-ACT 1.48 mm².
        let expect = [
            ("cDMA+", 0.35),
            ("SFPR", 0.31),
            ("JPEG-BASE", 2.16),
            ("JPEG-ACT", 1.48),
        ];
        for (d, (name, area)) in Design::table_v().iter().zip(expect) {
            assert_eq!(d.name, name);
            let got = d.cost().area_mm2;
            assert!(
                (got - area).abs() / area < 0.25,
                "{name}: {got} vs paper {area}"
            );
        }
    }

    #[test]
    fn jpeg_act_cheaper_than_jpeg_base() {
        // Sec. VI-F: SH+ZVC reduce area by 1.3x and power by 1.5x.
        let base = Design::jpeg_base().cost();
        let act = Design::jpeg_act().cost();
        let area_gain = base.area_mm2 / act.area_mm2;
        let power_gain = base.power_w / act.power_w;
        assert!((1.2..1.7).contains(&area_gain), "area gain {area_gain}");
        assert!((1.2..1.8).contains(&power_gain), "power gain {power_gain}");
        // ...while offering MORE offload bandwidth.
        assert!(act.offload_gbps > base.offload_gbps);
    }

    #[test]
    fn offload_bandwidth_is_ratio_times_pcie() {
        let c = Design::jpeg_act().with_ratio(8.5).cost();
        assert!((c.offload_gbps - 108.8).abs() < 1e-9);
        let c = Design::cdma_plus().cost();
        assert!((c.offload_gbps - 16.64).abs() < 0.01);
    }

    #[test]
    fn ratio_override() {
        let c = Design::sfpr().with_ratio(3.5).cost();
        assert!((c.offload_gbps - 3.5 * PCIE_GBPS).abs() < 1e-9);
    }

    #[test]
    fn area_scales_with_cdu_count() {
        let c4 = Design::jpeg_act().cost();
        let c8 = Design::jpeg_act().with_cdus(8).cost();
        // Shared collector/splitter does not replicate.
        assert!(c8.area_mm2 > 1.8 * c4.area_mm2 && c8.area_mm2 < 2.0 * c4.area_mm2);
    }

    #[test]
    fn cache_side_replication_is_expensive() {
        // Sec. III-A: replicating CDUs across 48 partitions costs ~12x
        // the area of the 4-CDU DMA-side design — the reason JPEG is
        // done exclusively at the DMA side.
        let dma = Design::jpeg_act().cost();
        let cache = Design::jpeg_act().cache_side().cost();
        assert!(cache.area_mm2 > 10.0 * dma.area_mm2);
        assert!(cache.gpu_area_fraction > 0.01, "no longer <1% of the GPU");
    }

    #[test]
    fn power_ordering_matches_paper() {
        // cDMA+ < SFPR < JPEG-ACT < JPEG-BASE.
        let p: Vec<f64> = Design::table_v().iter().map(|d| d.cost().power_w).collect();
        assert!(p[0] < p[1] && p[1] < p[3] && p[3] < p[2], "{p:?}");
    }
}

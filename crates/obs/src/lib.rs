//! # jact-obs
//!
//! The deterministic observability runtime of the JPEG-ACT reproduction.
//! The paper's evaluation lives and dies on knowing where bytes and
//! cycles go — per-stage compression ratios (Fig. 15), PCIe frame
//! traffic, offload overlap — so every layer of the workspace funnels
//! its instrumentation through this crate instead of ad-hoc prints
//! (enforced by the JA08 lint in `jact-analyze`).
//!
//! Three design rules keep the layer compatible with the workspace's
//! determinism discipline (JA04):
//!
//! 1. **Logical clock, not wall clock.** Events are ordered by their
//!    position in the recording — a logical event counter — and the
//!    exporter assigns sequence numbers from that order alone.
//!    Wall-clock durations are recorded only when the capture was opened
//!    in wall mode (`JACT_OBS_WALL=1` for [`collect`]), so the default
//!    trace is byte-equal across runs and machines.
//! 2. **Thread-local sinks, chunk-ordered merges.** Recording is
//!    thread-local ([`is_active`] is per thread). Inside a `jact-par`
//!    region each chunk body records into a fresh sink via
//!    [`capture_with`] and the pool [`absorb`]s the per-chunk event
//!    lists back into the caller's sink in chunk-index order — the same
//!    merge discipline that makes the numeric results
//!    thread-count-invariant makes the traces thread-count-invariant.
//! 3. **Zero cost when idle.** Every emitting call checks the sink
//!    first; with no active capture the instrumentation allocates
//!    nothing and formats nothing.
//!
//! The exporter ([`Trace::to_json`] / [`Trace::report_json`]) emits the
//! `jact-obs/v1` schema documented in DESIGN.md §11, built on the
//! in-repo [`json`] writer (re-exported by `jact-bench` for the result
//! stores; it lives here so low-layer crates can use it without
//! depending on the harness).

#![forbid(unsafe_code)]

pub mod json;

mod event;
mod sink;
mod trace;

pub use event::{Event, Value};
pub use sink::{
    absorb, capture_with, collect, collect_with, count, gauge, is_active, observe, span,
    span_with, wall_active,
};
pub use trace::{Histogram, Trace, HIST_BUCKETS, TRACE_SCHEMA};

//! Trace assembly, aggregation, and the `jact-obs/v1` exporter.
//!
//! A [`Trace`] is the completed event list of one capture.  Two export
//! forms share the schema header:
//!
//! * [`Trace::to_json`] — the full event list, one JSON object per
//!   event with a `seq` number equal to its logical-clock position;
//!   span `end` events reference the `seq` of their matching `begin`.
//!   This is the form the golden-trace corpus pins byte-for-byte.
//! * [`Trace::report_json`] — aggregates only: counter totals, final
//!   gauge values, and histograms over the fixed [`HIST_BUCKETS`]
//!   layout.  This is the form `BENCH_obs.json` stores.
//!
//! Aggregation uses `BTreeMap`, so report ordering is lexicographic by
//! metric name and independent of emission order.

use std::collections::BTreeMap;

use crate::event::{Event, Value};
use crate::json::Json;

/// Schema identifier stamped into every exported document.
pub const TRACE_SCHEMA: &str = "jact-obs/v1";

/// Fixed histogram bucket upper bounds (inclusive): powers of four from
/// 4^0 to 4^15, plus an implicit overflow bucket above the last bound.
/// A fixed layout — rather than data-derived buckets — keeps reports
/// byte-comparable across runs, thread counts, and machines.
pub const HIST_BUCKETS: [f64; 16] = [
    1.0,
    4.0,
    16.0,
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
    67108864.0,
    268435456.0,
    1073741824.0,
];

/// An aggregated distribution over the fixed [`HIST_BUCKETS`] layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Sample count per bucket; bucket `i` holds samples `v` with
    /// `v <= HIST_BUCKETS[i]` and (for `i > 0`) `v > HIST_BUCKETS[i-1]`.
    pub buckets: [u64; 16],
    /// Samples above the last bound.
    pub overflow: u64,
    /// Total sample count.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: [0; 16],
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        for (i, bound) in HIST_BUCKETS.iter().enumerate() {
            if v <= *bound {
                self.buckets[i] += 1;
                return;
            }
        }
        self.overflow += 1;
    }

    /// JSON form: bucket counts in layout order plus overflow/count/sum.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("buckets", Json::Arr(self.buckets.iter().map(|&c| Json::from(c)).collect()))
            .field("overflow", self.overflow)
            .field("count", self.count)
            .field("sum", self.sum)
    }
}

/// The completed event list of one capture (see [`crate::collect`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Events in logical-clock order.
    pub events: Vec<Event>,
    /// Whether the capture ran in wall mode (span ends carry `wall_ns`).
    pub wall: bool,
}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total per counter name, summed over every `Count` event.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for ev in &self.events {
            if let Event::Count { name, delta } = ev {
                *out.entry(name.clone()).or_insert(0u64) += delta;
            }
        }
        out
    }

    /// Final value per gauge name (last write in logical order wins).
    pub fn gauges(&self) -> BTreeMap<String, Value> {
        let mut out = BTreeMap::new();
        for ev in &self.events {
            if let Event::Gauge { name, value } = ev {
                out.insert(name.clone(), value.clone());
            }
        }
        out
    }

    /// Aggregated histogram per distribution name.
    pub fn histograms(&self) -> BTreeMap<String, Histogram> {
        let mut out: BTreeMap<String, Histogram> = BTreeMap::new();
        for ev in &self.events {
            if let Event::Observe { name, value } = ev {
                out.entry(name.clone()).or_insert_with(Histogram::new).record(*value);
            }
        }
        out
    }

    /// The full `jact-obs/v1` trace document: every event with its
    /// logical sequence number; `end` events carry the `seq` of the
    /// `begin` they close (`null` for an unmatched end).
    pub fn to_json(&self) -> Json {
        let mut events = Vec::with_capacity(self.events.len());
        let mut stack: Vec<usize> = Vec::new();
        for (seq, ev) in self.events.iter().enumerate() {
            let j = match ev {
                Event::Begin { name, attrs } => {
                    stack.push(seq);
                    let mut o = Json::obj()
                        .field("seq", seq)
                        .field("ev", "begin")
                        .field("name", name.as_str());
                    if !attrs.is_empty() {
                        let fields: Vec<(String, Json)> =
                            attrs.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
                        o = o.field("attrs", Json::Obj(fields));
                    }
                    o
                }
                Event::End { wall_ns } => {
                    let open = match stack.pop() {
                        Some(i) => Json::from(i),
                        None => Json::Null,
                    };
                    let mut o = Json::obj()
                        .field("seq", seq)
                        .field("ev", "end")
                        .field("span", open);
                    if let Some(ns) = wall_ns {
                        o = o.field("wall_ns", *ns);
                    }
                    o
                }
                Event::Count { name, delta } => Json::obj()
                    .field("seq", seq)
                    .field("ev", "count")
                    .field("name", name.as_str())
                    .field("delta", *delta),
                Event::Gauge { name, value } => Json::obj()
                    .field("seq", seq)
                    .field("ev", "gauge")
                    .field("name", name.as_str())
                    .field("value", value.to_json()),
                Event::Observe { name, value } => Json::obj()
                    .field("seq", seq)
                    .field("ev", "observe")
                    .field("name", name.as_str())
                    .field("value", *value),
            };
            events.push(j);
        }
        Json::obj()
            .field("schema", TRACE_SCHEMA)
            .field("kind", "trace")
            .field("wall_clock", self.wall)
            .field("events", Json::Arr(events))
    }

    /// The aggregated `jact-obs/v1` report document: counter totals,
    /// final gauges, and fixed-layout histograms, keyed and ordered by
    /// metric name.
    pub fn report_json(&self) -> Json {
        let counters: Vec<(String, Json)> = self
            .counter_totals()
            .into_iter()
            .map(|(k, v)| (k, Json::from(v)))
            .collect();
        let gauges: Vec<(String, Json)> = self
            .gauges()
            .into_iter()
            .map(|(k, v)| (k, v.to_json()))
            .collect();
        let hists: Vec<(String, Json)> = self
            .histograms()
            .into_iter()
            .map(|(k, h)| (k, h.to_json()))
            .collect();
        Json::obj()
            .field("schema", TRACE_SCHEMA)
            .field("kind", "report")
            .field("wall_clock", self.wall)
            .field("events", self.events.len())
            .field("counters", Json::Obj(counters))
            .field("gauges", Json::Obj(gauges))
            .field("histograms", Json::Obj(hists))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::collect_with;
    use crate::sink::{count, gauge, observe, span, span_with};

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = Histogram::new();
        for v in [0.0, 1.0, 1.5, 4.0, 5.0, 2.0e9] {
            h.record(v);
        }
        assert_eq!(h.buckets[0], 2); // 0.0, 1.0
        assert_eq!(h.buckets[1], 2); // 1.5, 4.0
        assert_eq!(h.buckets[2], 1); // 5.0
        assert_eq!(h.overflow, 1); // 2.0e9
        assert_eq!(h.count, 6);
    }

    #[test]
    fn trace_json_links_end_to_begin() {
        let (_, t) = collect_with(false, || {
            span_with("outer", || vec![("k".to_string(), Value::from(3u64))], || {
                span("inner", || ());
            });
        });
        let s = t.to_json().to_string();
        assert!(s.contains(r#""schema":"jact-obs/v1""#), "{s}");
        // inner begin is seq 1, its end seq 2 references span 1;
        // outer end seq 3 references span 0.
        assert!(s.contains(r#"{"seq":2,"ev":"end","span":1}"#), "{s}");
        assert!(s.contains(r#"{"seq":3,"ev":"end","span":0}"#), "{s}");
        assert!(s.contains(r#""attrs":{"k":3}"#), "{s}");
    }

    #[test]
    fn report_aggregates_counters_gauges_histograms() {
        let (_, t) = collect_with(false, || {
            count("bytes", 3);
            count("bytes", 4);
            gauge("loss", 0.5f64);
            gauge("loss", 0.25f64);
            observe("frame", 100.0);
        });
        assert_eq!(t.counter_totals().get("bytes"), Some(&7));
        assert_eq!(t.gauges().get("loss"), Some(&Value::F64(0.25)));
        let s = t.report_json().to_string();
        assert!(s.contains(r#""kind":"report""#), "{s}");
        assert!(s.contains(r#""bytes":7"#), "{s}");
        assert!(s.contains(r#""loss":0.25"#), "{s}");
        assert!(s.contains(r#""count":1"#), "{s}");
    }

    #[test]
    fn identical_work_yields_byte_identical_traces() {
        let run = || {
            collect_with(false, || {
                span("a", || {
                    count("n", 1);
                    observe("d", 9.0);
                });
            })
            .1
            .to_json()
            .to_string()
        };
        assert_eq!(run(), run());
    }
}

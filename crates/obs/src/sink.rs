//! The thread-local sink and the recording API.
//!
//! A capture is opened with [`collect`] / [`collect_with`] (returning a
//! [`Trace`]) or [`capture_with`] (returning the raw event list, used by
//! `jact-par` to record chunk bodies on worker threads).  While a
//! capture is open on the current thread, [`span`], [`count`],
//! [`gauge`], and [`observe`] append events; with no capture open they
//! are no-ops that allocate nothing.
//!
//! Captures nest by saving and restoring the previous sink, so a
//! `jact-par` worker can open a fresh per-chunk sink even on the calling
//! thread (worker 0) without disturbing the enclosing capture.  If the
//! recorded closure panics, the capture in progress is abandoned with
//! the unwind — partial traces are never delivered.

use std::cell::RefCell;
use std::sync::LazyLock;

use crate::event::{Event, Value};
use crate::trace::Trace;

/// An in-progress recording on one thread.
struct Sink {
    events: Vec<Event>,
    wall: bool,
}

thread_local! {
    /// The current thread's capture, if one is open.
    static SINK: RefCell<Option<Sink>> = const { RefCell::new(None) };
}

/// Process-wide wall-mode default for [`collect`]: `JACT_OBS_WALL=1`
/// opts into wall-clock durations (and out of byte-stable traces).
/// Read once, like `JACT_THREADS` in `jact-par`.
static ENV_WALL: LazyLock<bool> =
    LazyLock::new(|| std::env::var("JACT_OBS_WALL").map(|v| v == "1").unwrap_or(false));

/// `true` while a capture is open on the current thread.
pub fn is_active() -> bool {
    SINK.with(|s| s.borrow().is_some())
}

/// `true` while the current thread's capture records wall-clock span
/// durations (capture opened in wall mode).
pub fn wall_active() -> bool {
    SINK.with(|s| s.borrow().as_ref().is_some_and(|k| k.wall))
}

fn push(ev: Event) {
    SINK.with(|s| {
        if let Some(k) = s.borrow_mut().as_mut() {
            k.events.push(ev);
        }
    });
}

/// Runs `f` under a fresh capture and returns its result plus the
/// recorded [`Trace`].  Wall mode follows `JACT_OBS_WALL` (golden-trace
/// tests use [`collect_with`] to pin it off regardless of environment).
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Trace) {
    collect_with(*ENV_WALL, f)
}

/// Runs `f` under a fresh capture with wall mode pinned explicitly.
/// `wall = false` guarantees a byte-stable trace; `wall = true` adds
/// `wall_ns` durations to span ends (diagnostics only — such traces do
/// not compare across runs).
pub fn collect_with<R>(wall: bool, f: impl FnOnce() -> R) -> (R, Trace) {
    let (r, events) = capture_with(wall, f);
    (r, Trace { events, wall })
}

/// Runs `f` under a fresh capture and returns the raw event list.
///
/// This is the merge primitive `jact-par` builds on: each chunk body is
/// captured on its worker thread and the pool [`absorb`]s the returned
/// lists into the caller's sink in chunk-index order, which keeps the
/// merged trace identical for any thread count.  The previous capture
/// on this thread (if any) is suspended for the duration and restored
/// afterwards.
pub fn capture_with<R>(wall: bool, f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    let prev = SINK.with(|s| {
        s.borrow_mut().replace(Sink {
            events: Vec::new(),
            wall,
        })
    });
    let r = f();
    let mine = SINK.with(|s| match prev {
        Some(p) => s.borrow_mut().replace(p),
        None => s.borrow_mut().take(),
    });
    (r, mine.map(|k| k.events).unwrap_or_default())
}

/// Appends pre-recorded events to the current thread's capture (no-op
/// when no capture is open).  Callers are responsible for ordering;
/// `jact-par` absorbs per-chunk lists in chunk-index order.
pub fn absorb(events: Vec<Event>) {
    SINK.with(|s| {
        if let Some(k) = s.borrow_mut().as_mut() {
            k.events.extend(events);
        }
    });
}

/// Adds `delta` to the named counter.
pub fn count(name: &str, delta: u64) {
    SINK.with(|s| {
        if let Some(k) = s.borrow_mut().as_mut() {
            k.events.push(Event::Count {
                name: name.to_string(),
                delta,
            });
        }
    });
}

/// Records the latest value of a named gauge.
pub fn gauge(name: &str, value: impl Into<Value>) {
    SINK.with(|s| {
        if let Some(k) = s.borrow_mut().as_mut() {
            k.events.push(Event::Gauge {
                name: name.to_string(),
                value: value.into(),
            });
        }
    });
}

/// Records one sample of a named distribution.
pub fn observe(name: &str, value: f64) {
    SINK.with(|s| {
        if let Some(k) = s.borrow_mut().as_mut() {
            k.events.push(Event::Observe {
                name: name.to_string(),
                value,
            });
        }
    });
}

/// Runs `f` inside a span named `name`.  With no capture open this is
/// exactly `f()`.
pub fn span<R>(name: &str, f: impl FnOnce() -> R) -> R {
    span_with(name, Vec::new, f)
}

/// Runs `f` inside a span with attributes.  `attrs` is a closure so the
/// attribute vector (and its string formatting) is only built when a
/// capture is actually open.
pub fn span_with<R>(
    name: &str,
    attrs: impl FnOnce() -> Vec<(String, Value)>,
    f: impl FnOnce() -> R,
) -> R {
    if !is_active() {
        return f();
    }
    push(Event::Begin {
        name: name.to_string(),
        attrs: attrs(),
    });
    let t0 = wall::start(wall_active());
    let r = f();
    push(Event::End {
        wall_ns: wall::elapsed_ns(t0),
    });
    r
}

/// Wall-clock reads, quarantined: they run only when the enclosing
/// capture was opened in wall mode, never on the deterministic default
/// path, so the JA04 exception is confined to these three lines.
mod wall {
    use std::time::Instant; // jact-analyze: allow(JA04)

    pub(crate) fn start(enabled: bool) -> Option<Instant> { // jact-analyze: allow(JA04)
        enabled.then(Instant::now) // jact-analyze: allow(JA04)
    }

    pub(crate) fn elapsed_ns(t0: Option<Instant>) -> Option<u64> { // jact-analyze: allow(JA04)
        t0.map(|t| t.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_api_is_a_noop() {
        assert!(!is_active());
        assert!(!wall_active());
        count("c", 1);
        gauge("g", 2u64);
        observe("o", 3.0);
        let r = span("s", || 42);
        assert_eq!(r, 42);
        assert!(!is_active());
    }

    #[test]
    fn collect_records_in_logical_order() {
        let (r, trace) = collect_with(false, || {
            count("bytes", 10);
            span("outer", || {
                gauge("depth", 1u64);
                span("inner", || observe("sample", 2.5));
            });
            7
        });
        assert_eq!(r, 7);
        assert_eq!(trace.events.len(), 7);
        assert!(matches!(&trace.events[0], Event::Count { name, delta: 10 } if name == "bytes"));
        assert!(matches!(&trace.events[1], Event::Begin { name, .. } if name == "outer"));
        assert!(matches!(&trace.events[3], Event::Begin { name, .. } if name == "inner"));
        assert!(matches!(&trace.events[5], Event::End { wall_ns: None }));
        assert!(matches!(&trace.events[6], Event::End { wall_ns: None }));
    }

    #[test]
    fn wall_mode_adds_durations_and_default_mode_never_does() {
        let (_, t) = collect_with(true, || span("s", || ()));
        assert!(matches!(t.events[1], Event::End { wall_ns: Some(_) }));
        let (_, t) = collect_with(false, || span("s", || ()));
        assert!(matches!(t.events[1], Event::End { wall_ns: None }));
    }

    #[test]
    fn capture_nests_and_restores_the_outer_sink() {
        let (_, outer) = collect_with(false, || {
            count("before", 1);
            let ((), inner) = capture_with(false, || count("inner", 2));
            // The inner capture recorded separately...
            assert_eq!(inner.len(), 1);
            // ...and the outer sink is active again.
            assert!(is_active());
            count("after", 3);
            absorb(inner);
        });
        let names: Vec<&str> = outer
            .events
            .iter()
            .map(|e| match e {
                Event::Count { name, .. } => name.as_str(),
                _ => "?",
            })
            .collect();
        assert_eq!(names, ["before", "after", "inner"]);
    }

    #[test]
    fn spans_and_counters_skip_allocation_when_idle() {
        // `span_with`'s attribute closure must not run when inactive.
        let mut built = false;
        span_with(
            "s",
            || {
                built = true;
                Vec::new()
            },
            || (),
        );
        assert!(!built);
    }
}

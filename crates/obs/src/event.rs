//! The event model: everything a capture records is one of five event
//! kinds, held in logical (recording) order.  Events carry no
//! timestamps by default — their position *is* the clock — so two runs
//! that perform the same work record identical event lists.

use crate::json::Json;

/// An attribute or gauge value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (byte counts, ids, element counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (ratios, simulated microseconds).
    F64(f64),
    /// Short label (codec names, network names).
    Str(String),
}

impl Value {
    /// The JSON rendering used by the `jact-obs/v1` exporter.
    pub fn to_json(&self) -> Json {
        match self {
            Value::U64(n) => Json::from(*n),
            Value::I64(n) => Json::from(*n),
            Value::F64(n) => Json::from(*n),
            Value::Str(s) => Json::from(s.as_str()),
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::U64(n)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::U64(n as u64)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::U64(n as u64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::I64(n)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::F64(n)
    }
}
impl From<f32> for Value {
    fn from(n: f32) -> Self {
        Value::F64(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// One recorded observability event.
///
/// Span nesting is structural: a `Begin` opens a span and the next
/// unmatched `End` closes it, exactly like brackets.  The exporter
/// reconstructs the hierarchy from that bracketing, so no span ids need
/// to be minted at record time (ids would have to be drawn from a
/// mutable global, which JA07 forbids outside `jact-par`).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Opens a span.
    Begin {
        /// Dot-separated span name (`codec.compress`, `stage.transform`).
        name: String,
        /// Attributes attached at open time, in insertion order.
        attrs: Vec<(String, Value)>,
    },
    /// Closes the innermost open span.
    End {
        /// Wall-clock duration in nanoseconds; present only when the
        /// capture runs in wall mode, absent on the deterministic path.
        wall_ns: Option<u64>,
    },
    /// Adds `delta` to the named counter (aggregated at export time).
    Count {
        /// Counter name.
        name: String,
        /// Amount added.
        delta: u64,
    },
    /// Records the latest value of a named gauge (last write wins).
    Gauge {
        /// Gauge name.
        name: String,
        /// New value.
        value: Value,
    },
    /// Records one sample of a named distribution; samples are bucketed
    /// into the fixed [`crate::HIST_BUCKETS`] layout at export time.
    Observe {
        /// Distribution name.
        name: String,
        /// Sample value.
        value: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_json_renderings() {
        assert_eq!(Value::from(7u64).to_json().to_string(), "7");
        assert_eq!(Value::from(-3i64).to_json().to_string(), "-3");
        assert_eq!(Value::from(1.5f64).to_json().to_string(), "1.5");
        assert_eq!(Value::from("sfpr").to_json().to_string(), "\"sfpr\"");
    }
}

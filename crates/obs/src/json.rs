//! A minimal hand-rolled JSON writer.
//!
//! The hermetic-build policy (README §Hermetic build) forbids registry
//! dependencies, so the `jact-obs/v1` exporter and the bench result
//! stores serialize through this tiny value tree instead of `serde`.
//! It lives in `jact-obs` (the lowest layer that needs it) and is
//! re-exported by `jact-bench` for the `BENCH_*.json` stores.  Output
//! is deterministic: object keys keep insertion order and numbers use a
//! fixed shortest-form rendering.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// All numbers are carried as `f64` (integers up to 2^53 are exact —
    /// far beyond any counter this workspace emits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object builder.
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects — builder misuse).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            // Builder misuse is a programming error at the call site, not
            // a data-dependent condition; unreachable from decode paths.
            _ => panic!("Json::field on non-object"), // jact-analyze: allow(JA03)
        }
        self
    }

    /// Serializes the tree to a compact JSON string.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation (for human-diffable files).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(xs) if !xs.is_empty() => {
                out.push_str("[\n");
                for (i, x) in xs.iter().enumerate() {
                    indent(out, depth + 1);
                    x.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < xs.len() { ",\n" } else { "\n" });
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}
impl From<f32> for Json {
    fn from(n: f32) -> Self {
        Json::Num(n as f64)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(xs: Vec<T>) -> Self {
        Json::Arr(xs.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let j = Json::obj()
            .field("name", "sfpr_compress")
            .field("median_ns", 12_345u64)
            .field("ok", true)
            .field("samples", vec![1.5f64, 2.0]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"sfpr_compress","median_ns":12345,"ok":true,"samples":[1.5,2]}"#
        );
    }

    #[test]
    fn escaping() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn pretty_round_structure() {
        let j = Json::obj().field("xs", vec![1u64]).field("e", Json::Arr(vec![]));
        let s = j.to_pretty_string();
        assert!(s.contains("\"xs\": [\n"), "{s}");
        assert!(s.contains("\"e\": []"), "{s}");
    }
}

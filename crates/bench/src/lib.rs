//! # jact-bench
//!
//! The experiment harness of the JPEG-ACT reproduction.  Each table and
//! figure of the paper's evaluation has a binary under `src/bin/` that
//! regenerates it (see DESIGN.md §4 for the index); this library holds the
//! shared machinery:
//!
//! * [`store`] — a recording activation store for harvesting realistic
//!   activations out of training runs;
//! * [`harness`] — end-to-end "train under scheme X" runners used by
//!   Table I, Figs. 1b, 17, 18, 19;
//! * [`tables`] — fixed-width table printing so every binary emits the
//!   same row/series format the paper reports.
//!
//! Set `JACT_QUICK=1` to shrink the training workloads (used by the smoke
//! tests; the full defaults are already scaled for CPU training).

pub mod harness;
pub mod store;
pub mod tables;

/// `true` when `JACT_QUICK=1`: experiments shrink to smoke-test size.
pub fn quick_mode() -> bool {
    std::env::var("JACT_QUICK").map(|v| v == "1").unwrap_or(false)
}

//! # jact-bench
//!
//! The experiment harness of the JPEG-ACT reproduction.  Each table and
//! figure of the paper's evaluation has a binary under `src/bin/` that
//! regenerates it (see DESIGN.md §4 for the index); this library holds the
//! shared machinery:
//!
//! * [`store`] — a recording activation store for harvesting realistic
//!   activations out of training runs;
//! * [`harness`] — end-to-end "train under scheme X" runners used by
//!   Table I, Figs. 1b, 17, 18, 19;
//! * [`tables`] — fixed-width table printing so every binary emits the
//!   same row/series format the paper reports;
//! * [`timing`] — the in-repo benchmark harness (warmup + calibrated
//!   samples + median/p95) behind the `benches/` targets, kept
//!   dependency-free by the hermetic-build policy;
//! * [`json`] — the hand-rolled JSON writer for `BENCH_*.json` result
//!   stores (set `JACT_BENCH_JSON=<dir>` when running a bench target);
//!   re-exported from `jact-obs`, where it also backs the `jact-obs/v1`
//!   trace exporter;
//! * [`obs_corpus`] — the pinned input tensor and per-codec trace
//!   recipe behind the golden-trace corpus in `tests/golden/`.
//!
//! Set `JACT_QUICK=1` to shrink the training workloads (used by the smoke
//! tests; the full defaults are already scaled for CPU training).

#![forbid(unsafe_code)]

pub mod harness;
pub mod obs_corpus;
pub mod store;
pub mod tables;
pub mod timing;

pub use jact_obs::json;

/// `true` when `JACT_QUICK=1`: experiments shrink to smoke-test size.
pub fn quick_mode() -> bool {
    std::env::var("JACT_QUICK").map(|v| v == "1").unwrap_or(false)
}

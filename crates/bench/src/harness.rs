//! End-to-end training runners: "train network N under compression
//! scheme S, report score and compression ratio" — the engine behind
//! Table I and Figs. 1b, 17, 18, 19.

use crate::store::RecordingStore;
use jact_core::fault::{FaultConfig, RecoveryPolicy};
use jact_core::{OffloadStore, Scheme};
use jact_data::synth::{classification_batches, SynthConfig};
use jact_data::sr::sr_batches;
use jact_dnn::act::{ActivationStore, FaultReport};
use jact_dnn::error::NetError;
use jact_dnn::models;
use jact_dnn::optim::{Sgd, SgdConfig};
use jact_dnn::train::Trainer;
use jact_tensor::init::seeded_rng;
use jact_tensor::Tensor;
use jact_rng::SeedableRng;

/// Training configuration for one experiment cell.
#[derive(Debug, Clone, Copy)]
pub struct TrainCfg {
    /// Training epochs.
    pub epochs: usize,
    /// Batches per epoch.
    pub train_batches: usize,
    /// Validation batches.
    pub val_batches: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Classes for classification tasks.
    pub classes: usize,
    /// RNG seed shared by model init and data.
    pub seed: u64,
}

impl TrainCfg {
    /// The default experiment scale (minutes of CPU per cell).
    pub fn standard() -> Self {
        TrainCfg {
            epochs: 6,
            train_batches: 10,
            val_batches: 8,
            batch_size: 8,
            classes: 10,
            seed: 42,
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        TrainCfg {
            epochs: 2,
            train_batches: 2,
            val_batches: 1,
            batch_size: 4,
            classes: 4,
            seed: 42,
        }
    }

    /// Picks scale from the environment (`JACT_QUICK=1`).
    pub fn from_env() -> Self {
        if crate::quick_mode() {
            Self::quick()
        } else {
            Self::standard()
        }
    }
}

/// Result of one (network, scheme) training cell.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Best validation score (top-1 accuracy, or PSNR for VDSR).
    pub best_score: f64,
    /// Average compression ratio across the run (Table I brackets).
    pub ratio: f64,
    /// `true` if training diverged (NaN loss or chance-level collapse).
    pub diverged: bool,
    /// Per-epoch validation scores (Fig. 17's time axis).
    pub epoch_scores: Vec<f64>,
}

/// Trains a classification model under a compression scheme.
///
/// `scheme = None` trains with exact (uncompressed) storage — the Table I
/// "Baseline" column.
pub fn train_classifier(model: &str, scheme: Option<Scheme>, cfg: &TrainCfg) -> TrainResult {
    let data_cfg = SynthConfig {
        classes: cfg.classes,
        // Enough pixel noise that the task does not saturate at this
        // scale — accuracy deltas between schemes stay visible.
        noise: 0.25,
        ..Default::default()
    };
    let train = classification_batches(&data_cfg, cfg.train_batches, cfg.batch_size, cfg.seed);
    let val = classification_batches(&data_cfg, cfg.val_batches, cfg.batch_size, cfg.seed + 999);

    let mut mrng = seeded_rng(cfg.seed);
    let net = models::build_by_name(model, 3, cfg.classes, &mut mrng).expect("registered model");
    // VGG has no batch norm: it needs the lower classic-VGG learning
    // rate or its ReLUs die (the real VGG-16 trained at 0.01 too).
    let lr = if model == "mini-vgg" { 0.01 } else { 0.03 };
    let opt = Sgd::new(SgdConfig {
        lr,
        momentum: 0.9,
        weight_decay: 5e-4,
    })
    .with_schedule(&[cfg.epochs.saturating_sub(2)], 0.2);

    let mut offload = scheme.map(OffloadStore::new);
    let mut exact = jact_dnn::act::PassthroughStore::new();
    let store: &mut dyn ActivationStore = match offload.as_mut() {
        Some(s) => s,
        None => &mut exact,
    };

    let mut trainer = Trainer::new(net, opt, jact_rng::rngs::StdRng::seed_from_u64(cfg.seed), store);
    let mut best = 0.0f64;
    let mut diverged = false;
    let mut epoch_scores = Vec::new();
    for e in 0..cfg.epochs {
        if let Some(s) = trainer.store.as_any_mut().downcast_mut::<OffloadStore>() {
            s.set_epoch(e);
        }
        let stats = trainer.train_epoch_classify(e, &train).expect("activations present");
        let v = trainer.evaluate_classify(&val);
        epoch_scores.push(v);
        best = best.max(v);
        if !stats.loss.is_finite() {
            diverged = true;
            break;
        }
    }
    // Chance-level collapse after training counts as divergence (Table I
    // asterisks).
    let chance = 1.0 / cfg.classes as f64;
    if *epoch_scores.last().unwrap_or(&0.0) < chance * 1.05 && best > chance * 1.5 {
        diverged = true;
    }
    let ratio = offload
        .as_ref()
        .map(|s| s.stats().overall_ratio())
        .unwrap_or(1.0);
    TrainResult {
        best_score: best,
        ratio,
        diverged,
        epoch_scores,
    }
}

/// Trains a classifier with the offload store in `through_wire` mode:
/// every activation load crosses the fault-injected wire and recovers
/// per `policy`.  Returns the training result plus the cumulative fault
/// report, or the first unrecovered [`NetError`].
///
/// # Errors
///
/// Under [`RecoveryPolicy::Fail`] (or an exhausted
/// [`RecoveryPolicy::Retry`] budget) the first detected-corrupt load
/// aborts the run with its typed error; [`RecoveryPolicy::ZeroFill`]
/// never errors.
pub fn train_classifier_faulty(
    model: &str,
    scheme: Scheme,
    fault: FaultConfig,
    policy: RecoveryPolicy,
    cfg: &TrainCfg,
) -> Result<(TrainResult, FaultReport), NetError> {
    let data_cfg = SynthConfig {
        classes: cfg.classes,
        noise: 0.25,
        ..Default::default()
    };
    let train = classification_batches(&data_cfg, cfg.train_batches, cfg.batch_size, cfg.seed);
    let val = classification_batches(&data_cfg, cfg.val_batches, cfg.batch_size, cfg.seed + 999);

    let mut mrng = seeded_rng(cfg.seed);
    let net = models::build_by_name(model, 3, cfg.classes, &mut mrng).expect("registered model");
    let lr = if model == "mini-vgg" { 0.01 } else { 0.03 };
    let opt = Sgd::new(SgdConfig {
        lr,
        momentum: 0.9,
        weight_decay: 5e-4,
    })
    .with_schedule(&[cfg.epochs.saturating_sub(2)], 0.2);

    let mut store = OffloadStore::through_wire(scheme, fault, policy);
    let mut trainer = Trainer::new(
        net,
        opt,
        jact_rng::rngs::StdRng::seed_from_u64(cfg.seed),
        &mut store,
    );
    let mut best = 0.0f64;
    let mut diverged = false;
    let mut epoch_scores = Vec::new();
    for e in 0..cfg.epochs {
        if let Some(s) = trainer.store.as_any_mut().downcast_mut::<OffloadStore>() {
            s.set_epoch(e);
        }
        let stats = trainer.train_epoch_classify(e, &train)?;
        let v = trainer.evaluate_classify(&val);
        epoch_scores.push(v);
        best = best.max(v);
        if !stats.loss.is_finite() {
            diverged = true;
            break;
        }
    }
    let report = store.fault_report();
    let ratio = store.stats().overall_ratio();
    Ok((
        TrainResult {
            best_score: best,
            ratio,
            diverged,
            epoch_scores,
        },
        report,
    ))
}

/// Trains the VDSR super-resolution model under a scheme; score is PSNR.
pub fn train_vdsr(scheme: Option<Scheme>, cfg: &TrainCfg) -> TrainResult {
    let size = 32usize;
    let train = sr_batches(cfg.train_batches, cfg.batch_size, 3, size, cfg.seed);
    let val = sr_batches(cfg.val_batches, cfg.batch_size, 3, size, cfg.seed + 999);

    let mut mrng = seeded_rng(cfg.seed);
    let net = models::vdsr(3, 16, 5, &mut mrng);
    let opt = Sgd::new(SgdConfig {
        lr: 0.01,
        momentum: 0.9,
        weight_decay: 0.0,
    });

    let mut offload = scheme.map(OffloadStore::new);
    let mut exact = jact_dnn::act::PassthroughStore::new();
    let store: &mut dyn ActivationStore = match offload.as_mut() {
        Some(s) => s,
        None => &mut exact,
    };
    let mut trainer = Trainer::new(net, opt, jact_rng::rngs::StdRng::seed_from_u64(cfg.seed), store);

    let mut best = 0.0f64;
    let mut diverged = false;
    let mut epoch_scores = Vec::new();
    for e in 0..cfg.epochs {
        if let Some(s) = trainer.store.as_any_mut().downcast_mut::<OffloadStore>() {
            s.set_epoch(e);
        }
        let stats = trainer.train_epoch_sr(e, &train).expect("activations present");
        let v = trainer.evaluate_sr(&val);
        epoch_scores.push(v);
        best = best.max(v);
        if !stats.loss.is_finite() {
            diverged = true;
            break;
        }
    }
    let ratio = offload
        .as_ref()
        .map(|s| s.stats().overall_ratio())
        .unwrap_or(1.0);
    TrainResult {
        best_score: best,
        ratio,
        diverged,
        epoch_scores,
    }
}

/// Harvests activations from a briefly-trained model: runs `warmup_steps`
/// training steps exactly, then records every save of one more step.
///
/// Returns `(kind, tensor)` pairs in save order — the sample set for the
/// DQT optimizer and the entropy/rate-distortion figures.
pub fn harvest_activations(
    model: &str,
    warmup_steps: usize,
    cfg: &TrainCfg,
) -> Vec<(jact_dnn::act::ActKind, Tensor)> {
    let data_cfg = SynthConfig {
        classes: cfg.classes,
        ..Default::default()
    };
    let batches = classification_batches(
        &data_cfg,
        warmup_steps.max(1) + 1,
        cfg.batch_size,
        cfg.seed,
    );
    let mut mrng = seeded_rng(cfg.seed);
    let net = models::build_by_name(model, 3, cfg.classes, &mut mrng).expect("registered model");
    let opt = Sgd::new(SgdConfig {
        lr: 0.03,
        momentum: 0.9,
        weight_decay: 5e-4,
    });
    let mut store = RecordingStore::new();
    let mut trainer = Trainer::new(net, opt, jact_rng::rngs::StdRng::seed_from_u64(cfg.seed), &mut store);
    for b in &batches[..warmup_steps] {
        let _ = trainer.step_classify(b).expect("activations present");
    }
    // The recording store's log accumulated every warmup step; keep only
    // the final step's worth.
    trainer
        .store
        .as_any_mut()
        .downcast_mut::<RecordingStore>()
        .expect("harness installed a RecordingStore")
        .take_log();
    let _ = trainer.step_classify(&batches[warmup_steps]).expect("activations present");
    trainer
        .store
        .as_any_mut()
        .downcast_mut::<RecordingStore>()
        .expect("harness installed a RecordingStore")
        .take_log()
}

/// Dense spatial activations harvested from a model (the DQT optimizer's
/// and rate/distortion figures' sample set).
pub fn harvest_dense(model: &str, warmup_steps: usize, cfg: &TrainCfg) -> Vec<Tensor> {
    harvest_activations(model, warmup_steps, cfg)
        .into_iter()
        .filter(|(k, t)| k.is_dense_spatial() && t.shape().rank() == 4)
        .map(|(_, t)| t)
        .collect()
}

//! Fixed-width table printing shared by every experiment binary.

/// Prints a header line followed by a rule.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a table: column headers plus string rows, left-aligned first
/// column, right-aligned the rest, width fitted per column.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        assert_eq!(r.len(), cols, "row width mismatch");
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let fmt_row = |cells: Vec<String>| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                line.push_str(&format!("{:<w$}  ", c, w = widths[0]));
            } else {
                line.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
        }
        line
    };
    println!(
        "{}",
        fmt_row(headers.iter().map(|s| s.to_string()).collect())
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * cols));
    for r in rows {
        println!("{}", fmt_row(r.clone()));
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a ratio like the paper's Table I brackets: `(4.1x)`.
pub fn ratio(v: f64) -> String {
    format!("({v:.1}x)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(pct(0.915), "91.5%");
        assert_eq!(ratio(8.46), "(8.5x)");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        print_table(&["a", "b"], &[vec!["x".into()]]);
    }
}

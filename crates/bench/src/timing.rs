//! The in-repo benchmark harness.
//!
//! Replaces `criterion` under the hermetic-build policy with the subset
//! the workspace needs: per-benchmark warmup, a fixed number of timed
//! samples with auto-calibrated iterations per sample, and median /
//! p95 / min reporting (plus bytes-per-second throughput when the group
//! declares a payload size).
//!
//! Results print as fixed-width rows and, when `JACT_BENCH_JSON` is set
//! to a directory, are also written as `BENCH_<harness>.json` via the
//! hand-rolled [`crate::json`] writer — the machine-readable record the
//! figure scripts and CI diffs consume.
//!
//! Set `JACT_QUICK=1` to collapse warmup and sample counts to smoke-test
//! size (used by the experiment smoke tests).

use crate::json::Json;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's summary statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Record {
    /// `group/name` label.
    pub id: String,
    /// Iterations per timed sample (auto-calibrated).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Minimum observed time per iteration.
    pub min_ns: f64,
    /// Median time per iteration.
    pub median_ns: f64,
    /// 95th-percentile time per iteration.
    pub p95_ns: f64,
    /// Mean time per iteration.
    pub mean_ns: f64,
    /// Payload bytes processed per iteration (when declared).
    pub bytes: Option<u64>,
}

impl Record {
    /// Throughput in MiB/s at the median, when a payload size is set.
    pub fn mib_per_s(&self) -> Option<f64> {
        self.bytes
            .map(|b| b as f64 / (1024.0 * 1024.0) / (self.median_ns * 1e-9))
    }

    fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .field("id", self.id.as_str())
            .field("iters_per_sample", self.iters_per_sample)
            .field("samples", self.samples)
            .field("min_ns", self.min_ns)
            .field("median_ns", self.median_ns)
            .field("p95_ns", self.p95_ns)
            .field("mean_ns", self.mean_ns);
        if let Some(b) = self.bytes {
            j = j
                .field("bytes", b)
                .field("mib_per_s", self.mib_per_s().unwrap_or(f64::NAN));
        }
        j
    }
}

/// Harness configuration; the defaults mirror the former criterion setup.
#[derive(Debug, Clone)]
pub struct Config {
    /// Timed samples collected per benchmark.
    pub sample_size: usize,
    /// Wall-clock spent warming up before calibration.
    pub warmup: Duration,
    /// Target wall-clock per timed sample (sets iterations per sample).
    pub target_sample_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        if crate::quick_mode() {
            Config {
                sample_size: 3,
                warmup: Duration::from_millis(5),
                target_sample_time: Duration::from_millis(2),
            }
        } else {
            Config {
                sample_size: 30,
                warmup: Duration::from_millis(300),
                target_sample_time: Duration::from_millis(20),
            }
        }
    }
}

/// The top-level harness: owns config and collects every record so
/// `finish()` can emit the JSON result store.
pub struct Harness {
    name: String,
    config: Config,
    records: Vec<Record>,
}

impl Harness {
    /// Creates a harness named after the bench target (used in the JSON
    /// file name: `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        Harness {
            name: name.into(),
            config: Config::default(),
            records: Vec::new(),
        }
    }

    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        if !crate::quick_mode() {
            self.config.sample_size = n.max(2);
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: impl Into<String>) -> Group<'_> {
        let name = name.into();
        eprintln!("\n== {} ==", name);
        eprintln!(
            "{:<28} {:>12} {:>12} {:>12} {:>12}",
            "benchmark", "median", "p95", "min", "throughput"
        );
        Group {
            harness: self,
            name,
            bytes: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<T>(&mut self, name: &str, f: impl FnMut() -> T) {
        let mut g = self.group("misc");
        g.bench_function(name, f);
    }

    /// Prints the footer and writes `BENCH_<name>.json` when
    /// `JACT_BENCH_JSON` names an output directory.
    pub fn finish(self) {
        eprintln!("\n{} benchmarks complete ({} records)", self.name, self.records.len());
        let Ok(dir) = std::env::var("JACT_BENCH_JSON") else {
            return;
        };
        let dir = if dir == "1" { ".".to_string() } else { dir };
        let json = Json::obj()
            .field("harness", self.name.as_str())
            .field("sample_size", self.config.sample_size)
            .field(
                "results",
                Json::Arr(self.records.iter().map(Record::to_json).collect()),
            );
        let path = format!("{dir}/BENCH_{}.json", self.name);
        match std::fs::write(&path, json.to_pretty_string()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// A benchmark group; mirrors the old criterion group API surface.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    bytes: Option<u64>,
}

impl Group<'_> {
    /// Declares the payload size one iteration processes, enabling
    /// throughput reporting.
    pub fn throughput_bytes(&mut self, bytes: u64) {
        self.bytes = Some(bytes);
    }

    /// Times `f` (one call = one iteration) and records the statistics.
    pub fn bench_function<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        let cfg = self.harness.config.clone();

        // Warmup: run until the warmup budget elapses, counting calls so
        // the iteration cost estimate falls out for free.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < cfg.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Calibrate iterations per sample toward the target sample time.
        let iters = ((cfg.target_sample_time.as_nanos() as f64 / est_ns.max(1.0)).ceil()
            as u64)
            .clamp(1, 1_000_000_000);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(cfg.sample_size);
        for _ in 0..cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let rec = Record {
            id: format!("{}/{}", self.name, name),
            iters_per_sample: iters,
            samples: per_iter_ns.len(),
            min_ns: per_iter_ns[0],
            median_ns: percentile(&per_iter_ns, 50.0),
            p95_ns: percentile(&per_iter_ns, 95.0),
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            bytes: self.bytes,
        };
        let tput = rec
            .mib_per_s()
            .map(|t| format!("{t:>9.1} MiB/s"))
            .unwrap_or_else(|| "-".to_string());
        eprintln!(
            "{:<28} {:>12} {:>12} {:>12} {:>12}",
            name,
            fmt_ns(rec.median_ns),
            fmt_ns(rec.p95_ns),
            fmt_ns(rec.min_ns),
            tput
        );
        self.harness.records.push(rec);
    }

    /// Ends the group (purely cosmetic; mirrors the old API).
    pub fn finish(self) {}
}

/// Linear-interpolated percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bench_produces_sane_record() {
        std::env::set_var("JACT_QUICK", "1");
        let mut h = Harness::new("selftest");
        let mut g = h.group("g");
        g.throughput_bytes(1024);
        let mut acc = 0u64;
        g.bench_function("spin", || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        g.finish();
        let r = &h.records[0];
        assert_eq!(r.id, "g/spin");
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
        assert!(r.mib_per_s().unwrap() > 0.0);
    }

    #[test]
    fn format_scales() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
    }
}

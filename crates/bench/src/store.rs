//! A recording activation store: behaves like the exact passthrough
//! store while also keeping an ordered log of everything saved — the way
//! the experiments harvest realistic activations (the paper's "240
//! example activations from a generator network", Sec. IV).

use jact_dnn::act::{ActKind, ActivationId, ActivationStore};
use jact_dnn::error::NetError;
use jact_tensor::Tensor;
use std::collections::BTreeMap;

/// Exact store that logs `(kind, tensor)` for every save.
#[derive(Debug, Default)]
pub struct RecordingStore {
    tensors: BTreeMap<ActivationId, Tensor>,
    log: Vec<(ActKind, Tensor)>,
    /// When set, only log tensors with at least this many elements
    /// (skips tiny FC activations when harvesting conv samples).
    min_len: usize,
}

impl RecordingStore {
    /// Creates an empty recording store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Only record tensors with at least `min_len` elements.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len;
        self
    }

    /// The ordered log of saved activations.
    pub fn log(&self) -> &[(ActKind, Tensor)] {
        &self.log
    }

    /// Takes the log, leaving the store usable.
    pub fn take_log(&mut self) -> Vec<(ActKind, Tensor)> {
        std::mem::take(&mut self.log)
    }

    /// Dense spatial activations (conv/sum/norm) from the log.
    pub fn dense_activations(&self) -> Vec<Tensor> {
        self.log
            .iter()
            .filter(|(k, t)| k.is_dense_spatial() && t.shape().rank() == 4)
            .map(|(_, t)| t.clone())
            .collect()
    }
}

impl ActivationStore for RecordingStore {
    fn save(&mut self, id: ActivationId, kind: ActKind, x: &Tensor) {
        if x.len() >= self.min_len {
            self.log.push((kind, x.clone()));
        }
        self.tensors.insert(id, x.clone());
    }

    fn load(&mut self, id: ActivationId) -> Result<Tensor, NetError> {
        self.tensors
            .get(&id)
            .cloned()
            .ok_or(NetError::MissingActivation(id))
    }

    fn clear(&mut self) {
        self.tensors.clear();
        // The log survives clear(): harvesting spans a whole step.
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jact_tensor::Shape;

    #[test]
    fn records_saves_in_order() {
        let mut s = RecordingStore::new();
        s.save(0, ActKind::Conv, &Tensor::zeros(Shape::nchw(1, 1, 4, 4)));
        s.save(1, ActKind::Dropout, &Tensor::zeros(Shape::vec(8)));
        assert_eq!(s.log().len(), 2);
        assert_eq!(s.log()[0].0, ActKind::Conv);
        assert_eq!(s.dense_activations().len(), 1);
    }

    #[test]
    fn min_len_filters_log_but_not_store() {
        let mut s = RecordingStore::new().with_min_len(10);
        s.save(0, ActKind::Conv, &Tensor::zeros(Shape::vec(4)));
        assert!(s.log().is_empty());
        assert_eq!(s.load(0).expect("saved above").len(), 4);
    }

    #[test]
    fn log_survives_clear() {
        let mut s = RecordingStore::new();
        s.save(0, ActKind::Conv, &Tensor::zeros(Shape::nchw(1, 1, 4, 4)));
        s.clear();
        assert_eq!(s.log().len(), 1);
        let log = s.take_log();
        assert_eq!(log.len(), 1);
        assert!(s.log().is_empty());
    }
}

//! Fig. 19: activation footprint breakdown by activation type, per
//! compression method — who wins on dense vs sparse activations.

use jact_bench::tables::{print_header, print_table};
use jact_bench::harness::TrainCfg;
use jact_core::{OffloadStore, Scheme};
use jact_dnn::act::Context;
use jact_dnn::models;
use jact_tensor::init::seeded_rng;
use jact_rng::SeedableRng;

/// Runs one forward pass of `model` through an offload store and returns
/// it with the per-kind statistics filled in.
fn footprint(model: &str, scheme: Scheme, cfg: &TrainCfg) -> OffloadStore {
    let data_cfg = jact_data::synth::SynthConfig {
        classes: cfg.classes,
        ..Default::default()
    };
    let batch = &jact_data::synth::classification_batches(&data_cfg, 1, cfg.batch_size, cfg.seed)[0];
    let mut mrng = seeded_rng(cfg.seed);
    let mut net = models::build_by_name(model, 3, cfg.classes, &mut mrng).expect("registered model");
    let mut store = OffloadStore::new(scheme);
    let mut rng = jact_rng::rngs::StdRng::seed_from_u64(cfg.seed);
    {
        let mut ctx = Context::new(true, &mut rng, &mut store);
        let _ = net.forward(&batch.images, &mut ctx);
    }
    store
}

fn main() {
    print_header("Fig. 19: activation footprint breakdown by type");
    let cfg = TrainCfg::from_env();
    let schemes = [
        ("vDNN", Scheme::vdnn()),
        ("cDMA+", Scheme::cdma_plus()),
        ("GIST", Scheme::gist()),
        ("SFPR", Scheme::sfpr()),
        ("JPEG-ACT(optL5H)", Scheme::jpeg_act_opt_l5h()),
    ];

    for model in ["mini-vgg", "mini-resnet-bottleneck"] {
        println!("\n--- {model} (one training-step forward pass) ---");
        // Collect the union of kinds across schemes for stable columns.
        let mut rows = Vec::new();
        let mut kinds: Vec<String> = Vec::new();
        let mut tables = Vec::new();
        for (name, s) in schemes.iter() {
            let store = footprint(model, s.clone(), &cfg);
            for (k, _) in store.stats().by_kind() {
                if !kinds.contains(&k.to_string()) {
                    kinds.push(k.to_string());
                }
            }
            tables.push((name, store));
        }
        kinds.sort();
        for (name, store) in &tables {
            let mut row = vec![name.to_string()];
            for k in &kinds {
                let v = store
                    .stats()
                    .by_kind()
                    .find(|(kk, _)| kk == k)
                    .map(|(_, s)| s.compressed as f64 / 1024.0)
                    .unwrap_or(0.0);
                row.push(format!("{v:.0}"));
            }
            row.push(format!("{:.0}", store.stats().total_compressed() as f64 / 1024.0));
            row.push(format!("{:.1}x", store.stats().overall_ratio()));
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["method".into()];
        headers.extend(kinds.iter().map(|k| format!("{k} (KiB)")));
        headers.push("total (KiB)".into());
        headers.push("ratio".into());
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(&headers_ref, &rows);
    }
    println!(
        "\n(paper Fig. 19: GIST's CSR wins on dropout networks; ResNets are\n\
         dominated by dense conv/sum activations that only JPEG compresses)"
    );
}

//! Fig. 2: frequency-entropy distribution for images vs non-sparse
//! conv activations — spatial vs DCT-domain Shannon entropy.

use jact_bench::harness::{harvest_dense, TrainCfg};
use jact_bench::tables::{f3, print_header, print_table};
use jact_core::metrics::spatial_frequency_entropy;
use jact_data::image::natural_image;

fn main() {
    print_header("Fig. 2: spatial vs frequency entropy (images and conv activations)");
    let cfg = TrainCfg::from_env();

    let mut rows = Vec::new();

    // Natural-image-like inputs.
    let mut img_sp = Vec::new();
    let mut img_fr = Vec::new();
    for seed in 0..6u64 {
        let img = natural_image(3, 32, seed);
        let (hs, hf) = spatial_frequency_entropy(&img);
        img_sp.push(hs);
        img_fr.push(hf);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    rows.push(vec![
        "images".into(),
        f3(mean(&img_sp)),
        f3(mean(&img_fr)),
        f3(mean(&img_sp) - mean(&img_fr)),
    ]);

    // Dense conv activations from a briefly-trained network.
    let acts = harvest_dense("mini-resnet-bottleneck", 2, &cfg);
    let mut act_sp = Vec::new();
    let mut act_fr = Vec::new();
    for a in acts.iter().take(12) {
        let (hs, hf) = spatial_frequency_entropy(a);
        act_sp.push(hs);
        act_fr.push(hf);
    }
    rows.push(vec![
        "conv activations".into(),
        f3(mean(&act_sp)),
        f3(mean(&act_fr)),
        f3(mean(&act_sp) - mean(&act_fr)),
    ]);

    print_table(
        &["source", "H spatial (b)", "H freq (b)", "freq gain (b)"],
        &rows,
    );
    println!(
        "\n(paper Fig. 2: both images and dense activations have lower entropy in\n\
         the frequency domain; activations keep a flatter tail than images)"
    );
}

//! Fig. 21: performance vs CDU count at fixed compression ratios, for
//! DMA-side and cache+DMA-side CDU placement (ResNet50/CIFAR10).

use jact_bench::tables::{print_header, print_table};
use jact_gpusim::config::GpuConfig;
use jact_gpusim::layout::cdu_sweep;
use jact_gpusim::netspec::resnet50_cifar;

fn main() {
    print_header("Fig. 21: performance when changing the number of CDUs (ResNet50/CIFAR10)");
    let pts = cdu_sweep(
        &resnet50_cifar(),
        &GpuConfig::titan_v(),
        &[2.0, 4.0, 8.0, 12.0],
        &[1, 2, 4, 8],
    );

    for placement in ["dma", "cache+dma"] {
        println!("\n--- {placement}-side compression ---");
        let mut rows = Vec::new();
        for &ratio in &[2.0, 4.0, 8.0, 12.0] {
            let mut row = vec![format!("{ratio}x")];
            for &cdus in &[1u32, 2, 4, 8] {
                let p = pts
                    .iter()
                    .find(|p| p.ratio == ratio && p.cdus == cdus && p.placement == placement)
                    .expect("grid point");
                row.push(format!("{:.3}", p.relative));
            }
            rows.push(row);
        }
        print_table(&["ratio \\ CDUs", "1", "2", "4", "8"], &rows);
    }
    println!(
        "\n(values are speedups over the 1-CDU DMA-side point at the same ratio;\n\
         paper: 2x/4x insensitive to CDUs — PCIe-bound; 12x gains 1.08x from 2->4\n\
         and <0.5% from 4->8; cache+DMA within ~1% of a 4-CDU DMA design)"
    );
}

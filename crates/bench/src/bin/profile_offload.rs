//! Stage-breakdown profile of the offload codecs (Fig. 15 flavor).
//!
//! Compresses and decompresses the golden-corpus activation under an
//! observability capture with every Table III codec (all four
//! quantizer × coder corners at both DQTs) plus every baseline pipeline,
//! then prints the per-stage byte funnel the trace recorded: bytes in,
//! bytes out, and the stage's reduction ratio — the data behind the
//! paper's "where does the compression come from" breakdown.
//!
//! Set `JACT_QUICK=1` to profile a smaller activation, and
//! `JACT_BENCH_JSON=<dir>` to also write the machine-readable
//! `BENCH_obs.json` report.

use jact_bench::json::Json;
use jact_bench::obs_corpus::{corpus_tensor, golden_matrix};
use jact_bench::tables;
use jact_codec::dpr::DprWidth;
use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{
    BrcCodec, Codec, DprCodec, GistCsrCodec, JpegActCodec, JpegBaseCodec, RawCodec, SfprCodec,
    SfprZvcCodec, ZvcF32Codec,
};
use jact_obs as obs;
use jact_tensor::{Shape, Tensor};

/// The profiled input: the golden corpus tensor, or a shrunken variant
/// of the same integer-lattice recipe under `JACT_QUICK=1`.
fn profile_tensor() -> Tensor {
    if !jact_bench::quick_mode() {
        return corpus_tensor();
    }
    let shape = Shape::nchw(1, 4, 16, 16);
    let data = (0..shape.len())
        .map(|i| {
            if i % 5 == 0 {
                0.0
            } else {
                (((i as i64 * 7) % 47) - 23) as f32 * 0.0625
            }
        })
        .collect();
    Tensor::from_vec(shape, data)
}

/// The full roster: every baseline pipeline plus the Table III matrix.
fn roster() -> Vec<(String, Box<dyn Codec>)> {
    let mut v: Vec<(String, Box<dyn Codec>)> = vec![
        ("raw".into(), Box::new(RawCodec)),
        ("zvc_f32".into(), Box::new(ZvcF32Codec)),
        ("dpr_f16".into(), Box::new(DprCodec::new(DprWidth::F16))),
        ("dpr_f8".into(), Box::new(DprCodec::new(DprWidth::F8))),
        ("gist_csr".into(), Box::new(GistCsrCodec)),
        ("sfpr".into(), Box::new(SfprCodec::new())),
        ("sfpr_zvc".into(), Box::new(SfprZvcCodec::new())),
        ("brc".into(), Box::new(BrcCodec)),
        (
            "jpeg_base_q80".into(),
            Box::new(JpegBaseCodec::new(Dqt::jpeg_quality(80))),
        ),
        (
            "jpeg_act_opth".into(),
            Box::new(JpegActCodec::new(Dqt::opt_h())),
        ),
    ];
    v.extend(golden_matrix());
    v
}

/// One profiled codec: the overall funnel plus the per-stage funnels
/// pulled out of the trace's counter totals.
struct Profile {
    name: String,
    bytes_in: u64,
    bytes_out: u64,
    stages: Vec<(String, u64, u64)>,
}

fn ratio(bytes_in: u64, bytes_out: u64) -> f64 {
    if bytes_in == 0 || bytes_out == 0 {
        1.0
    } else {
        bytes_in as f64 / bytes_out as f64
    }
}

fn profile(name: &str, codec: &dyn Codec, x: &Tensor) -> Profile {
    let (_, trace) = obs::collect(|| {
        let c = codec.compress(x);
        codec.decompress(&c).expect("profile roundtrip");
    });
    let totals = trace.counter_totals();
    let mut stages = Vec::new();
    for (key, &bytes_in) in &totals {
        if let Some(stage) = key
            .strip_prefix("stage.")
            .and_then(|r| r.strip_suffix(".bytes_in"))
        {
            let bytes_out = totals
                .get(&format!("stage.{stage}.bytes_out"))
                .copied()
                .unwrap_or(0);
            stages.push((stage.to_string(), bytes_in, bytes_out));
        }
    }
    Profile {
        name: name.to_string(),
        bytes_in: totals.get("codec.bytes_in").copied().unwrap_or(0),
        bytes_out: totals.get("codec.bytes_out").copied().unwrap_or(0),
        stages,
    }
}

fn main() {
    let x = profile_tensor();
    let profiles: Vec<Profile> = roster()
        .iter()
        .map(|(name, codec)| profile(name, codec.as_ref(), &x))
        .collect();

    tables::print_header("Offload stage profile (per-stage byte funnel)");
    println!("input: {:?} ({} bytes)", x.shape(), x.len() * 4);
    let mut rows = Vec::new();
    for p in &profiles {
        rows.push(vec![
            p.name.clone(),
            p.bytes_in.to_string(),
            p.bytes_out.to_string(),
            tables::ratio(ratio(p.bytes_in, p.bytes_out)),
        ]);
        for (stage, si, so) in &p.stages {
            rows.push(vec![
                format!("  stage.{stage}"),
                si.to_string(),
                so.to_string(),
                tables::ratio(ratio(*si, *so)),
            ]);
        }
    }
    tables::print_table(&["codec / stage", "bytes in", "bytes out", "ratio"], &rows);

    if let Ok(dir) = std::env::var("JACT_BENCH_JSON") {
        let dir = if dir == "1" { ".".to_string() } else { dir };
        let codecs: Vec<Json> = profiles
            .iter()
            .map(|p| {
                let stages: Vec<Json> = p
                    .stages
                    .iter()
                    .map(|(stage, si, so)| {
                        Json::obj()
                            .field("stage", stage.as_str())
                            .field("bytes_in", *si as f64)
                            .field("bytes_out", *so as f64)
                            .field("ratio", ratio(*si, *so))
                    })
                    .collect();
                Json::obj()
                    .field("codec", p.name.as_str())
                    .field("bytes_in", p.bytes_in as f64)
                    .field("bytes_out", p.bytes_out as f64)
                    .field("ratio", ratio(p.bytes_in, p.bytes_out))
                    .field("stages", Json::Arr(stages))
            })
            .collect();
        let doc = Json::obj()
            .field("schema", "jact-obs/v1")
            .field("kind", "stage-profile")
            .field("input_bytes", (x.len() * 4) as f64)
            .field("codecs", Json::Arr(codecs));
        let path = format!("{dir}/BENCH_obs.json");
        match std::fs::write(&path, doc.to_pretty_string()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

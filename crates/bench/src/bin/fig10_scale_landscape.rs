//! Fig. 10: recovered-activation error vs the SFPR global scaling factor
//! `S`, for SFPR alone and the JPEG pipelines — the clipping/truncation
//! trade-off behind the paper's choice of S = 1.125.

use jact_bench::harness::{harvest_dense, TrainCfg};
use jact_bench::tables::{print_header, print_table};
use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{Codec, CoderKind, JpegCodec, SfprCodec};
use jact_codec::quant::QuantKind;
use jact_codec::sfpr::SfprParams;
use jact_core::metrics::recovered_l2;
use jact_tensor::Tensor;

fn pipelines(s: f32) -> Vec<(String, Box<dyn Codec>)> {
    let p = SfprParams::with_scale(s);
    vec![
        ("SFPR".into(), Box::new(SfprCodec::with_params(p)) as Box<dyn Codec>),
        (
            "SFPR+DCT+DIV+RLE(jpeg80)".into(),
            Box::new(JpegCodec::new(Dqt::jpeg_quality(80), QuantKind::Div, CoderKind::Rle).with_sfpr(p)),
        ),
        (
            "SFPR+DCT+SH+ZVC(optL)".into(),
            Box::new(JpegCodec::new(Dqt::opt_l(), QuantKind::Shift, CoderKind::Zvc).with_sfpr(p)),
        ),
        (
            "SFPR+DCT+SH+ZVC(optH)".into(),
            Box::new(JpegCodec::new(Dqt::opt_h(), QuantKind::Shift, CoderKind::Zvc).with_sfpr(p)),
        ),
    ]
}

fn mean_error(codec: &dyn Codec, acts: &[Tensor]) -> f64 {
    let mut total = 0.0;
    for a in acts {
        let rec = codec
            .decompress(&codec.compress(a))
            .expect("payload produced by the same codec");
        total += recovered_l2(a, &rec);
    }
    total / acts.len() as f64
}

fn main() {
    print_header("Fig. 10: scaling factor landscape (recovered L2 error vs S)");
    let cfg = TrainCfg::from_env();
    let acts: Vec<Tensor> = harvest_dense("mini-resnet-bottleneck", 2, &cfg)
        .into_iter()
        .take(6)
        .collect();
    println!("evaluating on {} dense activations", acts.len());

    let sweep = [0.25f32, 0.5, 0.75, 1.0, 1.125, 1.25, 1.5, 2.0, 4.0];
    let names: Vec<String> = pipelines(1.0).into_iter().map(|(n, _)| n).collect();

    let mut rows = Vec::new();
    let mut best_s = vec![(f64::INFINITY, 0.0f32); names.len()];
    for &s in &sweep {
        let mut row = vec![format!("S={s}")];
        for (i, (_, codec)) in pipelines(s).iter().enumerate() {
            let e = mean_error(codec.as_ref(), &acts);
            if e < best_s[i].0 {
                best_s[i] = (e, s);
            }
            row.push(format!("{e:.6}"));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("S")
        .chain(names.iter().map(|s| s.as_str()))
        .collect();
    print_table(&headers, &rows);

    println!("\nerror-minimizing S per pipeline:");
    for (n, (_, s)) in names.iter().zip(&best_s) {
        println!("  {n}: S = {s}");
    }
    println!("(paper selects S = 1.125 as a single value across pipelines)");
}

//! Fault sweep: detection and recovery rates of the offload wire path
//! under injected transport faults.
//!
//! Two stages:
//!
//! 1. **Channel stage** — delivers serialized frames through a seeded
//!    [`FaultInjector`] at each fault rate and classifies every delivery:
//!    clean, detected-corrupt (typed decode error), or silent (bytes
//!    changed yet the frame still decoded — CRC32 collisions, expected
//!    to be zero at these scales).
//! 2. **Training stage** — runs the classifier under `through_wire`
//!    offload at each rate with both `ZeroFill` and a bounded `Retry`
//!    policy, reporting recovery counters and final score.
//!
//! Results print as a deterministic JSON document (`jact_bench::json`).
//! Set `JACT_QUICK=1` for the smoke-test scale used by `scripts/verify.sh`.

use jact_bench::harness::{train_classifier_faulty, TrainCfg};
use jact_bench::json::Json;
use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{Codec, JpegActCodec, SfprCodec};
use jact_codec::wire;
use jact_core::fault::{FaultConfig, FaultInjector, FaultModel, RecoveryPolicy};
use jact_core::Scheme;
use jact_tensor::{Shape, Tensor};

fn sample_tensor() -> Tensor {
    let shape = Shape::nchw(2, 4, 16, 16);
    let data = (0..shape.len())
        .map(|i| ((i % 16) as f32 * 0.3).sin() * 0.7)
        .collect();
    Tensor::from_vec(shape, data)
}

/// Channel-level classification of `deliveries` frame deliveries.
fn channel_point(rate: f64, deliveries: usize, seed: u64) -> Json {
    let codecs: Vec<(&str, Box<dyn Codec>)> = vec![
        ("jpeg-act", Box::new(JpegActCodec::new(Dqt::opt_h()))),
        ("sfpr", Box::new(SfprCodec::new())),
    ];
    let mut clean = 0u64;
    let mut detected = 0u64;
    let mut silent = 0u64;
    let mut faults = 0u64;
    for (i, (_, codec)) in codecs.iter().enumerate() {
        let frame = wire::serialize(&codec.compress(&sample_tensor()));
        let mut inj = FaultInjector::new(FaultConfig::new(rate, FaultModel::Mixed, seed + i as u64));
        for _ in 0..deliveries {
            let (rx, n) = inj.deliver(&frame);
            faults += n;
            if rx == frame {
                clean += 1;
            } else if wire::deserialize(&rx).is_err() {
                detected += 1;
            } else {
                silent += 1;
            }
        }
    }
    let dirty = detected + silent;
    Json::obj()
        .field("rate", rate)
        .field("deliveries", (deliveries * 2) as f64)
        .field("faults_injected", faults as f64)
        .field("clean", clean as f64)
        .field("detected", detected as f64)
        .field("silent", silent as f64)
        .field(
            "detection_rate",
            if dirty == 0 { 1.0 } else { detected as f64 / dirty as f64 },
        )
}

/// One fault-injected training cell.
fn training_point(rate: f64, policy: RecoveryPolicy, name: &str, cfg: &TrainCfg) -> Json {
    let point = Json::obj().field("rate", rate).field("policy", name);
    match train_classifier_faulty(
        "mini-resnet",
        Scheme::jpeg_act_opt_l5h(),
        FaultConfig::new(rate, FaultModel::Mixed, 17),
        policy,
        cfg,
    ) {
        Ok((result, report)) => point
            .field("completed", true)
            .field("best_score", result.best_score)
            .field("diverged", result.diverged)
            .field("wire_loads", report.wire_loads as f64)
            .field("faults_injected", report.faults_injected as f64)
            .field("corrupt_loads", report.corrupt_loads as f64)
            .field("retried_loads", report.retried_loads as f64)
            .field("recovered_loads", report.recovered_loads as f64)
            .field("zero_filled_loads", report.zero_filled_loads as f64)
            .field("corruption_rate", report.corruption_rate())
            .field("recovery_rate", report.recovery_rate()),
        Err(e) => point
            .field("completed", false)
            .field("error", e.to_string().as_str()),
    }
}

fn main() {
    let quick = jact_bench::quick_mode();
    let (rates, deliveries, cfg) = if quick {
        (vec![1e-6, 1e-3], 50usize, TrainCfg::quick())
    } else {
        (
            vec![1e-6, 1e-5, 1e-4, 1e-3],
            500usize,
            TrainCfg {
                epochs: 3,
                train_batches: 4,
                val_batches: 2,
                batch_size: 8,
                classes: 4,
                seed: 42,
            },
        )
    };

    let channel = rates
        .iter()
        .map(|&r| channel_point(r, deliveries, 29))
        .collect::<Vec<_>>();

    let mut training = Vec::new();
    for &rate in &rates {
        training.push(training_point(rate, RecoveryPolicy::ZeroFill, "zero-fill", &cfg));
        training.push(training_point(
            rate,
            RecoveryPolicy::Retry { attempts: 16 },
            "retry-16",
            &cfg,
        ));
    }

    let doc = Json::obj()
        .field("experiment", "fault_sweep")
        .field("quick", quick)
        .field("fault_model", "mixed")
        .field("channel", Json::Arr(channel))
        .field("training", Json::Arr(training));
    println!("{}", doc.to_pretty_string());
}

//! Table IV: JPEG-ACT synthesis results by component.

use jact_bench::tables::{f2, print_header, print_table};
use jact_hwmodel::component::TABLE_IV;

fn main() {
    print_header("Table IV: JPEG-ACT synthesis by component (15nm, 50% wire overhead)");
    let rows: Vec<Vec<String>> = TABLE_IV
        .iter()
        .map(|c| {
            vec![
                format!("{c:?}"),
                format!("{:.0}", c.area_um2()),
                f2(c.power_mw()),
                format!("{}", c.approx_gates()),
            ]
        })
        .collect();
    print_table(&["component", "area (um2)", "power (mW)", "~gates"], &rows);

    println!(
        "\nSH vs DIV quantizer area reduction: {:.0}% (paper: 88%)",
        (1.0 - jact_hwmodel::Component::QuantizeShift.area_um2()
            / jact_hwmodel::Component::QuantizeDiv.area_um2())
            * 100.0
    );
    println!(
        "ZVC vs RLE coding area reduction:   {:.0}%",
        (1.0 - jact_hwmodel::Component::CodingZvc.area_um2()
            / jact_hwmodel::Component::CodingRle.area_um2())
            * 100.0
    );
}

//! Fig. 18: percentage accuracy loss vs relative speedup — the scatter
//! that shows JPEG-ACT dominating the accuracy/performance frontier.
//!
//! Accuracy deltas come from functional training (as in Table I);
//! speedups come from the timing simulator, fed with the *measured*
//! compression ratios of each run.

use jact_bench::harness::{train_classifier, TrainCfg};
use jact_bench::tables::{print_header, print_table};
use jact_core::method::DqtSchedule;
use jact_core::Scheme;
use jact_codec::dqt::Dqt;
use jact_gpusim::config::GpuConfig;
use jact_gpusim::netspec::resnet50_cifar;
use jact_gpusim::offload::MethodModel;
use jact_gpusim::sim::relative_performance;

fn main() {
    print_header("Fig. 18: accuracy loss vs relative speedup (ResNet stand-in)");
    let cfg = TrainCfg::from_env();
    let model = "mini-resnet-bottleneck";
    let gpu = GpuConfig::titan_v();
    let net = resnet50_cifar();
    let vdnn = MethodModel::vdnn();

    eprintln!("training baseline...");
    let base = train_classifier(model, None, &cfg);

    // (label, scheme, performance model template)
    let points: Vec<(&str, Scheme, MethodModel)> = vec![
        ("cDMA+", Scheme::cdma_plus(), MethodModel::cdma_plus()),
        ("GIST", Scheme::gist(), MethodModel::gist()),
        ("SFPR", Scheme::sfpr(), MethodModel::sfpr()),
        ("JPEG-BASE jpeg80", Scheme::jpeg_base(80), MethodModel::jpeg_base()),
        ("JPEG-BASE jpeg60", Scheme::jpeg_base(60), MethodModel::jpeg_base()),
        (
            "JPEG-ACT optL",
            Scheme::jpeg_act(Dqt::opt_l()),
            MethodModel::jpeg_act(),
        ),
        (
            "JPEG-ACT optL5H",
            Scheme::JpegAct {
                schedule: DqtSchedule::Piecewise {
                    first: Dqt::opt_l(),
                    after: Dqt::opt_h(),
                    switch_epoch: 2,
                },
            },
            MethodModel::jpeg_act(),
        ),
    ];

    let mut rows = Vec::new();
    for (label, scheme, perf_template) in points {
        eprintln!("training under {label}...");
        let r = train_classifier(model, Some(scheme), &cfg);
        // Feed the measured overall ratio into the dense channel of the
        // performance model (sparse/BRC ratios keep the template values).
        let m = perf_template.clone().with_ratios(
            r.ratio,
            (r.ratio * 0.85).max(1.0),
            perf_template.relu_other_ratio,
        );
        let speedup = relative_performance(&net, &m, &vdnn, &gpu);
        let dacc = (r.best_score - base.best_score) * 100.0;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}x", r.ratio),
            format!("{speedup:.2}x"),
            format!("{dacc:+.1} pts{}", if r.diverged { " *" } else { "" }),
        ]);
    }
    print_table(
        &["method", "measured ratio", "speedup vs vDNN", "accuracy change"],
        &rows,
    );
    println!(
        "\n(paper Fig. 18: JPEG-ACT optL and optL5H sit on the frontier —\n\
         most speedup for a given accuracy loss)"
    );
}

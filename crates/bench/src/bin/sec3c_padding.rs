//! Sec. III-C: alignment-buffer padding overhead on the full ResNet
//! activation shape tables — `H,W` padding vs the paper's reshaped
//! `NCH,W` padding (paper: 6.4 % vs 3.0 % on ResNet50/ImageNet).

use jact_bench::tables::{print_header, print_table};
use jact_codec::block::{BlockLayout, PadStrategy};
use jact_tensor::Shape;

/// Dense activation shapes of ResNet-50 on 224×224 ImageNet inputs at
/// batch `n` (conv inputs + block outputs per stage).
fn resnet50_imagenet_shapes(n: usize) -> Vec<Shape> {
    let mut shapes = vec![Shape::nchw(n, 64, 112, 112)];
    // (blocks, mid_channels, out_channels, spatial)
    for &(blocks, mid, out, hw) in &[
        (3usize, 64usize, 256usize, 56usize),
        (4, 128, 512, 28),
        (6, 256, 1024, 14),
        (3, 512, 2048, 7),
    ] {
        for _ in 0..blocks {
            shapes.push(Shape::nchw(n, mid, hw, hw)); // conv2 input
            shapes.push(Shape::nchw(n, mid, hw, hw)); // conv3 input
            shapes.push(Shape::nchw(n, out, hw, hw)); // block output / sum
        }
    }
    shapes
}

/// ResNet-18 on ImageNet.
fn resnet18_imagenet_shapes(n: usize) -> Vec<Shape> {
    let mut shapes = vec![Shape::nchw(n, 64, 112, 112)];
    for &(blocks, c, hw) in &[
        (2usize, 64usize, 56usize),
        (2, 128, 28),
        (2, 256, 14),
        (2, 512, 7),
    ] {
        for _ in 0..blocks * 2 {
            shapes.push(Shape::nchw(n, c, hw, hw));
        }
    }
    shapes
}

/// CIFAR ResNet (32×32 inputs): all extents already multiples of 8.
fn resnet_cifar_shapes(n: usize) -> Vec<Shape> {
    let mut shapes = Vec::new();
    for &(blocks, c, hw) in &[(9usize, 16usize, 32usize), (9, 32, 16), (9, 64, 8)] {
        for _ in 0..blocks {
            shapes.push(Shape::nchw(n, c, hw, hw));
        }
    }
    shapes
}

/// Padding overhead relative to the network's total activation storage.
/// Only the JPEG-compressed dense activations are padded; the sparse
/// (ReLU/pool) activations of roughly equal footprint are stored
/// unpadded, so they enter the denominator only — as in the paper's
/// storage-overhead accounting.
fn overhead(shapes: &[Shape], strategy: PadStrategy) -> f64 {
    let mut dense = 0usize;
    let mut padded = 0usize;
    for s in shapes {
        let l = BlockLayout::with_strategy(s, strategy);
        dense += s.len();
        padded += l.padded_len();
    }
    let sparse = dense; // ReLU outputs mirror the dense tensors.
    (padded + sparse) as f64 / (dense + sparse) as f64 - 1.0
}

fn main() {
    print_header("Sec. III-C: activation padding overhead (batch 8)");
    let nets: Vec<(&str, Vec<Shape>)> = vec![
        ("ResNet50/ImageNet", resnet50_imagenet_shapes(8)),
        ("ResNet18/ImageNet", resnet18_imagenet_shapes(8)),
        ("ResNet/CIFAR10", resnet_cifar_shapes(8)),
    ];
    let rows: Vec<Vec<String>> = nets
        .iter()
        .map(|(name, shapes)| {
            vec![
                name.to_string(),
                format!("{:.1}%", overhead(shapes, PadStrategy::Hw) * 100.0),
                format!("{:.1}%", overhead(shapes, PadStrategy::NchW) * 100.0),
            ]
        })
        .collect();
    print_table(&["network", "H,W padding", "NCH,W padding"], &rows);
    println!(
        "\n(paper: 6.4% for H,W padding and 3.0% for NCH,W on ResNet50;\n\
         only the ImageNet networks need padding at all — CIFAR extents\n\
         are already multiples of 8)"
    );
}

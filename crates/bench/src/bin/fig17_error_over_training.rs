//! Fig. 17: activation error and entropy for JPEG compression with
//! various DQTs, evaluated on network snapshots across training epochs.

use jact_bench::harness::{harvest_dense, TrainCfg};
use jact_bench::tables::{print_header, print_table};
use jact_codec::dqt::Dqt;
use jact_codec::quant::QuantKind;
use jact_core::metrics::rate_distortion;
use jact_tensor::Tensor;

fn eval(dqt: &Dqt, acts: &[Tensor]) -> (f64, f64) {
    let mut h = 0.0;
    let mut e = 0.0;
    for a in acts {
        let (hh, ee) = rate_distortion(a, dqt, QuantKind::Shift);
        h += hh;
        e += ee;
    }
    (h / acts.len() as f64, e / acts.len() as f64)
}

fn main() {
    print_header("Fig. 17: activation error and entropy over training (mini-resnet)");
    let cfg = TrainCfg::from_env();
    let snapshots: Vec<usize> = if jact_bench::quick_mode() {
        vec![0, 2]
    } else {
        vec![0, 2, 5, 10, 16]
    };
    let dqts = [
        Dqt::jpeg_quality(80),
        Dqt::jpeg_quality(60),
        Dqt::opt_l(),
        Dqt::opt_h(),
    ];

    let mut err_rows = Vec::new();
    let mut ent_rows = Vec::new();
    for &steps in &snapshots {
        // Harvest a snapshot after `steps` optimization steps; the paper
        // snapshots per epoch — warmup steps stand in for epochs here.
        let acts: Vec<Tensor> = harvest_dense("mini-resnet", steps, &cfg)
            .into_iter()
            .take(5)
            .collect();
        let mut erow = vec![format!("step {steps}")];
        let mut hrow = vec![format!("step {steps}")];
        // optL5H follows optL for the first snapshots then optH.
        let switch = steps >= 5;
        for d in &dqts {
            let (h, e) = eval(d, &acts);
            erow.push(format!("{e:.6}"));
            hrow.push(format!("{h:.3}"));
        }
        let l5h = if switch { &dqts[3] } else { &dqts[2] };
        let (h, e) = eval(l5h, &acts);
        erow.push(format!("{e:.6}"));
        hrow.push(format!("{h:.3}"));
        err_rows.push(erow);
        ent_rows.push(hrow);
    }

    println!("\nactivation L2 error:");
    print_table(
        &["snapshot", "jpeg80", "jpeg60", "optL", "optH", "optL5H"],
        &err_rows,
    );
    println!("\ncompressed entropy (bits):");
    print_table(
        &["snapshot", "jpeg80", "jpeg60", "optL", "optH", "optL5H"],
        &ent_rows,
    );
    println!(
        "\n(paper: error highest in the first epochs — weight decay — then\n\
         stable; optL5H anneals the critical first 5 epochs with optL)"
    );
}

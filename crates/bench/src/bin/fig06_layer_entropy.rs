//! Fig. 6: conv activation entropy by network depth, spatial vs
//! frequency domain — spatial correlation persists deep into the network.

use jact_bench::harness::{harvest_dense, TrainCfg};
use jact_bench::tables::{f3, print_header, print_table};
use jact_core::metrics::spatial_frequency_entropy;

fn main() {
    print_header("Fig. 6: conv activation entropy by layer depth (mini-resnet-bottleneck)");
    let cfg = TrainCfg::from_env();
    let acts = harvest_dense("mini-resnet-bottleneck", 2, &cfg);

    let mut rows = Vec::new();
    let mut freq_wins = 0usize;
    for (i, a) in acts.iter().enumerate() {
        let (hs, hf) = spatial_frequency_entropy(a);
        if hf < hs {
            freq_wins += 1;
        }
        rows.push(vec![
            format!("layer {i:02} {}", a.shape()),
            f3(hs),
            f3(hf),
            if hf < hs { "freq".into() } else { "spatial".into() },
        ]);
    }
    print_table(
        &["dense activation", "H spatial (b)", "H freq (b)", "compact domain"],
        &rows,
    );
    println!(
        "\nfrequency domain more compact for {freq_wins}/{} dense activations\n\
         (paper: frequency entropy lower especially in early, wide layers)",
        rows.len()
    );
}

//! Gates on the codec throughput record (`BENCH_codec.json`).
//!
//! Two checks, both rooted in Sec. III-F's cost model:
//!
//! 1. **SH vs DIV (hard fail):** the shift quantizer exists because it is
//!    cheaper than division; if `codec_stages/quant_sh` has a higher
//!    median than `codec_stages/quant_div`, the shift path has regressed
//!    into recomputing its tables (the bug this PR fixed) and the check
//!    exits non-zero.
//! 2. **Fused-stage floor (warn / strict):** every `fused_stages/*` row
//!    should sustain ≥ 2 GiB/s of activation bytes on one worker thread.
//!    Shortfalls print warnings by default and fail the run when
//!    `JACT_BENCH_STRICT=1`, so noisy CI boxes don't flake the build but
//!    a real regression is still visible.
//!
//! Usage: `bench_check [path/to/BENCH_codec.json]` (defaults to
//! `./BENCH_codec.json`).

use std::process::ExitCode;

/// 2 GiB/s in MiB/s — the single-thread floor for the fused tile stages.
const FUSED_FLOOR_MIB_S: f64 = 2048.0;

/// One benchmark row pulled out of the JSON record.
#[derive(Debug)]
struct Row {
    id: String,
    median_ns: f64,
    mib_per_s: Option<f64>,
}

/// Extracts the string value following `"<key>": "` in `obj`.
fn str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = obj.find(&pat)? + pat.len();
    let end = obj[start..].find('"')?;
    Some(obj[start..start + end].to_string())
}

/// Extracts the numeric value following `"<key>": ` in `obj`.
fn num_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the harness JSON into rows by scanning for `"id"` fields — the
/// record layout is fixed by `jact_bench::timing`, so a full JSON parser
/// would be overkill for a CI gate.
fn parse_rows(json: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"id\": \"") {
        let obj = &rest[pos..];
        let next = obj[1..]
            .find("\"id\": \"")
            .map(|p| p + 1)
            .unwrap_or(obj.len());
        let obj = &obj[..next];
        if let (Some(id), Some(median_ns)) = (str_field(obj, "id"), num_field(obj, "median_ns")) {
            rows.push(Row {
                id,
                median_ns,
                mib_per_s: num_field(obj, "mib_per_s"),
            });
        }
        rest = &rest[pos + next..];
    }
    rows
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_codec.json".to_string());
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let rows = parse_rows(&json);
    let find = |id: &str| rows.iter().find(|r| r.id == id);

    let mut failed = false;
    let strict = std::env::var("JACT_BENCH_STRICT").is_ok_and(|v| v == "1");

    // Check 1: SH must not cost more than DIV.
    match (find("codec_stages/quant_div"), find("codec_stages/quant_sh")) {
        (Some(div), Some(sh)) => {
            let verdict = if sh.median_ns <= div.median_ns {
                "ok"
            } else {
                failed = true;
                "FAIL (inverted quantizer cost: SH slower than DIV)"
            };
            eprintln!(
                "bench_check: quant_sh {:.0} ns vs quant_div {:.0} ns — {verdict}",
                sh.median_ns, div.median_ns
            );
        }
        _ => {
            eprintln!("bench_check: {path} is missing codec_stages/quant_div or quant_sh");
            failed = true;
        }
    }

    // Check 2: fused single-thread stages against the 2 GiB/s floor.
    let fused: Vec<&Row> = rows
        .iter()
        .filter(|r| r.id.starts_with("fused_stages/"))
        .collect();
    if fused.is_empty() {
        eprintln!("bench_check: {path} has no fused_stages rows");
        failed = true;
    }
    for r in fused {
        match r.mib_per_s {
            Some(t) if t >= FUSED_FLOOR_MIB_S => {
                eprintln!("bench_check: {} {:.0} MiB/s — ok", r.id, t);
            }
            Some(t) => {
                eprintln!(
                    "bench_check: {} {:.0} MiB/s — below the {:.0} MiB/s single-thread floor{}",
                    r.id,
                    t,
                    FUSED_FLOOR_MIB_S,
                    if strict { " (strict: FAIL)" } else { " (warning)" }
                );
                if strict {
                    failed = true;
                }
            }
            None => {
                eprintln!("bench_check: {} has no throughput field", r.id);
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("bench_check: all gates passed");
        ExitCode::SUCCESS
    }
}

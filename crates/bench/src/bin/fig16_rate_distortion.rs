//! Fig. 16: rate/distortion trade-off — SFPR at 2/3/4 bits, JPEG-BASE
//! with image DQTs (jpeg40/60/80/90), and DQTs optimized at several α.

use jact_bench::harness::{harvest_dense, TrainCfg};
use jact_bench::tables::{print_header, print_table};
use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{Codec, SfprCodec};
use jact_codec::quant::QuantKind;
use jact_codec::sfpr::SfprParams;
use jact_core::dqt_opt::{optimize, DqtOptConfig};
use jact_core::metrics::{rate_distortion, recovered_l2, shannon_entropy_i8};
use jact_tensor::Tensor;

fn sfpr_point(bits: u32, acts: &[Tensor]) -> (f64, f64) {
    let codec = SfprCodec::with_params(SfprParams::with_bits(bits));
    let mut h = 0.0;
    let mut e = 0.0;
    for a in acts {
        let enc = jact_codec::sfpr::compress(a, SfprParams::with_bits(bits));
        h += shannon_entropy_i8(enc.values().iter().copied());
        let rec = codec
            .decompress(&codec.compress(a))
            .expect("payload produced by the same codec");
        e += recovered_l2(a, &rec);
    }
    (h / acts.len() as f64, e / acts.len() as f64)
}

fn jpeg_point(dqt: &Dqt, quant: QuantKind, acts: &[Tensor]) -> (f64, f64) {
    let mut h = 0.0;
    let mut e = 0.0;
    for a in acts {
        let (hh, ee) = rate_distortion(a, dqt, quant);
        h += hh;
        e += ee;
    }
    (h / acts.len() as f64, e / acts.len() as f64)
}

fn main() {
    print_header("Fig. 16: rate/distortion trade-off (entropy bits vs recovered L2 error)");
    let cfg = TrainCfg::from_env();
    let acts: Vec<Tensor> = harvest_dense("mini-resnet-bottleneck", 2, &cfg)
        .into_iter()
        .take(5)
        .collect();
    println!("evaluating on {} dense activations (trained snapshot)", acts.len());

    let mut rows = Vec::new();

    for bits in [2u32, 3, 4] {
        let (h, e) = sfpr_point(bits, &acts);
        rows.push(vec![format!("SFPR {bits}-bit"), format!("{h:.3}"), format!("{e:.6}")]);
    }

    for q in [40u32, 60, 80, 90] {
        let (h, e) = jpeg_point(&Dqt::jpeg_quality(q), QuantKind::Div, &acts);
        rows.push(vec![
            format!("JPEG-BASE jpeg{q}"),
            format!("{h:.3}"),
            format!("{e:.6}"),
        ]);
    }

    let iters = if jact_bench::quick_mode() { 1 } else { 10 };
    for alpha in [0.001f64, 0.005, 0.01, 0.025] {
        let res = optimize(
            &acts,
            &Dqt::jpeg_quality(80),
            &DqtOptConfig {
                alpha,
                iters,
                // Our objective surface is ~60x shallower than the
                // paper's (5 sample tensors vs 240): scale the step up.
                lr: 60.0,
                ..DqtOptConfig::opt_h()
            },
        );
        // Evaluated with the DIV back end, like the image-DQT points.
        let (h, e) = jpeg_point(&res.dqt, QuantKind::Div, &acts);
        rows.push(vec![
            format!("optimized a={alpha}"),
            format!("{h:.3}"),
            format!("{e:.6}"),
        ]);
    }

    for (name, dqt) in [("optL (shipped)", Dqt::opt_l()), ("optH (shipped)", Dqt::opt_h())] {
        let (h, e) = jpeg_point(&dqt, QuantKind::Shift, &acts);
        rows.push(vec![name.into(), format!("{h:.3}"), format!("{e:.6}")]);
    }

    print_table(&["configuration", "entropy H (b)", "L2 error"], &rows);
    println!(
        "\n(paper: optimized DQTs dominate image DQTs — about 1 bit lower entropy\n\
         at matched error; SFPR bit-reduction is strictly worse than transform\n\
         coding at the same rate)"
    );
}

//! Runs every experiment binary in DESIGN.md §4 order, in this process.
//!
//! ```sh
//! JACT_QUICK=1 cargo run --release -p jact-bench --bin run_all_experiments   # smoke
//! cargo run --release -p jact-bench --bin run_all_experiments               # full
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "fig01b_compression_overview",
        "fig02_freq_entropy",
        "fig06_layer_entropy",
        "fig10_scale_landscape",
        "fig16_rate_distortion",
        "fig17_error_over_training",
        "fig18_accuracy_vs_speedup",
        "fig19_footprint",
        "fig20_performance",
        "fig21_cdu_sweep",
        "table1_accuracy_compression",
        "table3_backend_matrix",
        "table4_synthesis",
        "table5_designs",
        "sec3c_padding",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for b in bins {
        let path = dir.join(b);
        eprintln!("\n######## {b} ########");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {b}: {e}"));
        if !status.success() {
            failures.push(b);
        }
    }
    if failures.is_empty() {
        eprintln!("\nall {} experiments completed", bins.len());
    } else {
        eprintln!("\nFAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}

//! Fig. 20: training performance relative to vDNN, per network × method
//! (three-CNR-block microbenchmarks at batch 16).

use jact_bench::tables::{print_header, print_table};
use jact_gpusim::config::GpuConfig;
use jact_gpusim::netspec::all_networks;
use jact_gpusim::offload::MethodModel;
use jact_gpusim::sim::relative_performance;

fn main() {
    print_header("Fig. 20: relative performance to vDNN (CNR microbenchmarks, batch 16)");
    let gpu = GpuConfig::titan_v();
    let methods = [
        MethodModel::vdnn(),
        MethodModel::cdma_plus(),
        MethodModel::gist(),
        MethodModel::sfpr(),
        MethodModel::jpeg_base(),
        MethodModel::jpeg_act(),
    ];
    let headers: Vec<&str> = std::iter::once("network")
        .chain(methods.iter().map(|m| m.name.as_str()))
        .collect();

    let nets = all_networks();
    let mut rows = Vec::new();
    let mut sums = vec![0.0f64; methods.len()];
    for net in &nets {
        let mut row = vec![net.name.clone()];
        for (i, m) in methods.iter().enumerate() {
            let rel = relative_performance(net, m, &methods[0], &gpu);
            sums[i] += rel;
            row.push(format!("{rel:.2}x"));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for s in &sums {
        avg_row.push(format!("{:.2}x", s / nets.len() as f64));
    }
    rows.push(avg_row);
    print_table(&headers, &rows);

    let jact_avg = sums[5] / nets.len() as f64;
    let gist_avg = sums[2] / nets.len() as f64;
    println!(
        "\nJPEG-ACT vs vDNN avg: {:.2}x (paper: 2.61x); JPEG-ACT vs GIST: {:.2}x (paper: 1.59x)",
        jact_avg,
        jact_avg / gist_avg
    );
}

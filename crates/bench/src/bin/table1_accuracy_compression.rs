//! Table I: validation score and compression ratio for every network ×
//! compression method — the paper's headline accuracy/compression table.
//!
//! Networks are the scaled-down counterparts on synthetic data (see
//! DESIGN.md §2), so absolute numbers differ from the paper; the shape to
//! check is the ratio ordering and the accuracy deltas.

use jact_bench::harness::{train_classifier, train_vdsr, TrainCfg, TrainResult};
use jact_bench::tables::{print_header, print_table};
use jact_core::method::DqtSchedule;
use jact_core::Scheme;
use jact_codec::dqt::Dqt;

fn schemes() -> Vec<(String, Option<Scheme>)> {
    vec![
        ("Baseline".into(), None),
        ("cDMA+".into(), Some(Scheme::cdma_plus())),
        ("GIST".into(), Some(Scheme::gist())),
        ("SFPR".into(), Some(Scheme::sfpr())),
        ("JPEG-BASE jpeg80".into(), Some(Scheme::jpeg_base(80))),
        ("JPEG-BASE jpeg60".into(), Some(Scheme::jpeg_base(60))),
        ("JPEG-ACT optL".into(), Some(Scheme::jpeg_act(Dqt::opt_l()))),
        ("JPEG-ACT optH".into(), Some(Scheme::jpeg_act(Dqt::opt_h()))),
        (
            "JPEG-ACT optL5H".into(),
            Some(Scheme::JpegAct {
                schedule: DqtSchedule::Piecewise {
                    first: Dqt::opt_l(),
                    after: Dqt::opt_h(),
                    switch_epoch: 2,
                },
            }),
        ),
    ]
}

fn cell(r: &TrainResult, pct: bool) -> String {
    let score = if pct {
        format!("{:.1}", r.best_score * 100.0)
    } else {
        format!("{:.1}", r.best_score)
    };
    let star = if r.diverged { "*" } else { "" };
    format!("{score}{star} ({:.1}x)", r.ratio)
}

fn main() {
    print_header("Table I: validation score and compression ratio per network x method");
    let cfg = TrainCfg::from_env();
    println!(
        "(synthetic data, {} classes, {} epochs x {} batches of {}; * = diverged)",
        cfg.classes, cfg.epochs, cfg.train_batches, cfg.batch_size
    );

    let models = [
        ("VGG-like", "mini-vgg"),
        ("ResNet (basic)", "mini-resnet"),
        ("ResNet (bottleneck)", "mini-resnet-bottleneck"),
        ("WRN", "wide-resnet"),
    ];

    let headers: Vec<String> = std::iter::once("network".to_string())
        .chain(schemes().iter().map(|(n, _)| n.clone()))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    for (label, model) in models {
        eprintln!("training {label} across {} schemes...", schemes().len());
        let mut row = vec![label.to_string()];
        for (_, scheme) in schemes() {
            let r = train_classifier(model, scheme, &cfg);
            row.push(cell(&r, true));
        }
        rows.push(row);
    }

    // VDSR (PSNR in dB instead of accuracy).
    eprintln!("training VDSR across {} schemes...", schemes().len());
    let mut row = vec!["VDSR (PSNR dB)".to_string()];
    for (_, scheme) in schemes() {
        let r = train_vdsr(scheme, &cfg);
        row.push(cell(&r, false));
    }
    rows.push(row);

    print_table(&headers_ref, &rows);
    println!(
        "\n(paper averages: cDMA+ 1.3x lossless; GIST 4.5x -1.07pt; SFPR 4x -0.12pt;\n\
         jpeg80 5.8x -0.87pt; jpeg60 6.6x -2.27pt; optL 6.7x +0.07pt;\n\
         optH 8.6x diverging on WRN+ResNet50; optL5H 8.5x -0.38pt)"
    );
}

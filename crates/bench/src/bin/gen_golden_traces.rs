//! Regenerates the golden-trace corpus in `tests/golden/`.
//!
//! Each file is the pretty-printed `jact-obs/v1` trace of compressing
//! and decompressing the pinned corpus tensor with one cell of the
//! Table III codec matrix (see `jact_bench::obs_corpus`).  The corpus is
//! checked in and asserted byte-equal by `tests/obs_golden.rs`; run this
//! binary **only** through `scripts/regen_golden.sh`, which exists so a
//! corpus change is always an explicit, reviewed act.

use jact_bench::obs_corpus::{golden_dir, golden_matrix, golden_trace};

fn main() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for (name, codec) in golden_matrix() {
        let trace = golden_trace(codec.as_ref());
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, &trace).expect("write golden trace");
        println!("wrote {} ({} bytes)", path.display(), trace.len());
    }
}

//! Table III: conv+sum compression ratio for every DQT × back-end pair —
//! the DIV/SH × RLE/ZVC ablation.

use jact_bench::harness::{harvest_dense, TrainCfg};
use jact_bench::tables::{print_header, print_table};
use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{Codec, CoderKind, JpegCodec};
use jact_codec::quant::QuantKind;
use jact_tensor::Tensor;

fn mean_ratio(dqt: &Dqt, quant: QuantKind, coder: CoderKind, acts: &[Tensor]) -> f64 {
    let codec = JpegCodec::new(dqt.clone(), quant, coder);
    let mut unc = 0usize;
    let mut com = 0usize;
    for a in acts {
        let c = codec.compress(a);
        unc += c.uncompressed_bytes();
        com += c.compressed_bytes();
    }
    unc as f64 / com as f64
}

fn main() {
    print_header("Table III: conv+sum compression for DQTs (cols) x JPEG back ends (rows)");
    let cfg = TrainCfg::from_env();
    let acts: Vec<Tensor> = harvest_dense("mini-resnet-bottleneck", 2, &cfg)
        .into_iter()
        .take(6)
        .collect();
    println!("measured on {} dense conv/sum activations", acts.len());

    let dqts = [
        Dqt::jpeg_quality(80),
        Dqt::jpeg_quality(60),
        Dqt::opt_l(),
        Dqt::opt_h(),
    ];
    let backends = [
        ("DIV+RLE", QuantKind::Div, CoderKind::Rle),
        ("SH+RLE", QuantKind::Shift, CoderKind::Rle),
        ("DIV+ZVC", QuantKind::Div, CoderKind::Zvc),
        ("SH+ZVC", QuantKind::Shift, CoderKind::Zvc),
    ];

    let mut rows = Vec::new();
    for (name, q, c) in backends {
        let mut row = vec![name.to_string()];
        for d in &dqts {
            row.push(format!("{:.2}", mean_ratio(d, q, c, &acts)));
        }
        rows.push(row);
    }
    print_table(&["back end", "jpeg80", "jpeg60", "optL", "optH"], &rows);

    let zvc_gain = mean_ratio(&dqts[3], QuantKind::Shift, CoderKind::Zvc, &acts)
        / mean_ratio(&dqts[3], QuantKind::Shift, CoderKind::Rle, &acts);
    println!(
        "\nZVC over RLE at optH: {zvc_gain:.2}x (paper: ~1.12x on frequency-domain\n\
         activations whose zeros are randomly spread)"
    );
}

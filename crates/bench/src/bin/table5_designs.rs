//! Table V: design comparison with buffers and 4 CDUs (crossbar
//! excluded) — power, area, compression, effective offload bandwidth.

use jact_bench::tables::{f2, print_header, print_table};
use jact_hwmodel::design::{Design, TITAN_V_AREA_MM2, TITAN_V_TDP_W};

fn main() {
    print_header("Table V: designs comparison (4 CDUs, buffers included, crossbar excluded)");
    let rows: Vec<Vec<String>> = Design::table_v()
        .iter()
        .map(|d| {
            let c = d.cost();
            vec![
                d.name.clone(),
                f2(c.power_w),
                f2(c.area_mm2),
                format!("{:.1}x", d.compression_ratio),
                f2(c.offload_gbps),
                format!("{:.2}%", c.gpu_area_fraction * 100.0),
                format!("{:.2}%", c.gpu_power_fraction * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "design",
            "power (W)",
            "area (mm2)",
            "compr",
            "offload (GB/s)",
            "% GPU area",
            "% GPU power",
        ],
        &rows,
    );
    println!(
        "\n(GPU reference: Titan V, {TITAN_V_AREA_MM2} mm2, {TITAN_V_TDP_W} W TDP)"
    );
    println!("paper Table V: cDMA+ 0.26W/0.35mm2/1.3x/15.6 | SFPR 0.35W/0.31mm2/4x/48 | JPEG-BASE 1.82W/2.16mm2/5.8x/69.6 | JPEG-ACT 1.36W/1.48mm2/8.5x/108.8");
}

//! Fig. 1b: average compression ratio and accuracy change for the four
//! headline schemes (vDNN, cDMA, GIST, JPEG-ACT) on the ResNet stand-in.

use jact_bench::harness::{train_classifier, TrainCfg};
use jact_bench::tables::{print_header, print_table};
use jact_core::Scheme;

fn main() {
    print_header("Fig. 1b: compression ratios and accuracy change (ResNet stand-in)");
    let cfg = TrainCfg::from_env();
    let model = "mini-resnet-bottleneck";

    eprintln!("training baseline...");
    let base = train_classifier(model, None, &cfg);

    let schemes = [
        ("vDNN (no compr.)", Scheme::vdnn()),
        ("cDMA", Scheme::cdma_plus()),
        ("GIST", Scheme::gist()),
        ("JPEG-ACT", Scheme::jpeg_act_opt_l5h()),
    ];

    let mut rows = Vec::new();
    for (name, s) in schemes {
        eprintln!("training under {name}...");
        let r = train_classifier(model, Some(s), &cfg);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}x", r.ratio),
            format!("{:+.1} pts", (r.best_score - base.best_score) * 100.0),
        ]);
    }
    print_table(&["scheme", "avg compression", "error change"], &rows);
    println!(
        "\n(paper Fig. 1b on ResNet50/ImageNet: vDNN 1x +0.0%; cDMA ~1.3x +0.0%;\n\
         GIST ~4x +3.2%; JPEG-ACT ~8x +0.2%)"
    );
}

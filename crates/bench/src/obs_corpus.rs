//! The golden-trace corpus: a pinned input tensor and the per-codec
//! recipe behind `tests/golden/*.json`.
//!
//! The corpus tensor is built from **integer arithmetic only** — no
//! `sin`/`cos`, whose libm implementations differ across platforms — so
//! every f32 in it (and therefore every byte of every recorded trace) is
//! identical on any host.  The remaining float work in the codecs
//! (SFPR's scale multiply/round, the integer DCT, quantization) consists
//! of IEEE-exact operations, so traces regenerate bit-for-bit.
//!
//! Traces are recorded with the wall clock **off** (`collect_with(false,
//! ..)`), keeping them free of host timing; `tests/obs_golden.rs` then
//! asserts byte-equal regeneration at 1, 2, and 8 threads.  Regenerate
//! the corpus only via `scripts/regen_golden.sh`.

use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{Codec, CoderKind, JpegCodec};
use jact_codec::quant::QuantKind;
use jact_obs as obs;
use jact_tensor::{Shape, Tensor};
use std::path::PathBuf;

/// The pinned corpus activation: `[8, 8, 32, 32]` — big enough to span
/// multiple parallel chunks in every codec stage, with ~20% zeros so the
/// sparse coders (ZVC, RLE) exercise their run paths.
pub fn corpus_tensor() -> Tensor {
    let shape = Shape::nchw(8, 8, 32, 32);
    let data = (0..shape.len())
        .map(|i| {
            if i % 5 == 0 {
                0.0
            } else {
                // Integer lattice pattern scaled by a power of two:
                // exact in f32 on every platform.
                let x = (i % 32) as i64;
                let y = ((i / 32) % 32) as i64;
                let c = ((i / 1024) % 8) as i64;
                let n = (i / 8192) as i64;
                (((x * 7 + y * 3 + c * 11 + n * 5) % 47) - 23) as f32 * 0.0625
            }
        })
        .collect();
    Tensor::from_vec(shape, data)
}

/// The Table III codec matrix the corpus pins: both quantizer kinds ×
/// both coder kinds × the JPEG-80 and optimized-high DQTs — eight traces.
pub fn golden_matrix() -> Vec<(String, Box<dyn Codec>)> {
    let dqts: [(&str, fn() -> Dqt); 2] =
        [("q80", || Dqt::jpeg_quality(80)), ("opth", Dqt::opt_h)];
    let mut v: Vec<(String, Box<dyn Codec>)> = Vec::new();
    for (dqt_name, dqt) in dqts {
        for (quant_name, quant) in [("div", QuantKind::Div), ("shift", QuantKind::Shift)] {
            for (coder_name, coder) in [("rle", CoderKind::Rle), ("zvc", CoderKind::Zvc)] {
                v.push((
                    format!("jpeg_{quant_name}_{coder_name}_{dqt_name}"),
                    Box::new(JpegCodec::new(dqt(), quant, coder)),
                ));
            }
        }
    }
    v
}

/// Records one golden trace: a wall-clock-free capture of compressing
/// and decompressing the corpus tensor, exported as pretty-printed
/// `jact-obs/v1` JSON (trailing newline included, matching the files on
/// disk).
pub fn golden_trace(codec: &dyn Codec) -> String {
    let x = corpus_tensor();
    let (_, trace) = obs::collect_with(false, || {
        let c = codec.compress(&x);
        codec
            .decompress(&c)
            .expect("corpus roundtrip cannot fail");
    });
    let mut s = trace.to_json().to_pretty_string();
    s.push('\n');
    s
}

/// The checked-in corpus directory: `tests/golden/` at the workspace
/// root, resolved relative to this crate so tests and bins agree.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_tensor_is_integer_exact_and_sparse() {
        let x = corpus_tensor();
        assert_eq!(x.len(), 8 * 8 * 32 * 32);
        // Every value is k/16 for integer k: scaling by 16 recovers
        // integers exactly.
        for &v in x.as_slice() {
            let scaled = v * 16.0;
            assert_eq!(scaled, scaled.trunc(), "non-lattice value {v}");
        }
        let zeros = x.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros * 5 >= x.len(), "corpus should be ~20%+ zeros");
    }

    #[test]
    fn golden_matrix_covers_all_eight_corners() {
        let m = golden_matrix();
        assert_eq!(m.len(), 8);
        let names: Vec<&str> = m.iter().map(|(n, _)| n.as_str()).collect();
        for quant in ["div", "shift"] {
            for coder in ["rle", "zvc"] {
                for dqt in ["q80", "opth"] {
                    let want = format!("jpeg_{quant}_{coder}_{dqt}");
                    assert!(names.contains(&want.as_str()), "missing {want}");
                }
            }
        }
    }

    #[test]
    fn golden_trace_is_reproducible_in_process() {
        let (_, codec) = &golden_matrix()[0];
        let a = golden_trace(codec.as_ref());
        let b = golden_trace(codec.as_ref());
        assert_eq!(a, b);
        assert!(a.contains("jact-obs/v1"));
    }
}

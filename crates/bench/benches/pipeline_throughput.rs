//! Benchmarks of the complete compression pipelines — the software-side
//! cost of each Table I method on one dense activation.  Runs on the
//! in-repo [`jact_bench::timing`] harness (hermetic-build policy).

use jact_bench::timing::{black_box, Harness};
use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{
    Codec, GistCsrCodec, JpegActCodec, JpegBaseCodec, RawCodec, SfprCodec, ZvcF32Codec,
};
use jact_tensor::{Shape, Tensor};

fn dense_activation() -> Tensor {
    let shape = Shape::nchw(4, 16, 32, 32);
    let data = (0..shape.len())
        .map(|i| ((i % 32) as f32 * 0.25).sin() * ((i / 1024 % 5) as f32 + 0.3))
        .collect();
    Tensor::from_vec(shape, data)
}

fn sparse_activation() -> Tensor {
    let mut x = dense_activation();
    x.map_in_place(|v| if v > 0.0 { v } else { 0.0 });
    x
}

fn main() {
    let dense = dense_activation();
    let sparse = sparse_activation();
    let bytes = (dense.len() * 4) as u64;

    let mut h = Harness::new("pipeline_throughput").sample_size(15);
    let mut g = h.group("pipelines");
    g.throughput_bytes(bytes);

    macro_rules! roundtrip {
        ($name:literal, $codec:expr, $input:expr) => {
            let codec = $codec;
            let input = $input;
            g.bench_function(concat!($name, "/compress"), || {
                codec.compress(black_box(input))
            });
            let compressed = codec.compress(input);
            g.bench_function(concat!($name, "/decompress"), || {
                codec
                    .decompress(black_box(&compressed))
                    .expect("payload produced by the same codec")
            });
        };
    }

    roundtrip!("raw", RawCodec, &dense);
    roundtrip!("zvc_f32", ZvcF32Codec, &sparse);
    roundtrip!("gist_csr", GistCsrCodec, &sparse);
    roundtrip!("sfpr", SfprCodec::new(), &dense);
    roundtrip!("jpeg_base_q80", JpegBaseCodec::new(Dqt::jpeg_quality(80)), &dense);
    roundtrip!("jpeg_act_optH", JpegActCodec::new(Dqt::opt_h()), &dense);
    g.finish();

    h.finish();
}

//! Criterion benchmarks of the GPU offload timing simulator itself —
//! cheap enough to sweep thousands of configurations (Fig. 21).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jact_gpusim::config::GpuConfig;
use jact_gpusim::layout::cdu_sweep;
use jact_gpusim::netspec::{all_networks, resnet50_imagenet};
use jact_gpusim::offload::MethodModel;
use jact_gpusim::sim::simulate_training_pass;

fn bench_sim(c: &mut Criterion) {
    let gpu = GpuConfig::titan_v();
    let net = resnet50_imagenet();
    let method = MethodModel::jpeg_act();

    c.bench_function("simulate_one_pass", |b| {
        b.iter(|| simulate_training_pass(black_box(&net), black_box(&method), &gpu))
    });

    c.bench_function("simulate_all_networks_all_methods", |b| {
        let nets = all_networks();
        let methods = [
            MethodModel::vdnn(),
            MethodModel::cdma_plus(),
            MethodModel::gist(),
            MethodModel::sfpr(),
            MethodModel::jpeg_base(),
            MethodModel::jpeg_act(),
        ];
        b.iter(|| {
            let mut acc = 0.0f64;
            for n in &nets {
                for m in &methods {
                    acc += simulate_training_pass(black_box(n), m, &gpu).total_us();
                }
            }
            acc
        })
    });

    c.bench_function("cdu_sweep_fig21", |b| {
        b.iter(|| {
            cdu_sweep(
                black_box(&net),
                &gpu,
                &[2.0, 4.0, 8.0, 12.0],
                &[1, 2, 4, 8],
            )
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_sim
);
criterion_main!(benches);

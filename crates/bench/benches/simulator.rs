//! Benchmarks of the GPU offload timing simulator itself — cheap enough
//! to sweep thousands of configurations (Fig. 21).  Runs on the in-repo
//! [`jact_bench::timing`] harness (hermetic-build policy).

use jact_bench::timing::{black_box, Harness};
use jact_gpusim::config::GpuConfig;
use jact_gpusim::layout::cdu_sweep;
use jact_gpusim::netspec::{all_networks, resnet50_imagenet};
use jact_gpusim::offload::MethodModel;
use jact_gpusim::sim::simulate_training_pass;

fn main() {
    let gpu = GpuConfig::titan_v();
    let net = resnet50_imagenet();
    let method = MethodModel::jpeg_act();

    let mut h = Harness::new("simulator").sample_size(30);
    let mut g = h.group("simulator");

    g.bench_function("simulate_one_pass", || {
        simulate_training_pass(black_box(&net), black_box(&method), &gpu)
    });

    let nets = all_networks();
    let methods = [
        MethodModel::vdnn(),
        MethodModel::cdma_plus(),
        MethodModel::gist(),
        MethodModel::sfpr(),
        MethodModel::jpeg_base(),
        MethodModel::jpeg_act(),
    ];
    g.bench_function("simulate_all_networks_all_methods", || {
        let mut acc = 0.0f64;
        for n in &nets {
            for m in &methods {
                acc += simulate_training_pass(black_box(n), m, &gpu).total_us();
            }
        }
        acc
    });

    g.bench_function("cdu_sweep_fig21", || {
        cdu_sweep(black_box(&net), &gpu, &[2.0, 4.0, 8.0, 12.0], &[1, 2, 4, 8])
    });
    g.finish();

    h.finish();
}

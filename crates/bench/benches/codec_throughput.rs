//! Throughput benchmarks for the compression primitives — the per-stage
//! costs behind the CDU pipeline design (Sec. III).  Runs on the in-repo
//! [`jact_bench::timing`] harness (hermetic-build policy: no criterion).
//!
//! Everything lands in one `BENCH_codec.json` record (harness "codec"):
//!
//! * `codec_stages`   — staged per-primitive costs on a shared activation,
//!   including the `quant_div` vs `quant_sh` pair Sec. III-F predicts
//!   (SH must not be slower than DIV — `bench_check` gates on this);
//! * `fused_stages`   — the streaming tile pipeline's stages pinned to one
//!   worker thread, in activation (f32) bytes per second;
//! * `dct_ablation`   — matrix-form vs factored fast DCT;
//! * `threads_*`      — whole-codec compress/decompress thread scaling.

use jact_bench::timing::{black_box, Harness};
use jact_codec::block::BlockLayout;
use jact_codec::brc::BrcMask;
use jact_codec::csr::Csr;
use jact_codec::dct::{dct2d_i8, idct2d_to_i8};
use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{Codec, JpegActCodec, JpegBaseCodec, SfprCodec, ZvcF32Codec};
use jact_codec::quant::{QuantKind, QuantTables};
use jact_codec::rle;
use jact_codec::sfpr::{self, SfprParams};
use jact_codec::tile::{self, FromBlocks};
use jact_codec::zvc::Zvc;
use jact_tensor::{Shape, Tensor};

fn activation(n: usize, c: usize, hw: usize) -> Tensor {
    let shape = Shape::nchw(n, c, hw, hw);
    let data = (0..shape.len())
        .map(|i| ((i % hw) as f32 * 0.3).sin() * ((i / hw % 7) as f32 + 0.2))
        .collect();
    Tensor::from_vec(shape, data)
}

fn quantized_blocks(x: &Tensor) -> Vec<[i8; 64]> {
    let enc = sfpr::compress(x, SfprParams::paper_default());
    let layout = BlockLayout::new(x.shape());
    let tables = QuantTables::new(QuantKind::Shift, &Dqt::opt_h());
    layout
        .to_blocks(enc.values())
        .iter()
        .map(|b| tables.quantize_block(&dct2d_i8(b)))
        .collect()
}

fn main() {
    let mut h = Harness::new("codec").sample_size(20);

    let x = activation(4, 16, 32);
    let bytes = (x.len() * 4) as u64;

    let mut g = h.group("codec_stages");
    g.throughput_bytes(bytes);

    g.bench_function("sfpr_compress", || {
        sfpr::compress(black_box(&x), SfprParams::paper_default())
    });

    let enc = sfpr::compress(&x, SfprParams::paper_default());
    let layout = BlockLayout::new(x.shape());
    g.bench_function("block_gather", || layout.to_blocks(black_box(enc.values())));

    let blocks = layout.to_blocks(enc.values());
    g.bench_function("dct2d_fixed_point", || {
        blocks
            .iter()
            .map(|blk| dct2d_i8(black_box(blk)))
            .collect::<Vec<_>>()
    });

    // The Sec. III-F cost comparison: DIV (multiply-shift against the
    // precomputed per-tensor magic table) vs SH (pure shifts against the
    // cached log2 table).  `bench_check` fails the build if SH comes out
    // slower than DIV — the inverted-cost bug this pair exists to catch.
    let coefs: Vec<[i16; 64]> = blocks.iter().map(dct2d_i8).collect();
    let tables_div = QuantTables::new(QuantKind::Div, &Dqt::jpeg_quality(80));
    g.bench_function("quant_div", || {
        coefs
            .iter()
            .map(|cf| tables_div.quantize_block(black_box(cf)))
            .collect::<Vec<_>>()
    });
    let tables_sh = QuantTables::new(QuantKind::Shift, &Dqt::opt_h());
    g.bench_function("quant_sh", || {
        coefs
            .iter()
            .map(|cf| tables_sh.quantize_block(black_box(cf)))
            .collect::<Vec<_>>()
    });

    let q = quantized_blocks(&x);
    g.bench_function("rle_encode", || rle::encode_blocks(black_box(&q)));
    let flat: Vec<i8> = q.iter().flatten().copied().collect();
    g.bench_function("zvc_encode", || Zvc::compress_i8(black_box(&flat)));

    let rle_bytes = rle::encode_blocks(&q);
    g.bench_function("rle_decode", || {
        rle::decode_blocks(black_box(&rle_bytes), q.len()).expect("valid stream")
    });
    let zvc_stream = Zvc::compress_i8(&flat);
    g.bench_function("zvc_decode", || {
        black_box(&zvc_stream).decompress_i8().expect("i8 stream")
    });

    g.bench_function("idct2d_fixed_point", || {
        coefs
            .iter()
            .map(|cf| idct2d_to_i8(black_box(cf)))
            .collect::<Vec<_>>()
    });

    g.bench_function("brc_mask", || BrcMask::compress(black_box(&x)));
    g.bench_function("csr_compress", || Csr::compress_default(black_box(enc.values())));
    g.finish();

    // Streaming tile pipeline stages, pinned to one worker thread.
    // Throughput is in activation (f32) bytes — the unit the CDU must
    // sustain against the PCIe link (Sec. III-G / Fig. 21) — over the
    // same tensor as `codec_stages`.  `bench_check` reports each row
    // against the 2 GiB/s single-thread floor.
    let num_blocks = layout.num_blocks();
    let mut f = h.group("fused_stages");
    f.throughput_bytes(bytes);
    // One `with_threads` region around the whole group: the pin applies to
    // every measurement without paying the pool-reconfiguration cost
    // inside each timed iteration.
    jact_par::with_threads(1, || {
        f.bench_function("gather", || {
            (0..num_blocks)
                .map(|bi| layout.gather_block(black_box(enc.values()), bi))
                .collect::<Vec<_>>()
        });
        f.bench_function("dct", || {
            blocks
                .iter()
                .map(|blk| dct2d_i8(black_box(blk)))
                .collect::<Vec<_>>()
        });
        f.bench_function("quant_div", || {
            coefs
                .iter()
                .map(|cf| tables_div.quantize_block(black_box(cf)))
                .collect::<Vec<_>>()
        });
        f.bench_function("quant_sh", || {
            coefs
                .iter()
                .map(|cf| tables_sh.quantize_block(black_box(cf)))
                .collect::<Vec<_>>()
        });
        f.bench_function("zvc_pack", || {
            tile::encode_zvc(black_box(&FromBlocks(&q)), num_blocks)
        });
    });
    f.finish();

    // Ablation: matrix-form 8-point DCT vs the factored fast DCT (the
    // hardware's LLM-style butterfly structure).
    let rows: Vec<[f32; 8]> = (0..512)
        .map(|r| {
            let mut row = [0.0f32; 8];
            for (i, v) in row.iter_mut().enumerate() {
                *v = (((r * 8 + i) as f32) * 0.1).sin() * 50.0;
            }
            row
        })
        .collect();
    let mut a = h.group("dct_ablation");
    a.bench_function("dct8_matrix", || {
        rows.iter()
            .map(|r| jact_codec::dct::dct8(black_box(r)))
            .collect::<Vec<_>>()
    });
    a.bench_function("dct8_fast", || {
        rows.iter()
            .map(|r| jact_codec::fast_dct::fast_dct8(black_box(r)))
            .collect::<Vec<_>>()
    });
    a.finish();

    // Thread-scaling axis: whole-codec compress/decompress throughput at
    // 1/2/4/max worker threads, pinned per-measurement with
    // `jact_par::with_threads` (outputs are bitwise identical across the
    // axis; only the wall-clock changes).
    let dense = activation(8, 16, 32);
    let mut sparse = dense.clone();
    sparse.map_in_place(|v| if v > 0.0 { v } else { 0.0 });
    let bytes = (dense.len() * 4) as u64;

    let max_threads = jact_par::Pool::global().threads();
    let axis: Vec<(String, usize)> = [1usize, 2, 4]
        .iter()
        .map(|&t| (t.to_string(), t))
        .chain(std::iter::once(("max".to_string(), max_threads)))
        .collect();

    for (label, threads) in &axis {
        let mut g = h.group(format!("threads_{label}"));
        g.throughput_bytes(bytes);

        macro_rules! scaling {
            ($name:literal, $codec:expr, $input:expr) => {
                let codec = $codec;
                let input = $input;
                g.bench_function(concat!($name, "/compress"), || {
                    jact_par::with_threads(*threads, || codec.compress(black_box(input)))
                });
                let compressed = codec.compress(input);
                g.bench_function(concat!($name, "/decompress"), || {
                    jact_par::with_threads(*threads, || {
                        codec
                            .decompress(black_box(&compressed))
                            .expect("payload produced by the same codec")
                    })
                });
            };
        }

        scaling!("sfpr", SfprCodec::new(), &dense);
        scaling!("zvc_f32", ZvcF32Codec, &sparse);
        scaling!("jpeg_base", JpegBaseCodec::new(Dqt::jpeg_quality(80)), &dense);
        scaling!("jpeg_act", JpegActCodec::new(Dqt::opt_h()), &dense);
        g.finish();
    }

    h.finish();
}

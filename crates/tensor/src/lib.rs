//! # jact-tensor
//!
//! A small, dependency-light NCHW `f32` tensor library that serves as the
//! compute substrate for the JPEG-ACT reproduction.
//!
//! The paper (Evans, Liu, Aamodt, *JPEG-ACT*, ISCA 2020) compresses CNN
//! activation tensors laid out in NCHW order (batch, channel, height,
//! width).  Everything in this workspace — the compression codecs, the CNN
//! training substrate, and the experiment harnesses — operates on the
//! [`Tensor`] type defined here.
//!
//! The library provides:
//!
//! * [`Shape`] — a rank-checked dimension descriptor with NCHW helpers,
//! * [`Tensor`] — a contiguous row-major `f32` tensor,
//! * [`ops`] — elementwise ops, reductions, matrix multiply, and the
//!   `im2col`/`col2im` lowering used by the convolution layers,
//! * [`init`] — deterministic weight initializers (He / Xavier).
//!
//! ## Example
//!
//! ```
//! use jact_tensor::{Tensor, Shape};
//!
//! let x = Tensor::zeros(Shape::nchw(2, 3, 8, 8));
//! assert_eq!(x.len(), 2 * 3 * 8 * 8);
//! let y = x.map(|v| v + 1.0);
//! assert_eq!(y.get4(1, 2, 7, 7), 1.0);
//! ```

#![forbid(unsafe_code)]

pub mod init;
pub mod ops;
pub mod shape;
pub mod tensor;

pub use shape::Shape;
pub use tensor::Tensor;

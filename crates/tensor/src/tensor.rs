//! The contiguous row-major `f32` tensor type.

use crate::Shape;
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// This is the single value type flowing through the whole workspace:
/// network activations, weights, gradients, im2col buffers, and the inputs
/// to every compression pipeline.  Rank-4 tensors are interpreted as NCHW.
///
/// The type deliberately owns its storage (`Vec<f32>`); views/strides are
/// avoided to keep the codec layers simple and allocation behaviour obvious.
///
/// # Example
///
/// ```
/// use jact_tensor::{Tensor, Shape};
///
/// let mut t = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
/// t.set4(0, 0, 1, 1, 3.5);
/// assert_eq!(t.get4(0, 0, 1, 1), 3.5);
/// assert_eq!(t.iter().sum::<f32>(), 3.5);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor from an existing data buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor::from_vec(Shape::vec(data.len()), data.to_vec())
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the tensor has no elements (never, by [`Shape`] invariant).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutable iteration over elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Reads element `(n, c, h, w)` of an NCHW tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 (index checks in debug builds).
    #[inline]
    pub fn get4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.offset4(n, c, h, w)]
    }

    /// Writes element `(n, c, h, w)` of an NCHW tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 (index checks in debug builds).
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let off = self.shape.offset4(n, c, h, w);
        self.data[off] = v;
    }

    /// Returns a copy with shape `new_shape`; element order is preserved.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, new_shape: Shape) -> Tensor {
        assert_eq!(
            self.len(),
            new_shape.len(),
            "cannot reshape {} to {new_shape}",
            self.shape
        );
        Tensor {
            shape: new_shape,
            data: self.data.clone(),
        }
    }

    /// Reinterprets the shape in place (no copy); element order preserved.
    ///
    /// This is the "reshape requires no data movement" operation the paper
    /// relies on when folding `N*C*H x W` for block alignment (Sec. III-C).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, new_shape: Shape) {
        assert_eq!(self.len(), new_shape.len());
        self.shape = new_shape;
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise binary combination of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for the impossible empty case).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute value over all elements.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Fraction of elements equal to zero.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&v| v == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Mean squared difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch in mse");
        let mut acc = 0.0f64;
        for (&a, &b) in self.data.iter().zip(&other.data) {
            let d = (a - b) as f64;
            acc += d * d;
        }
        acc / self.data.len() as f64
    }

    /// L2 norm of the difference to `other`: `||self - other||_2`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn l2_distance(&self, other: &Tensor) -> f64 {
        (self.mse(other) * self.data.len() as f64).sqrt()
    }

    /// Per-channel maximum of `|x|` over the `n`, `h`, `w` axes of an NCHW
    /// tensor — the `max_nhw(|x_nchw|)` reduction in SFPR (Eqn. 4).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4.
    pub fn channel_max_abs(&self) -> Vec<f32> {
        let (n, c, h, w) = (
            self.shape.n(),
            self.shape.c(),
            self.shape.h(),
            self.shape.w(),
        );
        let mut maxes = vec![0.0f32; c];
        let plane = h * w;
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let m = &mut maxes[ci];
                for &v in &self.data[base..base + plane] {
                    let a = v.abs();
                    if a > *m {
                        *m = a;
                    }
                }
            }
        }
        maxes
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor({}, mean={:.4}, max|x|={:.4})",
            self.shape,
            self.mean(),
            self.max_abs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(Shape::nchw(2, 2, 2, 2));
        assert_eq!(t.len(), 16);
        t.set4(1, 1, 1, 1, 7.0);
        assert_eq!(t.get4(1, 1, 1, 1), 7.0);
        assert_eq!(t.as_slice()[15], 7.0);
    }

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(Shape::mat(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum(), 10.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_len_mismatch_panics() {
        let _ = Tensor::from_vec(Shape::mat(2, 2), vec![1.0]);
    }

    #[test]
    fn reshape_preserves_order() {
        let t = Tensor::from_vec(Shape::mat(2, 3), (0..6).map(|i| i as f32).collect());
        let r = t.reshape(Shape::new(&[3, 2]));
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape().dim(0), 3);
    }

    #[test]
    fn map_zip_and_reductions() {
        let a = Tensor::from_slice(&[1.0, -2.0, 3.0, 0.0]);
        let b = a.map(|v| v * 2.0);
        assert_eq!(b.as_slice(), &[2.0, -4.0, 6.0, 0.0]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.sum(), 6.0);
        assert_eq!(a.max_abs(), 3.0);
        assert_eq!(a.mean(), 0.5);
        assert!((a.sparsity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mse_and_l2() {
        let a = Tensor::from_slice(&[0.0, 0.0, 0.0, 0.0]);
        let b = Tensor::from_slice(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(a.mse(&b), 1.0);
        assert_eq!(a.l2_distance(&b), 2.0);
    }

    #[test]
    fn channel_max_abs_reduces_over_nhw() {
        let mut t = Tensor::zeros(Shape::nchw(2, 3, 2, 2));
        t.set4(0, 0, 0, 0, -5.0);
        t.set4(1, 0, 1, 1, 3.0);
        t.set4(1, 2, 0, 1, 9.0);
        assert_eq!(t.channel_max_abs(), vec![5.0, 0.0, 9.0]);
    }

    #[test]
    fn full_and_mean() {
        let t = Tensor::full(Shape::vec(10), 2.5);
        assert_eq!(t.mean(), 2.5);
    }
}

//! Tensor kernels: matrix multiply and the im2col/col2im convolution
//! lowering.
//!
//! Convolution forward and backward passes in `jact-dnn` are expressed as
//! matrix multiplications over im2col-unrolled patches — the same lowering
//! cuDNN's `IMPLICIT_GEMM` algorithm performs on the GPU in the paper's
//! experimental setup (Sec. VI-D).

use crate::{Shape, Tensor};

/// Dense row-major matrix multiply: `C[m x n] = A[m x k] * B[k x n]`.
///
/// A simple blocked triple loop with the `k` loop innermost hoisted —
/// adequate for the scaled-down networks in this reproduction.
///
/// # Panics
///
/// Panics if the shapes are not rank 2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[kk * n..(kk + 1) * n];
            for (o, &bkn) in orow.iter_mut().zip(brow) {
                *o += aik * bkn;
            }
        }
    }
    Tensor::from_vec(Shape::mat(m, n), out)
}

/// Transposes a rank-2 tensor.
///
/// # Panics
///
/// Panics if `a` is not rank 2.
pub fn transpose(a: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "transpose requires rank 2");
    let (m, n) = (a.shape().dim(0), a.shape().dim(1));
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = av[i * n + j];
        }
    }
    Tensor::from_vec(Shape::mat(n, m), out)
}

/// Spatial geometry of a convolution / pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Kernel height and width (square kernels only).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub pad: usize,
}

impl ConvGeom {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be > 0");
        ConvGeom {
            kernel,
            stride,
            pad,
        }
    }

    /// Output spatial extent for an input extent `i`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit (`i + 2*pad < kernel`).
    pub fn out_extent(&self, i: usize) -> usize {
        assert!(
            i + 2 * self.pad >= self.kernel,
            "input extent {i} too small for kernel {} with pad {}",
            self.kernel,
            self.pad
        );
        (i + 2 * self.pad - self.kernel) / self.stride + 1
    }
}

/// Unrolls an NCHW input into the im2col matrix of shape
/// `[C*K*K, N*OH*OW]`, where each column is one receptive field.
///
/// # Panics
///
/// Panics if `x` is not rank 4 or the geometry does not fit.
pub fn im2col(x: &Tensor, g: ConvGeom) -> Tensor {
    let (n, c, h, w) = (x.shape().n(), x.shape().c(), x.shape().h(), x.shape().w());
    let oh = g.out_extent(h);
    let ow = g.out_extent(w);
    let rows = c * g.kernel * g.kernel;
    let cols = n * oh * ow;
    let xv = x.as_slice();
    let mut out = vec![0.0f32; rows * cols];

    for ci in 0..c {
        for kh in 0..g.kernel {
            for kw in 0..g.kernel {
                let row = (ci * g.kernel + kh) * g.kernel + kw;
                let orow = &mut out[row * cols..(row + 1) * cols];
                for ni in 0..n {
                    for oy in 0..oh {
                        let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let ibase = ((ni * c + ci) * h + iy as usize) * w;
                        let obase = (ni * oh + oy) * ow;
                        for ox in 0..ow {
                            let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            orow[obase + ox] = xv[ibase + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::mat(rows, cols), out)
}

/// Folds an im2col matrix of shape `[C*K*K, N*OH*OW]` back onto an NCHW
/// tensor of shape `x_shape`, summing where receptive fields overlap.
/// This is the adjoint of [`im2col`], used in the convolution backward
/// pass to accumulate input gradients.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the geometry.
pub fn col2im(cols_t: &Tensor, x_shape: &Shape, g: ConvGeom) -> Tensor {
    let (n, c, h, w) = (x_shape.n(), x_shape.c(), x_shape.h(), x_shape.w());
    let oh = g.out_extent(h);
    let ow = g.out_extent(w);
    let rows = c * g.kernel * g.kernel;
    let cols = n * oh * ow;
    assert_eq!(
        cols_t.shape().dims(),
        &[rows, cols],
        "col matrix shape mismatch"
    );
    let cv = cols_t.as_slice();
    let mut out = vec![0.0f32; x_shape.len()];

    for ci in 0..c {
        for kh in 0..g.kernel {
            for kw in 0..g.kernel {
                let row = (ci * g.kernel + kh) * g.kernel + kw;
                let crow = &cv[row * cols..(row + 1) * cols];
                for ni in 0..n {
                    for oy in 0..oh {
                        let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let ibase = ((ni * c + ci) * h + iy as usize) * w;
                        let obase = (ni * oh + oy) * ow;
                        for ox in 0..ow {
                            let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out[ibase + ix as usize] += crow[obase + ox];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(x_shape.clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(Shape::mat(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(Shape::mat(2, 2), vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i).as_slice(), a.as_slice());
        assert_eq!(matmul(&i, &a).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Tensor::from_vec(Shape::mat(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(Shape::mat(2, 2), vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(matmul(&a, &b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(Shape::mat(1, 3), vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(Shape::mat(3, 2), vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(matmul(&a, &b).as_slice(), &[4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(Shape::mat(2, 3));
        let b = Tensor::zeros(Shape::mat(2, 3));
        let _ = matmul(&a, &b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(Shape::mat(2, 3), (0..6).map(|i| i as f32).collect());
        let t = transpose(&a);
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.as_slice(), &[0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        assert_eq!(transpose(&t).as_slice(), a.as_slice());
    }

    #[test]
    fn conv_geom_extents() {
        assert_eq!(ConvGeom::new(3, 1, 1).out_extent(8), 8); // same conv
        assert_eq!(ConvGeom::new(3, 2, 1).out_extent(8), 4); // strided
        assert_eq!(ConvGeom::new(1, 1, 0).out_extent(8), 8); // pointwise
        assert_eq!(ConvGeom::new(2, 2, 0).out_extent(8), 4); // pool-like
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: im2col is a [C, N*H*W] gather.
        let x = Tensor::from_vec(
            Shape::nchw(1, 2, 2, 2),
            (0..8).map(|i| i as f32).collect(),
        );
        let cols = im2col(&x, ConvGeom::new(1, 1, 0));
        assert_eq!(cols.shape().dims(), &[2, 4]);
        assert_eq!(cols.as_slice(), x.as_slice());
    }

    #[test]
    fn im2col_3x3_center_tap_matches_input() {
        let x = Tensor::from_vec(
            Shape::nchw(1, 1, 3, 3),
            (1..=9).map(|i| i as f32).collect(),
        );
        let cols = im2col(&x, ConvGeom::new(3, 1, 1));
        // Row 4 (kh=1, kw=1) is the center tap: equals the input itself.
        let row4 = &cols.as_slice()[4 * 9..5 * 9];
        assert_eq!(row4, x.as_slice());
        // Corner tap (kh=0, kw=0) sees zero padding in first row/col.
        let row0 = &cols.as_slice()[0..9];
        assert_eq!(row0, &[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 4.0, 5.0]);
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        // 1x1x3x3 input, single 3x3 averaging-ish kernel, pad 1.
        let x = Tensor::from_vec(
            Shape::nchw(1, 1, 3, 3),
            (1..=9).map(|i| i as f32).collect(),
        );
        let wt = Tensor::from_vec(Shape::mat(1, 9), vec![1.0; 9]);
        let cols = im2col(&x, ConvGeom::new(3, 1, 1));
        let y = matmul(&wt, &cols);
        // Center output = sum of all 9 elements = 45.
        assert_eq!(y.as_slice()[4], 45.0);
        // Top-left output = sum of the 2x2 corner = 1+2+4+5 = 12.
        assert_eq!(y.as_slice()[0], 12.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish data.
        let g = ConvGeom::new(3, 1, 1);
        let xs = Shape::nchw(2, 2, 4, 4);
        let x = Tensor::from_vec(
            xs.clone(),
            (0..xs.len()).map(|i| ((i * 37 % 11) as f32) - 5.0).collect(),
        );
        let cols = im2col(&x, g);
        let ys = cols.shape().clone();
        let y = Tensor::from_vec(
            ys.clone(),
            (0..ys.len()).map(|i| ((i * 17 % 7) as f32) - 3.0).collect(),
        );
        let lhs: f64 = cols
            .iter()
            .zip(y.iter())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        let back = col2im(&y, &xs, g);
        let rhs: f64 = x
            .iter()
            .zip(back.iter())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-6, "lhs={lhs} rhs={rhs}");
    }
}

//! Dimension descriptors for tensors.
//!
//! JPEG-ACT operates almost exclusively on 4-D NCHW activation tensors, but
//! the training substrate also needs 2-D matrices (fully-connected layers,
//! im2col buffers) and 1-D vectors (biases, batch-norm parameters).
//! [`Shape`] is a small rank-flexible descriptor with convenience
//! constructors for the common ranks.

use std::fmt;

/// A tensor shape: an ordered list of dimension extents.
///
/// Shapes are value types — cheap to clone and compare.  The element layout
/// implied by a shape is always contiguous row-major (the last dimension is
/// the fastest-varying), which for rank 4 is exactly the NCHW layout the
/// paper assumes (Sec. III-C).
///
/// # Example
///
/// ```
/// use jact_tensor::Shape;
/// let s = Shape::nchw(8, 64, 32, 32);
/// assert_eq!(s.len(), 8 * 64 * 32 * 32);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.dim(1), 64);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from an arbitrary list of dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is zero; zero-sized
    /// tensors are never meaningful in this workspace and allowing them
    /// would push degenerate-case handling into every kernel.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized dimension in shape {dims:?}"
        );
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// A rank-4 NCHW shape (batch, channels, height, width).
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape::new(&[n, c, h, w])
    }

    /// A rank-2 matrix shape (rows, cols).
    pub fn mat(rows: usize, cols: usize) -> Self {
        Shape::new(&[rows, cols])
    }

    /// A rank-1 vector shape.
    pub fn vec(len: usize) -> Self {
        Shape::new(&[len])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// All dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Shapes are never empty (see [`Shape::new`]); provided for
    /// `len`/`is_empty` symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Batch dimension of an NCHW shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not rank 4.
    pub fn n(&self) -> usize {
        self.expect_rank4();
        self.dims[0]
    }

    /// Channel dimension of an NCHW shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not rank 4.
    pub fn c(&self) -> usize {
        self.expect_rank4();
        self.dims[1]
    }

    /// Height dimension of an NCHW shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not rank 4.
    pub fn h(&self) -> usize {
        self.expect_rank4();
        self.dims[2]
    }

    /// Width dimension of an NCHW shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not rank 4.
    pub fn w(&self) -> usize {
        self.expect_rank4();
        self.dims[3]
    }

    /// Linear offset of NCHW index `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not rank 4 or the index is out of bounds
    /// (debug builds check each coordinate).
    #[inline]
    pub fn offset4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(self.rank() == 4);
        debug_assert!(n < self.dims[0] && c < self.dims[1] && h < self.dims[2] && w < self.dims[3]);
        ((n * self.dims[1] + c) * self.dims[2] + h) * self.dims[3] + w
    }

    fn expect_rank4(&self) {
        assert!(
            self.rank() == 4,
            "expected NCHW (rank-4) shape, got {self}"
        );
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let strs: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", strs.join("x"))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nchw_accessors() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!((s.n(), s.c(), s.h(), s.w()), (2, 3, 4, 5));
        assert_eq!(s.len(), 120);
        assert_eq!(s.rank(), 4);
    }

    #[test]
    fn offset4_is_row_major() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.offset4(0, 0, 0, 0), 0);
        assert_eq!(s.offset4(0, 0, 0, 1), 1);
        assert_eq!(s.offset4(0, 0, 1, 0), 5);
        assert_eq!(s.offset4(0, 1, 0, 0), 20);
        assert_eq!(s.offset4(1, 0, 0, 0), 60);
        assert_eq!(s.offset4(1, 2, 3, 4), 119);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_dim_rejected() {
        let _ = Shape::new(&[4, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_shape_rejected() {
        let _ = Shape::new(&[]);
    }

    #[test]
    #[should_panic(expected = "expected NCHW")]
    fn rank_mismatch_panics() {
        let s = Shape::mat(3, 4);
        let _ = s.n();
    }

    #[test]
    fn display_and_debug() {
        let s = Shape::nchw(1, 2, 3, 4);
        assert_eq!(format!("{s}"), "[1x2x3x4]");
        assert_eq!(format!("{s:?}"), "Shape[1, 2, 3, 4]");
    }

    #[test]
    fn equality_and_from() {
        let a = Shape::from(&[2usize, 2][..]);
        let b = Shape::mat(2, 2);
        assert_eq!(a, b);
    }
}

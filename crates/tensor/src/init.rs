//! Deterministic weight initializers.
//!
//! All randomness in this workspace flows through seeded [`jact_rng::rngs::StdRng`]
//! instances so every experiment is reproducible run-to-run.

use crate::{Shape, Tensor};
use jact_rng::rngs::StdRng;
use jact_rng::{Rng, SeedableRng};

/// Samples a standard normal value via Box–Muller
/// ([`jact_rng::Rng::sample_normal_f32`]); two uniform draws per sample is
/// fine at the scale of this workspace.
fn normal(rng: &mut StdRng) -> f32 {
    rng.sample_normal_f32()
}

/// Tensor filled with `N(0, std^2)` samples from a seeded RNG.
pub fn normal_tensor(shape: Shape, std: f32, rng: &mut StdRng) -> Tensor {
    let len = shape.len();
    let data = (0..len).map(|_| normal(rng) * std).collect();
    Tensor::from_vec(shape, data)
}

/// He (Kaiming) normal initialization for a convolution weight of shape
/// `[out_c, in_c * k * k]`: `std = sqrt(2 / fan_in)`.
///
/// This is the initializer used by the ResNet family the paper evaluates.
pub fn he_normal(out_c: usize, fan_in: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    normal_tensor(Shape::mat(out_c, fan_in), std, rng)
}

/// Xavier/Glorot normal initialization: `std = sqrt(2 / (fan_in + fan_out))`.
pub fn xavier_normal(fan_out: usize, fan_in: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
    normal_tensor(Shape::mat(fan_out, fan_in), std, rng)
}

/// Uniform tensor over `[lo, hi)` from a seeded RNG.
pub fn uniform_tensor(shape: Shape, lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    assert!(hi > lo, "uniform range must be non-empty");
    let len = shape.len();
    let data = (0..len).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data)
}

/// Creates a seeded RNG; the single entry point for workspace randomness.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let ta = normal_tensor(Shape::vec(64), 1.0, &mut a);
        let tb = normal_tensor(Shape::vec(64), 1.0, &mut b);
        assert_eq!(ta.as_slice(), tb.as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let ta = normal_tensor(Shape::vec(64), 1.0, &mut a);
        let tb = normal_tensor(Shape::vec(64), 1.0, &mut b);
        assert_ne!(ta.as_slice(), tb.as_slice());
    }

    #[test]
    fn he_normal_scale_roughly_correct() {
        let mut rng = seeded_rng(7);
        let t = he_normal(64, 3 * 3 * 64, &mut rng);
        let var: f32 =
            t.iter().map(|&v| v * v).sum::<f32>() / t.len() as f32;
        let expect = 2.0 / (3.0 * 3.0 * 64.0);
        assert!(
            (var - expect).abs() < expect * 0.25,
            "var={var} expect={expect}"
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded_rng(9);
        let t = uniform_tensor(Shape::vec(1000), -0.5, 0.5, &mut rng);
        assert!(t.iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_mean_near_zero() {
        let mut rng = seeded_rng(3);
        let t = normal_tensor(Shape::vec(10_000), 1.0, &mut rng);
        assert!(t.mean().abs() < 0.05, "mean={}", t.mean());
    }
}

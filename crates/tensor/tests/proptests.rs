//! Property-based tests of the tensor kernels.

use jact_tensor::ops::{col2im, im2col, matmul, transpose, ConvGeom};
use jact_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn arb_matrix(max: usize) -> impl Strategy<Value = Tensor> {
    (1..=max, 1..=max).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(Shape::mat(r, c), v))
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in arb_matrix(8)) {
        prop_assert_eq!(transpose(&transpose(&m)), m);
    }

    #[test]
    fn matmul_transpose_identity(
        (m, k, n) in (1usize..6, 1usize..6, 1usize..6),
        seed in 0u64..1000,
    ) {
        // (A·B)ᵀ == Bᵀ·Aᵀ.
        let gen = |r: usize, c: usize, s: u64| {
            Tensor::from_vec(
                Shape::mat(r, c),
                (0..r * c)
                    .map(|i| ((((i as u64 + s).wrapping_mul(0x9E37_79B9)) % 200) as f32 / 10.0) - 10.0)
                    .collect(),
            )
        };
        let a = gen(m, k, seed);
        let b = gen(k, n, seed + 7);
        let lhs = transpose(&matmul(&a, &b));
        let rhs = matmul(&transpose(&b), &transpose(&a));
        prop_assert_eq!(lhs.shape(), rhs.shape());
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        (m, k, n) in (1usize..5, 1usize..5, 1usize..5),
        seed in 0u64..1000,
    ) {
        let gen = |r: usize, c: usize, s: u64| {
            Tensor::from_vec(
                Shape::mat(r, c),
                (0..r * c)
                    .map(|i| ((((i as u64 + s).wrapping_mul(0x1234_5677)) % 100) as f32 / 10.0) - 5.0)
                    .collect(),
            )
        };
        let a = gen(m, k, seed);
        let b = gen(k, n, seed + 3);
        let c = gen(k, n, seed + 9);
        let sum = b.zip(&c, |x, y| x + y);
        let lhs = matmul(&a, &sum);
        let rhs = matmul(&a, &b).zip(&matmul(&a, &c), |x, y| x + y);
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        n in 1usize..3, c in 1usize..3, hw in 3usize..8,
        k in 1usize..=3, pad in 0usize..=1,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let g = ConvGeom::new(k, 1, pad);
        let xs = Shape::nchw(n, c, hw, hw);
        let x = Tensor::from_vec(
            xs.clone(),
            (0..xs.len()).map(|i| ((i * 31 % 17) as f32) - 8.0).collect(),
        );
        let cols = im2col(&x, g);
        let ys = cols.shape().clone();
        let y = Tensor::from_vec(
            ys.clone(),
            (0..ys.len()).map(|i| ((i * 13 % 9) as f32) - 4.0).collect(),
        );
        // <im2col(x), y> == <x, col2im(y)>
        let lhs: f64 = cols.iter().zip(y.iter()).map(|(&a, &b)| (a * b) as f64).sum();
        let back = col2im(&y, &xs, g);
        let rhs: f64 = x.iter().zip(back.iter()).map(|(&a, &b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-4 * (1.0 + lhs.abs()));
    }

    #[test]
    fn channel_max_abs_bounds_all_values(
        n in 1usize..3, c in 1usize..4, hw in 1usize..5,
        seed in 0u64..1000,
    ) {
        let shape = Shape::nchw(n, c, hw, hw);
        let vals: Vec<f32> = (0..shape.len())
            .map(|i| (((i as u64 ^ seed).wrapping_mul(0x9E37_79B9) % 2000) as f32 / 100.0) - 10.0)
            .collect();
        let x = Tensor::from_vec(shape, vals);
        let maxes = x.channel_max_abs();
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..hw {
                    for wi in 0..hw {
                        prop_assert!(x.get4(ni, ci, hi, wi).abs() <= maxes[ci] + 1e-6);
                    }
                }
            }
        }
    }

    #[test]
    fn reshape_preserves_all_elements(vals in prop::collection::vec(-5.0f32..5.0, 24)) {
        let t = Tensor::from_vec(Shape::nchw(2, 3, 2, 2), vals.clone());
        let r = t.reshape(Shape::mat(6, 4));
        prop_assert_eq!(r.as_slice(), &vals[..]);
        prop_assert_eq!(r.reshape(Shape::nchw(2, 3, 2, 2)), t);
    }
}

//! Deterministic generative tests of the tensor kernels.
//!
//! The former `proptest` suite, re-expressed over seeded [`jact_rng`]
//! streams (hermetic-build policy): each test runs ≥256 cases where case
//! `i` is fully determined by `(TEST_SEED, i)`.

use jact_rng::{rngs::StdRng, Rng, SeedableRng};
use jact_tensor::ops::{col2im, im2col, matmul, transpose, ConvGeom};
use jact_tensor::{Shape, Tensor};

const CASES: usize = 256;

fn cases(seed: u64, mut f: impl FnMut(&mut StdRng, usize)) {
    for i in 0..CASES {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f(&mut rng, i);
    }
}

fn gen_matrix(rng: &mut StdRng, r: usize, c: usize) -> Tensor {
    Tensor::from_vec(
        Shape::mat(r, c),
        (0..r * c).map(|_| rng.gen_range(-10.0f32..10.0)).collect(),
    )
}

#[test]
fn transpose_is_involution() {
    cases(0x7A00, |rng, _| {
        let r = rng.gen_range(1..9usize);
        let c = rng.gen_range(1..9usize);
        let m = gen_matrix(rng, r, c);
        assert_eq!(transpose(&transpose(&m)), m);
    });
}

#[test]
fn matmul_transpose_identity() {
    cases(0x7A01, |rng, _| {
        // (A·B)ᵀ == Bᵀ·Aᵀ.
        let (m, k, n) = (
            rng.gen_range(1..6usize),
            rng.gen_range(1..6usize),
            rng.gen_range(1..6usize),
        );
        let a = gen_matrix(rng, m, k);
        let b = gen_matrix(rng, k, n);
        let lhs = transpose(&matmul(&a, &b));
        let rhs = matmul(&transpose(&b), &transpose(&a));
        assert_eq!(lhs.shape(), rhs.shape());
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            assert!((x - y).abs() < 1e-3);
        }
    });
}

#[test]
fn matmul_distributes_over_addition() {
    cases(0x7A02, |rng, _| {
        let (m, k, n) = (
            rng.gen_range(1..5usize),
            rng.gen_range(1..5usize),
            rng.gen_range(1..5usize),
        );
        let a = gen_matrix(rng, m, k);
        let b = gen_matrix(rng, k, n);
        let c = gen_matrix(rng, k, n);
        let sum = b.zip(&c, |x, y| x + y);
        let lhs = matmul(&a, &sum);
        let rhs = matmul(&a, &b).zip(&matmul(&a, &c), |x, y| x + y);
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            assert!((x - y).abs() < 1e-2);
        }
    });
}

#[test]
fn im2col_col2im_adjoint() {
    cases(0x7A03, |rng, _| {
        let n = rng.gen_range(1..3usize);
        let c = rng.gen_range(1..3usize);
        let k = rng.gen_range(1..4usize);
        let pad = rng.gen_range(0..2usize);
        // Keep the padded input at least kernel-sized (the old suite
        // discarded violating cases; here we clamp instead).
        let hw = rng.gen_range(3..8usize).max(k.saturating_sub(2 * pad));
        let g = ConvGeom::new(k, 1, pad);
        let xs = Shape::nchw(n, c, hw, hw);
        let x = Tensor::from_vec(
            xs.clone(),
            (0..xs.len()).map(|_| rng.gen_range(-8.0f32..8.0)).collect(),
        );
        let cols = im2col(&x, g);
        let ys = cols.shape().clone();
        let y = Tensor::from_vec(
            ys.clone(),
            (0..ys.len()).map(|_| rng.gen_range(-4.0f32..4.0)).collect(),
        );
        // <im2col(x), y> == <x, col2im(y)>
        let lhs: f64 = cols.iter().zip(y.iter()).map(|(&a, &b)| (a * b) as f64).sum();
        let back = col2im(&y, &xs, g);
        let rhs: f64 = x.iter().zip(back.iter()).map(|(&a, &b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-4 * (1.0 + lhs.abs()));
    });
}

#[test]
fn channel_max_abs_bounds_all_values() {
    cases(0x7A04, |rng, _| {
        let n = rng.gen_range(1..3usize);
        let c = rng.gen_range(1..4usize);
        let hw = rng.gen_range(1..5usize);
        let shape = Shape::nchw(n, c, hw, hw);
        let vals: Vec<f32> = (0..shape.len())
            .map(|_| rng.gen_range(-10.0f32..10.0))
            .collect();
        let x = Tensor::from_vec(shape, vals);
        let maxes = x.channel_max_abs();
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..hw {
                    for wi in 0..hw {
                        assert!(x.get4(ni, ci, hi, wi).abs() <= maxes[ci] + 1e-6);
                    }
                }
            }
        }
    });
}

#[test]
fn reshape_preserves_all_elements() {
    cases(0x7A05, |rng, _| {
        let vals: Vec<f32> = (0..24).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let t = Tensor::from_vec(Shape::nchw(2, 3, 2, 2), vals.clone());
        let r = t.reshape(Shape::mat(6, 4));
        assert_eq!(r.as_slice(), &vals[..]);
        assert_eq!(r.reshape(Shape::nchw(2, 3, 2, 2)), t);
    });
}

//! Activation memoization: the seam where offload compression plugs in.
//!
//! During the forward pass each layer saves the activations its backward
//! pass will need (Sec. II-A); during the backward pass it loads them
//! back.  The [`ActivationStore`] trait abstracts that storage:
//!
//! * [`PassthroughStore`] keeps exact tensors (the uncompressed baseline);
//! * `jact-core`'s `OffloadStore` compresses on save and decompresses on
//!   load, so every backward computation sees the *recovered* activation
//!   `x*` — precisely how lossy compression perturbs training (Eqns. 6–9).
//!
//! Saved activations are tagged with an [`ActKind`] so the store can apply
//! the paper's per-type method selection (Table II).

use crate::error::NetError;
use jact_tensor::Tensor;
use std::collections::BTreeMap;

/// Unique key of one saved activation tensor.
///
/// Keys are allocated by model builders; aliasing two layers to one key
/// expresses "this tensor is saved once and consumed by both" (e.g. a
/// ReLU output that is also the next conv's input).
pub type ActivationId = u64;

/// What kind of activation a saved tensor is — the classification driving
/// the paper's compression method selection (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActKind {
    /// Dense convolution input (output of a norm/ReLU chain head).
    Conv,
    /// Dense activation produced by a residual addition, consumed by conv.
    Sum,
    /// Batch-norm input (the conv output in a CNR block).
    Norm,
    /// ReLU output whose consumer is a convolution (values needed).
    ReluToConv,
    /// ReLU output whose consumers need only the sign (BRC-eligible).
    ReluToOther,
    /// Pooling input/output.
    Pool,
    /// Dropout output (sparse).
    Dropout,
    /// Fully-connected layer input (2-D).
    Linear,
}

impl ActKind {
    /// `true` for the dense kinds the JPEG pipelines target (`conv` and
    /// `sum` activations with spatial extent; Table II).
    pub fn is_dense_spatial(self) -> bool {
        matches!(self, ActKind::Conv | ActKind::Sum | ActKind::Norm)
    }
}

impl std::fmt::Display for ActKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ActKind::Conv => "conv",
            ActKind::Sum => "sum",
            ActKind::Norm => "norm",
            ActKind::ReluToConv => "relu(to conv)",
            ActKind::ReluToOther => "relu(to other)",
            ActKind::Pool => "pool",
            ActKind::Dropout => "dropout",
            ActKind::Linear => "linear",
        };
        f.write_str(s)
    }
}

/// Counters describing what the offload wire path observed: how many
/// loads crossed the (possibly faulty) wire, how many arrived corrupt,
/// and how each corruption was resolved.
///
/// Stores that do not model a wire (e.g. [`PassthroughStore`]) report
/// all-zero counters via the default
/// [`ActivationStore::fault_report`] implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Loads delivered through the serialized wire path.
    pub wire_loads: u64,
    /// Individual fault events injected into delivered frames.
    pub faults_injected: u64,
    /// Deliveries detected as corrupt (typed decode error).
    pub corrupt_loads: u64,
    /// Redeliveries attempted from the shadow copy.
    pub retried_loads: u64,
    /// Corrupt loads ultimately recovered (by retry or zero-fill).
    pub recovered_loads: u64,
    /// Recovered loads that were replaced by an all-zero tensor.
    pub zero_filled_loads: u64,
}

impl FaultReport {
    /// Counter-wise difference `self - earlier` (saturating), for
    /// per-epoch deltas over cumulative counters.
    pub fn delta_since(&self, earlier: &FaultReport) -> FaultReport {
        FaultReport {
            wire_loads: self.wire_loads.saturating_sub(earlier.wire_loads),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
            corrupt_loads: self.corrupt_loads.saturating_sub(earlier.corrupt_loads),
            retried_loads: self.retried_loads.saturating_sub(earlier.retried_loads),
            recovered_loads: self.recovered_loads.saturating_sub(earlier.recovered_loads),
            zero_filled_loads: self
                .zero_filled_loads
                .saturating_sub(earlier.zero_filled_loads),
        }
    }

    /// Counter-wise accumulation of `delta` into `self`, for merging
    /// per-load deltas produced by concurrent batch loads back into a
    /// store's cumulative counters.
    pub fn absorb(&mut self, delta: &FaultReport) {
        self.wire_loads += delta.wire_loads;
        self.faults_injected += delta.faults_injected;
        self.corrupt_loads += delta.corrupt_loads;
        self.retried_loads += delta.retried_loads;
        self.recovered_loads += delta.recovered_loads;
        self.zero_filled_loads += delta.zero_filled_loads;
    }

    /// `true` if any fault activity was observed.
    pub fn any_faults(&self) -> bool {
        self.faults_injected > 0 || self.corrupt_loads > 0
    }

    /// Fraction of wire loads that arrived corrupt (0 when no wire loads).
    pub fn corruption_rate(&self) -> f64 {
        if self.wire_loads == 0 {
            0.0
        } else {
            self.corrupt_loads as f64 / self.wire_loads as f64
        }
    }

    /// Fraction of corrupt loads that were recovered (1 when none were
    /// corrupt — nothing needed recovery).
    pub fn recovery_rate(&self) -> f64 {
        if self.corrupt_loads == 0 {
            1.0
        } else {
            self.recovered_loads as f64 / self.corrupt_loads as f64
        }
    }
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wire_loads={} faults={} corrupt={} retried={} recovered={} zero_filled={}",
            self.wire_loads,
            self.faults_injected,
            self.corrupt_loads,
            self.retried_loads,
            self.recovered_loads,
            self.zero_filled_loads
        )
    }
}

/// Storage for activations memoized between the forward and backward pass.
pub trait ActivationStore {
    /// Saves `x` under `id` with its activation kind.
    fn save(&mut self, id: ActivationId, kind: ActKind, x: &Tensor);

    /// Loads the (possibly lossily recovered) activation saved under `id`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::MissingActivation`] if nothing was saved under
    /// `id` this step, or [`NetError::Store`] if the backing store could
    /// not recover the tensor.
    fn load(&mut self, id: ActivationId) -> Result<Tensor, NetError>;

    /// Saves a batch of independent activations.
    ///
    /// The default implementation saves each item in order with
    /// [`save`](Self::save).  Stores backed by an expensive per-tensor
    /// transform (compression, serialization) may override this to
    /// process items concurrently; overrides must leave the store in the
    /// same state as the sequential default — same entries, same
    /// statistics — regardless of thread count.
    fn save_batch(&mut self, items: Vec<(ActivationId, ActKind, Tensor)>) {
        for (id, kind, x) in items {
            self.save(id, kind, &x);
        }
    }

    /// Loads a batch of activations, one tensor per requested id, in the
    /// order given (ids may repeat).
    ///
    /// The default implementation loads each id in order with
    /// [`load`](Self::load).  Overrides may decompress concurrently, but
    /// must be deterministic: the returned tensors and the cumulative
    /// [`fault_report`](Self::fault_report) counters must be identical
    /// for any thread count (they need not reproduce the sequential
    /// default's exact fault stream).
    ///
    /// # Errors
    ///
    /// Returns the error for the first (in id-list order) id whose load
    /// fails; see [`load`](Self::load).
    fn load_batch(&mut self, ids: &[ActivationId]) -> Result<Vec<Tensor>, NetError> {
        ids.iter().map(|&id| self.load(id)).collect()
    }

    /// Drops all saved activations (end of a training step).
    fn clear(&mut self);

    /// Cumulative wire-fault counters for stores that deliver loads
    /// through a fallible transport.  The default (for exact, in-memory
    /// stores) reports all zeros.
    fn fault_report(&self) -> FaultReport {
        FaultReport::default()
    }

    /// Runtime-typed access for harnesses that hold the store behind the
    /// trait and need the concrete type back (e.g. to read compression
    /// statistics or advance a DQT schedule's epoch).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Exact in-memory storage — the uncompressed training baseline.
#[derive(Debug, Default)]
pub struct PassthroughStore {
    tensors: BTreeMap<ActivationId, Tensor>,
}

impl PassthroughStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of activations currently held.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// `true` if no activations are held.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }
}

impl ActivationStore for PassthroughStore {
    fn save(&mut self, id: ActivationId, _kind: ActKind, x: &Tensor) {
        self.tensors.insert(id, x.clone());
    }

    fn load(&mut self, id: ActivationId) -> Result<Tensor, NetError> {
        self.tensors
            .get(&id)
            .cloned()
            .ok_or(NetError::MissingActivation(id))
    }

    fn clear(&mut self) {
        self.tensors.clear();
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Per-step execution context threaded through every layer call.
pub struct Context<'a> {
    /// `true` during training (dropout active, BN batch statistics).
    pub training: bool,
    /// Seeded RNG for stochastic layers.
    pub rng: &'a mut jact_rng::rngs::StdRng,
    /// Activation storage (exact or compressing).
    pub store: &'a mut dyn ActivationStore,
}

impl<'a> Context<'a> {
    /// Creates a context.
    pub fn new(
        training: bool,
        rng: &'a mut jact_rng::rngs::StdRng,
        store: &'a mut dyn ActivationStore,
    ) -> Self {
        Context {
            training,
            rng,
            store,
        }
    }
}

/// Allocates unique activation ids for model builders.
#[derive(Debug, Default)]
pub struct IdAlloc {
    next: ActivationId,
}

impl IdAlloc {
    /// Creates an allocator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh id.
    pub fn fresh(&mut self) -> ActivationId {
        let id = self.next;
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jact_tensor::Shape;
    use jact_rng::SeedableRng;

    #[test]
    fn passthrough_roundtrip() {
        let mut s = PassthroughStore::new();
        let t = Tensor::full(Shape::vec(4), 2.0);
        s.save(7, ActKind::Conv, &t);
        assert_eq!(s.load(7).unwrap(), t);
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn missing_activation_is_a_typed_error() {
        let mut s = PassthroughStore::new();
        assert_eq!(s.load(99).unwrap_err(), NetError::MissingActivation(99));
    }

    #[test]
    fn default_batch_methods_match_singles() {
        let mut s = PassthroughStore::new();
        let a = Tensor::full(Shape::vec(4), 1.0);
        let b = Tensor::full(Shape::vec(4), 2.0);
        s.save_batch(vec![(1, ActKind::Conv, a.clone()), (2, ActKind::Pool, b.clone())]);
        // Repeated ids are allowed and resolve per-occurrence.
        let got = s.load_batch(&[2, 1, 2]).unwrap();
        assert_eq!(got, vec![b.clone(), a, b]);
        assert_eq!(
            s.load_batch(&[1, 9]).unwrap_err(),
            NetError::MissingActivation(9)
        );
    }

    #[test]
    fn fault_report_absorb_accumulates() {
        let mut total = FaultReport {
            wire_loads: 1,
            faults_injected: 2,
            corrupt_loads: 3,
            retried_loads: 4,
            recovered_loads: 5,
            zero_filled_loads: 6,
        };
        let delta = FaultReport {
            wire_loads: 10,
            faults_injected: 20,
            corrupt_loads: 30,
            retried_loads: 40,
            recovered_loads: 50,
            zero_filled_loads: 60,
        };
        total.absorb(&delta);
        assert_eq!(total.wire_loads, 11);
        assert_eq!(total.faults_injected, 22);
        assert_eq!(total.corrupt_loads, 33);
        assert_eq!(total.retried_loads, 44);
        assert_eq!(total.recovered_loads, 55);
        assert_eq!(total.zero_filled_loads, 66);
    }

    #[test]
    fn id_alloc_is_sequential_and_unique() {
        let mut a = IdAlloc::new();
        let ids: Vec<_> = (0..5).map(|_| a.fresh()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn kind_density_classification() {
        assert!(ActKind::Conv.is_dense_spatial());
        assert!(ActKind::Sum.is_dense_spatial());
        assert!(!ActKind::ReluToConv.is_dense_spatial());
        assert!(!ActKind::Dropout.is_dense_spatial());
    }

    #[test]
    fn context_construction() {
        let mut rng = jact_rng::rngs::StdRng::seed_from_u64(0);
        let mut store = PassthroughStore::new();
        let ctx = Context::new(true, &mut rng, &mut store);
        assert!(ctx.training);
    }
}

//! Activation memoization: the seam where offload compression plugs in.
//!
//! During the forward pass each layer saves the activations its backward
//! pass will need (Sec. II-A); during the backward pass it loads them
//! back.  The [`ActivationStore`] trait abstracts that storage:
//!
//! * [`PassthroughStore`] keeps exact tensors (the uncompressed baseline);
//! * `jact-core`'s `OffloadStore` compresses on save and decompresses on
//!   load, so every backward computation sees the *recovered* activation
//!   `x*` — precisely how lossy compression perturbs training (Eqns. 6–9).
//!
//! Saved activations are tagged with an [`ActKind`] so the store can apply
//! the paper's per-type method selection (Table II).

use crate::error::NetError;
use jact_tensor::Tensor;
use std::collections::BTreeMap;

/// Unique key of one saved activation tensor.
///
/// Keys are allocated by model builders; aliasing two layers to one key
/// expresses "this tensor is saved once and consumed by both" (e.g. a
/// ReLU output that is also the next conv's input).
pub type ActivationId = u64;

/// What kind of activation a saved tensor is — the classification driving
/// the paper's compression method selection (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActKind {
    /// Dense convolution input (output of a norm/ReLU chain head).
    Conv,
    /// Dense activation produced by a residual addition, consumed by conv.
    Sum,
    /// Batch-norm input (the conv output in a CNR block).
    Norm,
    /// ReLU output whose consumer is a convolution (values needed).
    ReluToConv,
    /// ReLU output whose consumers need only the sign (BRC-eligible).
    ReluToOther,
    /// Pooling input/output.
    Pool,
    /// Dropout output (sparse).
    Dropout,
    /// Fully-connected layer input (2-D).
    Linear,
}

impl ActKind {
    /// `true` for the dense kinds the JPEG pipelines target (`conv` and
    /// `sum` activations with spatial extent; Table II).
    pub fn is_dense_spatial(self) -> bool {
        matches!(self, ActKind::Conv | ActKind::Sum | ActKind::Norm)
    }
}

impl std::fmt::Display for ActKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ActKind::Conv => "conv",
            ActKind::Sum => "sum",
            ActKind::Norm => "norm",
            ActKind::ReluToConv => "relu(to conv)",
            ActKind::ReluToOther => "relu(to other)",
            ActKind::Pool => "pool",
            ActKind::Dropout => "dropout",
            ActKind::Linear => "linear",
        };
        f.write_str(s)
    }
}

/// Storage for activations memoized between the forward and backward pass.
pub trait ActivationStore {
    /// Saves `x` under `id` with its activation kind.
    fn save(&mut self, id: ActivationId, kind: ActKind, x: &Tensor);

    /// Loads the (possibly lossily recovered) activation saved under `id`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::MissingActivation`] if nothing was saved under
    /// `id` this step, or [`NetError::Store`] if the backing store could
    /// not recover the tensor.
    fn load(&mut self, id: ActivationId) -> Result<Tensor, NetError>;

    /// Drops all saved activations (end of a training step).
    fn clear(&mut self);

    /// Runtime-typed access for harnesses that hold the store behind the
    /// trait and need the concrete type back (e.g. to read compression
    /// statistics or advance a DQT schedule's epoch).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Exact in-memory storage — the uncompressed training baseline.
#[derive(Debug, Default)]
pub struct PassthroughStore {
    tensors: BTreeMap<ActivationId, Tensor>,
}

impl PassthroughStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of activations currently held.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// `true` if no activations are held.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }
}

impl ActivationStore for PassthroughStore {
    fn save(&mut self, id: ActivationId, _kind: ActKind, x: &Tensor) {
        self.tensors.insert(id, x.clone());
    }

    fn load(&mut self, id: ActivationId) -> Result<Tensor, NetError> {
        self.tensors
            .get(&id)
            .cloned()
            .ok_or(NetError::MissingActivation(id))
    }

    fn clear(&mut self) {
        self.tensors.clear();
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Per-step execution context threaded through every layer call.
pub struct Context<'a> {
    /// `true` during training (dropout active, BN batch statistics).
    pub training: bool,
    /// Seeded RNG for stochastic layers.
    pub rng: &'a mut jact_rng::rngs::StdRng,
    /// Activation storage (exact or compressing).
    pub store: &'a mut dyn ActivationStore,
}

impl<'a> Context<'a> {
    /// Creates a context.
    pub fn new(
        training: bool,
        rng: &'a mut jact_rng::rngs::StdRng,
        store: &'a mut dyn ActivationStore,
    ) -> Self {
        Context {
            training,
            rng,
            store,
        }
    }
}

/// Allocates unique activation ids for model builders.
#[derive(Debug, Default)]
pub struct IdAlloc {
    next: ActivationId,
}

impl IdAlloc {
    /// Creates an allocator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh id.
    pub fn fresh(&mut self) -> ActivationId {
        let id = self.next;
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jact_tensor::Shape;
    use jact_rng::SeedableRng;

    #[test]
    fn passthrough_roundtrip() {
        let mut s = PassthroughStore::new();
        let t = Tensor::full(Shape::vec(4), 2.0);
        s.save(7, ActKind::Conv, &t);
        assert_eq!(s.load(7).unwrap(), t);
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn missing_activation_is_a_typed_error() {
        let mut s = PassthroughStore::new();
        assert_eq!(s.load(99).unwrap_err(), NetError::MissingActivation(99));
    }

    #[test]
    fn id_alloc_is_sequential_and_unique() {
        let mut a = IdAlloc::new();
        let ids: Vec<_> = (0..5).map(|_| a.fresh()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn kind_density_classification() {
        assert!(ActKind::Conv.is_dense_spatial());
        assert!(ActKind::Sum.is_dense_spatial());
        assert!(!ActKind::ReluToConv.is_dense_spatial());
        assert!(!ActKind::Dropout.is_dense_spatial());
    }

    #[test]
    fn context_construction() {
        let mut rng = jact_rng::rngs::StdRng::seed_from_u64(0);
        let mut store = PassthroughStore::new();
        let ctx = Context::new(true, &mut rng, &mut store);
        assert!(ctx.training);
    }
}

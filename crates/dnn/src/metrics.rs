//! Evaluation metrics: top-1 accuracy and PSNR.

use crate::loss::argmax_rows;
use jact_tensor::Tensor;

/// Fraction of rows whose argmax matches the label.
///
/// # Panics
///
/// Panics if `logits` is not `[N, classes]` with `N == labels.len()`.
pub fn top1_accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let preds = argmax_rows(logits);
    assert_eq!(preds.len(), labels.len(), "label count mismatch");
    let correct = preds
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Peak Signal-to-Noise Ratio in dB for signals in `[0, peak]` — the
/// super-resolution quality metric used for VDSR (Table I).
///
/// # Panics
///
/// Panics if shapes differ or `peak <= 0`.
pub fn psnr(pred: &Tensor, target: &Tensor, peak: f32) -> f64 {
    assert!(peak > 0.0, "peak must be positive");
    let mse = pred.mse(target);
    if mse == 0.0 {
        return f64::INFINITY;
    }
    10.0 * ((peak as f64) * (peak as f64) / mse).log10()
}

/// Running average helper for per-epoch statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct Average {
    sum: f64,
    count: usize,
}

impl Average {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
    }

    /// Current mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jact_tensor::Shape;

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(
            Shape::mat(3, 2),
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0],
        );
        assert_eq!(top1_accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(top1_accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn psnr_known_values() {
        let a = Tensor::full(Shape::vec(4), 0.5);
        let b = Tensor::full(Shape::vec(4), 0.6);
        // mse = 0.01, peak 1 -> psnr = 20 dB.
        let p = psnr(&a, &b, 1.0);
        assert!((p - 20.0).abs() < 0.05, "psnr={p}");
        assert!(psnr(&a, &a, 1.0).is_infinite());
    }

    #[test]
    fn psnr_higher_is_better() {
        let t = Tensor::full(Shape::vec(8), 0.5);
        let close = Tensor::full(Shape::vec(8), 0.51);
        let far = Tensor::full(Shape::vec(8), 0.8);
        assert!(psnr(&close, &t, 1.0) > psnr(&far, &t, 1.0));
    }

    #[test]
    fn average_accumulates() {
        let mut a = Average::new();
        assert_eq!(a.mean(), 0.0);
        a.push(1.0);
        a.push(3.0);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.count(), 2);
    }
}

//! # jact-dnn
//!
//! A from-scratch CNN training substrate for the JPEG-ACT reproduction
//! (Evans, Liu, Aamodt, ISCA 2020).
//!
//! The paper evaluates activation compression by training CNNs whose
//! backward pass consumes *recovered* (decompressed) activations.  This
//! crate provides exactly that machinery:
//!
//! * [`layers`] — conv / batch-norm / ReLU / pool / dropout / linear with
//!   full backprop, each memoizing its saved activation through an
//!   [`act::ActivationStore`] so a compressing store (in `jact-core`) can
//!   transparently inject compression error;
//! * [`net`] — sequential and residual composition (the CNR blocks of
//!   Fig. 3);
//! * [`models`] — scaled-down but architecturally faithful builders for
//!   the paper's networks: VGG-style (dropout), ResNet basic and
//!   bottleneck, Wide ResNet, and VDSR;
//! * [`optim`] — SGD with momentum, weight decay and step schedules
//!   (Eqn. 1);
//! * [`train`] — a training loop with classification and super-resolution
//!   objectives;
//! * [`metrics`] — top-1 accuracy and PSNR.
//!
//! The key design point is the *activation aliasing* used by real
//! frameworks (Sec. II-A): in a conv→norm→ReLU chain, the conv input is
//! the previous ReLU's output, so it is saved once and loaded by both
//! consumers.  Model builders wire these aliases explicitly.

#![forbid(unsafe_code)]

pub mod act;
pub mod error;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod net;
pub mod optim;
pub mod param;
pub mod train;

pub use act::{ActKind, ActivationId, ActivationStore, Context, FaultReport, PassthroughStore};
pub use error::NetError;
pub use net::{Network, Node};
pub use param::Param;

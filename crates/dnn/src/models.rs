//! Scaled-down but architecturally faithful builders for the paper's
//! networks.
//!
//! | Builder | Paper network | Structure preserved |
//! |---|---|---|
//! | [`mini_vgg`] | VGG-16 | conv/ReLU stacks, max-pool, dropout (BRC-eligible ReLUs) |
//! | [`mini_resnet`] | ResNet-18/CIFAR | post-activation basic blocks, CNR chains, downsample shortcuts |
//! | [`mini_resnet_bottleneck`] | ResNet-50 | pre-activation bottleneck blocks (1×1/3×3/1×1) whose block outputs are dense **sum** activations consumed by convs |
//! | [`wide_resnet`] | WRN | widened pre-activation basic blocks with in-block dropout |
//! | [`vdsr`] | VDSR | deep conv/BN/ReLU chain with a global residual, MSE objective |
//!
//! The builders wire the activation-store keys the way real frameworks
//! memoize tensors (Sec. II-A): each tensor is saved once, by whichever
//! layer touches it first, and every other consumer aliases that key.
//! The [`ActKind`] attached at save time is what drives the per-type
//! compression policy (Table II) in `jact-core`.

use crate::error::NetError;
use crate::act::{ActKind, ActivationId, IdAlloc};
use crate::layers::{
    BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu,
};
use crate::net::{Network, Node};
use jact_rng::rngs::StdRng;

/// Tracking state for the tensor currently flowing through the builder.
#[derive(Debug, Clone, Copy)]
struct Inc {
    /// Pre-assigned activation id for this tensor.
    key: ActivationId,
    /// Whether some layer already saved it under `key`.
    saved: bool,
    /// How a saver should classify it.
    kind: ActKind,
}

/// Incremental network builder that manages activation-id aliasing.
struct Builder<'r> {
    nodes: Vec<Node>,
    ids: IdAlloc,
    rng: &'r mut StdRng,
    inc: Inc,
}

impl<'r> Builder<'r> {
    fn new(rng: &'r mut StdRng) -> Self {
        let mut ids = IdAlloc::new();
        let key = ids.fresh();
        Builder {
            nodes: Vec::new(),
            ids,
            rng,
            inc: Inc {
                key,
                saved: false,
                kind: ActKind::Conv,
            },
        }
    }

    /// Produces a fresh incoming-state for a layer output.
    fn advance(&mut self, kind: ActKind) {
        self.inc = Inc {
            key: self.ids.fresh(),
            saved: false,
            kind,
        };
    }

    fn conv(
        &mut self,
        label: &str,
        in_c: usize,
        out_c: usize,
        k: usize,
        s: usize,
        p: usize,
        bias: bool,
    ) {
        let mut conv = Conv2d::new(label, in_c, out_c, k, s, p, bias, self.inc.key, self.rng)
            .input_kind(self.inc.kind);
        if self.inc.saved {
            conv = conv.aliased();
        } else {
            self.inc.saved = true;
        }
        self.nodes.push(Node::layer(conv));
        // A conv output is normally consumed by a norm layer.
        self.advance(ActKind::Norm);
    }

    fn bn(&mut self, label: &str, c: usize) {
        let mut bn = BatchNorm2d::new(label, c, self.inc.key).input_kind(self.inc.kind);
        if self.inc.saved {
            bn = bn.aliased();
        } else {
            self.inc.saved = true;
        }
        self.nodes.push(Node::layer(bn));
        self.advance(ActKind::Conv);
    }

    fn relu(&mut self, label: &str, kind: ActKind) {
        let key = self.ids.fresh();
        self.nodes.push(Node::layer(Relu::new(label, key, kind)));
        self.inc = Inc {
            key,
            saved: true,
            kind,
        };
    }

    fn maxpool(&mut self, label: &str, k: usize, s: usize) {
        let mut pool = MaxPool2d::new(label, k, s, self.inc.key);
        if self.inc.saved {
            pool = pool.aliased();
        } else {
            self.inc.saved = true;
        }
        self.nodes.push(Node::layer(pool));
        self.advance(ActKind::Pool);
    }

    fn dropout(&mut self, label: &str, p: f32) {
        let key = self.ids.fresh();
        self.nodes
            .push(Node::layer(Dropout::new(label, p, key)));
        self.inc = Inc {
            key,
            saved: true,
            kind: ActKind::Dropout,
        };
    }

    fn gap(&mut self, label: &str) {
        self.nodes.push(Node::layer(GlobalAvgPool::new(label)));
        self.advance(ActKind::Linear);
    }

    fn flatten(&mut self, label: &str) {
        self.nodes.push(Node::layer(Flatten::new(label)));
        self.advance(ActKind::Linear);
    }

    fn linear(&mut self, label: &str, in_d: usize, out_d: usize) {
        let mut lin = Linear::new(label, in_d, out_d, self.inc.key, self.rng);
        if self.inc.saved {
            lin = lin.aliased();
        } else {
            self.inc.saved = true;
        }
        self.nodes.push(Node::layer(lin));
        self.advance(ActKind::Linear);
    }

    /// Builds a residual split; both branch closures see the same incoming
    /// tensor state, and the first branch's saves are visible to the
    /// second (the main branch typically saves the shared input).
    fn residual(
        &mut self,
        main: impl FnOnce(&mut Builder<'_>),
        shortcut: impl FnOnce(&mut Builder<'_>),
    ) {
        let inc0 = self.inc;
        let outer = std::mem::take(&mut self.nodes);

        main(self);
        let main_nodes = std::mem::take(&mut self.nodes);
        // Whatever the main branch saved of the *shared input* is visible
        // to the shortcut: if inc0 was unsaved, the main branch's first
        // memoizing layer saved it under inc0.key.
        self.inc = Inc {
            saved: true,
            ..inc0
        };
        shortcut(self);
        let shortcut_nodes = std::mem::take(&mut self.nodes);

        self.nodes = outer;
        self.nodes.push(Node::Residual {
            main: main_nodes,
            shortcut: shortcut_nodes,
        });
        // A residual output is a dense sum activation (Table II "sum").
        self.advance(ActKind::Sum);
    }

    fn finish(self, name: &str) -> Network {
        Network::new(name, self.nodes)
    }
}

/// VGG-style classifier (scaled-down VGG-16): conv/ReLU stacks with
/// max-pooling and dropout.  Dropout makes its ReLUs BRC-eligible, the
/// property GIST exploits on VGG (Sec. II-B1).
///
/// Input: `[N, in_c, 32, 32]`.
pub fn mini_vgg(in_c: usize, classes: usize, rng: &mut StdRng) -> Network {
    let mut b = Builder::new(rng);
    let widths = [32usize, 64];
    let mut c_in = in_c;
    for (si, &w) in widths.iter().enumerate() {
        b.conv(&format!("s{si}.conv1"), c_in, w, 3, 1, 1, true);
        b.relu(&format!("s{si}.relu1"), ActKind::ReluToConv);
        b.conv(&format!("s{si}.conv2"), w, w, 3, 1, 1, true);
        b.relu(&format!("s{si}.relu2"), ActKind::ReluToOther);
        b.dropout(&format!("s{si}.drop"), 0.25);
        // Pool after dropout: the pool output feeds the next conv, which
        // memoizes it as a pool activation (Table II "pool or dropout").
        b.maxpool(&format!("s{si}.pool"), 2, 2);
        c_in = w;
    }
    b.flatten("flatten");
    b.linear("fc1", 64 * 8 * 8, 128);
    b.relu("fc1.relu", ActKind::ReluToOther);
    b.dropout("fc.drop", 0.5);
    b.linear("fc2", 128, classes);
    b.finish("mini-vgg")
}

/// CIFAR-style ResNet with post-activation basic blocks
/// (conv/norm/ReLU CNR chains, Fig. 3), `blocks` blocks per stage over
/// widths 16/32/64.
///
/// Input: `[N, in_c, 32, 32]`.
pub fn mini_resnet(in_c: usize, blocks: usize, classes: usize, rng: &mut StdRng) -> Network {
    assert!(blocks >= 1, "need at least one block per stage");
    let mut b = Builder::new(rng);
    let widths = [16usize, 32, 64];

    b.conv("stem.conv", in_c, widths[0], 3, 1, 1, false);
    b.bn("stem.bn", widths[0]);
    b.relu("stem.relu", ActKind::ReluToConv);

    let mut c_in = widths[0];
    for (si, &w) in widths.iter().enumerate() {
        for bi in 0..blocks {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            let lbl = format!("s{si}b{bi}");
            let needs_down = stride != 1 || c_in != w;
            let (ci, wi) = (c_in, w);
            b.residual(
                |m| {
                    m.conv(&format!("{lbl}.conv1"), ci, wi, 3, stride, 1, false);
                    m.bn(&format!("{lbl}.bn1"), wi);
                    m.relu(&format!("{lbl}.relu1"), ActKind::ReluToConv);
                    m.conv(&format!("{lbl}.conv2"), wi, wi, 3, 1, 1, false);
                    m.bn(&format!("{lbl}.bn2"), wi);
                },
                |s| {
                    if needs_down {
                        s.conv(&format!("{lbl}.down"), ci, wi, 1, stride, 0, false);
                        s.bn(&format!("{lbl}.downbn"), wi);
                    }
                },
            );
            b.relu(&format!("{lbl}.relu2"), ActKind::ReluToConv);
            c_in = w;
        }
    }
    b.gap("gap");
    b.linear("fc", widths[2], classes);
    b.finish("mini-resnet")
}

/// ResNet-50-flavoured network: **pre-activation bottleneck** blocks
/// (1×1 reduce, 3×3, 1×1 expand).  Block outputs are raw additions, so
/// the convolutions and norms that consume them memoize dense **sum**
/// activations — the activation class that defeats sparse compression and
/// motivates JPEG-ACT (Sec. I, Fig. 19).
///
/// Input: `[N, in_c, 32, 32]`.
pub fn mini_resnet_bottleneck(
    in_c: usize,
    blocks: usize,
    classes: usize,
    rng: &mut StdRng,
) -> Network {
    assert!(blocks >= 1, "need at least one block per stage");
    let mut b = Builder::new(rng);
    let widths = [16usize, 32, 64]; // expanded widths; bottleneck = w/4

    b.conv("stem.conv", in_c, widths[0], 3, 1, 1, false);
    b.bn("stem.bn", widths[0]);
    b.relu("stem.relu", ActKind::ReluToConv);

    let mut c_in = widths[0];
    for (si, &w) in widths.iter().enumerate() {
        let mid = (w / 4).max(4);
        for bi in 0..blocks {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            let lbl = format!("s{si}b{bi}");
            let needs_down = stride != 1 || c_in != w;
            let ci = c_in;
            b.residual(
                |m| {
                    m.bn(&format!("{lbl}.bn1"), ci);
                    m.relu(&format!("{lbl}.relu1"), ActKind::ReluToConv);
                    m.conv(&format!("{lbl}.conv1"), ci, mid, 1, 1, 0, false);
                    m.bn(&format!("{lbl}.bn2"), mid);
                    m.relu(&format!("{lbl}.relu2"), ActKind::ReluToConv);
                    m.conv(&format!("{lbl}.conv2"), mid, mid, 3, stride, 1, false);
                    m.bn(&format!("{lbl}.bn3"), mid);
                    m.relu(&format!("{lbl}.relu3"), ActKind::ReluToConv);
                    m.conv(&format!("{lbl}.conv3"), mid, w, 1, 1, 0, false);
                },
                |s| {
                    if needs_down {
                        s.conv(&format!("{lbl}.down"), ci, w, 1, stride, 0, false);
                    }
                },
            );
            c_in = w;
        }
    }
    b.bn("head.bn", widths[2]);
    b.relu("head.relu", ActKind::ReluToOther);
    b.gap("gap");
    b.linear("fc", widths[2], classes);
    b.finish("mini-resnet-bottleneck")
}

/// Wide ResNet: pre-activation basic blocks with width multiplier `k` and
/// in-block dropout (Zagoruyko & Komodakis 2016) — the paper's most
/// compression-sensitive network (Table I).
///
/// Input: `[N, in_c, 32, 32]`.
pub fn wide_resnet(in_c: usize, k: usize, classes: usize, rng: &mut StdRng) -> Network {
    assert!(k >= 1, "width multiplier must be >= 1");
    let mut b = Builder::new(rng);
    let widths = [16 * k, 32 * k, 64 * k];

    b.conv("stem.conv", in_c, 16, 3, 1, 1, false);

    let mut c_in = 16usize;
    for (si, &w) in widths.iter().enumerate() {
        for bi in 0..2usize {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            let lbl = format!("s{si}b{bi}");
            let needs_down = stride != 1 || c_in != w;
            let ci = c_in;
            b.residual(
                |m| {
                    m.bn(&format!("{lbl}.bn1"), ci);
                    m.relu(&format!("{lbl}.relu1"), ActKind::ReluToConv);
                    m.conv(&format!("{lbl}.conv1"), ci, w, 3, stride, 1, false);
                    m.bn(&format!("{lbl}.bn2"), w);
                    m.relu(&format!("{lbl}.relu2"), ActKind::ReluToOther);
                    m.dropout(&format!("{lbl}.drop"), 0.3);
                    m.conv(&format!("{lbl}.conv2"), w, w, 3, 1, 1, false);
                },
                |s| {
                    if needs_down {
                        s.conv(&format!("{lbl}.down"), ci, w, 1, stride, 0, false);
                    }
                },
            );
            c_in = w;
        }
    }
    b.bn("head.bn", widths[2]);
    b.relu("head.relu", ActKind::ReluToOther);
    b.gap("gap");
    b.linear("fc", widths[2], classes);
    b.finish("wide-resnet")
}

/// VDSR-style super-resolution network: a deep conv/BN/ReLU chain with a
/// global residual (`y = x + f(x)`), modified with batch normalization as
/// in the paper (Sec. V).  All activations are dense with few channels and
/// large spatial extent — the worst case for offload (Sec. VI-D).
///
/// Input and output: `[N, channels, H, W]`.
pub fn vdsr(channels: usize, width: usize, depth: usize, rng: &mut StdRng) -> Network {
    assert!(depth >= 2, "vdsr needs at least input and output convs");
    let mut b = Builder::new(rng);
    let (c, w) = (channels, width);
    b.residual(
        |m| {
            m.conv("in.conv", c, w, 3, 1, 1, false);
            m.relu("in.relu", ActKind::ReluToConv);
            for d in 0..depth - 2 {
                m.conv(&format!("mid{d}.conv"), w, w, 3, 1, 1, false);
                m.bn(&format!("mid{d}.bn"), w);
                m.relu(&format!("mid{d}.relu"), ActKind::ReluToConv);
            }
            m.conv("out.conv", w, c, 3, 1, 1, false);
        },
        |_s| {},
    );
    b.finish("vdsr")
}

/// Builds a network by name — the registry the experiment harnesses use.
///
/// Recognized names: `mini-vgg`, `mini-resnet`, `mini-resnet-bottleneck`,
/// `wide-resnet`, `vdsr`.
///
/// # Errors
///
/// Returns [`NetError::UnknownModel`] for a name outside the registry, so
/// harnesses can report a usable message for a mistyped CLI argument.
pub fn build_by_name(
    name: &str,
    in_c: usize,
    classes: usize,
    rng: &mut StdRng,
) -> Result<Network, NetError> {
    Ok(match name {
        "mini-vgg" => mini_vgg(in_c, classes, rng),
        "mini-resnet" => mini_resnet(in_c, 2, classes, rng),
        "mini-resnet-bottleneck" => mini_resnet_bottleneck(in_c, 2, classes, rng),
        "wide-resnet" => wide_resnet(in_c, 2, classes, rng),
        "vdsr" => vdsr(in_c, 16, 6, rng),
        other => return Err(NetError::UnknownModel(other.to_string())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::{Context, PassthroughStore};
    use jact_tensor::init::seeded_rng;
    use jact_tensor::{Shape, Tensor};
    use jact_rng::SeedableRng;

    fn smoke(net: &mut Network, in_c: usize, out_dim: usize) {
        let x = Tensor::from_vec(
            Shape::nchw(2, in_c, 32, 32),
            (0..2 * in_c * 32 * 32)
                .map(|i| ((i as f32) * 0.01).sin())
                .collect(),
        );
        let mut rng = jact_rng::rngs::StdRng::seed_from_u64(0);
        let mut store = PassthroughStore::new();
        let y = {
            let mut ctx = Context::new(true, &mut rng, &mut store);
            net.forward(&x, &mut ctx)
        };
        assert_eq!(y.shape().dims(), &[2, out_dim]);
        assert!(y.iter().all(|v| v.is_finite()));
        let gy = Tensor::full(y.shape().clone(), 0.01);
        let gx = {
            let mut ctx = Context::new(true, &mut rng, &mut store);
            net.backward(&gy, &mut ctx).expect("activations present")
        };
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.iter().all(|v| v.is_finite()));
        // Every trainable parameter with fan-in touched should have
        // gradient signal somewhere.
        let live = net
            .params()
            .iter()
            .filter(|p| p.grad.max_abs() > 0.0)
            .count();
        assert!(live > 0, "no gradients flowed");
    }

    #[test]
    fn mini_vgg_smoke() {
        let mut rng = seeded_rng(10);
        let mut net = mini_vgg(3, 10, &mut rng);
        smoke(&mut net, 3, 10);
    }

    #[test]
    fn mini_resnet_smoke() {
        let mut rng = seeded_rng(11);
        let mut net = mini_resnet(3, 1, 10, &mut rng);
        smoke(&mut net, 3, 10);
    }

    #[test]
    fn mini_resnet_bottleneck_smoke() {
        let mut rng = seeded_rng(12);
        let mut net = mini_resnet_bottleneck(3, 1, 10, &mut rng);
        smoke(&mut net, 3, 10);
    }

    #[test]
    fn wide_resnet_smoke() {
        let mut rng = seeded_rng(13);
        let mut net = wide_resnet(3, 1, 10, &mut rng);
        smoke(&mut net, 3, 10);
    }

    #[test]
    fn vdsr_smoke() {
        let mut rng = seeded_rng(14);
        let mut net = vdsr(3, 8, 4, &mut rng);
        let x = Tensor::from_vec(
            Shape::nchw(1, 3, 16, 16),
            (0..3 * 256).map(|i| ((i as f32) * 0.02).cos() * 0.3).collect(),
        );
        let mut r = jact_rng::rngs::StdRng::seed_from_u64(0);
        let mut store = PassthroughStore::new();
        let y = {
            let mut ctx = Context::new(true, &mut r, &mut store);
            net.forward(&x, &mut ctx)
        };
        assert_eq!(y.shape(), x.shape());
        let gy = Tensor::full(y.shape().clone(), 0.01);
        let mut ctx = Context::new(true, &mut r, &mut store);
        let gx = net.backward(&gy, &mut ctx).expect("activations present");
        assert!(gx.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn registry_builds_all() {
        for name in [
            "mini-vgg",
            "mini-resnet",
            "mini-resnet-bottleneck",
            "wide-resnet",
            "vdsr",
        ] {
            let mut rng = seeded_rng(1);
            let mut net = build_by_name(name, 3, 10, &mut rng).expect("registered model");
            assert!(net.num_parameters() > 0, "{name}");
        }
    }

    #[test]
    fn unknown_model_is_a_typed_error() {
        let mut rng = seeded_rng(1);
        let err = match build_by_name("alexnet", 3, 10, &mut rng) {
            Ok(_) => panic!("alexnet should be unknown"),
            Err(e) => e,
        };
        assert_eq!(err, NetError::UnknownModel("alexnet".into()));
    }

    #[test]
    fn parameter_counts_scale_with_width() {
        let mut rng = seeded_rng(1);
        let mut w1 = wide_resnet(3, 1, 10, &mut rng);
        let mut rng = seeded_rng(1);
        let mut w2 = wide_resnet(3, 2, 10, &mut rng);
        assert!(w2.num_parameters() > 3 * w1.num_parameters());
    }
}

//! Trainable parameters: value + gradient + momentum state.

use jact_tensor::Tensor;

/// One trainable parameter tensor with its accumulated gradient and the
/// optimizer's momentum buffer.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the last backward pass.
    pub grad: Tensor,
    /// SGD momentum buffer (same shape as `value`).
    pub momentum: Tensor,
    /// Whether weight decay applies (true for weights, false for biases
    /// and batch-norm affine parameters, following standard practice).
    pub decay: bool,
    /// Diagnostic name.
    pub name: String,
}

impl Param {
    /// Wraps an initialized value tensor as a trainable parameter.
    pub fn new(name: impl Into<String>, value: Tensor, decay: bool) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        let momentum = Tensor::zeros(value.shape().clone());
        Param {
            value,
            grad,
            momentum,
            decay,
            name: name.into(),
        }
    }

    /// Zeroes the gradient in place.
    pub fn zero_grad(&mut self) {
        self.grad.map_in_place(|_| 0.0);
    }

    /// Accumulates `g` into the gradient.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, g: &Tensor) {
        assert_eq!(self.grad.shape(), g.shape(), "gradient shape mismatch");
        for (a, &b) in self.grad.iter_mut().zip(g.iter()) {
            *a += b;
        }
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` iff the parameter is empty (never, by tensor invariant).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jact_tensor::Shape;

    #[test]
    fn new_param_has_zero_grad_and_momentum() {
        let p = Param::new("w", Tensor::full(Shape::vec(3), 1.0), true);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.momentum.sum(), 0.0);
        assert!(p.decay);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new("w", Tensor::zeros(Shape::vec(2)), false);
        p.accumulate(&Tensor::from_slice(&[1.0, 2.0]));
        p.accumulate(&Tensor::from_slice(&[0.5, -1.0]));
        assert_eq!(p.grad.as_slice(), &[1.5, 1.0]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn accumulate_shape_mismatch_panics() {
        let mut p = Param::new("w", Tensor::zeros(Shape::vec(2)), false);
        p.accumulate(&Tensor::zeros(Shape::vec(3)));
    }
}

//! Training objectives: softmax cross-entropy and mean-squared error.

use jact_tensor::{Shape, Tensor};

/// Softmax cross-entropy over `[N, classes]` logits.
///
/// Returns `(mean loss, dLogits)` in one pass — the gradient of the mean
/// loss with respect to the logits is `(softmax - onehot) / N`.
///
/// # Panics
///
/// Panics if `logits` is not rank 2 or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f64, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, classes]");
    let n = logits.shape().dim(0);
    let k = logits.shape().dim(1);
    assert_eq!(labels.len(), n, "label count mismatch");

    let lv = logits.as_slice();
    let mut grad = vec![0.0f32; lv.len()];
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < k, "label {label} out of range for {k} classes");
        let row = &lv[i * k..(i + 1) * k];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f64> = row.iter().map(|&v| ((v - max) as f64).exp()).collect();
        let z: f64 = exps.iter().sum();
        let p_label = exps[label] / z;
        loss -= p_label.max(1e-12).ln();
        for (j, &e) in exps.iter().enumerate() {
            let p = (e / z) as f32;
            grad[i * k + j] = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    (
        loss / n as f64,
        Tensor::from_vec(Shape::mat(n, k), grad),
    )
}

/// Mean squared error between prediction and target (any matching shapes).
///
/// Returns `(mean loss, dPred)` with `dPred = 2 (pred - target) / len`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f64, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch in mse loss");
    let n = pred.len() as f64;
    let loss = pred.mse(target);
    let grad = pred.zip(target, |p, t| 2.0 * (p - t) / n as f32);
    (loss, grad)
}

/// Top-1 predictions from `[N, classes]` logits.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    assert_eq!(logits.shape().rank(), 2);
    let n = logits.shape().dim(0);
    let k = logits.shape().dim(1);
    let lv = logits.as_slice();
    (0..n)
        .map(|i| {
            let row = &lv[i * k..(i + 1) * k];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(j, _)| j)
                .expect("non-empty row")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Tensor::from_vec(Shape::mat(1, 3), vec![10.0, -10.0, -10.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6, "loss={loss}");
        assert!(grad.max_abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::zeros(Shape::mat(2, 4));
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 3]);
        assert!((loss - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(Shape::mat(2, 3), vec![1.0, 2.0, 0.5, -1.0, 0.0, 1.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        let gv = grad.as_slice();
        for i in 0..2 {
            let s: f32 = gv[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_numeric_gradient() {
        let logits = Tensor::from_vec(Shape::mat(1, 3), vec![0.3, -0.7, 1.1]);
        let labels = [2usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps as f64);
            assert!(
                (num - grad.as_slice()[i] as f64).abs() < 1e-4,
                "i={i}: num={num} ana={}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn mse_loss_and_gradient() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let (loss, grad) = mse_loss(&p, &t);
        assert!((loss - 2.5).abs() < 1e-9);
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let logits = Tensor::from_vec(Shape::mat(2, 3), vec![0.1, 0.9, 0.2, 5.0, -1.0, 2.0]);
        assert_eq!(argmax_rows(&logits), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let logits = Tensor::zeros(Shape::mat(1, 2));
        let _ = softmax_cross_entropy(&logits, &[5]);
    }
}

//! Network composition: sequences and residual blocks.

use crate::act::Context;
use crate::error::NetError;
use crate::layers::Layer;
use crate::param::Param;
use jact_tensor::Tensor;

/// A node in the network graph: a single layer or a residual split.
pub enum Node {
    /// A plain layer.
    Layer(Box<dyn Layer>),
    /// A residual connection: `y = main(x) + shortcut(x)`.
    ///
    /// An empty shortcut is the identity.  The addition itself needs no
    /// saved activation (its gradient is the identity on both branches);
    /// the *sum output* is classified and memoized by its consumer (the
    /// next conv saves it with [`crate::act::ActKind::Sum`]).
    Residual {
        /// The main (transform) branch.
        main: Vec<Node>,
        /// The shortcut branch; empty means identity.
        shortcut: Vec<Node>,
    },
}

impl Node {
    /// Wraps a layer.
    pub fn layer(l: impl Layer + 'static) -> Node {
        Node::Layer(Box::new(l))
    }

    fn forward(&mut self, x: &Tensor, ctx: &mut Context<'_>) -> Tensor {
        match self {
            Node::Layer(l) => l.forward(x, ctx),
            Node::Residual { main, shortcut } => {
                let mut m = x.clone();
                for n in main.iter_mut() {
                    m = n.forward(&m, ctx);
                }
                let mut s = x.clone();
                for n in shortcut.iter_mut() {
                    s = n.forward(&s, ctx);
                }
                m.zip(&s, |a, b| a + b)
            }
        }
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut Context<'_>) -> Result<Tensor, NetError> {
        match self {
            Node::Layer(l) => l.backward(grad, ctx),
            Node::Residual { main, shortcut } => {
                let mut gm = grad.clone();
                for n in main.iter_mut().rev() {
                    gm = n.backward(&gm, ctx)?;
                }
                let mut gs = grad.clone();
                for n in shortcut.iter_mut().rev() {
                    gs = n.backward(&gs, ctx)?;
                }
                Ok(gm.zip(&gs, |a, b| a + b))
            }
        }
    }

    fn collect_params<'a>(&'a mut self, out: &mut Vec<&'a mut Param>) {
        match self {
            Node::Layer(l) => out.extend(l.params()),
            Node::Residual { main, shortcut } => {
                for n in main.iter_mut() {
                    n.collect_params(out);
                }
                for n in shortcut.iter_mut() {
                    n.collect_params(out);
                }
            }
        }
    }

    fn collect_names(&mut self, out: &mut Vec<String>) {
        match self {
            Node::Layer(l) => out.push(l.name()),
            Node::Residual { main, shortcut } => {
                out.push("residual{".into());
                for n in main.iter_mut() {
                    n.collect_names(out);
                }
                if !shortcut.is_empty() {
                    out.push("}shortcut{".into());
                    for n in shortcut.iter_mut() {
                        n.collect_names(out);
                    }
                }
                out.push("}".into());
            }
        }
    }
}

/// A feed-forward network: an ordered list of [`Node`]s.
pub struct Network {
    nodes: Vec<Node>,
    name: String,
}

impl Network {
    /// Builds a network from nodes.
    pub fn new(name: impl Into<String>, nodes: Vec<Node>) -> Self {
        Network {
            nodes,
            name: name.into(),
        }
    }

    /// The network's name (used in experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Forward pass through all nodes.
    pub fn forward(&mut self, x: &Tensor, ctx: &mut Context<'_>) -> Tensor {
        let mut h = x.clone();
        for n in self.nodes.iter_mut() {
            h = n.forward(&h, ctx);
        }
        h
    }

    /// Backward pass; returns the input gradient.
    ///
    /// # Errors
    ///
    /// Propagates [`NetError`] when a layer cannot reload a needed
    /// activation from the store.
    pub fn backward(&mut self, grad: &Tensor, ctx: &mut Context<'_>) -> Result<Tensor, NetError> {
        let mut g = grad.clone();
        for n in self.nodes.iter_mut().rev() {
            g = n.backward(&g, ctx)?;
        }
        Ok(g)
    }

    /// All trainable parameters, in graph order.
    pub fn params(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for n in self.nodes.iter_mut() {
            n.collect_params(&mut out);
        }
        out
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grads(&mut self) {
        for p in self.params() {
            p.zero_grad();
        }
    }

    /// Total trainable scalar count.
    pub fn num_parameters(&mut self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Layer names in execution order (diagnostics).
    pub fn layer_names(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        for n in self.nodes.iter_mut() {
            n.collect_names(&mut out);
        }
        out
    }

    /// Snapshots all parameter values as a name → tensor state dict
    /// (checkpointing; model builders guarantee unique parameter names).
    pub fn state(&mut self) -> Vec<(String, Tensor)> {
        self.params()
            .into_iter()
            .map(|p| (p.name.clone(), p.value.clone()))
            .collect()
    }

    /// Restores parameter values from a state dict produced by
    /// [`Network::state`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::MissingParameter`] if a parameter is absent
    /// from `state` and [`NetError::ShapeMismatch`] if a tensor's shape
    /// differs from the parameter's — loading a checkpoint into the wrong
    /// architecture must fail loudly, not silently corrupt training.
    pub fn load_state(&mut self, state: &[(String, Tensor)]) -> Result<(), NetError> {
        use std::collections::BTreeMap;
        let map: BTreeMap<&str, &Tensor> =
            state.iter().map(|(n, t)| (n.as_str(), t)).collect();
        for p in self.params() {
            let t = map
                .get(p.name.as_str())
                .ok_or_else(|| NetError::MissingParameter(p.name.clone()))?;
            if t.shape() != p.value.shape() {
                return Err(NetError::ShapeMismatch {
                    name: p.name.clone(),
                    expected: format!("{:?}", p.value.shape()),
                    actual: format!("{:?}", t.shape()),
                });
            }
            p.value = (*t).clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::{ActKind, Context, PassthroughStore};
    use crate::layers::{Conv2d, Relu};
    use jact_tensor::init::seeded_rng;
    use jact_tensor::Shape;
    use jact_rng::SeedableRng;

    fn run(net: &mut Network, x: &Tensor, gy: &Tensor) -> (Tensor, Tensor) {
        let mut rng = jact_rng::rngs::StdRng::seed_from_u64(0);
        let mut store = PassthroughStore::new();
        let y = {
            let mut ctx = Context::new(true, &mut rng, &mut store);
            net.forward(x, &mut ctx)
        };
        let gx = {
            let mut ctx = Context::new(true, &mut rng, &mut store);
            net.backward(gy, &mut ctx).expect("activations present")
        };
        (y, gx)
    }

    #[test]
    fn identity_residual_doubles_gradient() {
        // y = x + x = 2x when main is empty? main must be non-empty in
        // real nets; test with identity-weight conv in main.
        let mut rng = seeded_rng(3);
        let mut conv = Conv2d::new("c", 1, 1, 1, 1, 0, false, 0, &mut rng);
        conv.params()[0].value = Tensor::from_vec(Shape::mat(1, 1), vec![1.0]);
        let mut net = Network::new(
            "res",
            vec![Node::Residual {
                main: vec![Node::layer(conv)],
                shortcut: vec![],
            }],
        );
        let x = Tensor::full(Shape::nchw(1, 1, 2, 2), 3.0);
        let gy = Tensor::full(Shape::nchw(1, 1, 2, 2), 1.0);
        let (y, gx) = run(&mut net, &x, &gy);
        assert!(y.iter().all(|&v| (v - 6.0).abs() < 1e-6));
        assert!(gx.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn sequential_composition_and_params() {
        let mut rng = seeded_rng(5);
        let conv = Conv2d::new("c1", 1, 2, 3, 1, 1, true, 0, &mut rng);
        let relu = Relu::new("r1", 1, ActKind::ReluToOther);
        let mut net = Network::new("seq", vec![Node::layer(conv), Node::layer(relu)]);
        assert_eq!(net.params().len(), 2); // weight + bias
        assert_eq!(net.num_parameters(), 2 * 9 + 2);
        let x = Tensor::full(Shape::nchw(1, 1, 4, 4), 0.5);
        let gy = Tensor::full(Shape::nchw(1, 2, 4, 4), 1.0);
        let (y, gx) = run(&mut net, &x, &gy);
        assert_eq!(y.shape(), &Shape::nchw(1, 2, 4, 4));
        assert_eq!(gx.shape(), x.shape());
        assert!(y.iter().all(|&v| v >= 0.0)); // post-ReLU
    }

    #[test]
    fn zero_grads_resets() {
        let mut rng = seeded_rng(5);
        let conv = Conv2d::new("c1", 1, 1, 1, 1, 0, false, 0, &mut rng);
        let mut net = Network::new("n", vec![Node::layer(conv)]);
        let x = Tensor::full(Shape::nchw(1, 1, 2, 2), 1.0);
        let gy = Tensor::full(Shape::nchw(1, 1, 2, 2), 1.0);
        let _ = run(&mut net, &x, &gy);
        assert!(net.params()[0].grad.max_abs() > 0.0);
        net.zero_grads();
        assert_eq!(net.params()[0].grad.max_abs(), 0.0);
    }

    #[test]
    fn state_dict_roundtrip_restores_outputs() {
        use crate::models::mini_resnet;
        let mut rng = seeded_rng(31);
        let mut net = mini_resnet(3, 1, 4, &mut rng);
        let x = Tensor::full(Shape::nchw(1, 3, 32, 32), 0.3);
        let gy = Tensor::full(Shape::mat(1, 4), 0.1);

        let state = net.state();
        let (y0, _) = run(&mut net, &x, &gy);
        // Perturb the weights via a training-like update.
        for p in net.params() {
            p.value.map_in_place(|v| v + 0.05);
        }
        let (y1, _) = run(&mut net, &x, &gy);
        assert!(y0.mse(&y1) > 0.0, "perturbation must change outputs");
        // Restoring the checkpoint restores the function.
        net.load_state(&state).expect("matching architecture");
        let (y2, _) = run(&mut net, &x, &gy);
        assert!(y0.mse(&y2) < 1e-10, "mse={}", y0.mse(&y2));
    }

    #[test]
    fn load_state_rejects_missing_params() {
        use crate::models::mini_resnet;
        use crate::error::NetError;
        let mut rng = seeded_rng(31);
        let mut net = mini_resnet(3, 1, 4, &mut rng);
        let err = net.load_state(&[]).unwrap_err();
        assert!(matches!(err, NetError::MissingParameter(_)), "{err}");
    }

    #[test]
    fn layer_names_reflect_structure() {
        let mut rng = seeded_rng(5);
        let mut net = Network::new(
            "n",
            vec![Node::Residual {
                main: vec![Node::layer(Conv2d::new("c", 1, 1, 1, 1, 0, false, 0, &mut rng))],
                shortcut: vec![],
            }],
        );
        let names = net.layer_names();
        assert!(names.iter().any(|n| n.contains("residual")));
        assert!(names.iter().any(|n| n.contains("conv")));
    }
}

//! Neural network layers with explicit activation memoization.
//!
//! Every layer implements [`Layer`]: `forward` runs the computation and
//! saves whatever the backward pass needs through the context's
//! [`ActivationStore`](crate::act::ActivationStore); `backward` loads the
//! (possibly lossily recovered) activations back and produces input
//! gradients, accumulating parameter gradients internally.
//!
//! Saving follows the framework policy the paper describes (Sec. II-A):
//! conv saves its **input**, norm saves its **input**, ReLU saves its
//! **output** — and when two layers share a tensor (ReLU output feeding a
//! conv) the model builder aliases them to one [`ActivationId`] so it is
//! stored once.

mod conv;
mod dropout;
mod linear;
mod norm;
mod pool;
mod relu;

pub use conv::Conv2d;
pub use dropout::Dropout;
pub use linear::{Flatten, Linear};
pub use norm::BatchNorm2d;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use relu::Relu;

use crate::act::Context;
use crate::error::NetError;
use crate::param::Param;
use jact_tensor::Tensor;

/// A differentiable network layer.
pub trait Layer: Send {
    /// Runs the forward computation, memoizing needed activations.
    fn forward(&mut self, x: &Tensor, ctx: &mut Context<'_>) -> Tensor;

    /// Consumes the output gradient, accumulates parameter gradients, and
    /// returns the input gradient.
    ///
    /// Must be called after `forward` within the same step (activations
    /// must still be in the store).
    ///
    /// # Errors
    ///
    /// Propagates [`NetError`] when a needed activation cannot be loaded
    /// from the store.
    fn backward(&mut self, grad: &Tensor, ctx: &mut Context<'_>) -> Result<Tensor, NetError>;

    /// Mutable access to trainable parameters (empty for stateless layers).
    fn params(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Diagnostic layer name.
    fn name(&self) -> String;
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::act::{Context, PassthroughStore};
    use crate::layers::Layer;
    use jact_tensor::Tensor;
    use jact_rng::rngs::StdRng;
    use jact_rng::SeedableRng;

    /// Runs forward then backward through `layer` with a passthrough
    /// store, returning `(output, input_gradient)`.
    pub fn fwd_bwd(layer: &mut dyn Layer, x: &Tensor, gy: &Tensor) -> (Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = PassthroughStore::new();
        let y = {
            let mut ctx = Context::new(true, &mut rng, &mut store);
            layer.forward(x, &mut ctx)
        };
        let gx = {
            let mut ctx = Context::new(true, &mut rng, &mut store);
            layer.backward(gy, &mut ctx).expect("activations present")
        };
        (y, gx)
    }

    /// Central-difference check that the analytic input gradient of
    /// `layer` matches the numeric gradient of `sum(y * gy_weights)`.
    ///
    /// The layer must be deterministic in training mode for this to be
    /// meaningful (no dropout).
    pub fn gradcheck_input(make: &mut dyn FnMut() -> Box<dyn Layer>, x: &Tensor, tol: f64) {
        let gy_weights: Vec<f32> = {
            // Forward-only probe of the output shape.
            let mut l = make();
            let mut rng = StdRng::seed_from_u64(0);
            let mut store = crate::act::PassthroughStore::new();
            let mut ctx = Context::new(true, &mut rng, &mut store);
            let y = l.forward(x, &mut ctx);
            (0..y.len()).map(|i| ((i % 7) as f32 - 3.0) * 0.1).collect()
        };
        fn objective(
            make: &mut dyn FnMut() -> Box<dyn Layer>,
            input: &Tensor,
            weights: &[f32],
        ) -> f64 {
            let mut l = make();
            let mut rng = StdRng::seed_from_u64(0);
            let mut store = crate::act::PassthroughStore::new();
            let mut ctx = Context::new(true, &mut rng, &mut store);
            let y = l.forward(input, &mut ctx);
            y.iter()
                .zip(weights)
                .map(|(&a, &w)| (a * w) as f64)
                .sum()
        }

        // Analytic gradient.
        let mut l = make();
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = crate::act::PassthroughStore::new();
        let y = {
            let mut ctx = Context::new(true, &mut rng, &mut store);
            l.forward(x, &mut ctx)
        };
        let gy = Tensor::from_vec(y.shape().clone(), gy_weights.clone());
        let gx = {
            let mut ctx = Context::new(true, &mut rng, &mut store);
            l.backward(&gy, &mut ctx).expect("activations present")
        };

        // Numeric gradient on a sample of coordinates.
        let eps = 1e-2f32;
        let step = (x.len() / 17).max(1);
        for i in (0..x.len()).step_by(step) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (objective(make, &xp, &gy_weights) - objective(make, &xm, &gy_weights))
                / (2.0 * eps as f64);
            let ana = gx.as_slice()[i] as f64;
            assert!(
                (num - ana).abs() < tol * (1.0 + num.abs().max(ana.abs())),
                "grad mismatch at {i}: numeric={num} analytic={ana}"
            );
        }
    }
}

//! 2-D convolution via im2col + GEMM.

use crate::act::{ActKind, ActivationId, Context};
use crate::error::NetError;
use crate::layers::Layer;
use crate::param::Param;
use jact_tensor::init;
use jact_tensor::ops::{col2im, im2col, matmul, transpose, ConvGeom};
use jact_tensor::{Shape, Tensor};
use jact_rng::rngs::StdRng;

/// A 2-D convolution layer (square kernels, NCHW activations).
///
/// The backward pass reloads the layer's input from the activation store,
/// so when a compressing store is installed the weight gradient is the
/// paper's `∇w* = ∇y ∘ x*` (Eqn. 8) — computed from the *recovered*
/// activation.
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    geom: ConvGeom,
    in_c: usize,
    out_c: usize,
    /// Key the input is loaded from in the backward pass.
    input_key: ActivationId,
    /// What the saved input is classified as (Conv, Sum, Pool, Dropout…).
    input_kind: ActKind,
    /// False when the producer already saved this tensor (aliased key).
    saves_input: bool,
    /// Input shape captured during forward (for col2im).
    in_shape: Option<Shape>,
    label: String,
}

impl Conv2d {
    /// Creates a convolution with He-normal initialized weights.
    ///
    /// `input_key` identifies the saved input activation; pass a fresh id
    /// (the conv will save its input itself) or alias a producer's id and
    /// call [`Conv2d::aliased`] afterwards.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: impl Into<String>,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        input_key: ActivationId,
        rng: &mut StdRng,
    ) -> Self {
        let label = label.into();
        let fan_in = in_c * kernel * kernel;
        let weight = Param::new(
            format!("{label}.weight"),
            init::he_normal(out_c, fan_in, rng),
            true,
        );
        let bias = bias.then(|| Param::new(format!("{label}.bias"), Tensor::zeros(Shape::vec(out_c)), false));
        Conv2d {
            weight,
            bias,
            geom: ConvGeom::new(kernel, stride, pad),
            in_c,
            out_c,
            input_key,
            input_kind: ActKind::Conv,
            saves_input: true,
            in_shape: None,
            label,
        }
    }

    /// Marks the input as already saved by its producer under the aliased
    /// key; the conv will only load.
    pub fn aliased(mut self) -> Self {
        self.saves_input = false;
        self
    }

    /// Sets the activation kind the saved input is classified as
    /// (e.g. [`ActKind::Sum`] when the input is a residual addition).
    pub fn input_kind(mut self, kind: ActKind) -> Self {
        self.input_kind = kind;
        self
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// The key this conv loads its input from.
    pub fn input_key_id(&self) -> ActivationId {
        self.input_key
    }

    /// Converts the GEMM output `[out_c, N*OH*OW]` to NCHW.
    fn mat_to_nchw(&self, m: &Tensor, n: usize, oh: usize, ow: usize) -> Tensor {
        let mv = m.as_slice();
        let plane = oh * ow;
        let cols = n * plane;
        let mut out = vec![0.0f32; self.out_c * cols];
        for oc in 0..self.out_c {
            for ni in 0..n {
                let src = oc * cols + ni * plane;
                let dst = (ni * self.out_c + oc) * plane;
                out[dst..dst + plane].copy_from_slice(&mv[src..src + plane]);
            }
        }
        Tensor::from_vec(Shape::nchw(n, self.out_c, oh, ow), out)
    }

    /// Converts an NCHW gradient to the GEMM layout `[out_c, N*OH*OW]`.
    fn nchw_to_mat(&self, t: &Tensor) -> Tensor {
        let (n, c, oh, ow) = (t.shape().n(), t.shape().c(), t.shape().h(), t.shape().w());
        let plane = oh * ow;
        let cols = n * plane;
        let tv = t.as_slice();
        let mut out = vec![0.0f32; c * cols];
        for oc in 0..c {
            for ni in 0..n {
                let src = (ni * c + oc) * plane;
                let dst = oc * cols + ni * plane;
                out[dst..dst + plane].copy_from_slice(&tv[src..src + plane]);
            }
        }
        Tensor::from_vec(Shape::mat(c, cols), out)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, ctx: &mut Context<'_>) -> Tensor {
        assert_eq!(
            x.shape().c(),
            self.in_c,
            "{}: expected {} input channels, got {}",
            self.label,
            self.in_c,
            x.shape().c()
        );
        if ctx.training && self.saves_input {
            ctx.store.save(self.input_key, self.input_kind, x);
        }
        self.in_shape = Some(x.shape().clone());
        let (n, h, w) = (x.shape().n(), x.shape().h(), x.shape().w());
        let (oh, ow) = (self.geom.out_extent(h), self.geom.out_extent(w));
        let cols = im2col(x, self.geom);
        let mut y = matmul(&self.weight.value, &cols);
        if let Some(b) = &self.bias {
            let bw = b.value.as_slice();
            let ncols = y.shape().dim(1);
            let yv = y.as_mut_slice();
            for oc in 0..self.out_c {
                let bias = bw[oc];
                for v in &mut yv[oc * ncols..(oc + 1) * ncols] {
                    *v += bias;
                }
            }
        }
        self.mat_to_nchw(&y, n, oh, ow)
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut Context<'_>) -> Result<Tensor, NetError> {
        let in_shape = self
            .in_shape
            .clone()
            .expect("backward called before forward");
        let x = ctx.store.load(self.input_key)?;
        assert_eq!(x.shape(), &in_shape, "{}: stored input shape mismatch", self.label);

        let gy = self.nchw_to_mat(grad);
        let cols = im2col(&x, self.geom);

        // dW = gy · colsᵀ
        let dw = matmul(&gy, &transpose(&cols));
        self.weight.accumulate(&dw);

        if let Some(b) = &mut self.bias {
            let ncols = gy.shape().dim(1);
            let gv = gy.as_slice();
            let mut db = vec![0.0f32; self.out_c];
            for (oc, d) in db.iter_mut().enumerate() {
                *d = gv[oc * ncols..(oc + 1) * ncols].iter().sum();
            }
            b.accumulate(&Tensor::from_vec(Shape::vec(self.out_c), db));
        }

        // dX = col2im(Wᵀ · gy)
        let dcols = matmul(&transpose(&self.weight.value), &gy);
        Ok(col2im(&dcols, &in_shape, self.geom))
    }

    fn params(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn name(&self) -> String {
        format!(
            "{}(conv {}x{} {}->{} s{} p{})",
            self.label, self.geom.kernel, self.geom.kernel, self.in_c, self.out_c,
            self.geom.stride, self.geom.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::testutil::{fwd_bwd, gradcheck_input};
    use jact_tensor::init::seeded_rng;

    fn input(n: usize, c: usize, h: usize, w: usize) -> Tensor {
        let shape = Shape::nchw(n, c, h, w);
        let data = (0..shape.len())
            .map(|i| ((i as f32 * 0.7).sin()) * 0.5)
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn forward_shape_same_conv() {
        let mut rng = seeded_rng(1);
        let mut conv = Conv2d::new("c", 3, 8, 3, 1, 1, false, 0, &mut rng);
        let x = input(2, 3, 8, 8);
        let (y, _) = fwd_bwd(&mut conv, &x, &Tensor::zeros(Shape::nchw(2, 8, 8, 8)));
        assert_eq!(y.shape(), &Shape::nchw(2, 8, 8, 8));
    }

    #[test]
    fn forward_shape_strided_and_pointwise() {
        let mut rng = seeded_rng(1);
        let mut c1 = Conv2d::new("c1", 4, 6, 3, 2, 1, false, 0, &mut rng);
        let x = input(1, 4, 8, 8);
        let (y, _) = fwd_bwd(&mut c1, &x, &Tensor::zeros(Shape::nchw(1, 6, 4, 4)));
        assert_eq!(y.shape(), &Shape::nchw(1, 6, 4, 4));

        let mut c2 = Conv2d::new("c2", 4, 2, 1, 1, 0, true, 1, &mut rng);
        let (y, _) = fwd_bwd(&mut c2, &x, &Tensor::zeros(Shape::nchw(1, 2, 8, 8)));
        assert_eq!(y.shape(), &Shape::nchw(1, 2, 8, 8));
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        let mut rng = seeded_rng(1);
        let mut conv = Conv2d::new("c", 1, 1, 1, 1, 0, false, 0, &mut rng);
        conv.weight.value = Tensor::from_vec(Shape::mat(1, 1), vec![1.0]);
        let x = input(1, 1, 4, 4);
        let (y, _) = fwd_bwd(&mut conv, &x, &Tensor::zeros(x.shape().clone()));
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn nchw_ordering_multi_batch_multi_channel() {
        // A pointwise conv with weight selecting channel 1 must produce
        // channel-1 planes in every batch element.
        let mut rng = seeded_rng(1);
        let mut conv = Conv2d::new("c", 2, 1, 1, 1, 0, false, 0, &mut rng);
        conv.weight.value = Tensor::from_vec(Shape::mat(1, 2), vec![0.0, 1.0]);
        let x = input(2, 2, 3, 3);
        let (y, _) = fwd_bwd(&mut conv, &x, &Tensor::zeros(Shape::nchw(2, 1, 3, 3)));
        for n in 0..2 {
            for h in 0..3 {
                for w in 0..3 {
                    assert_eq!(y.get4(n, 0, h, w), x.get4(n, 1, h, w));
                }
            }
        }
    }

    #[test]
    fn input_gradcheck() {
        let x = input(1, 2, 6, 6);
        gradcheck_input(
            &mut || {
                let mut rng = seeded_rng(42);
                Box::new(Conv2d::new("c", 2, 3, 3, 1, 1, true, 0, &mut rng))
            },
            &x,
            2e-2,
        );
    }

    #[test]
    fn weight_gradcheck() {
        // Numeric check on one weight coordinate.
        let x = input(1, 2, 5, 5);
        let gy_val = 0.3f32;
        let run = |wdelta: f32| -> f64 {
            let mut rng = seeded_rng(7);
            let mut conv = Conv2d::new("c", 2, 2, 3, 1, 1, false, 0, &mut rng);
            conv.weight.value.as_mut_slice()[5] += wdelta;
            let gy = Tensor::full(Shape::nchw(1, 2, 5, 5), gy_val);
            let (y, _) = fwd_bwd(&mut conv, &x, &gy);
            y.iter().map(|&v| (v * gy_val) as f64).sum()
        };
        let eps = 1e-2;
        let num = (run(eps) - run(-eps)) / (2.0 * eps as f64);

        let mut rng = seeded_rng(7);
        let mut conv = Conv2d::new("c", 2, 2, 3, 1, 1, false, 0, &mut rng);
        let gy = Tensor::full(Shape::nchw(1, 2, 5, 5), gy_val);
        let _ = fwd_bwd(&mut conv, &x, &gy);
        let ana = conv.weight.grad.as_slice()[5] as f64;
        assert!((num - ana).abs() < 1e-2 * (1.0 + num.abs()), "num={num} ana={ana}");
    }

    #[test]
    fn saves_input_in_training_mode_only() {
        use crate::act::{ActivationStore, Context, PassthroughStore};
        use jact_rng::SeedableRng;
        let mut rng = jact_rng::rngs::StdRng::seed_from_u64(0);
        let mut store = PassthroughStore::new();
        let mut conv = {
            let mut r = seeded_rng(1);
            Conv2d::new("c", 1, 1, 3, 1, 1, false, 42, &mut r)
        };
        let x = input(1, 1, 4, 4);
        {
            let mut ctx = Context::new(false, &mut rng, &mut store);
            let _ = conv.forward(&x, &mut ctx);
        }
        assert!(store.is_empty(), "eval mode must not save");
        {
            let mut ctx = Context::new(true, &mut rng, &mut store);
            let _ = conv.forward(&x, &mut ctx);
        }
        assert_eq!(store.load(42).expect("saved in train mode"), x);
    }

    #[test]
    fn aliased_conv_does_not_save() {
        use crate::act::{Context, PassthroughStore};
        use jact_rng::SeedableRng;
        let mut rng = jact_rng::rngs::StdRng::seed_from_u64(0);
        let mut store = PassthroughStore::new();
        let mut conv = {
            let mut r = seeded_rng(1);
            Conv2d::new("c", 1, 1, 3, 1, 1, false, 7, &mut r).aliased()
        };
        let x = input(1, 1, 4, 4);
        let mut ctx = Context::new(true, &mut rng, &mut store);
        let _ = conv.forward(&x, &mut ctx);
        assert!(store.is_empty());
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn channel_mismatch_panics() {
        let mut rng = seeded_rng(1);
        let mut conv = Conv2d::new("c", 3, 4, 3, 1, 1, false, 0, &mut rng);
        let x = input(1, 2, 4, 4);
        let _ = fwd_bwd(&mut conv, &x, &Tensor::zeros(Shape::nchw(1, 4, 4, 4)));
    }
}

//! Rectified Linear Unit.

use crate::act::{ActKind, ActivationId, Context};
use crate::error::NetError;
use crate::layers::Layer;
use jact_tensor::Tensor;

/// ReLU with output memoization.
///
/// The backward pass needs only the positivity of the saved tensor
/// (Eqns. 2–3: `(r > 0) = (x > 0)`), so it works identically whether the
/// store returns exact values, lossily recovered values, or BRC's binary
/// surrogate — all preserve the sign pattern the gradient mask needs.
pub struct Relu {
    /// Key the output is saved under (often aliased by the next conv).
    output_key: ActivationId,
    /// How the saved output is classified (drives Table II selection).
    kind: ActKind,
    label: String,
}

impl Relu {
    /// Creates a ReLU whose output is saved under `output_key`.
    ///
    /// `kind` should be [`ActKind::ReluToConv`] when a convolution
    /// consumes the output (values required) and [`ActKind::ReluToOther`]
    /// when only the sign is needed downstream (BRC-eligible).
    pub fn new(label: impl Into<String>, output_key: ActivationId, kind: ActKind) -> Self {
        Relu {
            output_key,
            kind,
            label: label.into(),
        }
    }

    /// The key the output is saved under.
    pub fn output_key_id(&self) -> ActivationId {
        self.output_key
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, ctx: &mut Context<'_>) -> Tensor {
        let y = x.map(|v| if v > 0.0 { v } else { 0.0 });
        if ctx.training {
            ctx.store.save(self.output_key, self.kind, &y);
        }
        y
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut Context<'_>) -> Result<Tensor, NetError> {
        let saved = ctx.store.load(self.output_key)?;
        Ok(grad.zip(&saved, |g, s| if s > 0.0 { g } else { 0.0 }))
    }

    fn name(&self) -> String {
        format!("{}(relu)", self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::{ActivationStore, Context, PassthroughStore};
    use crate::layers::testutil::fwd_bwd;
    use jact_tensor::Shape;
    use jact_rng::SeedableRng;

    #[test]
    fn forward_clamps_negatives() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0, -0.5]);
        let mut relu = Relu::new("r", 0, ActKind::ReluToConv);
        let (y, _) = fwd_bwd(&mut relu, &x, &Tensor::zeros(x.shape().clone()));
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let x = Tensor::from_slice(&[-1.0, 0.5, 2.0, -0.5]);
        let g = Tensor::from_slice(&[10.0, 20.0, 30.0, 40.0]);
        let mut relu = Relu::new("r", 0, ActKind::ReluToConv);
        let (_, gx) = fwd_bwd(&mut relu, &x, &g);
        assert_eq!(gx.as_slice(), &[0.0, 20.0, 30.0, 0.0]);
    }

    #[test]
    fn backward_works_with_binary_surrogate() {
        // Replace the stored output with a BRC-style 0/1 surrogate; the
        // gradient must be identical.
        let x = Tensor::from_slice(&[-1.0, 0.5, 2.0, -0.5]);
        let g = Tensor::from_slice(&[10.0, 20.0, 30.0, 40.0]);
        let mut relu = Relu::new("r", 5, ActKind::ReluToOther);
        let mut rng = jact_rng::rngs::StdRng::seed_from_u64(0);
        let mut store = PassthroughStore::new();
        {
            let mut ctx = Context::new(true, &mut rng, &mut store);
            let _ = relu.forward(&x, &mut ctx);
        }
        // Overwrite with binary mask.
        let binary = Tensor::from_slice(&[0.0, 1.0, 1.0, 0.0]);
        store.save(5, ActKind::ReluToOther, &binary);
        let gx = {
            let mut ctx = Context::new(true, &mut rng, &mut store);
            relu.backward(&g, &mut ctx).expect("mask present")
        };
        assert_eq!(gx.as_slice(), &[0.0, 20.0, 30.0, 0.0]);
    }

    #[test]
    fn eval_mode_saves_nothing() {
        let mut relu = Relu::new("r", 0, ActKind::ReluToConv);
        let mut rng = jact_rng::rngs::StdRng::seed_from_u64(0);
        let mut store = PassthroughStore::new();
        let mut ctx = Context::new(false, &mut rng, &mut store);
        let _ = relu.forward(&Tensor::zeros(Shape::vec(4)), &mut ctx);
        assert!(store.is_empty());
    }
}

//! Batch normalization over NCHW channels.

use crate::act::{ActKind, ActivationId, Context};
use crate::error::NetError;
use crate::layers::Layer;
use crate::param::Param;
use jact_tensor::{Shape, Tensor};

/// Batch normalization (Ioffe & Szegedy 2015) — the `norm` of the CNR
/// block (Fig. 3).  Its presence forces the *dense* conv output to be
/// memoized, which is the storage problem JPEG-ACT attacks (Sec. II-A).
///
/// The backward pass reloads the (possibly recovered) input activation
/// and the batch statistics captured during forward; the statistics are
/// tiny and stay on-GPU in the paper, so they are kept in the layer here.
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    channels: usize,
    /// Batch statistics captured during the forward pass.
    batch_mean: Vec<f32>,
    batch_var: Vec<f32>,
    input_key: ActivationId,
    input_kind: ActKind,
    saves_input: bool,
    label: String,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with affine parameters γ=1, β=0.
    pub fn new(label: impl Into<String>, channels: usize, input_key: ActivationId) -> Self {
        let label = label.into();
        BatchNorm2d {
            gamma: Param::new(
                format!("{label}.gamma"),
                Tensor::full(Shape::vec(channels), 1.0),
                false,
            ),
            beta: Param::new(
                format!("{label}.beta"),
                Tensor::zeros(Shape::vec(channels)),
                false,
            ),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
            batch_mean: vec![0.0; channels],
            batch_var: vec![1.0; channels],
            input_key,
            input_kind: ActKind::Norm,
            saves_input: true,
            label,
        }
    }

    /// Marks the input as saved by its producer (aliased key).
    pub fn aliased(mut self) -> Self {
        self.saves_input = false;
        self
    }

    /// Sets the activation kind the saved input is classified as (e.g.
    /// [`ActKind::Sum`] when a pre-activation block feeds this norm).
    pub fn input_kind(mut self, kind: ActKind) -> Self {
        self.input_kind = kind;
        self
    }

    /// The per-channel running mean (inference statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The per-channel running variance (inference statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, ctx: &mut Context<'_>) -> Tensor {
        let (n, c, h, w) = (x.shape().n(), x.shape().c(), x.shape().h(), x.shape().w());
        assert_eq!(c, self.channels, "{}: channel mismatch", self.label);
        let plane = h * w;
        let m = (n * plane) as f32;
        let xv = x.as_slice();

        if ctx.training {
            if self.saves_input {
                ctx.store.save(self.input_key, self.input_kind, x);
            }
            // Batch statistics.
            for ci in 0..c {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &v in &xv[base..base + plane] {
                        sum += v as f64;
                        sq += (v as f64) * (v as f64);
                    }
                }
                let mean = (sum / m as f64) as f32;
                let var = (sq / m as f64) as f32 - mean * mean;
                self.batch_mean[ci] = mean;
                self.batch_var[ci] = var.max(0.0);
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * self.batch_var[ci];
            }
        }

        let (mean, var): (&[f32], &[f32]) = if ctx.training {
            (&self.batch_mean, &self.batch_var)
        } else {
            (&self.running_mean, &self.running_var)
        };

        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        let mut out = vec![0.0f32; xv.len()];
        for ni in 0..n {
            for ci in 0..c {
                let inv = 1.0 / (var[ci] + self.eps).sqrt();
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    out[i] = g[ci] * (xv[i] - mean[ci]) * inv + b[ci];
                }
            }
        }
        Tensor::from_vec(x.shape().clone(), out)
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut Context<'_>) -> Result<Tensor, NetError> {
        let x = ctx.store.load(self.input_key)?;
        let (n, c, h, w) = (x.shape().n(), x.shape().c(), x.shape().h(), x.shape().w());
        let plane = h * w;
        let m = (n * plane) as f32;
        let xv = x.as_slice();
        let gv = grad.as_slice();
        let g = self.gamma.value.as_slice();

        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        let mut out = vec![0.0f32; xv.len()];

        for ci in 0..c {
            let mean = self.batch_mean[ci];
            let inv = 1.0 / (self.batch_var[ci] + self.eps).sqrt();
            // First pass: Σdy and Σ(dy · x̂).
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let xhat = (xv[i] - mean) * inv;
                    sum_dy += gv[i] as f64;
                    sum_dy_xhat += (gv[i] * xhat) as f64;
                }
            }
            dbeta[ci] = sum_dy as f32;
            dgamma[ci] = sum_dy_xhat as f32;
            // Second pass: dx.
            let k1 = (sum_dy / m as f64) as f32;
            let k2 = (sum_dy_xhat / m as f64) as f32;
            let scale = g[ci] * inv;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let xhat = (xv[i] - mean) * inv;
                    out[i] = scale * (gv[i] - k1 - xhat * k2);
                }
            }
        }
        self.gamma
            .accumulate(&Tensor::from_vec(Shape::vec(c), dgamma));
        self.beta
            .accumulate(&Tensor::from_vec(Shape::vec(c), dbeta));
        Ok(Tensor::from_vec(x.shape().clone(), out))
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn name(&self) -> String {
        format!("{}(bn {})", self.label, self.channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::{Context, PassthroughStore};
    use crate::layers::testutil::{fwd_bwd, gradcheck_input};
    use jact_rng::SeedableRng;

    fn input() -> Tensor {
        let shape = Shape::nchw(2, 3, 4, 4);
        let data = (0..shape.len())
            .map(|i| ((i as f32 * 1.3).sin()) * 2.0 + 0.5)
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn output_is_normalized_in_training() {
        let x = input();
        let mut bn = BatchNorm2d::new("bn", 3, 0);
        let (y, _) = fwd_bwd(&mut bn, &x, &Tensor::zeros(x.shape().clone()));
        // Per-channel mean ~0, var ~1.
        let (n, c, h, w) = (2, 3, 4, 4);
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        vals.push(y.get4(ni, ci, hi, wi));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "c={ci} mean={mean}");
            assert!((var - 1.0).abs() < 1e-2, "c={ci} var={var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let x = input();
        let mut bn = BatchNorm2d::new("bn", 3, 0);
        // Train a few steps to move running stats.
        for _ in 0..20 {
            let _ = fwd_bwd(&mut bn, &x, &Tensor::zeros(x.shape().clone()));
        }
        let mut rng = jact_rng::rngs::StdRng::seed_from_u64(0);
        let mut store = PassthroughStore::new();
        let mut ctx = Context::new(false, &mut rng, &mut store);
        let y = bn.forward(&x, &mut ctx);
        // With converged running stats, eval output ~ train output.
        let mut ctx = Context::new(true, &mut rng, &mut store);
        let yt = bn.forward(&x, &mut ctx);
        assert!(y.mse(&yt) < 1e-2, "mse={}", y.mse(&yt));
    }

    #[test]
    fn gamma_beta_affect_output() {
        let x = input();
        let mut bn = BatchNorm2d::new("bn", 3, 0);
        bn.gamma.value = Tensor::from_slice(&[2.0, 1.0, 1.0]);
        bn.beta.value = Tensor::from_slice(&[0.0, 5.0, 0.0]);
        let (y, _) = fwd_bwd(&mut bn, &x, &Tensor::zeros(x.shape().clone()));
        // Channel 1 should have mean ~5.
        let mut sum = 0.0f32;
        for ni in 0..2 {
            for hi in 0..4 {
                for wi in 0..4 {
                    sum += y.get4(ni, 1, hi, wi);
                }
            }
        }
        assert!((sum / 32.0 - 5.0).abs() < 1e-3);
    }

    #[test]
    fn input_gradcheck() {
        let x = input();
        gradcheck_input(&mut || Box::new(BatchNorm2d::new("bn", 3, 0)), &x, 3e-2);
    }

    #[test]
    fn grad_sums_match_dbeta_dgamma() {
        let x = input();
        let mut bn = BatchNorm2d::new("bn", 3, 0);
        let gy = x.map(|v| v * 0.1 + 0.05);
        let _ = fwd_bwd(&mut bn, &x, &gy);
        // dβ = Σ dy per channel.
        for ci in 0..3 {
            let mut s = 0.0f32;
            for ni in 0..2 {
                for hi in 0..4 {
                    for wi in 0..4 {
                        s += gy.get4(ni, ci, hi, wi);
                    }
                }
            }
            assert!((bn.beta.grad.as_slice()[ci] - s).abs() < 1e-3);
        }
    }

    #[test]
    fn constant_channel_stays_finite() {
        // Zero variance channel must not produce NaN.
        let x = Tensor::full(Shape::nchw(1, 1, 4, 4), 3.0);
        let mut bn = BatchNorm2d::new("bn", 1, 0);
        let (y, gx) = fwd_bwd(&mut bn, &x, &Tensor::full(x.shape().clone(), 1.0));
        assert!(y.iter().all(|v| v.is_finite()));
        assert!(gx.iter().all(|v| v.is_finite()));
    }
}

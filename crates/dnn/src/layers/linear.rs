//! Fully-connected layer and the NCHW → matrix flatten.

use crate::act::{ActKind, ActivationId, Context};
use crate::error::NetError;
use crate::layers::Layer;
use crate::param::Param;
use jact_tensor::init;
use jact_tensor::ops::{matmul, transpose};
use jact_tensor::{Shape, Tensor};
use jact_rng::rngs::StdRng;

/// Flattens NCHW activations to `[N, C·H·W]` (no parameters, no saved
/// activations — reshape is free, Sec. III-C).
pub struct Flatten {
    in_shape: Option<Shape>,
    label: String,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new(label: impl Into<String>) -> Self {
        Flatten {
            in_shape: None,
            label: label.into(),
        }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _ctx: &mut Context<'_>) -> Tensor {
        self.in_shape = Some(x.shape().clone());
        let n = x.shape().dim(0);
        x.reshape(Shape::mat(n, x.len() / n))
    }

    fn backward(&mut self, grad: &Tensor, _ctx: &mut Context<'_>) -> Result<Tensor, NetError> {
        let shape = self.in_shape.clone().expect("backward before forward");
        Ok(grad.reshape(shape))
    }

    fn name(&self) -> String {
        format!("{}(flatten)", self.label)
    }
}

/// Fully-connected layer: `y = x·Wᵀ + b` on `[N, D]` inputs.
pub struct Linear {
    weight: Param,
    bias: Param,
    in_dim: usize,
    out_dim: usize,
    input_key: ActivationId,
    saves_input: bool,
    label: String,
}

impl Linear {
    /// Creates a linear layer with Xavier-normal weights.
    pub fn new(
        label: impl Into<String>,
        in_dim: usize,
        out_dim: usize,
        input_key: ActivationId,
        rng: &mut StdRng,
    ) -> Self {
        let label = label.into();
        Linear {
            weight: Param::new(
                format!("{label}.weight"),
                init::xavier_normal(out_dim, in_dim, rng),
                true,
            ),
            bias: Param::new(
                format!("{label}.bias"),
                Tensor::zeros(Shape::vec(out_dim)),
                false,
            ),
            in_dim,
            out_dim,
            input_key,
            saves_input: true,
            label,
        }
    }

    /// Marks the input as saved by its producer (aliased key).
    pub fn aliased(mut self) -> Self {
        self.saves_input = false;
        self
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, ctx: &mut Context<'_>) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "{}: linear expects [N, D]", self.label);
        assert_eq!(x.shape().dim(1), self.in_dim, "{}: dim mismatch", self.label);
        if ctx.training && self.saves_input {
            ctx.store.save(self.input_key, ActKind::Linear, x);
        }
        // y[N, out] = x[N, in] · W[out, in]ᵀ
        let mut y = matmul(x, &transpose(&self.weight.value));
        let b = self.bias.value.as_slice();
        let n = y.shape().dim(0);
        let yv = y.as_mut_slice();
        for ni in 0..n {
            for (oi, &bv) in b.iter().enumerate() {
                yv[ni * self.out_dim + oi] += bv;
            }
        }
        y
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut Context<'_>) -> Result<Tensor, NetError> {
        let x = ctx.store.load(self.input_key)?;
        // dW = gyᵀ · x ; db = column sums of gy ; dx = gy · W.
        let dw = matmul(&transpose(grad), &x);
        self.weight.accumulate(&dw);
        let n = grad.shape().dim(0);
        let gv = grad.as_slice();
        let mut db = vec![0.0f32; self.out_dim];
        for ni in 0..n {
            for (oi, d) in db.iter_mut().enumerate() {
                *d += gv[ni * self.out_dim + oi];
            }
        }
        self.bias
            .accumulate(&Tensor::from_vec(Shape::vec(self.out_dim), db));
        Ok(matmul(grad, &self.weight.value))
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> String {
        format!("{}(linear {}->{})", self.label, self.in_dim, self.out_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::testutil::fwd_bwd;
    use jact_tensor::init::seeded_rng;

    #[test]
    fn flatten_roundtrip() {
        let x = Tensor::from_vec(
            Shape::nchw(2, 3, 2, 2),
            (0..24).map(|i| i as f32).collect(),
        );
        let mut f = Flatten::new("f");
        let gy = Tensor::from_vec(Shape::mat(2, 12), (0..24).map(|i| i as f32).collect());
        let (y, gx) = fwd_bwd(&mut f, &x, &gy);
        assert_eq!(y.shape(), &Shape::mat(2, 12));
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(gx.as_slice(), gy.as_slice());
    }

    #[test]
    fn linear_known_values() {
        let mut rng = seeded_rng(1);
        let mut l = Linear::new("l", 2, 2, 0, &mut rng);
        l.weight.value = Tensor::from_vec(Shape::mat(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        l.bias.value = Tensor::from_slice(&[10.0, 20.0]);
        let x = Tensor::from_vec(Shape::mat(1, 2), vec![1.0, 1.0]);
        let (y, _) = fwd_bwd(&mut l, &x, &Tensor::zeros(Shape::mat(1, 2)));
        // y = [1+2+10, 3+4+20]
        assert_eq!(y.as_slice(), &[13.0, 27.0]);
    }

    #[test]
    fn linear_input_gradient() {
        let mut rng = seeded_rng(1);
        let mut l = Linear::new("l", 2, 2, 0, &mut rng);
        l.weight.value = Tensor::from_vec(Shape::mat(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let x = Tensor::from_vec(Shape::mat(1, 2), vec![1.0, -1.0]);
        let gy = Tensor::from_vec(Shape::mat(1, 2), vec![1.0, 1.0]);
        let (_, gx) = fwd_bwd(&mut l, &x, &gy);
        // dx = gy · W = [1+3, 2+4]
        assert_eq!(gx.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn linear_weight_and_bias_gradients() {
        let mut rng = seeded_rng(1);
        let mut l = Linear::new("l", 2, 1, 0, &mut rng);
        let x = Tensor::from_vec(Shape::mat(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let gy = Tensor::from_vec(Shape::mat(2, 1), vec![1.0, 10.0]);
        let _ = fwd_bwd(&mut l, &x, &gy);
        // dW = gyᵀ·x = [1*1+10*3, 1*2+10*4] = [31, 42]
        assert_eq!(l.weight.grad.as_slice(), &[31.0, 42.0]);
        assert_eq!(l.bias.grad.as_slice(), &[11.0]);
    }

    #[test]
    #[should_panic(expected = "expects [N, D]")]
    fn rank4_input_rejected() {
        let mut rng = seeded_rng(1);
        let mut l = Linear::new("l", 4, 2, 0, &mut rng);
        let x = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        let _ = fwd_bwd(&mut l, &x, &Tensor::zeros(Shape::mat(1, 2)));
    }
}

//! Pooling layers.

use crate::act::{ActKind, ActivationId, Context};
use crate::error::NetError;
use crate::layers::Layer;
use jact_tensor::ops::ConvGeom;
use jact_tensor::{Shape, Tensor};

/// Max pooling over square windows.
///
/// The backward pass recomputes the argmax from the stored (possibly
/// recovered) input — so compression error can reroute gradients exactly
/// as it would on hardware that stores the pooled input lossily.
pub struct MaxPool2d {
    geom: ConvGeom,
    input_key: ActivationId,
    saves_input: bool,
    in_shape: Option<Shape>,
    label: String,
}

impl MaxPool2d {
    /// Creates a max pool of `kernel`×`kernel` windows with `stride`.
    pub fn new(label: impl Into<String>, kernel: usize, stride: usize, input_key: ActivationId) -> Self {
        MaxPool2d {
            geom: ConvGeom::new(kernel, stride, 0),
            input_key,
            saves_input: true,
            in_shape: None,
            label: label.into(),
        }
    }

    /// Marks the input as saved by its producer (aliased key).
    pub fn aliased(mut self) -> Self {
        self.saves_input = false;
        self
    }

    fn pool(&self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = (x.shape().n(), x.shape().c(), x.shape().h(), x.shape().w());
        let (oh, ow) = (self.geom.out_extent(h), self.geom.out_extent(w));
        let k = self.geom.kernel;
        let s = self.geom.stride;
        let mut out = Tensor::zeros(Shape::nchw(n, c, oh, ow));
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut m = f32::NEG_INFINITY;
                        for ky in 0..k {
                            for kx in 0..k {
                                m = m.max(x.get4(ni, ci, oy * s + ky, ox * s + kx));
                            }
                        }
                        out.set4(ni, ci, oy, ox, m);
                    }
                }
            }
        }
        out
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, ctx: &mut Context<'_>) -> Tensor {
        if ctx.training && self.saves_input {
            ctx.store.save(self.input_key, ActKind::Pool, x);
        }
        self.in_shape = Some(x.shape().clone());
        self.pool(x)
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut Context<'_>) -> Result<Tensor, NetError> {
        let x = ctx.store.load(self.input_key)?;
        let shape = self.in_shape.clone().expect("backward before forward");
        assert_eq!(x.shape(), &shape, "{}: stored input shape mismatch", self.label);
        let (n, c, _h, _w) = (shape.n(), shape.c(), shape.h(), shape.w());
        let (oh, ow) = (grad.shape().h(), grad.shape().w());
        let k = self.geom.kernel;
        let s = self.geom.stride;
        let mut gx = Tensor::zeros(shape);
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        // Recompute argmax from the (recovered) input.
                        let (mut by, mut bx, mut best) = (0usize, 0usize, f32::NEG_INFINITY);
                        for ky in 0..k {
                            for kx in 0..k {
                                let v = x.get4(ni, ci, oy * s + ky, ox * s + kx);
                                if v > best {
                                    best = v;
                                    by = oy * s + ky;
                                    bx = ox * s + kx;
                                }
                            }
                        }
                        let g = grad.get4(ni, ci, oy, ox);
                        let cur = gx.get4(ni, ci, by, bx);
                        gx.set4(ni, ci, by, bx, cur + g);
                    }
                }
            }
        }
        Ok(gx)
    }

    fn name(&self) -> String {
        format!("{}(maxpool {}s{})", self.label, self.geom.kernel, self.geom.stride)
    }
}

/// Global average pooling: NCHW → `[N, C]`.
///
/// Needs no saved activation — the gradient is uniform over the plane.
pub struct GlobalAvgPool {
    in_shape: Option<Shape>,
    label: String,
}

impl GlobalAvgPool {
    /// Creates a global average pool.
    pub fn new(label: impl Into<String>) -> Self {
        GlobalAvgPool {
            in_shape: None,
            label: label.into(),
        }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _ctx: &mut Context<'_>) -> Tensor {
        let (n, c, h, w) = (x.shape().n(), x.shape().c(), x.shape().h(), x.shape().w());
        self.in_shape = Some(x.shape().clone());
        let plane = (h * w) as f32;
        let mut out = Tensor::zeros(Shape::mat(n, c));
        for ni in 0..n {
            for ci in 0..c {
                let mut s = 0.0f32;
                for hi in 0..h {
                    for wi in 0..w {
                        s += x.get4(ni, ci, hi, wi);
                    }
                }
                out.as_mut_slice()[ni * c + ci] = s / plane;
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor, _ctx: &mut Context<'_>) -> Result<Tensor, NetError> {
        let shape = self.in_shape.clone().expect("backward before forward");
        let (n, c, h, w) = (shape.n(), shape.c(), shape.h(), shape.w());
        let plane = (h * w) as f32;
        let mut gx = Tensor::zeros(shape);
        for ni in 0..n {
            for ci in 0..c {
                let g = grad.as_slice()[ni * c + ci] / plane;
                for hi in 0..h {
                    for wi in 0..w {
                        gx.set4(ni, ci, hi, wi, g);
                    }
                }
            }
        }
        Ok(gx)
    }

    fn name(&self) -> String {
        format!("{}(gap)", self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::testutil::fwd_bwd;

    #[test]
    fn maxpool_forward_2x2() {
        let x = Tensor::from_vec(
            Shape::nchw(1, 1, 4, 4),
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        );
        let mut p = MaxPool2d::new("p", 2, 2, 0);
        let (y, _) = fwd_bwd(&mut p, &x, &Tensor::zeros(Shape::nchw(1, 1, 2, 2)));
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(
            Shape::nchw(1, 1, 2, 2),
            vec![1.0, 9.0, 3.0, 2.0],
        );
        let g = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![5.0]);
        let mut p = MaxPool2d::new("p", 2, 2, 0);
        let (_, gx) = fwd_bwd(&mut p, &x, &g);
        assert_eq!(gx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_gradient_sum_preserved() {
        let shape = Shape::nchw(2, 3, 4, 4);
        let x = Tensor::from_vec(
            shape.clone(),
            (0..shape.len()).map(|i| ((i * 31 % 19) as f32) - 9.0).collect(),
        );
        let g = Tensor::full(Shape::nchw(2, 3, 2, 2), 1.0);
        let mut p = MaxPool2d::new("p", 2, 2, 0);
        let (_, gx) = fwd_bwd(&mut p, &x, &g);
        assert!((gx.sum() - g.sum()).abs() < 1e-5);
    }

    #[test]
    fn gap_forward_and_backward() {
        let x = Tensor::from_vec(
            Shape::nchw(1, 2, 2, 2),
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
        );
        let mut p = GlobalAvgPool::new("g");
        let gy = Tensor::from_vec(Shape::mat(1, 2), vec![4.0, 8.0]);
        let (y, gx) = fwd_bwd(&mut p, &x, &gy);
        assert_eq!(y.as_slice(), &[2.5, 25.0]);
        assert_eq!(
            gx.as_slice(),
            &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]
        );
    }
}

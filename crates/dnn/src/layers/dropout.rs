//! Inverted dropout.

use crate::act::{ActKind, ActivationId, Context};
use crate::error::NetError;
use crate::layers::Layer;
use jact_tensor::Tensor;
use jact_rng::Rng;

/// Inverted dropout: in training, zeroes each element with probability
/// `p` and scales survivors by `1/(1-p)`.
///
/// The backward mask is derived from the stored activation's non-zero
/// pattern.  When the consumer (a conv or linear layer) already saves the
/// dropout output, the mask key aliases that tensor and the dropout layer
/// stores nothing extra — the paper's Table II treats the saved dropout
/// output as one sparse, ZVC-friendly activation.
pub struct Dropout {
    p: f32,
    /// Key of the saved output (own or aliased to the consumer's input).
    output_key: ActivationId,
    saves_output: bool,
    label: String,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(label: impl Into<String>, p: f32, output_key: ActivationId) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout {
            p,
            output_key,
            saves_output: true,
            label: label.into(),
        }
    }

    /// Marks the output as saved by its consumer (aliased key).
    pub fn aliased(mut self) -> Self {
        self.saves_output = false;
        self
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, ctx: &mut Context<'_>) -> Tensor {
        if !ctx.training {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let data: Vec<f32> = x
            .iter()
            .map(|&v| {
                if ctx.rng.gen::<f32>() < keep {
                    v * scale
                } else {
                    0.0
                }
            })
            .collect();
        let y = Tensor::from_vec(x.shape().clone(), data);
        if self.saves_output {
            ctx.store.save(self.output_key, ActKind::Dropout, &y);
        }
        y
    }

    fn backward(&mut self, grad: &Tensor, ctx: &mut Context<'_>) -> Result<Tensor, NetError> {
        let saved = ctx.store.load(self.output_key)?;
        let scale = 1.0 / (1.0 - self.p);
        Ok(grad.zip(&saved, |g, s| if s != 0.0 { g * scale } else { 0.0 }))
    }

    fn name(&self) -> String {
        format!("{}(dropout {})", self.label, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::{Context, PassthroughStore};
    use crate::layers::testutil::fwd_bwd;
    use jact_tensor::Shape;
    use jact_rng::SeedableRng;

    #[test]
    fn eval_mode_is_identity() {
        let x = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let mut d = Dropout::new("d", 0.5, 0);
        let mut rng = jact_rng::rngs::StdRng::seed_from_u64(1);
        let mut store = PassthroughStore::new();
        let mut ctx = Context::new(false, &mut rng, &mut store);
        let y = d.forward(&x, &mut ctx);
        assert_eq!(y, x);
    }

    #[test]
    fn training_zeroes_about_p_fraction() {
        let x = Tensor::full(Shape::vec(10_000), 1.0);
        let mut d = Dropout::new("d", 0.3, 0);
        let (y, _) = fwd_bwd(&mut d, &x, &Tensor::zeros(x.shape().clone()));
        let sparsity = y.sparsity();
        assert!((sparsity - 0.3).abs() < 0.03, "sparsity={sparsity}");
        // Survivors are scaled so the expected sum is preserved.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean={}", y.mean());
    }

    #[test]
    fn backward_masks_and_scales() {
        let x = Tensor::full(Shape::vec(1000), 1.0);
        let g = Tensor::full(Shape::vec(1000), 1.0);
        let mut d = Dropout::new("d", 0.5, 0);
        let (y, gx) = fwd_bwd(&mut d, &x, &g);
        for (yi, gi) in y.iter().zip(gx.iter()) {
            if *yi == 0.0 {
                assert_eq!(*gi, 0.0);
            } else {
                assert!((gi - 2.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn invalid_p_rejected() {
        let _ = Dropout::new("d", 1.0, 0);
    }
}

//! Training loops for classification and super-resolution.

use crate::act::{ActivationStore, Context, FaultReport};
use crate::error::NetError;
use crate::loss::{mse_loss, softmax_cross_entropy};
use crate::metrics::{psnr, top1_accuracy, Average};
use crate::net::Network;
use crate::optim::Sgd;
use jact_obs as obs;
use jact_tensor::Tensor;
use jact_rng::rngs::StdRng;

/// Emits one epoch's summary into an open observability capture: the
/// loss/score gauges plus the wire-fault deltas, bracketed by the
/// caller's `train.epoch` span.  No-op when no capture is open.
fn note_epoch(stats: &EpochStats) {
    if !obs::is_active() {
        return;
    }
    obs::count("train.epochs", 1);
    obs::gauge("train.loss", stats.loss);
    obs::gauge("train.score", stats.score);
    let f = &stats.faults;
    for (name, v) in [
        ("train.wire_loads", f.wire_loads),
        ("train.faults_injected", f.faults_injected),
        ("train.corrupt_loads", f.corrupt_loads),
        ("train.recovered_loads", f.recovered_loads),
    ] {
        if v > 0 {
            obs::count(name, v);
        }
    }
}

/// The `train.epoch` span attributes: epoch index plus the task name.
fn epoch_attrs(epoch: usize, task: &'static str) -> Vec<(String, obs::Value)> {
    vec![
        ("epoch".to_string(), obs::Value::U64(epoch as u64)),
        ("task".to_string(), obs::Value::Str(task.to_string())),
    ]
}

/// One labelled classification batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// NCHW images.
    pub images: Tensor,
    /// One label per batch element.
    pub labels: Vec<usize>,
}

/// One super-resolution batch: degraded input and clean target.
#[derive(Debug, Clone)]
pub struct SrBatch {
    /// NCHW degraded input.
    pub input: Tensor,
    /// NCHW clean target.
    pub target: Tensor,
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochStats {
    /// Mean training loss.
    pub loss: f64,
    /// Mean training accuracy (classification) or PSNR (super-resolution).
    pub score: f64,
    /// Wire-fault activity observed during this epoch (all zeros for
    /// stores without a fallible transport).
    pub faults: FaultReport,
}

/// A trainer binding a network, optimizer, RNG, and activation store.
///
/// The store is the compression injection point: pass a
/// [`PassthroughStore`](crate::act::PassthroughStore) for exact training,
/// or `jact-core`'s compressing store to train under lossy offload —
/// gradients are then computed from recovered activations (Eqn. 8).
pub struct Trainer<'s> {
    /// The network being trained.
    pub net: Network,
    /// The optimizer.
    pub opt: Sgd,
    /// Seeded RNG for dropout and shuffling.
    pub rng: StdRng,
    /// Activation storage.
    pub store: &'s mut dyn ActivationStore,
}

impl<'s> Trainer<'s> {
    /// Creates a trainer.
    pub fn new(net: Network, opt: Sgd, rng: StdRng, store: &'s mut dyn ActivationStore) -> Self {
        Trainer {
            net,
            opt,
            rng,
            store,
        }
    }

    /// Runs one classification training step; returns `(loss, accuracy)`.
    ///
    /// # Errors
    ///
    /// Propagates [`NetError`] from the backward pass (a lossy store
    /// failing to recover an activation).
    pub fn step_classify(&mut self, batch: &Batch) -> Result<(f64, f64), NetError> {
        self.store.clear();
        let logits = {
            let mut ctx = Context::new(true, &mut self.rng, self.store);
            self.net.forward(&batch.images, &mut ctx)
        };
        let (loss, dlogits) = softmax_cross_entropy(&logits, &batch.labels);
        let acc = top1_accuracy(&logits, &batch.labels);
        {
            let mut ctx = Context::new(true, &mut self.rng, self.store);
            let _ = self.net.backward(&dlogits, &mut ctx)?;
        }
        self.opt.step(self.net.params());
        self.store.clear();
        Ok((loss, acc))
    }

    /// Runs one super-resolution training step; returns `(loss, psnr)`.
    ///
    /// # Errors
    ///
    /// Propagates [`NetError`] from the backward pass.
    pub fn step_sr(&mut self, batch: &SrBatch) -> Result<(f64, f64), NetError> {
        self.store.clear();
        let pred = {
            let mut ctx = Context::new(true, &mut self.rng, self.store);
            self.net.forward(&batch.input, &mut ctx)
        };
        let (loss, dpred) = mse_loss(&pred, &batch.target);
        let p = psnr(&pred, &batch.target, 1.0);
        {
            let mut ctx = Context::new(true, &mut self.rng, self.store);
            let _ = self.net.backward(&dpred, &mut ctx)?;
        }
        self.opt.step(self.net.params());
        self.store.clear();
        Ok((loss, p))
    }

    /// Trains one epoch of classification batches.
    ///
    /// # Errors
    ///
    /// Propagates the first [`NetError`] any step reports.
    pub fn train_epoch_classify(
        &mut self,
        epoch: usize,
        batches: &[Batch],
    ) -> Result<EpochStats, NetError> {
        obs::span_with(
            "train.epoch",
            || epoch_attrs(epoch, "classify"),
            || {
                self.opt.start_epoch(epoch);
                let before = self.store.fault_report();
                let mut loss = Average::new();
                let mut acc = Average::new();
                for b in batches {
                    let (l, a) = self.step_classify(b)?;
                    loss.push(l);
                    acc.push(a);
                }
                let stats = EpochStats {
                    loss: loss.mean(),
                    score: acc.mean(),
                    faults: self.store.fault_report().delta_since(&before),
                };
                note_epoch(&stats);
                Ok(stats)
            },
        )
    }

    /// Trains one epoch of super-resolution batches.
    ///
    /// # Errors
    ///
    /// Propagates the first [`NetError`] any step reports.
    pub fn train_epoch_sr(
        &mut self,
        epoch: usize,
        batches: &[SrBatch],
    ) -> Result<EpochStats, NetError> {
        obs::span_with(
            "train.epoch",
            || epoch_attrs(epoch, "sr"),
            || {
                self.opt.start_epoch(epoch);
                let before = self.store.fault_report();
                let mut loss = Average::new();
                let mut score = Average::new();
                for b in batches {
                    let (l, p) = self.step_sr(b)?;
                    loss.push(l);
                    score.push(p);
                }
                let stats = EpochStats {
                    loss: loss.mean(),
                    score: score.mean(),
                    faults: self.store.fault_report().delta_since(&before),
                };
                note_epoch(&stats);
                Ok(stats)
            },
        )
    }

    /// Evaluates classification accuracy on validation batches
    /// (no dropout, running BN statistics, nothing saved).
    pub fn evaluate_classify(&mut self, batches: &[Batch]) -> f64 {
        let mut acc = Average::new();
        for b in batches {
            let mut ctx = Context::new(false, &mut self.rng, self.store);
            let logits = self.net.forward(&b.images, &mut ctx);
            acc.push(top1_accuracy(&logits, &b.labels));
        }
        acc.mean()
    }

    /// Evaluates super-resolution PSNR on validation batches.
    pub fn evaluate_sr(&mut self, batches: &[SrBatch]) -> f64 {
        let mut score = Average::new();
        for b in batches {
            let mut ctx = Context::new(false, &mut self.rng, self.store);
            let pred = self.net.forward(&b.input, &mut ctx);
            score.push(psnr(&pred, &b.target, 1.0));
        }
        score.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::PassthroughStore;
    use crate::models::{mini_resnet, vdsr};
    use crate::optim::{Sgd, SgdConfig};
    use jact_tensor::init::seeded_rng;
    use jact_tensor::{Shape, Tensor};
    use jact_rng::SeedableRng;

    /// A trivially separable two-class problem: class = sign of channel
    /// mean.
    fn toy_batches(n_batches: usize, seed: u64) -> Vec<Batch> {
        let mut rng = seeded_rng(seed);
        (0..n_batches)
            .map(|_| {
                let bs = 8usize;
                let shape = Shape::nchw(bs, 3, 32, 32);
                let mut data = vec![0.0f32; shape.len()];
                let mut labels = Vec::with_capacity(bs);
                for b in 0..bs {
                    let label = (jact_tensor::init::uniform_tensor(
                        Shape::vec(1),
                        0.0,
                        1.0,
                        &mut rng,
                    )
                    .as_slice()[0]
                        > 0.5) as usize;
                    let bias = if label == 1 { 0.5 } else { -0.5 };
                    let noise =
                        jact_tensor::init::normal_tensor(Shape::vec(3 * 32 * 32), 0.3, &mut rng);
                    for (i, &nv) in noise.iter().enumerate() {
                        data[b * 3 * 32 * 32 + i] = bias + nv;
                    }
                    labels.push(label);
                }
                Batch {
                    images: Tensor::from_vec(shape, data),
                    labels,
                }
            })
            .collect()
    }

    #[test]
    fn resnet_learns_toy_problem() {
        let mut mrng = seeded_rng(21);
        let net = mini_resnet(3, 1, 2, &mut mrng);
        let opt = Sgd::new(SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
        });
        let mut store = PassthroughStore::new();
        let mut trainer = Trainer::new(net, opt, StdRng::seed_from_u64(0), &mut store);
        let batches = toy_batches(6, 77);
        let mut last = EpochStats::default();
        for e in 0..4 {
            last = trainer.train_epoch_classify(e, &batches).expect("training step");
        }
        assert!(
            last.score > 0.85,
            "train accuracy only {:.3} (loss {:.3})",
            last.score,
            last.loss
        );
        let val = trainer.evaluate_classify(&toy_batches(2, 99));
        assert!(val > 0.7, "val accuracy {val}");
    }

    #[test]
    fn vdsr_reduces_mse_on_denoising() {
        let mut mrng = seeded_rng(22);
        let net = vdsr(1, 8, 3, &mut mrng);
        let opt = Sgd::new(SgdConfig {
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        let mut store = PassthroughStore::new();
        let mut trainer = Trainer::new(net, opt, StdRng::seed_from_u64(1), &mut store);

        let mut rng = seeded_rng(5);
        let batches: Vec<SrBatch> = (0..4)
            .map(|_| {
                let shape = Shape::nchw(2, 1, 16, 16);
                let target = Tensor::from_vec(
                    shape.clone(),
                    (0..shape.len())
                        .map(|i| 0.5 + 0.3 * ((i % 16) as f32 * 0.4).sin())
                        .collect(),
                );
                let noise = jact_tensor::init::normal_tensor(shape.clone(), 0.05, &mut rng);
                let input = target.zip(&noise, |t, n| t + n);
                SrBatch { input, target }
            })
            .collect();

        let first = trainer.train_epoch_sr(0, &batches).expect("training step");
        let mut last = first;
        for e in 1..6 {
            last = trainer.train_epoch_sr(e, &batches).expect("training step");
        }
        assert!(
            last.loss < first.loss,
            "loss did not decrease: {} -> {}",
            first.loss,
            last.loss
        );
        assert!(last.score > first.score, "psnr did not improve");
    }

    #[test]
    fn consecutive_steps_do_not_interfere() {
        let mut mrng = seeded_rng(23);
        let net = mini_resnet(3, 1, 2, &mut mrng);
        let opt = Sgd::new(SgdConfig::default());
        let mut store = PassthroughStore::new();
        let mut trainer = Trainer::new(net, opt, StdRng::seed_from_u64(0), &mut store);
        let batches = toy_batches(2, 3);
        let (l1, _) = trainer.step_classify(&batches[0]).expect("step");
        let (l2, _) = trainer.step_classify(&batches[1]).expect("step");
        assert!(l1.is_finite() && l2.is_finite());
    }
}

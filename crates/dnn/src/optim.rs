//! Stochastic gradient descent (Eqn. 1) with momentum, weight decay, and
//! step schedules.

use crate::param::Param;

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Learning rate η.
    pub lr: f32,
    /// Classical momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay applied to parameters flagged `decay`.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }
}

/// The SGD optimizer: `w ← w − η (∇w + λw + μ·buf)`.
#[derive(Debug, Clone)]
pub struct Sgd {
    config: SgdConfig,
    /// Multiplicative LR decay applied at the epochs in `milestones`.
    gamma: f32,
    milestones: Vec<usize>,
    current_lr: f32,
}

impl Sgd {
    /// Creates an optimizer with no schedule.
    pub fn new(config: SgdConfig) -> Self {
        Sgd {
            current_lr: config.lr,
            config,
            gamma: 1.0,
            milestones: Vec::new(),
        }
    }

    /// Adds a multi-step schedule: multiply the LR by `gamma` at each
    /// epoch in `milestones`.
    pub fn with_schedule(mut self, milestones: &[usize], gamma: f32) -> Self {
        self.milestones = milestones.to_vec();
        self.gamma = gamma;
        self
    }

    /// The learning rate currently in effect.
    pub fn lr(&self) -> f32 {
        self.current_lr
    }

    /// Notifies the optimizer that `epoch` (0-based) is starting,
    /// applying any scheduled decay.
    pub fn start_epoch(&mut self, epoch: usize) {
        let decays = self.milestones.iter().filter(|&&m| m <= epoch).count();
        self.current_lr = self.config.lr * self.gamma.powi(decays as i32);
    }

    /// Applies one update step to the given parameters, consuming their
    /// accumulated gradients (which are then zeroed).
    pub fn step(&mut self, params: Vec<&mut Param>) {
        let lr = self.current_lr;
        let mu = self.config.momentum;
        let wd = self.config.weight_decay;
        for p in params {
            let decay = if p.decay { wd } else { 0.0 };
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_mut_slice();
            let buf = p.momentum.as_mut_slice();
            for i in 0..value.len() {
                let g = grad[i] + decay * value[i];
                buf[i] = mu * buf[i] + g;
                value[i] -= lr * buf[i];
                grad[i] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jact_tensor::{Shape, Tensor};

    fn param(v: f32, g: f32, decay: bool) -> Param {
        let mut p = Param::new("p", Tensor::full(Shape::vec(1), v), decay);
        p.grad = Tensor::full(Shape::vec(1), g);
        p
    }

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        let mut p = param(1.0, 2.0, true);
        opt.step(vec![&mut p]);
        assert!((p.value.as_slice()[0] - 0.8).abs() < 1e-6);
        assert_eq!(p.grad.as_slice()[0], 0.0, "grad consumed");
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(SgdConfig {
            lr: 1.0,
            momentum: 0.5,
            weight_decay: 0.0,
        });
        let mut p = param(0.0, 1.0, false);
        opt.step(vec![&mut p]);
        assert!((p.value.as_slice()[0] + 1.0).abs() < 1e-6); // -1
        p.grad = Tensor::full(Shape::vec(1), 1.0);
        opt.step(vec![&mut p]);
        // buf = 0.5*1 + 1 = 1.5 -> value = -1 - 1.5 = -2.5
        assert!((p.value.as_slice()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_only_on_flagged() {
        let cfg = SgdConfig {
            lr: 1.0,
            momentum: 0.0,
            weight_decay: 0.1,
        };
        let mut opt = Sgd::new(cfg);
        let mut w = param(1.0, 0.0, true);
        let mut b = param(1.0, 0.0, false);
        opt.step(vec![&mut w, &mut b]);
        assert!((w.value.as_slice()[0] - 0.9).abs() < 1e-6);
        assert_eq!(b.value.as_slice()[0], 1.0);
    }

    #[test]
    fn schedule_decays_at_milestones() {
        let mut opt = Sgd::new(SgdConfig {
            lr: 1.0,
            momentum: 0.0,
            weight_decay: 0.0,
        })
        .with_schedule(&[2, 4], 0.1);
        opt.start_epoch(0);
        assert_eq!(opt.lr(), 1.0);
        opt.start_epoch(2);
        assert!((opt.lr() - 0.1).abs() < 1e-9);
        opt.start_epoch(5);
        assert!((opt.lr() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn descends_a_quadratic() {
        // minimize f(w) = (w-3)^2 via SGD.
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        let mut p = param(0.0, 0.0, false);
        for _ in 0..100 {
            let w = p.value.as_slice()[0];
            p.grad = Tensor::full(Shape::vec(1), 2.0 * (w - 3.0));
            opt.step(vec![&mut p]);
        }
        assert!((p.value.as_slice()[0] - 3.0).abs() < 0.05);
    }
}

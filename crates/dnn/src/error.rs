//! Typed errors for network execution and checkpointing.
//!
//! The backward pass is fallible by design: it reloads activations from
//! an [`ActivationStore`](crate::act::ActivationStore) that may be backed
//! by a lossy offload pipeline, and a missing or corrupt entry must
//! surface to the trainer rather than abort the process.  Checkpoint
//! restore and model lookup report typed errors for the same reason.

use crate::act::ActivationId;
use std::fmt;

/// Why a network operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// `load` was called for an activation id nothing saved this step.
    MissingActivation(ActivationId),
    /// The activation store failed to recover a saved tensor (e.g. the
    /// offload codec reported a corrupt payload).
    Store {
        /// The activation id being loaded.
        id: ActivationId,
        /// The underlying store/codec failure.
        reason: String,
    },
    /// A checkpoint state dict lacks a parameter the network has.
    MissingParameter(String),
    /// A checkpoint tensor's shape differs from the parameter's shape.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape the network expects (rendered).
        expected: String,
        /// Shape found in the state dict (rendered).
        actual: String,
    },
    /// Every recovery attempt for a corrupt activation was exhausted:
    /// the wire delivered a detected-corrupt frame and the configured
    /// retry budget could not produce a clean copy.
    RecoveryExhausted {
        /// The activation id being loaded.
        id: ActivationId,
        /// Delivery attempts made (initial try plus retries).
        attempts: u32,
        /// The last decode failure observed (rendered).
        last_error: String,
    },
    /// `build_by_name` was asked for a model it does not know.
    UnknownModel(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::MissingActivation(id) => {
                write!(f, "activation {id} was never saved this step")
            }
            NetError::Store { id, reason } => {
                write!(f, "activation store failed to load {id}: {reason}")
            }
            NetError::MissingParameter(name) => {
                write!(f, "missing parameter {name} in state dict")
            }
            NetError::ShapeMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch for parameter {name}: expected {expected}, got {actual}"
            ),
            NetError::RecoveryExhausted {
                id,
                attempts,
                last_error,
            } => write!(
                f,
                "activation {id} unrecoverable after {attempts} deliveries: {last_error}"
            ),
            NetError::UnknownModel(name) => write!(f, "unknown model `{name}`"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            NetError::MissingActivation(7).to_string(),
            "activation 7 was never saved this step"
        );
        assert!(NetError::UnknownModel("resnet-9000".into())
            .to_string()
            .contains("resnet-9000"));
        assert!(NetError::Store {
            id: 3,
            reason: "corrupt payload".into()
        }
        .to_string()
        .contains("corrupt payload"));
        let e = NetError::RecoveryExhausted {
            id: 5,
            attempts: 3,
            last_error: "checksum mismatch".into(),
        }
        .to_string();
        assert!(e.contains("activation 5"), "{e}");
        assert!(e.contains("3 deliveries"), "{e}");
        assert!(e.contains("checksum mismatch"), "{e}");
    }
}

//! Property-based tests of the timing simulator's monotonicity
//! invariants: more compression or more CDUs must never make a DMA-side
//! design slower, and total time never drops below pure compute.

use jact_gpusim::config::GpuConfig;
use jact_gpusim::netspec::{cnr_block, Extra, NetworkSpec};
use jact_gpusim::offload::{MethodModel, Placement};
use jact_gpusim::sim::simulate_training_pass;
use proptest::prelude::*;

fn arb_network() -> impl Strategy<Value = NetworkSpec> {
    (
        prop::collection::vec((1u32..=512, 1u32..=512, prop_oneof![Just(1u32), Just(3)], 3u32..=6), 1..4),
    )
        .prop_map(|(blocks,)| NetworkSpec {
            name: "prop".into(),
            blocks: blocks
                .into_iter()
                .enumerate()
                .map(|(i, (cin, cout, k, hw_exp))| {
                    cnr_block(
                        &format!("b{i}"),
                        16,
                        cin,
                        cout,
                        k,
                        1,
                        1 << hw_exp,
                        Extra::None,
                    )
                })
                .collect(),
            compute_derate: 1.0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn total_time_at_least_compute_only(net in arb_network(), ratio in 1.0f64..16.0) {
        let gpu = GpuConfig::titan_v();
        let m = MethodModel::fixed_ratio(ratio, Placement::DmaSide { cdus: 4 });
        let t = simulate_training_pass(&net, &m, &gpu);
        prop_assert!(t.total_us() + 1e-9 >= t.compute_only_us);
        prop_assert!(t.forward_us > 0.0 && t.backward_us > 0.0);
    }

    #[test]
    fn more_compression_never_slower(net in arb_network(), r1 in 1.0f64..8.0, dr in 0.1f64..8.0) {
        let gpu = GpuConfig::titan_v();
        let lo = MethodModel::fixed_ratio(r1, Placement::DmaSide { cdus: 4 });
        let hi = MethodModel::fixed_ratio(r1 + dr, Placement::DmaSide { cdus: 4 });
        let t_lo = simulate_training_pass(&net, &lo, &gpu).total_us();
        let t_hi = simulate_training_pass(&net, &hi, &gpu).total_us();
        prop_assert!(t_hi <= t_lo + 1e-6, "ratio {r1} -> {} slower: {t_lo} -> {t_hi}", r1 + dr);
    }

    #[test]
    fn more_cdus_never_slower(net in arb_network(), ratio in 1.0f64..16.0, c1 in 1u32..8) {
        let gpu = GpuConfig::titan_v();
        let few = MethodModel::fixed_ratio(ratio, Placement::DmaSide { cdus: c1 });
        let many = MethodModel::fixed_ratio(ratio, Placement::DmaSide { cdus: c1 * 2 });
        let t_few = simulate_training_pass(&net, &few, &gpu).total_us();
        let t_many = simulate_training_pass(&net, &many, &gpu).total_us();
        prop_assert!(t_many <= t_few + 1e-6);
    }

    #[test]
    fn cache_side_at_least_as_fast_as_dma_side(net in arb_network(), ratio in 1.0f64..16.0, cdus in 1u32..8) {
        let gpu = GpuConfig::titan_v();
        let dma = MethodModel::fixed_ratio(ratio, Placement::DmaSide { cdus });
        let cache = MethodModel::fixed_ratio(ratio, Placement::CacheSide);
        let t_dma = simulate_training_pass(&net, &dma, &gpu).total_us();
        let t_cache = simulate_training_pass(&net, &cache, &gpu).total_us();
        prop_assert!(t_cache <= t_dma + 1e-6);
    }

    #[test]
    fn derate_scales_compute_linearly(net in arb_network(), derate in 1.0f64..4.0) {
        let gpu = GpuConfig::titan_v();
        let m = MethodModel::vdnn();
        let base = simulate_training_pass(&net, &m, &gpu);
        let mut slow_net = net.clone();
        slow_net.compute_derate = derate;
        let slow = simulate_training_pass(&slow_net, &m, &gpu);
        prop_assert!(
            (slow.compute_only_us - base.compute_only_us * derate).abs()
                < 1e-6 * slow.compute_only_us.max(1.0)
        );
        prop_assert!(slow.total_us() + 1e-6 >= base.total_us());
    }
}

//! Deterministic generative tests of the timing simulator's monotonicity
//! invariants: more compression or more CDUs must never make a DMA-side
//! design slower, and total time never drops below pure compute.
//!
//! The former `proptest` suite, re-expressed over seeded [`jact_rng`]
//! streams (hermetic-build policy): each test runs ≥256 cases where case
//! `i` is fully determined by `(TEST_SEED, i)`.

use jact_gpusim::config::GpuConfig;
use jact_gpusim::netspec::{cnr_block, Extra, NetworkSpec};
use jact_gpusim::offload::{MethodModel, Placement};
use jact_gpusim::sim::simulate_training_pass;
use jact_rng::{rngs::StdRng, Rng, SeedableRng};

const CASES: usize = 256;

fn cases(seed: u64, mut f: impl FnMut(&mut StdRng, usize)) {
    for i in 0..CASES {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f(&mut rng, i);
    }
}

fn gen_network(rng: &mut StdRng) -> NetworkSpec {
    let n_blocks = rng.gen_range(1..4usize);
    NetworkSpec {
        name: "gen".into(),
        blocks: (0..n_blocks)
            .map(|i| {
                let cin = rng.gen_range(1..513u32);
                let cout = rng.gen_range(1..513u32);
                let k = if rng.gen_bool(0.5) { 1u32 } else { 3 };
                let hw = 1u32 << rng.gen_range(3..7u32);
                cnr_block(&format!("b{i}"), 16, cin, cout, k, 1, hw, Extra::None)
            })
            .collect(),
        compute_derate: 1.0,
    }
}

#[test]
fn total_time_at_least_compute_only() {
    cases(0x6510, |rng, _| {
        let gpu = GpuConfig::titan_v();
        let net = gen_network(rng);
        let ratio = rng.gen_range(1.0f64..16.0);
        let m = MethodModel::fixed_ratio(ratio, Placement::DmaSide { cdus: 4 });
        let t = simulate_training_pass(&net, &m, &gpu);
        assert!(t.total_us() + 1e-9 >= t.compute_only_us);
        assert!(t.forward_us > 0.0 && t.backward_us > 0.0);
    });
}

#[test]
fn more_compression_never_slower() {
    cases(0x6511, |rng, _| {
        let gpu = GpuConfig::titan_v();
        let net = gen_network(rng);
        let r1 = rng.gen_range(1.0f64..8.0);
        let dr = rng.gen_range(0.1f64..8.0);
        let lo = MethodModel::fixed_ratio(r1, Placement::DmaSide { cdus: 4 });
        let hi = MethodModel::fixed_ratio(r1 + dr, Placement::DmaSide { cdus: 4 });
        let t_lo = simulate_training_pass(&net, &lo, &gpu).total_us();
        let t_hi = simulate_training_pass(&net, &hi, &gpu).total_us();
        assert!(t_hi <= t_lo + 1e-6, "ratio {r1} -> {} slower: {t_lo} -> {t_hi}", r1 + dr);
    });
}

#[test]
fn more_cdus_never_slower() {
    cases(0x6512, |rng, _| {
        let gpu = GpuConfig::titan_v();
        let net = gen_network(rng);
        let ratio = rng.gen_range(1.0f64..16.0);
        let c1 = rng.gen_range(1..8u32);
        let few = MethodModel::fixed_ratio(ratio, Placement::DmaSide { cdus: c1 });
        let many = MethodModel::fixed_ratio(ratio, Placement::DmaSide { cdus: c1 * 2 });
        let t_few = simulate_training_pass(&net, &few, &gpu).total_us();
        let t_many = simulate_training_pass(&net, &many, &gpu).total_us();
        assert!(t_many <= t_few + 1e-6);
    });
}

#[test]
fn cache_side_at_least_as_fast_as_dma_side() {
    cases(0x6513, |rng, _| {
        let gpu = GpuConfig::titan_v();
        let net = gen_network(rng);
        let ratio = rng.gen_range(1.0f64..16.0);
        let cdus = rng.gen_range(1..8u32);
        let dma = MethodModel::fixed_ratio(ratio, Placement::DmaSide { cdus });
        let cache = MethodModel::fixed_ratio(ratio, Placement::CacheSide);
        let t_dma = simulate_training_pass(&net, &dma, &gpu).total_us();
        let t_cache = simulate_training_pass(&net, &cache, &gpu).total_us();
        assert!(t_cache <= t_dma + 1e-6);
    });
}

#[test]
fn derate_scales_compute_linearly() {
    cases(0x6514, |rng, _| {
        let gpu = GpuConfig::titan_v();
        let net = gen_network(rng);
        let derate = rng.gen_range(1.0f64..4.0);
        let m = MethodModel::vdnn();
        let base = simulate_training_pass(&net, &m, &gpu);
        let mut slow_net = net.clone();
        slow_net.compute_derate = derate;
        let slow = simulate_training_pass(&slow_net, &m, &gpu);
        assert!(
            (slow.compute_only_us - base.compute_only_us * derate).abs()
                < 1e-6 * slow.compute_only_us.max(1.0)
        );
        assert!(slow.total_us() + 1e-6 >= base.total_us());
    });
}

//! CDU count and placement sweeps (Sec. VI-E, Fig. 21).

use crate::config::GpuConfig;
use crate::netspec::NetworkSpec;
use crate::offload::{MethodModel, Placement};
use crate::sim::simulate_training_pass;

/// One point of the Fig. 21 sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Fixed compression ratio of the synthetic method.
    pub ratio: f64,
    /// Number of DMA-side CDUs.
    pub cdus: u32,
    /// Placement label (`dma` or `cache+dma`).
    pub placement: String,
    /// Total pass time in µs.
    pub total_us: f64,
    /// Performance relative to the 1-CDU DMA-side point at this ratio.
    pub relative: f64,
}

/// Runs the Fig. 21 sweep on `net`: fixed compression ratios × CDU
/// counts, DMA-side and hybrid cache+DMA placements.
pub fn cdu_sweep(
    net: &NetworkSpec,
    gpu: &GpuConfig,
    ratios: &[f64],
    cdu_counts: &[u32],
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &ratio in ratios {
        let base = simulate_training_pass(
            net,
            &MethodModel::fixed_ratio(ratio, Placement::DmaSide { cdus: 1 }),
            gpu,
        )
        .total_us();
        for &cdus in cdu_counts {
            for (label, placement) in [
                ("dma", Placement::DmaSide { cdus }),
                ("cache+dma", Placement::Hybrid { cdus }),
            ] {
                let t = simulate_training_pass(
                    net,
                    &MethodModel::fixed_ratio(ratio, placement),
                    gpu,
                )
                .total_us();
                out.push(SweepPoint {
                    ratio,
                    cdus,
                    placement: label.into(),
                    total_us: t,
                    relative: base / t,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netspec::resnet50_cifar;

    fn sweep() -> Vec<SweepPoint> {
        cdu_sweep(
            &resnet50_cifar(),
            &GpuConfig::titan_v(),
            &[2.0, 4.0, 8.0, 12.0],
            &[1, 2, 4, 8],
        )
    }

    fn pt<'a>(s: &'a [SweepPoint], ratio: f64, cdus: u32, placement: &str) -> &'a SweepPoint {
        s.iter()
            .find(|p| p.ratio == ratio && p.cdus == cdus && p.placement == placement)
            .expect("point exists")
    }

    #[test]
    fn low_compression_insensitive_to_cdus() {
        // At 2x, PCIe is the bottleneck: adding CDUs barely helps
        // (Fig. 21, paper: "little increase over 1 CDU at 2x and 4x").
        let s = sweep();
        let one = pt(&s, 2.0, 1, "dma").total_us;
        let eight = pt(&s, 2.0, 8, "dma").total_us;
        assert!(
            (one - eight).abs() / one < 0.02,
            "2x: 1 CDU {one} vs 8 CDUs {eight}"
        );
    }

    #[test]
    fn high_compression_benefits_from_cdus() {
        // At 8x+ the CDU intake is the bottleneck; more CDUs help.
        let s = sweep();
        let one = pt(&s, 8.0, 1, "dma").total_us;
        let four = pt(&s, 8.0, 4, "dma").total_us;
        assert!(four < one * 0.95, "8x: 1 CDU {one} vs 4 CDUs {four}");
    }

    #[test]
    fn diminishing_returns_past_saturation() {
        // Fig. 21: 12x gains ~1.08x from 2->4 CDUs but <0.5%-ish from
        // 4->8 once another resource binds.
        let s = sweep();
        let two = pt(&s, 12.0, 2, "dma").total_us;
        let four = pt(&s, 12.0, 4, "dma").total_us;
        let eight = pt(&s, 12.0, 8, "dma").total_us;
        let gain_24 = two / four;
        let gain_48 = four / eight;
        assert!(gain_24 > gain_48, "2->4 {gain_24} should exceed 4->8 {gain_48}");
    }

    #[test]
    fn hybrid_no_better_than_dma_when_pcie_bound() {
        // Sec. VI-E: cache+DMA SFPR gains ~1% over a 4-CDU DMA design.
        let s = sweep();
        let dma = pt(&s, 4.0, 4, "dma").total_us;
        let hyb = pt(&s, 4.0, 4, "cache+dma").total_us;
        assert!(
            (dma - hyb) / dma < 0.05,
            "hybrid should be within 5%: dma={dma} hyb={hyb}"
        );
    }

    #[test]
    fn relative_is_one_for_baseline_point() {
        let s = sweep();
        let p = pt(&s, 4.0, 1, "dma");
        assert!((p.relative - 1.0).abs() < 1e-9);
    }
}

//! Analytic kernel duration model.
//!
//! Per-layer durations follow a roofline: compute-bound convolutions run
//! at a fraction of peak FLOPs (with a Winograd gain on 3×3 stride-1
//! kernels, the algorithm cuDNN selects in the paper's microbenchmarks,
//! Sec. VI-D), and elementwise/norm/pool kernels are HBM-bandwidth-bound.

use crate::config::GpuConfig;

/// Classification of a saved activation for the offload model —
/// decoupled from `jact-dnn`'s richer `ActKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActClass {
    /// Dense spatial activation (conv input / sum / norm input).
    Dense,
    /// Sparse activation whose values are needed (ReLU-to-conv, pool,
    /// dropout).
    Sparse,
    /// ReLU output needing only the sign downstream (BRC-eligible).
    ReluOther,
}

/// What a layer memoizes for the backward pass.
#[derive(Debug, Clone, Copy)]
pub struct SavedAct {
    /// Activation class (drives the per-method compression ratio).
    pub class: ActClass,
    /// Uncompressed f32 size in bytes.
    pub bytes: u64,
}

/// The computational kind of one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerKind {
    /// Convolution with square `k`×`k` kernels.
    Conv {
        /// Input channels.
        cin: u32,
        /// Output channels.
        cout: u32,
        /// Kernel extent.
        k: u32,
        /// Spatial stride.
        stride: u32,
    },
    /// Batch normalization.
    Norm,
    /// ReLU.
    Relu,
    /// 2×2 max pooling.
    Pool,
    /// Dropout.
    Dropout,
}

/// One layer of a microbenchmarked block, with input geometry at the
/// benchmark batch size.
#[derive(Debug, Clone, Copy)]
pub struct LayerSpec {
    /// Layer kind and parameters.
    pub kind: LayerKind,
    /// Batch size.
    pub n: u32,
    /// Input spatial height.
    pub h: u32,
    /// Input spatial width.
    pub w: u32,
    /// Activation saved for the backward pass, if any.
    pub saved: Option<SavedAct>,
}

impl LayerSpec {
    /// Input channel count (1 for non-conv layers' bookkeeping).
    fn cin(&self) -> u32 {
        match self.kind {
            LayerKind::Conv { cin, .. } => cin,
            _ => 0,
        }
    }

    /// Output spatial extent of a conv (same-padded), else unchanged.
    pub fn out_hw(&self) -> (u32, u32) {
        match self.kind {
            LayerKind::Conv { stride, .. } => (self.h / stride, self.w / stride),
            LayerKind::Pool => (self.h / 2, self.w / 2),
            _ => (self.h, self.w),
        }
    }

    /// Forward FLOPs of this layer.
    pub fn forward_flops(&self) -> f64 {
        match self.kind {
            LayerKind::Conv { cin, cout, k, .. } => {
                let (oh, ow) = self.out_hw();
                2.0 * self.n as f64
                    * cout as f64
                    * oh as f64
                    * ow as f64
                    * cin as f64
                    * (k * k) as f64
            }
            _ => 0.0,
        }
    }

    /// Bytes moved through HBM by the forward kernel (inputs + outputs,
    /// f32).
    pub fn forward_bytes(&self, act_channels: u32) -> f64 {
        let (oh, ow) = self.out_hw();
        let cin = if self.cin() > 0 { self.cin() } else { act_channels };
        let cout = match self.kind {
            LayerKind::Conv { cout, .. } => cout,
            _ => act_channels,
        };
        let input = self.n as f64 * cin as f64 * self.h as f64 * self.w as f64 * 4.0;
        let output = self.n as f64 * cout as f64 * oh as f64 * ow as f64 * 4.0;
        input + output
    }

    /// Forward duration in microseconds on `gpu`.
    pub fn forward_us(&self, gpu: &GpuConfig, act_channels: u32) -> f64 {
        let mut flops = self.forward_flops();
        if let LayerKind::Conv { k, stride, .. } = self.kind {
            if k == 3 && stride == 1 {
                flops /= gpu.winograd_gain;
            }
        }
        let t_compute = flops / (gpu.peak_gflops() * 1e9 * gpu.conv_efficiency) * 1e6;
        let t_mem = self.forward_bytes(act_channels) / (gpu.hbm_gbps * 1e9) * 1e6;
        t_compute.max(t_mem).max(1.0) // >= 1 µs kernel launch floor
    }

    /// Backward duration in microseconds: convolutions do ~2× the forward
    /// work (input- and weight-gradient GEMMs); elementwise kernels move
    /// ~1.5× the forward bytes.
    pub fn backward_us(&self, gpu: &GpuConfig, act_channels: u32) -> f64 {
        match self.kind {
            LayerKind::Conv { .. } => 2.0 * self.forward_us(gpu, act_channels),
            _ => 1.5 * self.forward_us(gpu, act_channels),
        }
    }
}

/// Builds the saved-activation descriptor for a dense tensor of the given
/// geometry.
pub fn saved_dense(n: u32, c: u32, h: u32, w: u32) -> SavedAct {
    SavedAct {
        class: ActClass::Dense,
        bytes: n as u64 * c as u64 * h as u64 * w as u64 * 4,
    }
}

/// Builds a sparse saved-activation descriptor.
pub fn saved_sparse(n: u32, c: u32, h: u32, w: u32) -> SavedAct {
    SavedAct {
        class: ActClass::Sparse,
        bytes: n as u64 * c as u64 * h as u64 * w as u64 * 4,
    }
}

/// Builds a BRC-eligible ReLU saved-activation descriptor.
pub fn saved_relu_other(n: u32, c: u32, h: u32, w: u32) -> SavedAct {
    SavedAct {
        class: ActClass::ReluOther,
        bytes: n as u64 * c as u64 * h as u64 * w as u64 * 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_spec(cin: u32, cout: u32, k: u32, stride: u32, hw: u32) -> LayerSpec {
        LayerSpec {
            kind: LayerKind::Conv {
                cin,
                cout,
                k,
                stride,
            },
            n: 16,
            h: hw,
            w: hw,
            saved: None,
        }
    }

    #[test]
    fn conv_flops_formula() {
        let s = conv_spec(64, 64, 3, 1, 32);
        // 2 * 16 * 64 * 32 * 32 * 64 * 9
        assert_eq!(s.forward_flops(), 2.0 * 16.0 * 64.0 * 1024.0 * 64.0 * 9.0);
    }

    #[test]
    fn strided_conv_shrinks_output() {
        let s = conv_spec(64, 128, 3, 2, 32);
        assert_eq!(s.out_hw(), (16, 16));
    }

    #[test]
    fn conv_3x3_is_compute_bound_1x1_memory_bound() {
        let gpu = GpuConfig::titan_v();
        // Big 3x3: compute dominated.
        let big = conv_spec(256, 256, 3, 1, 32);
        let t_mem = big.forward_bytes(256) / (gpu.hbm_gbps * 1e9) * 1e6;
        assert!(big.forward_us(&gpu, 256) > t_mem * 1.5);
        // 1x1 bottleneck with many channels: memory-bound (the paper's
        // GIST pathology, Sec. VI-D).
        let pw = conv_spec(2048, 512, 1, 1, 7);
        let t_flop =
            pw.forward_flops() / (gpu.peak_gflops() * 1e9 * gpu.conv_efficiency) * 1e6;
        assert!(pw.forward_us(&gpu, 512) >= t_flop);
    }

    #[test]
    fn winograd_speeds_up_3x3_only() {
        let gpu = GpuConfig::titan_v();
        let with = conv_spec(256, 256, 3, 1, 64);
        let strided = conv_spec(256, 256, 3, 2, 64);
        // Same FLOPs/4 for strided output; compare per-flop time instead:
        let t1 = with.forward_us(&gpu, 256) / with.forward_flops();
        let t2 = strided.forward_us(&gpu, 256) / strided.forward_flops();
        assert!(t1 < t2, "winograd conv should be faster per FLOP");
    }

    #[test]
    fn elementwise_layers_are_memory_bound() {
        let gpu = GpuConfig::titan_v();
        let relu = LayerSpec {
            kind: LayerKind::Relu,
            n: 16,
            h: 56,
            w: 56,
            saved: None,
        };
        let t = relu.forward_us(&gpu, 256);
        let expect = relu.forward_bytes(256) / (gpu.hbm_gbps * 1e9) * 1e6;
        assert!((t - expect).abs() < 1e-9 || t == 1.0);
    }

    #[test]
    fn backward_costs_more_than_forward() {
        let gpu = GpuConfig::titan_v();
        let s = conv_spec(128, 128, 3, 1, 32);
        assert!(s.backward_us(&gpu, 128) > s.forward_us(&gpu, 128));
    }

    #[test]
    fn saved_descriptors_compute_bytes() {
        assert_eq!(saved_dense(16, 64, 32, 32).bytes, 16 * 64 * 1024 * 4);
        assert_eq!(saved_sparse(1, 1, 8, 8).class, ActClass::Sparse);
        assert_eq!(saved_relu_other(1, 1, 8, 8).class, ActClass::ReluOther);
    }
}

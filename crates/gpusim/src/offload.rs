//! Per-method offload performance models.
//!
//! Each method is characterized by its compression ratios per activation
//! class and by *where* compression happens:
//!
//! * **DMA-side accelerators** (cDMA+, SFPR, JPEG-BASE, JPEG-ACT): CDUs
//!   between the crossbar and the PCIe DMA (Fig. 7b).  The effective
//!   offload rate of an activation is `min(ΣCDU intake, PCIe × ratio)` —
//!   PCIe-bound at low compression, crossbar/CDU-bound at high.
//! * **Cache-side** (cDMA as published, Fig. 7c): one CDU per L2
//!   partition, so intake never binds; replication costs area instead.
//! * **GPU-compute compression** (GIST): compression/decompression run as
//!   kernels on the SMs, consuming compute time instead of PCIe
//!   bandwidth; nothing is offloaded.
//! * **vDNN**: raw offload at PCIe rate.

use crate::config::GpuConfig;
use crate::kernels::ActClass;

/// Where compression happens and what it costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// CDUs at the DMA engine (Fig. 7b).
    DmaSide {
        /// Number of CDUs (paper default: 4).
        cdus: u32,
    },
    /// CDUs replicated per L2 partition (Fig. 7c).
    CacheSide,
    /// SFPR at the cache partitions + transform CDUs at the DMA — the
    /// hybrid of Sec. VI-E: the crossbar carries 4×-compressed traffic.
    Hybrid {
        /// DMA-side transform CDUs.
        cdus: u32,
    },
    /// Compression kernels on the SMs; activations stay in GPU memory.
    GpuCompute {
        /// Throughput of the dense precision cast (DPR) in GB/s.
        cast_gbps: f64,
        /// Throughput of the CSR non-zero scan + gather in GB/s — the
        /// cuSPARSE `dense2csr` path whose cost exceeds a 1×1 kernel on
        /// bottleneck layers (Sec. VI-D).
        scan_gbps: f64,
        /// Fixed kernel-launch overhead per compressed tensor in µs.
        launch_us: f64,
    },
}

/// A compression method's performance model.
#[derive(Debug, Clone)]
pub struct MethodModel {
    /// Display name.
    pub name: String,
    /// Compression ratio on dense (conv/sum/norm) activations.
    pub dense_ratio: f64,
    /// Ratio on sparse value-carrying activations (ReLU-to-conv, pool,
    /// dropout).
    pub sparse_ratio: f64,
    /// Ratio on BRC-eligible ReLU outputs.
    pub relu_other_ratio: f64,
    /// Compression location/cost model.
    pub placement: Placement,
    /// Whether activations leave the GPU (false for GIST).
    pub offloads: bool,
}

impl MethodModel {
    /// vDNN: uncompressed offload.
    pub fn vdnn() -> Self {
        MethodModel {
            name: "vDNN".into(),
            dense_ratio: 1.0,
            sparse_ratio: 1.0,
            relu_other_ratio: 1.0,
            placement: Placement::DmaSide { cdus: 1 },
            offloads: true,
        }
    }

    /// cDMA+ with the paper's measured ratios (1.3× average: ZVC helps
    /// only sparse activations).
    pub fn cdma_plus() -> Self {
        MethodModel {
            name: "cDMA+".into(),
            dense_ratio: 1.0,
            sparse_ratio: 2.1,
            relu_other_ratio: 2.1,
            placement: Placement::DmaSide { cdus: 4 },
            offloads: true,
        }
    }

    /// GIST: DPR + BRC + CSR into GPU memory via compute kernels.  The
    /// CSR non-zero scan (cuSPARSE dense2csr) dominates on bottleneck
    /// layers (Sec. VI-D), modelled by the launch/scan overhead.
    pub fn gist() -> Self {
        MethodModel {
            name: "GIST".into(),
            dense_ratio: 4.0,
            sparse_ratio: 2.0,
            relu_other_ratio: 32.0,
            placement: Placement::GpuCompute {
                cast_gbps: 200.0,
                scan_gbps: 12.0,
                launch_us: 20.0,
            },
            offloads: false,
        }
    }

    /// SFPR-only DMA-side accelerator: a flat 4×.
    pub fn sfpr() -> Self {
        MethodModel {
            name: "SFPR".into(),
            dense_ratio: 4.0,
            sparse_ratio: 4.0,
            relu_other_ratio: 4.0,
            placement: Placement::DmaSide { cdus: 4 },
            offloads: true,
        }
    }

    /// JPEG-BASE (jpeg80) with the paper's average ratios.
    pub fn jpeg_base() -> Self {
        MethodModel {
            name: "JPEG-BASE".into(),
            dense_ratio: 5.8,
            sparse_ratio: 4.0,
            relu_other_ratio: 32.0,
            placement: Placement::DmaSide { cdus: 4 },
            offloads: true,
        }
    }

    /// JPEG-ACT (optL5H) with the paper's average ratios.
    pub fn jpeg_act() -> Self {
        MethodModel {
            name: "JPEG-ACT".into(),
            dense_ratio: 8.0,
            sparse_ratio: 7.0,
            relu_other_ratio: 32.0,
            placement: Placement::DmaSide { cdus: 4 },
            offloads: true,
        }
    }

    /// A synthetic fixed-ratio DMA-side method (Fig. 21 sweeps).
    pub fn fixed_ratio(ratio: f64, placement: Placement) -> Self {
        MethodModel {
            name: format!("fixed{ratio}x"),
            dense_ratio: ratio,
            sparse_ratio: ratio,
            relu_other_ratio: ratio,
            placement,
            offloads: true,
        }
    }

    /// Overrides measured ratios (wire functional-simulation results into
    /// the performance model).
    pub fn with_ratios(mut self, dense: f64, sparse: f64, relu_other: f64) -> Self {
        self.dense_ratio = dense;
        self.sparse_ratio = sparse;
        self.relu_other_ratio = relu_other;
        self
    }

    /// Sets the CDU count for DMA-side/hybrid placements (Fig. 21).
    pub fn with_cdus(mut self, cdus: u32) -> Self {
        self.placement = match self.placement {
            Placement::DmaSide { .. } => Placement::DmaSide { cdus },
            Placement::Hybrid { .. } => Placement::Hybrid { cdus },
            other => other,
        };
        self
    }

    /// Compression ratio for an activation class.
    pub fn ratio(&self, class: ActClass) -> f64 {
        match class {
            ActClass::Dense => self.dense_ratio,
            ActClass::Sparse => self.sparse_ratio,
            ActClass::ReluOther => self.relu_other_ratio,
        }
    }

    /// Effective offload rate in GB/s of *uncompressed* data for an
    /// activation of `class`, on `gpu`.
    ///
    /// Returns `None` when the method does not offload (GIST).
    pub fn offload_gbps(&self, class: ActClass, gpu: &GpuConfig) -> Option<f64> {
        if !self.offloads {
            return None;
        }
        let ratio = self.ratio(class);
        let pcie_side = gpu.pcie_gbps * ratio;
        let intake = match self.placement {
            Placement::DmaSide { cdus } => cdus as f64 * gpu.cdu_gbps(),
            // One CDU per partition: intake never binds before HBM.
            Placement::CacheSide => gpu.mem_partitions as f64 * gpu.cdu_gbps(),
            // The crossbar carries SFPR-compressed (4x) traffic, so each
            // DMA-side CDU effectively ingests 4x more uncompressed data.
            Placement::Hybrid { cdus } => cdus as f64 * gpu.cdu_gbps() * 4.0,
            Placement::GpuCompute { .. } => unreachable!("handled above"),
        };
        Some(pcie_side.min(intake).min(gpu.hbm_gbps))
    }

    /// Time in µs the SMs spend compressing one saved activation of
    /// `bytes` uncompressed size (GPU-compute methods only; 0 otherwise).
    pub fn compute_compress_us(&self, class: ActClass, bytes: u64) -> f64 {
        match self.placement {
            Placement::GpuCompute {
                cast_gbps,
                scan_gbps,
                launch_us,
            } => match class {
                // Dense: DPR cast, memory-bound.
                ActClass::Dense => bytes as f64 / (cast_gbps * 1e9) * 1e6 + launch_us,
                // Sparse: the dense2csr scan dominates.
                ActClass::Sparse => bytes as f64 / (scan_gbps * 1e9) * 1e6 + launch_us,
                // BRC: trivial mask extraction.
                ActClass::ReluOther => bytes as f64 / (cast_gbps * 1e9) * 1e6 + 1.0,
            },
            _ => 0.0,
        }
    }

    /// Time in µs the SMs spend decompressing one saved activation in the
    /// backward pass (GPU-compute methods only; 0 otherwise).
    pub fn compute_decompress_us(&self, class: ActClass, bytes: u64) -> f64 {
        match self.placement {
            Placement::GpuCompute {
                cast_gbps,
                scan_gbps,
                launch_us,
            } => match class {
                ActClass::Dense => bytes as f64 / (cast_gbps * 1e9) * 1e6 + launch_us,
                // CSR scatter is faster than the scan but still costly.
                ActClass::Sparse => bytes as f64 / (2.0 * scan_gbps * 1e9) * 1e6 + launch_us,
                ActClass::ReluOther => 1.0,
            },
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vdnn_is_pcie_bound() {
        let gpu = GpuConfig::titan_v();
        let m = MethodModel::vdnn();
        assert_eq!(m.offload_gbps(ActClass::Dense, &gpu), Some(12.8));
    }

    #[test]
    fn compression_multiplies_effective_rate_until_cdu_bound() {
        let gpu = GpuConfig::titan_v();
        let m = MethodModel::fixed_ratio(2.0, Placement::DmaSide { cdus: 4 });
        assert!((m.offload_gbps(ActClass::Dense, &gpu).unwrap() - 25.6).abs() < 1e-9);
        // 8x with 1 CDU: intake 46.56 < 102.4 PCIe-side -> CDU-bound.
        let m8 = MethodModel::fixed_ratio(8.0, Placement::DmaSide { cdus: 1 });
        assert!((m8.offload_gbps(ActClass::Dense, &gpu).unwrap() - 46.56).abs() < 0.01);
        // More CDUs lift the bound back to PCIe-side.
        let m8b = m8.clone().with_cdus(4);
        assert!((m8b.offload_gbps(ActClass::Dense, &gpu).unwrap() - 102.4).abs() < 0.01);
    }

    #[test]
    fn hybrid_placement_multiplies_intake_when_cdu_bound() {
        let gpu = GpuConfig::titan_v();
        // One CDU at 12x is intake-bound (46.6 < 153.6 GB/s); SFPR at the
        // cache quadruples the effective intake.
        let dma = MethodModel::fixed_ratio(12.0, Placement::DmaSide { cdus: 1 });
        let hyb = MethodModel::fixed_ratio(12.0, Placement::Hybrid { cdus: 1 });
        assert!(
            hyb.offload_gbps(ActClass::Dense, &gpu).unwrap()
                > dma.offload_gbps(ActClass::Dense, &gpu).unwrap()
        );
    }

    #[test]
    fn gist_does_not_offload_but_costs_compute() {
        let gpu = GpuConfig::titan_v();
        let m = MethodModel::gist();
        assert!(m.offload_gbps(ActClass::Dense, &gpu).is_none());
        // CSR scan on 10 MB is slow; DPR cast on the same is cheap.
        let scan = m.compute_compress_us(ActClass::Sparse, 10 << 20);
        let cast = m.compute_compress_us(ActClass::Dense, 10 << 20);
        assert!(scan > 5.0 * cast, "scan={scan} cast={cast}");
        assert!(m.compute_compress_us(ActClass::ReluOther, 1 << 20) < 10.0);
    }

    #[test]
    fn per_class_ratios() {
        let m = MethodModel::jpeg_act();
        assert_eq!(m.ratio(ActClass::Dense), 8.0);
        assert_eq!(m.ratio(ActClass::ReluOther), 32.0);
        let m = m.with_ratios(7.5, 6.0, 30.0);
        assert_eq!(m.ratio(ActClass::Dense), 7.5);
    }

    #[test]
    fn offload_rate_never_exceeds_hbm() {
        let gpu = GpuConfig::titan_v();
        let m = MethodModel::fixed_ratio(1000.0, Placement::CacheSide);
        assert!(m.offload_gbps(ActClass::Dense, &gpu).unwrap() <= gpu.hbm_gbps);
    }
}

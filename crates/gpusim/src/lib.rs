//! # jact-gpusim
//!
//! A timing simulator for activation offload during CNN training,
//! reproducing the performance methodology of JPEG-ACT (Secs. V, VI-D,
//! VI-E): CNR-block microbenchmarks on a Titan V-like GPU model with
//! PCIe 3.0 offload at 12.8 GB/s effective, overlapping compute with
//! compressed DMA traffic.
//!
//! The paper's own performance numbers come from GPGPU-Sim; what the
//! experiments need is the *relative* timing of the compute stream and
//! the offload stream under each compression method, which this model
//! captures with:
//!
//! * [`config`] — the machine description (SMs, clocks, HBM bandwidth,
//!   crossbar link width, PCIe rate, CDU throughput);
//! * [`kernels`] — an analytic roofline duration model for conv / norm /
//!   ReLU / pool kernels (Winograd-style efficiency on 3×3 convs,
//!   memory-bound elementwise kernels);
//! * [`netspec`] — full-scale layer tables for the paper's networks
//!   (ResNet-18/50 on CIFAR and ImageNet dims, VGG-16, WRN, VDSR) and the
//!   three-block sampling the paper microbenchmarks;
//! * [`offload`] — per-method offload models: DMA-side accelerators
//!   (cDMA+, SFPR, JPEG-BASE, JPEG-ACT), GPU-compute compression (GIST),
//!   and uncompressed vDNN;
//! * [`sim`] — the two-resource (compute engine / offload engine)
//!   schedule with per-block staging barriers, mirroring Fig. 1a;
//! * [`layout`] — CDU count and cache- vs DMA-side placement sweeps
//!   (Fig. 21).

#![forbid(unsafe_code)]

pub mod config;
pub mod kernels;
pub mod layout;
pub mod netspec;
pub mod offload;
pub mod sim;

pub use config::GpuConfig;
pub use offload::MethodModel;
pub use sim::{simulate_training_pass, PassTiming};

//! Machine configuration: the simulated GPU and interconnect.


/// Titan V-like GPU and system parameters (Sec. V: 40 SMs at 1455 MHz
/// boost, 850 MHz HBM, 32 B/cycle crossbar links, PCIe 3.0 at an
/// effective 12.8 GB/s).
#[derive(Debug, Clone, Copy)]
pub struct GpuConfig {
    /// Streaming multiprocessor count.
    pub sm_count: u32,
    /// Core boost clock in GHz.
    pub clock_ghz: f64,
    /// FP32 FMA lanes per SM (2 ops per lane-cycle).
    pub lanes_per_sm: u32,
    /// Achievable fraction of peak FLOPs for dense conv kernels.
    pub conv_efficiency: f64,
    /// Effective speedup of Winograd on 3×3 stride-1 convolutions.
    pub winograd_gain: f64,
    /// HBM bandwidth in GB/s achievable by memory-bound kernels.
    pub hbm_gbps: f64,
    /// Crossbar link width in bytes per core cycle (per CDU/DMA port).
    pub xbar_bytes_per_cycle: f64,
    /// Effective PCIe transfer rate in GB/s (paper: 12.8).
    pub pcie_gbps: f64,
    /// CDU intake rate in bytes of *uncompressed f32* per core cycle:
    /// the SFPR front end consumes one 32 B crossbar sector per cycle
    /// (Fig. 8), equivalently one 64 B int8 block per 8 cycles past SFPR
    /// (Sec. III-G).
    pub cdu_bytes_per_cycle: f64,
    /// Number of L2/memory partitions (cache-side CDU replication count).
    pub mem_partitions: u32,
}

impl GpuConfig {
    /// The paper's simulated Titan V configuration.
    pub fn titan_v() -> Self {
        GpuConfig {
            sm_count: 40,
            clock_ghz: 1.455,
            lanes_per_sm: 64,
            conv_efficiency: 0.55,
            winograd_gain: 2.0,
            hbm_gbps: 650.0,
            xbar_bytes_per_cycle: 32.0,
            pcie_gbps: 12.8,
            cdu_bytes_per_cycle: 32.0,
            mem_partitions: 48,
        }
    }

    /// Peak FP32 throughput in GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        self.sm_count as f64 * self.lanes_per_sm as f64 * 2.0 * self.clock_ghz
    }

    /// Uncompressed intake rate of one CDU in GB/s.
    pub fn cdu_gbps(&self) -> f64 {
        self.cdu_bytes_per_cycle * self.clock_ghz
    }

    /// One crossbar link's bandwidth in GB/s.
    pub fn xbar_link_gbps(&self) -> f64 {
        self.xbar_bytes_per_cycle * self.clock_ghz
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::titan_v()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_v_peak_near_7_4_tflops() {
        let g = GpuConfig::titan_v();
        let peak = g.peak_gflops();
        assert!((peak - 7449.6).abs() < 1.0, "peak={peak}");
    }

    #[test]
    fn cdu_rate_matches_figure_8() {
        // 32 B/cycle at 1.455 GHz ~ 46.6 GB/s of uncompressed intake —
        // one crossbar sector per cycle into the SFPR front end.
        let g = GpuConfig::titan_v();
        assert!((g.cdu_gbps() - 46.56).abs() < 0.01);
        assert!((g.xbar_link_gbps() - g.cdu_gbps()).abs() < 1e-9);
    }
}

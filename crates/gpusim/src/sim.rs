//! The two-resource offload schedule.
//!
//! Training a block sequence uses two engines (Fig. 1a): the **compute
//! stream** (kernels, serial) and the **memcpy stream** (offload DMA in
//! the forward pass, prefetch in the backward pass).  Saved activations
//! become offload jobs when their producing kernel retires; a bounded
//! staging buffer forces the compute stream to stall if offload falls
//! more than [`STAGING_BLOCKS`] blocks behind — exactly the stall pattern
//! Fig. 1a shows for uncompressed vDNN.
//!
//! GPU-compute methods (GIST) have no memcpy stream: their compression
//! and decompression kernels are added to the compute stream instead.

use crate::config::GpuConfig;
use crate::netspec::{CnrBlock, NetworkSpec};
use crate::offload::MethodModel;
use jact_obs as obs;

/// How many blocks of saved activations fit in the staging buffer before
/// compute must wait for offload to drain.
pub const STAGING_BLOCKS: usize = 2;

/// Simulated timing of one forward+backward pass over a block sequence.
#[derive(Debug, Clone, Copy)]
pub struct PassTiming {
    /// Forward wall-clock in µs.
    pub forward_us: f64,
    /// Backward wall-clock in µs.
    pub backward_us: f64,
    /// Pure compute time (no offload interference), for overhead
    /// accounting.
    pub compute_only_us: f64,
}

impl PassTiming {
    /// Total pass time in µs.
    pub fn total_us(&self) -> f64 {
        self.forward_us + self.backward_us
    }

    /// Overhead of offload over pure compute (≥ 1.0).
    pub fn overhead(&self) -> f64 {
        self.total_us() / self.compute_only_us
    }
}

/// Per-block precomputed costs.
struct BlockCost {
    fwd_compute_us: f64,
    bwd_compute_us: f64,
    /// (uncompressed bytes, offload µs) per saved activation.
    offload_us: f64,
    /// Extra SM time for GPU-compute compression (forward).
    fwd_extra_us: f64,
    /// Extra SM time for GPU-compute decompression (backward).
    bwd_extra_us: f64,
}

fn block_cost(block: &CnrBlock, method: &MethodModel, gpu: &GpuConfig) -> BlockCost {
    let mut fwd = 0.0;
    let mut bwd = 0.0;
    let mut off = 0.0;
    let mut fx = 0.0;
    let mut bx = 0.0;
    for l in &block.layers {
        fwd += l.forward_us(gpu, block.channels);
        bwd += l.backward_us(gpu, block.channels);
        if let Some(s) = l.saved {
            if let Some(rate) = method.offload_gbps(s.class, gpu) {
                off += s.bytes as f64 / (rate * 1e9) * 1e6;
            }
            fx += method.compute_compress_us(s.class, s.bytes);
            bx += method.compute_decompress_us(s.class, s.bytes);
        }
    }
    BlockCost {
        fwd_compute_us: fwd,
        bwd_compute_us: bwd,
        offload_us: off,
        fwd_extra_us: fx,
        bwd_extra_us: bx,
    }
}

/// Simulates one forward+backward pass of `net` under `method`.
///
/// Under an open observability capture this records a `gpusim.pass` span
/// (net/method attributes), the three timing gauges, and per-block
/// offload-microsecond and forward-stall observations — the data behind
/// the offload-overlap breakdown in Fig. 1a.
pub fn simulate_training_pass(
    net: &NetworkSpec,
    method: &MethodModel,
    gpu: &GpuConfig,
) -> PassTiming {
    obs::span_with(
        "gpusim.pass",
        || {
            vec![
                ("net".to_string(), obs::Value::Str(net.name.clone())),
                ("method".to_string(), obs::Value::Str(method.name.clone())),
            ]
        },
        || simulate_training_pass_impl(net, method, gpu),
    )
}

fn simulate_training_pass_impl(
    net: &NetworkSpec,
    method: &MethodModel,
    gpu: &GpuConfig,
) -> PassTiming {
    let costs: Vec<BlockCost> = net
        .blocks
        .iter()
        .map(|b| {
            let mut c = block_cost(b, method, gpu);
            c.fwd_compute_us *= net.compute_derate;
            c.bwd_compute_us *= net.compute_derate;
            c
        })
        .collect();
    let compute_only: f64 = costs
        .iter()
        .map(|c| c.fwd_compute_us + c.bwd_compute_us)
        .sum();

    // ---- Forward: compute engine + offload engine with staging barrier.
    let mut t_compute = 0.0f64;
    let mut t_offload = 0.0f64;
    let mut offload_done = vec![0.0f64; costs.len()];
    let record = obs::is_active();
    for (i, c) in costs.iter().enumerate() {
        if i >= STAGING_BLOCKS {
            // Staging buffer full until block i-STAGING_BLOCKS drained.
            let drained = offload_done[i - STAGING_BLOCKS];
            if record && drained > t_compute {
                obs::observe("gpusim.fwd_stall_us", drained - t_compute);
            }
            t_compute = t_compute.max(drained);
        }
        t_compute += c.fwd_compute_us + c.fwd_extra_us;
        // Offload of this block starts when produced and the engine is
        // free.
        t_offload = t_offload.max(t_compute) + c.offload_us;
        offload_done[i] = t_offload;
        if record {
            obs::observe("gpusim.block_offload_us", c.offload_us);
        }
    }
    let forward_us = if costs.iter().any(|c| c.offload_us > 0.0) {
        t_compute.max(t_offload)
    } else {
        t_compute
    };

    // ---- Backward: prefetch engine runs ahead (reverse block order).
    let mut t_prefetch = 0.0f64;
    let mut t_bcompute = 0.0f64;
    let mut started = 0usize; // backward blocks whose compute began
    for (i, c) in costs.iter().enumerate().rev() {
        // Prefetch depth limit: cannot run more than STAGING_BLOCKS ahead
        // of backward compute.
        let blocks_ahead = (costs.len() - i).saturating_sub(started + 1);
        if blocks_ahead > STAGING_BLOCKS {
            t_prefetch = t_prefetch.max(t_bcompute);
        }
        t_prefetch += c.offload_us; // prefetch symmetric to offload
        t_bcompute = t_bcompute.max(t_prefetch) + c.bwd_compute_us + c.bwd_extra_us;
        started += 1;
    }
    let backward_us = t_bcompute;

    if record {
        obs::count("gpusim.passes", 1);
        obs::gauge("gpusim.forward_us", forward_us);
        obs::gauge("gpusim.backward_us", backward_us);
        obs::gauge("gpusim.compute_only_us", compute_only);
    }
    PassTiming {
        forward_us,
        backward_us,
        compute_only_us: compute_only,
    }
}

/// Relative performance of `method` vs a baseline method on `net`
/// (Fig. 20 bars: higher is faster).
pub fn relative_performance(
    net: &NetworkSpec,
    method: &MethodModel,
    baseline: &MethodModel,
    gpu: &GpuConfig,
) -> f64 {
    let t_m = simulate_training_pass(net, method, gpu).total_us();
    let t_b = simulate_training_pass(net, baseline, gpu).total_us();
    t_b / t_m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netspec::{resnet50_cifar, resnet50_imagenet, vdsr_div2k, vgg16_cifar};

    fn gpu() -> GpuConfig {
        GpuConfig::titan_v()
    }

    #[test]
    fn ordering_matches_paper_fig20() {
        // vDNN < cDMA+ <= GIST-ish < SFPR < JPEG-BASE < JPEG-ACT on
        // ResNet50.
        let net = resnet50_imagenet();
        let g = gpu();
        let t = |m: &MethodModel| simulate_training_pass(&net, m, &g).total_us();
        let vdnn = t(&MethodModel::vdnn());
        let cdma = t(&MethodModel::cdma_plus());
        let sfpr = t(&MethodModel::sfpr());
        let base = t(&MethodModel::jpeg_base());
        let jact = t(&MethodModel::jpeg_act());
        assert!(vdnn > cdma, "vdnn={vdnn} cdma={cdma}");
        assert!(cdma > sfpr, "cdma={cdma} sfpr={sfpr}");
        assert!(sfpr > base, "sfpr={sfpr} base={base}");
        assert!(base >= jact, "base={base} jact={jact}");
    }

    #[test]
    fn jpeg_act_speedup_over_vdnn_in_paper_range() {
        // Paper: 2.61x over vDNN averaged across networks.
        let g = gpu();
        let nets = [resnet50_imagenet(), resnet50_cifar(), vgg16_cifar()];
        let mut speedups = Vec::new();
        for net in &nets {
            let s = relative_performance(
                net,
                &MethodModel::jpeg_act(),
                &MethodModel::vdnn(),
                &g,
            );
            speedups.push(s);
        }
        let avg: f64 = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!(
            (1.5..4.5).contains(&avg),
            "avg speedup {avg} out of plausible range ({speedups:?})"
        );
    }

    #[test]
    fn gist_suffers_on_bottleneck_networks() {
        // GIST's CSR scan overhead costs proportionally more on ResNet50
        // (1x1 bottlenecks: big activations, few FLOPs) than on VGG
        // (Sec. VI-D): higher overhead vs pure compute.
        let g = gpu();
        let gist = MethodModel::gist();
        let ov_rn50 = simulate_training_pass(&resnet50_imagenet(), &gist, &g).overhead();
        let ov_vgg = simulate_training_pass(&vgg16_cifar(), &gist, &g).overhead();
        assert!(
            ov_rn50 > ov_vgg,
            "GIST overhead on ResNet50 ({ov_rn50}) should exceed VGG ({ov_vgg})"
        );
    }

    #[test]
    fn vdsr_has_worst_offload_overhead() {
        // Few channels + large spatial = high bytes/FLOP (Sec. VI-D).
        let g = gpu();
        let m = MethodModel::jpeg_act();
        let ov_vdsr = simulate_training_pass(&vdsr_div2k(), &m, &g).overhead();
        let ov_rn = simulate_training_pass(&resnet50_imagenet(), &m, &g).overhead();
        assert!(
            ov_vdsr > ov_rn,
            "vdsr overhead {ov_vdsr} should exceed resnet {ov_rn}"
        );
    }

    #[test]
    fn gist_has_no_memcpy_stream() {
        let g = gpu();
        let net = resnet50_cifar();
        let t = simulate_training_pass(&net, &MethodModel::gist(), &g);
        // Forward = pure compute + compression kernels, no offload tail.
        assert!(t.forward_us > 0.0);
        assert!(t.overhead() > 1.0);
    }

    #[test]
    fn infinite_compression_converges_to_compute_time() {
        let g = gpu();
        let net = resnet50_cifar();
        let m = MethodModel::fixed_ratio(
            1e6,
            crate::offload::Placement::CacheSide,
        );
        let t = simulate_training_pass(&net, &m, &g);
        assert!(
            t.overhead() < 1.25,
            "near-free offload should approach compute-only: {}",
            t.overhead()
        );
    }

    #[test]
    fn timing_components_are_positive_and_consistent() {
        let g = gpu();
        let t = simulate_training_pass(&resnet50_cifar(), &MethodModel::vdnn(), &g);
        assert!(t.forward_us > 0.0 && t.backward_us > 0.0);
        assert!(t.total_us() >= t.compute_only_us);
    }
}

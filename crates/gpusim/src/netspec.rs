//! Layer tables of the paper's full-scale networks, sampled as CNR-block
//! microbenchmarks (Sec. VI-D: three blocks per network — first, middle,
//! last — at batch 16).

use crate::kernels::{saved_dense, saved_relu_other, saved_sparse, LayerKind, LayerSpec};

/// One conv/norm/ReLU block (optionally with pool or dropout), the unit
/// the paper microbenchmarks.
#[derive(Debug, Clone)]
pub struct CnrBlock {
    /// Block label (e.g. `first`, `middle`, `last`).
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
    /// Channel count of the activations flowing through (for the memory
    /// model of elementwise layers).
    pub channels: u32,
}

/// A network's microbenchmark sample.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// Network/dataset label (e.g. `ResNet50/ImageNet`).
    pub name: String,
    /// The sampled CNR blocks.
    pub blocks: Vec<CnrBlock>,
    /// Multiplier on kernel durations: >1 models networks for which
    /// cuDNN selects lower-compute-density kernels (the paper observes
    /// this for VDSR, Sec. VI-D).
    pub compute_derate: f64,
}

/// Extra layers appended to a CNR block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extra {
    /// Plain conv/norm/ReLU.
    None,
    /// CNR followed by 2×2 max pooling.
    Pool,
    /// CNR followed by dropout.
    Dropout,
}

/// Builds one CNR block: conv (saves dense input), norm (saves dense
/// input), ReLU (saves sparse output), plus an optional pool/dropout
/// (saves sparse).
#[allow(clippy::too_many_arguments)]
pub fn cnr_block(
    name: &str,
    n: u32,
    cin: u32,
    cout: u32,
    k: u32,
    stride: u32,
    hw: u32,
    extra: Extra,
) -> CnrBlock {
    let (oh, ow) = (hw / stride, hw / stride);
    // In bottleneck networks the input of a 1×1 convolution is a ReLU
    // output: a sparse activation whose values the backward conv needs —
    // GIST CSR-scans it (the Sec. VI-D pathology), JPEG-ACT applies
    // SFPR+ZVC.  3×3 conv inputs in CNR chains are the dense conv/sum
    // class.
    let conv_input = if k == 1 {
        saved_sparse(n, cin, hw, hw)
    } else {
        saved_dense(n, cin, hw, hw)
    };
    let mut layers = vec![
        LayerSpec {
            kind: LayerKind::Conv {
                cin,
                cout,
                k,
                stride,
            },
            n,
            h: hw,
            w: hw,
            saved: Some(conv_input),
        },
        LayerSpec {
            kind: LayerKind::Norm,
            n,
            h: oh,
            w: ow,
            saved: Some(saved_dense(n, cout, oh, ow)),
        },
        LayerSpec {
            kind: LayerKind::Relu,
            n,
            h: oh,
            w: ow,
            saved: Some(match extra {
                // A ReLU feeding pool/dropout does not feed a conv
                // directly: BRC-eligible.
                Extra::Pool | Extra::Dropout => saved_relu_other(n, cout, oh, ow),
                Extra::None => saved_sparse(n, cout, oh, ow),
            }),
        },
    ];
    match extra {
        Extra::Pool => layers.push(LayerSpec {
            kind: LayerKind::Pool,
            n,
            h: oh,
            w: ow,
            saved: Some(saved_sparse(n, cout, oh / 2, ow / 2)),
        }),
        Extra::Dropout => layers.push(LayerSpec {
            kind: LayerKind::Dropout,
            n,
            h: oh,
            w: ow,
            saved: Some(saved_sparse(n, cout, oh, ow)),
        }),
        Extra::None => {}
    }
    CnrBlock {
        name: name.into(),
        layers,
        channels: cout,
    }
}

/// The microbenchmark batch size the paper uses (Sec. VI-D).
pub const BATCH: u32 = 16;

/// ResNet-50 on ImageNet: bottleneck dims; the middle/last samples are
/// the 1×1 bottleneck convolutions whose huge channel counts and few
/// FLOPs defeat GIST's CSR scan (Sec. VI-D).
pub fn resnet50_imagenet() -> NetworkSpec {
    NetworkSpec {
        name: "ResNet50/ImageNet".into(),
        blocks: vec![
            cnr_block("first", BATCH, 64, 64, 3, 1, 56, Extra::None),
            cnr_block("middle", BATCH, 1024, 256, 1, 1, 14, Extra::None),
            cnr_block("last", BATCH, 2048, 512, 1, 1, 7, Extra::None),
        ],
        compute_derate: 1.0,
    }
}

/// ResNet-18 on ImageNet: 3×3 basic-block dims.
pub fn resnet18_imagenet() -> NetworkSpec {
    NetworkSpec {
        name: "ResNet18/ImageNet".into(),
        blocks: vec![
            cnr_block("first", BATCH, 64, 64, 3, 1, 56, Extra::None),
            cnr_block("middle", BATCH, 256, 256, 3, 1, 14, Extra::None),
            cnr_block("last", BATCH, 512, 512, 3, 1, 7, Extra::None),
        ],
        compute_derate: 1.0,
    }
}

/// ResNet-50 on CIFAR10 (32×32 inputs, bottleneck channels).
pub fn resnet50_cifar() -> NetworkSpec {
    NetworkSpec {
        name: "ResNet50/CIFAR10".into(),
        blocks: vec![
            cnr_block("first", BATCH, 64, 64, 3, 1, 32, Extra::None),
            cnr_block("middle", BATCH, 512, 128, 1, 1, 16, Extra::None),
            cnr_block("last", BATCH, 1024, 256, 1, 1, 8, Extra::None),
        ],
        compute_derate: 1.0,
    }
}

/// ResNet-101 on CIFAR10 — same block dims as ResNet-50, more of them;
/// the microbenchmark samples are identical in shape.
pub fn resnet101_cifar() -> NetworkSpec {
    NetworkSpec {
        name: "ResNet101/CIFAR10".into(),
        ..resnet50_cifar()
    }
}

/// VGG-16 on CIFAR10: conv stacks with pooling and dropout.
pub fn vgg16_cifar() -> NetworkSpec {
    NetworkSpec {
        name: "VGG/CIFAR10".into(),
        blocks: vec![
            cnr_block("first", BATCH, 64, 64, 3, 1, 32, Extra::Pool),
            cnr_block("middle", BATCH, 256, 256, 3, 1, 8, Extra::Dropout),
            cnr_block("last", BATCH, 512, 512, 3, 1, 4, Extra::Dropout),
        ],
        compute_derate: 1.0,
    }
}

/// Wide ResNet (WRN-28-10-like widths) on CIFAR10 with in-block dropout.
pub fn wrn_cifar() -> NetworkSpec {
    NetworkSpec {
        name: "WRN/CIFAR10".into(),
        blocks: vec![
            cnr_block("first", BATCH, 160, 160, 3, 1, 32, Extra::Dropout),
            cnr_block("middle", BATCH, 320, 320, 3, 1, 16, Extra::Dropout),
            cnr_block("last", BATCH, 640, 640, 3, 1, 8, Extra::Dropout),
        ],
        compute_derate: 1.0,
    }
}

/// VDSR on Div2K 64×64 crops: few channels, large spatial extent —
/// the offload-unfriendly geometry of Sec. VI-D.
pub fn vdsr_div2k() -> NetworkSpec {
    NetworkSpec {
        name: "VDSR/Div2K".into(),
        blocks: vec![
            cnr_block("first", BATCH, 64, 64, 3, 1, 64, Extra::None),
            cnr_block("middle", BATCH, 64, 64, 3, 1, 64, Extra::None),
            cnr_block("last", BATCH, 64, 64, 3, 1, 64, Extra::None),
        ],
        // cuDNN selects lower-compute-density kernels for VDSR's geometry
        // (Sec. VI-D), observed as 1.4-2.3x worse offload performance.
        compute_derate: 2.0,
    }
}

/// All network specs evaluated in Fig. 20 / Table I order.
pub fn all_networks() -> Vec<NetworkSpec> {
    vec![
        vgg16_cifar(),
        resnet50_cifar(),
        resnet101_cifar(),
        wrn_cifar(),
        resnet18_imagenet(),
        resnet50_imagenet(),
        vdsr_div2k(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ActClass;

    #[test]
    fn cnr_block_saves_three_activations() {
        let b = cnr_block("t", 16, 64, 64, 3, 1, 32, Extra::None);
        let saved: Vec<_> = b.layers.iter().filter_map(|l| l.saved).collect();
        assert_eq!(saved.len(), 3);
        assert_eq!(saved[0].class, ActClass::Dense);
        assert_eq!(saved[1].class, ActClass::Dense);
        assert_eq!(saved[2].class, ActClass::Sparse);
        // conv input = 16*64*32*32*4 bytes
        assert_eq!(saved[0].bytes, 16 * 64 * 32 * 32 * 4);
    }

    #[test]
    fn pool_and_dropout_extras_add_layers() {
        let p = cnr_block("p", 16, 64, 64, 3, 1, 32, Extra::Pool);
        assert_eq!(p.layers.len(), 4);
        assert_eq!(
            p.layers[2].saved.unwrap().class,
            ActClass::ReluOther,
            "relu before pool is BRC-eligible"
        );
        let d = cnr_block("d", 16, 64, 64, 3, 1, 32, Extra::Dropout);
        assert_eq!(d.layers.len(), 4);
    }

    #[test]
    fn all_networks_have_three_blocks() {
        for n in all_networks() {
            assert_eq!(n.blocks.len(), 3, "{}", n.name);
            for b in &n.blocks {
                assert!(b.layers.len() >= 3);
            }
        }
    }

    #[test]
    fn bottleneck_blocks_have_high_channel_ratio() {
        let rn50 = resnet50_imagenet();
        let last = &rn50.blocks[2];
        assert!(
            matches!(last.layers[0].kind, LayerKind::Conv { cin: 2048, k: 1, .. }),
            "expected a 1x1 conv over 2048 channels, got {:?}",
            last.layers[0].kind
        );
    }
}

//! Generative tests for the analyzer's lexer, driven by the workspace's
//! own deterministic RNG.  Two suites:
//!
//! * **structured** — 256 seeded random token streams assembled from a
//!   vocabulary of self-delimiting fragments with known kinds; the lexed
//!   stream must round-trip loss-free, carry contiguous spans, agree
//!   with an independent line/column recount, and classify every
//!   fragment with the expected [`TokenKind`].
//! * **byte soup** — 256 seeded random printable-ASCII strings; the
//!   lexer must still be loss-free and contiguous on arbitrary input
//!   (including unterminated strings and comments).

use jact_analyze::lexer::{lex, meaningful_indices, TokenKind};
use jact_rng::rngs::StdRng;
use jact_rng::{Rng, SeedableRng};

/// Self-delimiting fragments: lexing `frag` surrounded by whitespace
/// yields exactly one token of the given kind with `frag`'s exact text.
const FRAGMENTS: &[(&str, TokenKind)] = &[
    ("foo", TokenKind::Ident),
    ("x_9", TokenKind::Ident),
    ("_under", TokenKind::Ident),
    ("r#match", TokenKind::Ident),
    ("bread", TokenKind::Ident),
    ("raw", TokenKind::Ident),
    ("'static", TokenKind::Lifetime),
    ("'a", TokenKind::Lifetime),
    ("'x'", TokenKind::Char),
    ("'\\n'", TokenKind::Char),
    ("'+'", TokenKind::Char),
    ("b'q'", TokenKind::Char),
    ("\"hello world\"", TokenKind::Str),
    ("\"esc \\\" quote\"", TokenKind::Str),
    ("b\"bytes\"", TokenKind::Str),
    ("r\"raw\"", TokenKind::RawStr),
    ("r#\"has \" inside\"#", TokenKind::RawStr),
    ("br#\"raw bytes\"#", TokenKind::RawStr),
    ("42", TokenKind::Num),
    ("0xff", TokenKind::Num),
    ("3.25", TokenKind::Num),
    ("1e-5", TokenKind::Num),
    ("10_000u64", TokenKind::Num),
    ("(", TokenKind::Punct),
    (")", TokenKind::Punct),
    ("{", TokenKind::Punct),
    ("}", TokenKind::Punct),
    (";", TokenKind::Punct),
    (",", TokenKind::Punct),
    ("+", TokenKind::Punct),
    ("=", TokenKind::Punct),
    ("#", TokenKind::Punct),
    ("&", TokenKind::Punct),
    ("// a line comment", TokenKind::LineComment),
    ("/// outer doc", TokenKind::LineComment),
    ("//! inner doc", TokenKind::LineComment),
    ("/* block */", TokenKind::BlockComment),
    ("/** doc block */", TokenKind::BlockComment),
    ("/* nested /* inner */ outer */", TokenKind::BlockComment),
];

const SEPARATORS: &[&str] = &[" ", "\n", "\t", "  ", " \n "];

fn needs_newline_after(frag: &str) -> bool {
    frag.starts_with("//")
}

/// Invariants that must hold on ANY input: the token stream tiles the
/// source exactly, and line/column match an independent byte recount.
fn assert_loss_free(src: &str) {
    let tokens = lex(src);
    let mut pos = 0usize;
    let mut rebuilt = String::new();
    for t in &tokens {
        assert_eq!(t.start, pos, "gap or overlap at byte {pos} in {src:?}");
        assert!(t.len > 0, "empty token at byte {pos} in {src:?}");
        pos = t.end();
        rebuilt.push_str(t.text(src));
    }
    assert_eq!(pos, src.len(), "tokens do not cover the tail of {src:?}");
    assert_eq!(rebuilt, src, "concatenated token texts differ from input");

    // Independent line/col recount (sources here are ASCII).
    for t in &tokens {
        let before = &src[..t.start];
        let line = 1 + before.bytes().filter(|&b| b == b'\n').count() as u32;
        let col = 1 + before
            .bytes()
            .rev()
            .take_while(|&b| b != b'\n')
            .count() as u32;
        assert_eq!((t.line, t.col), (line, col), "span mismatch in {src:?}");
    }

    // meaningful_indices is exactly the non-whitespace, non-comment set.
    let expected: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|(i, _)| i)
        .collect();
    assert_eq!(meaningful_indices(&tokens), expected);
}

#[test]
fn structured_streams_round_trip_with_correct_kinds() {
    let mut rng = StdRng::seed_from_u64(0x4A41_4354);
    for case in 0..256u32 {
        let n = rng.gen_range(1..40usize);
        let mut src = String::new();
        let mut expected: Vec<(&str, TokenKind)> = Vec::new();
        for _ in 0..n {
            let (frag, kind) = FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())];
            src.push_str(frag);
            expected.push((frag, kind));
            if needs_newline_after(frag) {
                src.push('\n');
            } else {
                src.push_str(SEPARATORS[rng.gen_range(0..SEPARATORS.len())]);
            }
        }

        assert_loss_free(&src);

        let tokens = lex(&src);
        let lexed: Vec<(&str, TokenKind)> = tokens
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.text(&src), t.kind))
            .collect();
        assert_eq!(lexed, expected, "case {case} mis-lexed: {src:?}");
    }
}

#[test]
fn byte_soup_is_lexed_loss_free() {
    let mut rng = StdRng::seed_from_u64(0xC0FF_EE00);
    for _ in 0..256u32 {
        let n = rng.gen_range(0..120usize);
        let src: String = (0..n)
            .map(|_| {
                // Printable ASCII plus newline/tab, biased toward the
                // lexer's interesting bytes.
                match rng.gen_range(0..10u32) {
                    0 => '\n',
                    1 => '\t',
                    2 => '"',
                    3 => '\'',
                    4 => '/',
                    5 => '#',
                    6 => 'r',
                    _ => (0x20 + rng.gen_range(0..95u8)) as char,
                }
            })
            .collect();
        assert_loss_free(&src);
    }
}

#[test]
fn doc_comment_flag_tracks_comment_shape() {
    let src = "/// outer\n//! inner\n// plain\n//// four\n/** db */ /*! ib */ /* pb */";
    let tokens = lex(src);
    let flags: Vec<(&str, bool)> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Whitespace)
        .map(|t| (t.text(src), t.is_doc))
        .collect();
    assert_eq!(
        flags,
        vec![
            ("/// outer", true),
            ("//! inner", true),
            ("// plain", false),
            ("//// four", false),
            ("/** db */", true),
            ("/*! ib */", true),
            ("/* pb */", false),
        ]
    );
}

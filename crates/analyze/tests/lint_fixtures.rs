//! Fixture tests: each lint pass must fire on a minimal bad input with
//! the correct file:line span, stay quiet once the input is fixed, and
//! (for the source-level lints JA03–JA07) stay quiet under an inline
//! `// jact-analyze: allow(...)` suppression.  JA01/JA02 operate on
//! manifests, where inline allow comments intentionally have no effect.

use jact_analyze::diag::Code;
use jact_analyze::manifest;
use jact_analyze::passes;
use jact_analyze::SourceFile;

fn src(rel_path: &str, crate_name: &str, text: &str) -> SourceFile {
    SourceFile::new(rel_path, crate_name, text.to_string())
}

// ---------------------------------------------------------------- JA01

#[test]
fn ja01_fires_on_inverted_layering() {
    let bad = manifest::parse(
        "crates/codec/Cargo.toml",
        "[package]\nname = \"jact-codec\"\n\n[dependencies]\njact-dnn = { path = \"../dnn\" }\n",
    );
    let diags = passes::ja01_layering(&[bad]);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::Ja01);
    assert_eq!(diags[0].path, "crates/codec/Cargo.toml");
    assert_eq!(diags[0].line, 5, "span must point at the dep entry");
    assert!(diags[0].message.contains("jact-dnn"));
}

#[test]
fn ja01_quiet_on_correct_layering() {
    let ok = manifest::parse(
        "crates/dnn/Cargo.toml",
        "[package]\nname = \"jact-dnn\"\n\n[dependencies]\njact-codec = { path = \"../codec\" }\n",
    );
    assert!(passes::ja01_layering(&[ok]).is_empty());
}

// ---------------------------------------------------------------- JA02

#[test]
fn ja02_fires_on_registry_dependency() {
    let bad = manifest::parse(
        "crates/codec/Cargo.toml",
        "[package]\nname = \"jact-codec\"\n\n[dependencies]\nserde = \"1.0\"\n",
    );
    let diags = passes::ja02_hermetic(&[bad], "", None);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::Ja02);
    assert_eq!(diags[0].path, "crates/codec/Cargo.toml");
    assert_eq!(diags[0].line, 5);
    assert!(diags[0].message.contains("serde"));
}

#[test]
fn ja02_fires_on_dangling_workspace_ref_and_locked_registry_source() {
    let m = manifest::parse(
        "crates/codec/Cargo.toml",
        "[package]\nname = \"jact-codec\"\n\n[dependencies]\njact-tensor = { workspace = true }\n",
    );
    // Root manifest has no path entry for jact-tensor: dangling ref.
    let diags = passes::ja02_hermetic(std::slice::from_ref(&m), "[workspace]\n", None);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line, 5);

    // Same manifest against a root that does carry the entry: quiet,
    // but a registry-pinned lockfile line still fires with its own span.
    let root = "[workspace.dependencies]\njact-tensor = { path = \"crates/tensor\" }\n";
    let lock = "[[package]]\nname = \"serde\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n";
    let diags = passes::ja02_hermetic(std::slice::from_ref(&m), root, Some(("Cargo.lock", lock)));
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].path, "Cargo.lock");
    assert_eq!(diags[0].line, 3);
}

#[test]
fn ja02_quiet_on_hermetic_manifest() {
    let ok = manifest::parse(
        "crates/codec/Cargo.toml",
        "[package]\nname = \"jact-codec\"\n\n[dependencies]\njact-tensor = { path = \"../tensor\" }\n",
    );
    let lock = "[[package]]\nname = \"jact-tensor\"\nversion = \"0.1.0\"\n";
    assert!(passes::ja02_hermetic(&[ok], "", Some(("Cargo.lock", lock))).is_empty());
}

// ---------------------------------------------------------------- JA03

#[test]
fn ja03_fires_on_unwrap_in_hot_path_crate() {
    let f = src(
        "crates/codec/src/x.rs",
        "jact-codec",
        "//! d\npub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
    );
    let diags = passes::ja03_no_panics(&f);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::Ja03);
    assert_eq!(diags[0].path, "crates/codec/src/x.rs");
    assert_eq!(diags[0].line, 3, "span must point at the .unwrap() line");
}

#[test]
fn ja03_quiet_on_fixed_allowed_and_test_code() {
    // Fixed: the fallible call propagates instead of panicking.
    let fixed = src(
        "crates/codec/src/x.rs",
        "jact-codec",
        "//! d\npub fn f(v: Option<u8>) -> Option<u8> {\n    let x = v?;\n    Some(x)\n}\n",
    );
    assert!(passes::ja03_no_panics(&fixed).is_empty());

    // Suppressed on the line above.
    let allowed = src(
        "crates/codec/src/x.rs",
        "jact-codec",
        "//! d\npub fn f(v: Option<u8>) -> u8 {\n    // jact-analyze: allow(JA03)\n    v.unwrap()\n}\n",
    );
    assert!(passes::ja03_no_panics(&allowed).is_empty());

    // Test regions are exempt.
    let test_only = src(
        "crates/codec/src/x.rs",
        "jact-codec",
        "//! d\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        panic!(\"boom\");\n    }\n}\n",
    );
    assert!(passes::ja03_no_panics(&test_only).is_empty());

    // Non-hot-path crates may panic.
    let high = src(
        "crates/bench/src/x.rs",
        "jact-bench",
        "//! d\npub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
    );
    assert!(passes::ja03_no_panics(&high).is_empty());
}

// ---------------------------------------------------------------- JA04

#[test]
fn ja04_fires_on_hashmap_outside_bench() {
    let f = src(
        "crates/dnn/src/x.rs",
        "jact-dnn",
        "//! d\nuse std::collections::HashMap;\npub fn f() -> HashMap<u8, u8> {\n    HashMap::new()\n}\n",
    );
    let diags = passes::ja04_determinism(&f);
    assert_eq!(diags.len(), 3, "every HashMap mention is flagged");
    assert_eq!(diags[0].code, Code::Ja04);
    assert_eq!(diags[0].path, "crates/dnn/src/x.rs");
    assert_eq!(diags[0].line, 2);
}

#[test]
fn ja04_quiet_on_fixed_allowed_and_exempt_crates() {
    let fixed = src(
        "crates/dnn/src/x.rs",
        "jact-dnn",
        "//! d\nuse std::collections::BTreeMap;\npub fn f() -> BTreeMap<u8, u8> {\n    BTreeMap::new()\n}\n",
    );
    assert!(passes::ja04_determinism(&fixed).is_empty());

    let allowed = src(
        "crates/dnn/src/x.rs",
        "jact-dnn",
        "//! d\n// jact-analyze: allow(JA04)\nuse std::collections::HashMap as M;\npub type T = u8;\n",
    );
    assert!(passes::ja04_determinism(&allowed).is_empty());

    // The timing/reporting crates may use clocks and hash collections.
    let bench = src(
        "crates/bench/src/x.rs",
        "jact-bench",
        "//! d\nuse std::time::Instant;\nuse std::collections::HashMap;\n",
    );
    assert!(passes::ja04_determinism(&bench).is_empty());
}

// ---------------------------------------------------------------- JA05

#[test]
fn ja05_fires_on_missing_forbid() {
    let f = src(
        "crates/codec/src/lib.rs",
        "jact-codec",
        "//! Crate docs.\npub mod x;\n",
    );
    let diags = passes::ja05_forbid_unsafe(&f);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::Ja05);
    assert_eq!(diags[0].path, "crates/codec/src/lib.rs");
    assert_eq!((diags[0].line, diags[0].col), (1, 1));
}

#[test]
fn ja05_quiet_on_fixed_and_allowed() {
    let fixed = src(
        "crates/codec/src/lib.rs",
        "jact-codec",
        "//! Crate docs.\n#![forbid(unsafe_code)]\npub mod x;\n",
    );
    assert!(passes::ja05_forbid_unsafe(&fixed).is_empty());

    let allowed = src(
        "crates/codec/src/lib.rs",
        "jact-codec",
        "// jact-analyze: allow(JA05)\n//! Crate docs.\npub mod x;\n",
    );
    assert!(passes::ja05_forbid_unsafe(&allowed).is_empty());
}

// ---------------------------------------------------------------- JA06

#[test]
fn ja06_fires_on_undocumented_pub_item_and_missing_module_doc() {
    let f = src(
        "crates/codec/src/x.rs",
        "jact-codec",
        "use std::mem;\n\npub fn f() {}\n",
    );
    let diags = passes::ja06_doc_coverage(&f);
    assert_eq!(diags.len(), 2);
    assert_eq!(diags[0].code, Code::Ja06);
    assert_eq!(diags[0].line, 1, "missing //! module doc anchors at 1:1");
    assert_eq!(diags[1].line, 3, "undocumented pub fn anchors at its line");
}

#[test]
fn ja06_quiet_on_documented_allowed_and_uncovered_crates() {
    let fixed = src(
        "crates/codec/src/x.rs",
        "jact-codec",
        "//! Module doc.\n\n/// Does f things.\npub fn f() {}\npub use std::mem;\npub(crate) fn g() {}\n",
    );
    assert!(passes::ja06_doc_coverage(&fixed).is_empty());

    let allowed = src(
        "crates/codec/src/x.rs",
        "jact-codec",
        "//! Module doc.\n\n// jact-analyze: allow(JA06)\npub fn f() {}\n",
    );
    assert!(passes::ja06_doc_coverage(&allowed).is_empty());

    // Crates outside DOC_COVERED_CRATES are not held to the rule.
    let other = src("crates/gpusim/src/x.rs", "jact-gpusim", "pub fn f() {}\n");
    assert!(passes::ja06_doc_coverage(&other).is_empty());
}

// ---------------------------------------------------------------- JA07

#[test]
fn ja07_fires_on_each_raw_concurrency_form() {
    let spawn = src(
        "crates/core/src/x.rs",
        "jact-core",
        "//! d\npub fn f() {\n    std::thread::spawn(|| {});\n}\n",
    );
    let diags = passes::ja07_concurrency(&spawn);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::Ja07);
    assert_eq!(diags[0].path, "crates/core/src/x.rs");
    assert_eq!(diags[0].line, 3, "span must point at the spawn line");
    assert!(diags[0].message.contains("thread::spawn"));

    let lock = src(
        "crates/codec/src/x.rs",
        "jact-codec",
        "//! d\nuse std::sync::Mutex;\n",
    );
    let diags = passes::ja07_concurrency(&lock);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line, 2);

    let global = src(
        "crates/dnn/src/x.rs",
        "jact-dnn",
        "//! d\nstatic mut COUNTER: u64 = 0;\n",
    );
    let diags = passes::ja07_concurrency(&global);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("static mut"));
}

#[test]
fn ja07_quiet_in_par_under_allow_and_in_sanctioned_forms() {
    // The fork-join runtime is the one place raw primitives may live.
    let par = src(
        "crates/par/src/lib.rs",
        "jact-par",
        "//! d\npub fn f() {\n    std::thread::spawn(|| {});\n}\n",
    );
    assert!(passes::ja07_concurrency(&par).is_empty());

    // Scoped spawn is a method call on the scope handle, not
    // `thread::spawn`; an immutable `static` and a `&'static mut`
    // reference are both fine.
    let ok = src(
        "crates/core/src/x.rs",
        "jact-core",
        "//! d\nstatic TABLE: [u8; 4] = [0; 4];\npub fn f(s: &std::thread::Scope<'_, '_>, x: &'static mut u8) {\n    s.spawn(|| {});\n    *x = 1;\n}\n",
    );
    assert!(passes::ja07_concurrency(&ok).is_empty());

    // Inline allow on the line above silences it.
    let allowed = src(
        "crates/core/src/x.rs",
        "jact-core",
        "//! d\n// jact-analyze: allow(JA07)\nuse std::sync::Mutex;\n",
    );
    assert!(passes::ja07_concurrency(&allowed).is_empty());

    // Test regions are exempt.
    let test_only = src(
        "crates/core/src/x.rs",
        "jact-core",
        "//! d\n#[cfg(test)]\nmod tests {\n    fn t() {\n        let _ = std::sync::Mutex::new(0u8);\n    }\n}\n",
    );
    assert!(passes::ja07_concurrency(&test_only).is_empty());
}

//! A lexed source file plus the derived facts lint passes share:
//! `#[cfg(test)]`/`#[test]`/`mod tests` regions and inline suppressions.

use crate::diag::{parse_suppression, Suppression};
use crate::lexer::{lex, Token, TokenKind};

/// One Rust source file, lexed and annotated.
pub struct SourceFile {
    /// Workspace-relative path (used in diagnostics).
    pub rel_path: String,
    /// Name of the crate the file belongs to (e.g. `jact-codec`).
    pub crate_name: String,
    /// Full text.
    pub text: String,
    /// Complete token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-whitespace, non-comment tokens.
    pub meaningful: Vec<usize>,
    /// Byte ranges covered by test-only code.
    pub test_regions: Vec<(usize, usize)>,
    /// Inline `// jact-analyze: allow(...)` suppressions.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lexes and annotates `text`.
    pub fn new(rel_path: impl Into<String>, crate_name: impl Into<String>, text: String) -> Self {
        let tokens = lex(&text);
        let meaningful = crate::lexer::meaningful_indices(&tokens);
        let test_regions = find_test_regions(&text, &tokens, &meaningful);
        let suppressions = tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .filter_map(|t| parse_suppression(t.text(&text), t.line))
            .collect();
        SourceFile {
            rel_path: rel_path.into(),
            crate_name: crate_name.into(),
            text,
            tokens,
            meaningful,
            test_regions,
            suppressions,
        }
    }

    /// `true` if byte offset `pos` lies inside test-only code.
    pub fn in_test_region(&self, pos: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| pos >= s && pos < e)
    }
}

/// Finds byte ranges of test-only code: any item annotated `#[cfg(test)]`
/// or `#[test]`, and any `mod` whose name starts with `test`.  A region
/// runs from the start of the marker to the matching close brace of the
/// item's body (or the terminating semicolon for brace-less items).
fn find_test_regions(text: &str, tokens: &[Token], meaningful: &[usize]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < meaningful.len() {
        let ti = meaningful[i];
        let t = &tokens[ti];
        let txt = t.text(text);
        let mut region_start = None;

        // `#[...]` attribute containing the ident `test`.
        if t.kind == TokenKind::Punct && txt == "#" {
            if let Some((attr_end, has_test)) = scan_attribute(text, tokens, meaningful, i) {
                if has_test {
                    region_start = Some(t.start);
                }
                if region_start.is_none() {
                    i = attr_end;
                    continue;
                }
                i = attr_end;
            } else {
                i += 1;
                continue;
            }
        }
        // `mod tests {` (or any mod whose name starts with "test").
        else if t.kind == TokenKind::Ident && txt == "mod" {
            if let Some(&ni) = meaningful.get(i + 1) {
                let name = tokens[ni].text(text);
                if tokens[ni].kind == TokenKind::Ident && name.starts_with("test") {
                    region_start = Some(t.start);
                    i += 1;
                }
            }
        }

        let Some(start) = region_start else {
            i += 1;
            continue;
        };

        // Extend over the annotated item: skip further attributes, then
        // find the item body's braces (or a `;` before any brace).
        let mut j = i;
        let mut depth = 0usize;
        let mut end = None;
        while let Some(&tj) = meaningful.get(j) {
            let tok = &tokens[tj];
            let s = tok.text(text);
            if tok.kind == TokenKind::Punct {
                match s {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end = Some(tok.end());
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end = Some(tok.end());
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let end = end.unwrap_or(text.len());
        regions.push((start, end));
        // Resume scanning after the region to avoid nested re-detection.
        while i < meaningful.len() && tokens[meaningful[i]].start < end {
            i += 1;
        }
    }
    regions
}

/// Starting at meaningful index `i` (which must be `#`), scans one
/// attribute.  Returns `(index past the closing bracket, contains the
/// ident "test")`, or `None` if this is not an attribute.
fn scan_attribute(
    text: &str,
    tokens: &[Token],
    meaningful: &[usize],
    i: usize,
) -> Option<(usize, bool)> {
    let mut j = i + 1;
    // Optional `!` for inner attributes.
    if let Some(&tj) = meaningful.get(j) {
        if tokens[tj].text(text) == "!" {
            j += 1;
        }
    }
    let &open = meaningful.get(j)?;
    if tokens[open].text(text) != "[" {
        return None;
    }
    let mut depth = 0usize;
    let mut has_test = false;
    while let Some(&tj) = meaningful.get(j) {
        let tok = &tokens[tj];
        let s = tok.text(text);
        match (tok.kind, s) {
            (TokenKind::Punct, "[") => depth += 1,
            (TokenKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    return Some((j + 1, has_test));
                }
            }
            (TokenKind::Ident, "test") => has_test = true,
            _ => {}
        }
        j += 1;
    }
    Some((j, has_test))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::new("x.rs", "jact-test", src.to_string())
    }

    #[test]
    fn cfg_test_mod_is_a_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = sf(src);
        let unwrap_pos = src.find("unwrap").expect("unwrap in src");
        let live_pos = src.find("live").expect("live in src");
        let after_pos = src.find("after").expect("after in src");
        assert!(f.in_test_region(unwrap_pos));
        assert!(!f.in_test_region(live_pos));
        assert!(!f.in_test_region(after_pos));
    }

    #[test]
    fn test_fn_attribute_is_a_region() {
        let src = "#[test]\nfn t() { panic!(\"x\") }\nfn live() {}\n";
        let f = sf(src);
        assert!(f.in_test_region(src.find("panic").expect("panic")));
        assert!(!f.in_test_region(src.find("live").expect("live")));
    }

    #[test]
    fn cfg_test_use_statement_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let f = sf(src);
        assert!(f.in_test_region(src.find("bar").expect("bar")));
        assert!(!f.in_test_region(src.find("live").expect("live")));
    }

    #[test]
    fn non_test_attributes_do_not_open_regions() {
        let src = "#[derive(Debug)]\nstruct S;\nfn live() {}\n";
        let f = sf(src);
        assert!(f.test_regions.is_empty());
    }

    #[test]
    fn suppressions_collected() {
        let src = "// jact-analyze: allow(JA04)\nuse std::collections::HashMap;\n";
        let f = sf(src);
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].line, 1);
    }
}

//! Workspace walker: discovers manifests and library sources, runs every
//! lint pass, and assembles the [`Analysis`] report.
//!
//! Scope matches the workspace invariants: per-file lints run over
//! `crates/*/src/**/*.rs` (library code only — integration tests under
//! `crates/*/tests`, benches, and the root `tests/`/`examples/` trees are
//! exercised by `cargo test` itself and exempt from the hot-path lints);
//! manifest lints run over the root `Cargo.toml`, every crate manifest,
//! and the lockfile.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::manifest::{self, Manifest};
use crate::passes;
use crate::report::Analysis;
use crate::source::SourceFile;

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators (diagnostics are stable
/// across platforms).
fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Analyzes the workspace rooted at `root`: parses every manifest, lexes
/// every library source file, runs all seven passes, and returns the
/// collected report sorted by path, line, column, and code.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let root_text = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut manifests: Vec<Manifest> = vec![manifest::parse("Cargo.toml", &root_text)];
    let mut sources: Vec<SourceFile> = Vec::new();
    let mut crates: Vec<String> = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for dir in crate_dirs {
        let manifest_path = dir.join("Cargo.toml");
        if !manifest_path.is_file() {
            continue;
        }
        let text = fs::read_to_string(&manifest_path)?;
        let m = manifest::parse(rel_str(root, &manifest_path), &text);
        let pkg = m.package_name.clone();
        crates.push(pkg.clone());
        manifests.push(m);

        let src_dir = dir.join("src");
        if src_dir.is_dir() {
            let mut files = Vec::new();
            collect_rs(&src_dir, &mut files)?;
            for file in files {
                let text = fs::read_to_string(&file)?;
                sources.push(SourceFile::new(rel_str(root, &file), pkg.clone(), text));
            }
        }
    }

    let mut violations = passes::ja01_layering(&manifests);
    let lock_text = fs::read_to_string(root.join("Cargo.lock")).ok();
    violations.extend(passes::ja02_hermetic(
        &manifests,
        &root_text,
        lock_text.as_deref().map(|t| ("Cargo.lock", t)),
    ));
    for file in &sources {
        violations.extend(passes::ja03_no_panics(file));
        violations.extend(passes::ja04_determinism(file));
        if file.rel_path.ends_with("/src/lib.rs") {
            violations.extend(passes::ja05_forbid_unsafe(file));
        }
        violations.extend(passes::ja06_doc_coverage(file));
        violations.extend(passes::ja07_concurrency(file));
        violations.extend(passes::ja08_print_funnel(file));
    }
    violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.code).cmp(&(b.path.as_str(), b.line, b.col, b.code))
    });

    let suppressions_honored = sources.iter().map(|f| f.suppressions.len()).sum();
    Ok(Analysis {
        files_scanned: sources.len(),
        manifests_scanned: manifests.len(),
        crates,
        violations,
        suppressions_honored,
    })
}

/// Runs only the hermeticity pass (JA02) over the workspace at `root`.
/// `tests/hermetic.rs` delegates here so the hermetic-build policy stays
/// enforced under plain `cargo test` even if the full analyzer is not run.
pub fn check_hermetic(root: &Path) -> io::Result<Vec<crate::diag::Diagnostic>> {
    let root_text = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut manifests: Vec<Manifest> = vec![manifest::parse("Cargo.toml", &root_text)];
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(root.join("crates"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let manifest_path = dir.join("Cargo.toml");
        if manifest_path.is_file() {
            let text = fs::read_to_string(&manifest_path)?;
            manifests.push(manifest::parse(rel_str(root, &manifest_path), &text));
        }
    }
    let lock_text = fs::read_to_string(root.join("Cargo.lock")).ok();
    Ok(passes::ja02_hermetic(
        &manifests,
        &root_text,
        lock_text.as_deref().map(|t| ("Cargo.lock", t)),
    ))
}

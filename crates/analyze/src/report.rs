//! Machine-readable report: the analysis outcome as a JSON document
//! (written to `target/analyze-report.json` by the CLI).

use crate::diag::{Code, Diagnostic};
use jact_bench::json::Json;

/// Outcome of analyzing a workspace.
pub struct Analysis {
    /// Number of Rust source files scanned.
    pub files_scanned: usize,
    /// Number of manifests scanned.
    pub manifests_scanned: usize,
    /// Crates visited, in scan order.
    pub crates: Vec<String>,
    /// Every violation found, ordered by path then line.
    pub violations: Vec<Diagnostic>,
    /// Number of inline suppression comments honored.
    pub suppressions_honored: usize,
}

impl Analysis {
    /// Violation count for one code.
    pub fn count(&self, code: Code) -> usize {
        self.violations.iter().filter(|d| d.code == code).count()
    }

    /// `true` when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as a JSON value tree.
    pub fn to_json(&self) -> Json {
        let mut counts = Json::obj();
        for code in Code::ALL {
            counts = counts.field(code.as_str(), self.count(code));
        }
        let violations: Vec<Json> = self
            .violations
            .iter()
            .map(|d| {
                Json::obj()
                    .field("code", d.code.as_str())
                    .field("path", d.path.as_str())
                    .field("line", d.line as u64)
                    .field("col", d.col as u64)
                    .field("message", d.message.as_str())
            })
            .collect();
        Json::obj()
            .field("schema", "jact-analyze/v1")
            .field("files_scanned", self.files_scanned)
            .field("manifests_scanned", self.manifests_scanned)
            .field("crates", self.crates.clone())
            .field("suppressions_honored", self.suppressions_honored)
            .field("counts", counts)
            .field("total_violations", self.violations.len())
            .field("clean", self.is_clean())
            .field("violations", Json::Arr(violations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape() {
        let a = Analysis {
            files_scanned: 3,
            manifests_scanned: 2,
            crates: vec!["jact-codec".into()],
            violations: vec![Diagnostic::new(Code::Ja03, "src/x.rs", 7, 9, "unwrap")],
            suppressions_honored: 1,
        };
        let s = a.to_json().to_string();
        assert!(s.contains("\"schema\":\"jact-analyze/v1\""), "{s}");
        assert!(s.contains("\"JA03\":1"), "{s}");
        assert!(s.contains("\"total_violations\":1"), "{s}");
        assert!(s.contains("\"clean\":false"), "{s}");
        assert!(!a.is_clean());
        assert_eq!(a.count(Code::Ja03), 1);
        assert_eq!(a.count(Code::Ja01), 0);
    }
}

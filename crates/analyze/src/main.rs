//! CLI entry point: analyze the workspace, print diagnostics, write the
//! JSON report, exit nonzero on violations.
//!
//! Usage: `jact-analyze [WORKSPACE_ROOT] [--report PATH] [--quiet]`
//! With no root argument, walks upward from the current directory (or
//! `CARGO_MANIFEST_DIR` when run under cargo) to the workspace root.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use jact_analyze::diag::Code;
use jact_analyze::driver;

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--report" => report_path = args.next().map(PathBuf::from),
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: jact-analyze [WORKSPACE_ROOT] [--report PATH] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => root_arg = Some(PathBuf::from(other)),
        }
    }

    let start = root_arg
        .or_else(|| std::env::var_os("CARGO_MANIFEST_DIR").map(PathBuf::from))
        .or_else(|| std::env::current_dir().ok());
    let Some(start) = start else {
        eprintln!("jact-analyze: cannot determine a starting directory");
        return ExitCode::FAILURE;
    };
    let Some(root) = driver::find_workspace_root(&start) else {
        eprintln!(
            "jact-analyze: no workspace root (Cargo.toml with [workspace]) above {}",
            start.display()
        );
        return ExitCode::FAILURE;
    };

    let analysis = match driver::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("jact-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };

    for d in &analysis.violations {
        eprintln!("{d}");
    }

    let report_path = report_path.unwrap_or_else(|| root.join("target/analyze-report.json"));
    if let Some(parent) = report_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&report_path, analysis.to_json().to_pretty_string()) {
        eprintln!("jact-analyze: cannot write {}: {e}", report_path.display());
        return ExitCode::FAILURE;
    }

    if !quiet {
        let per_code: Vec<String> = Code::ALL
            .iter()
            .map(|&c| format!("{}={}", c.as_str(), analysis.count(c)))
            .collect();
        println!(
            "jact-analyze: {} files, {} manifests, {} crates scanned; {} violation(s) [{}]; report: {}",
            analysis.files_scanned,
            analysis.manifests_scanned,
            analysis.crates.len(),
            analysis.violations.len(),
            per_code.join(" "),
            report_path.display()
        );
    }

    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

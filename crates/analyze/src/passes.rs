//! The eight lint passes.
//!
//! Per-file passes (JA03–JA08) take a lexed [`SourceFile`] and return
//! diagnostics; workspace passes (JA01, JA02) take the parsed manifests
//! (plus, for the lockfile check, the optional `Cargo.lock` text).  Every
//! pass consults the file's inline suppressions, so a
//! `// jact-analyze: allow(<code>)` comment on or directly above the
//! offending line silences it.
//!
//! Banned names below are spelled as string literals on purpose: this
//! crate is scanned by its own lints, and an *identifier* like a hash-map
//! type would otherwise flag the analyzer itself.

use crate::diag::{suppressed, Code, Diagnostic};
use crate::lexer::TokenKind;
use crate::manifest::Manifest;
use crate::source::SourceFile;

/// Crates whose hot paths must stay panic-free (JA03).
pub const HOT_PATH_CRATES: [&str; 5] =
    ["jact-codec", "jact-tensor", "jact-rng", "jact-par", "jact-obs"];

/// Individual modules outside [`HOT_PATH_CRATES`] that JA03 also covers:
/// the fault-injected offload wire path in `jact-core` decodes hostile
/// bytes and must surface typed errors, never panic.  Entries are
/// workspace-relative paths with `/` separators.
pub const HOT_PATH_MODULES: [&str; 2] = ["crates/core/src/fault.rs", "crates/core/src/offload.rs"];

/// Low-layer crates: the deterministic substrate golden-value tests rely
/// on.  They must never depend on the high layers (JA01).
pub const LOW_LAYER: [&str; 6] = [
    "jact-rng",
    "jact-obs",
    "jact-par",
    "jact-tensor",
    "jact-codec",
    "jact-hwmodel",
];

/// High-layer crates: training, simulation, orchestration, tooling.
pub const HIGH_LAYER: [&str; 6] = [
    "jact-dnn",
    "jact-gpusim",
    "jact-core",
    "jact-data",
    "jact-bench",
    "jact-analyze",
];

/// Crates exempt from the determinism lint (JA04): the bench harness
/// legitimately reads wall clocks, and the analyzer names banned idents.
pub const TIMING_EXEMPT_CRATES: [&str; 2] = ["jact-bench", "jact-analyze"];

/// Crates whose public items must carry doc comments (JA06).
pub const DOC_COVERED_CRATES: [&str; 3] = ["jact-codec", "jact-core", "jact-obs"];

// ---------------------------------------------------------------------
// JA01: crate layering.
// ---------------------------------------------------------------------

/// Enforces the dependency DAG: no crate in [`LOW_LAYER`] may depend
/// (normally or for tests/builds) on any crate in [`HIGH_LAYER`].
pub fn ja01_layering(manifests: &[Manifest]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for m in manifests {
        if !LOW_LAYER.contains(&m.package_name.as_str()) {
            continue;
        }
        for d in &m.deps {
            if HIGH_LAYER.contains(&d.name.as_str()) {
                out.push(Diagnostic::new(
                    Code::Ja01,
                    &m.rel_path,
                    d.line,
                    1,
                    format!(
                        "low-layer crate `{}` depends on high-layer crate `{}` ({})",
                        m.package_name, d.name, d.section
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// JA02: hermeticity.
// ---------------------------------------------------------------------

/// Enforces the hermetic-build policy: every dependency entry in every
/// manifest is a pure path/workspace reference, every `workspace = true`
/// reference resolves to a `path` entry in the root workspace table, and
/// the lockfile (when given) pins no registry or git source.
pub fn ja02_hermetic(
    manifests: &[Manifest],
    root_manifest_text: &str,
    lockfile: Option<(&str, &str)>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for m in manifests {
        for d in &m.deps {
            if !d.is_path_or_workspace() {
                out.push(Diagnostic::new(
                    Code::Ja02,
                    &m.rel_path,
                    d.line,
                    1,
                    format!(
                        "`{}` is not a path/workspace dependency: {} = {}",
                        d.name, d.name, d.spec
                    ),
                ));
            } else if d.spec.contains("workspace = true")
                && !root_manifest_text.contains(&format!("{} = {{ path =", d.name))
            {
                out.push(Diagnostic::new(
                    Code::Ja02,
                    &m.rel_path,
                    d.line,
                    1,
                    format!(
                        "`{}` references the workspace table but the root manifest has no path entry for it",
                        d.name
                    ),
                ));
            }
        }
    }
    if let Some((lock_path, lock_text)) = lockfile {
        for (no, line) in lock_text.lines().enumerate() {
            if line.contains("registry+") || line.contains("git+") {
                out.push(Diagnostic::new(
                    Code::Ja02,
                    lock_path,
                    no as u32 + 1,
                    1,
                    format!("lockfile pins a non-path source: {}", line.trim()),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// JA03: panic-freedom in hot-path crates.
// ---------------------------------------------------------------------

/// Bans `.unwrap()`, `.expect(...)`, `panic!`, `unreachable!`, `todo!`,
/// and `unimplemented!` in non-test code of the hot-path crates and the
/// extra [`HOT_PATH_MODULES`].  The codec/tensor/rng golden-value tests
/// pin bit-exact outputs; a reachable panic in those paths is a
/// correctness bug, and fallible operations must surface typed errors
/// instead.
pub fn ja03_no_panics(file: &SourceFile) -> Vec<Diagnostic> {
    let covered = HOT_PATH_CRATES.contains(&file.crate_name.as_str())
        || HOT_PATH_MODULES.contains(&file.rel_path.as_str());
    if !covered {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &file.tokens;
    let text = &file.text;
    for (mi, &ti) in file.meaningful.iter().enumerate() {
        let t = &toks[ti];
        if t.kind != TokenKind::Ident || file.in_test_region(t.start) {
            continue;
        }
        let word = t.text(text);
        let next = file
            .meaningful
            .get(mi + 1)
            .map(|&n| toks[n].text(text))
            .unwrap_or("");
        let prev = mi
            .checked_sub(1)
            .and_then(|p| file.meaningful.get(p))
            .map(|&p| toks[p].text(text))
            .unwrap_or("");
        let bad = match word {
            "unwrap" | "expect" => prev == "." && next == "(",
            "panic" | "unreachable" | "todo" | "unimplemented" => next == "!",
            _ => false,
        };
        if bad && !suppressed(&file.suppressions, Code::Ja03, t.line) {
            let scope = if HOT_PATH_CRATES.contains(&file.crate_name.as_str()) {
                format!("crate `{}`", file.crate_name)
            } else {
                format!("module `{}`", file.rel_path)
            };
            out.push(Diagnostic::new(
                Code::Ja03,
                &file.rel_path,
                t.line,
                t.col,
                format!("`{word}` in non-test code of hot-path {scope}"),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// JA04: determinism.
// ---------------------------------------------------------------------

/// Names whose presence in non-test library code breaks bit-stable
/// reproducibility: wall clocks, iteration-order-unstable containers,
/// and ambient (unseeded) RNG.  Spelled as literals — see module docs.
fn banned_nondeterminism(word: &str) -> Option<&'static str> {
    match word {
        "SystemTime" => Some("wall-clock time"),
        "Instant" => Some("monotonic clock"),
        "HashMap" => Some("iteration-order-unstable container (use BTreeMap)"),
        "HashSet" => Some("iteration-order-unstable container (use BTreeSet)"),
        "thread_rng" => Some("ambient RNG (only jact-rng may produce randomness)"),
        _ => None,
    }
}

/// Bans clocks, hash containers, and ambient RNG in non-test code of
/// every crate except the timing-exempt ones ([`TIMING_EXEMPT_CRATES`]).
pub fn ja04_determinism(file: &SourceFile) -> Vec<Diagnostic> {
    if TIMING_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for &ti in &file.meaningful {
        let t = &file.tokens[ti];
        if t.kind != TokenKind::Ident || file.in_test_region(t.start) {
            continue;
        }
        let word = t.text(&file.text);
        if let Some(why) = banned_nondeterminism(word) {
            if !suppressed(&file.suppressions, Code::Ja04, t.line) {
                out.push(Diagnostic::new(
                    Code::Ja04,
                    &file.rel_path,
                    t.line,
                    t.col,
                    format!("`{word}` in non-test code: {why}"),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// JA05: forbid(unsafe_code).
// ---------------------------------------------------------------------

/// Requires `#![forbid(unsafe_code)]` in a crate root.  Run only on
/// `src/lib.rs` (and `src/main.rs` for binary-only crates) by the driver.
pub fn ja05_forbid_unsafe(file: &SourceFile) -> Vec<Diagnostic> {
    let text = &file.text;
    let toks = &file.tokens;
    for (mi, &ti) in file.meaningful.iter().enumerate() {
        if toks[ti].text(text) == "forbid" {
            let next = file
                .meaningful
                .get(mi + 1)
                .map(|&n| toks[n].text(text))
                .unwrap_or("");
            let arg = file
                .meaningful
                .get(mi + 2)
                .map(|&n| toks[n].text(text))
                .unwrap_or("");
            if next == "(" && arg == "unsafe_code" {
                return Vec::new();
            }
        }
    }
    if suppressed(&file.suppressions, Code::Ja05, 1) {
        return Vec::new();
    }
    vec![Diagnostic::new(
        Code::Ja05,
        &file.rel_path,
        1,
        1,
        "crate root lacks #![forbid(unsafe_code)]",
    )]
}

// ---------------------------------------------------------------------
// JA06: doc coverage.
// ---------------------------------------------------------------------

/// Requires (a) a leading `//!` module doc in every file and (b) a doc
/// comment on every fully-`pub` item (fn, struct, enum, trait, const,
/// static, type, union) outside test code, for the crates in
/// [`DOC_COVERED_CRATES`].  `pub use` re-exports, `pub mod` declarations,
/// restricted visibility (`pub(crate)` etc.), and struct fields are
/// exempt.
pub fn ja06_doc_coverage(file: &SourceFile) -> Vec<Diagnostic> {
    if !DOC_COVERED_CRATES.contains(&file.crate_name.as_str()) {
        return Vec::new();
    }
    let text = &file.text;
    let toks = &file.tokens;
    let mut out = Vec::new();

    // (a) Module doc: first non-whitespace token is a `//!` or `/*!` doc.
    let has_module_doc = toks
        .iter()
        .find(|t| t.kind != TokenKind::Whitespace)
        .is_some_and(|t| {
            t.is_doc
                && matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                && (t.text(text).starts_with("//!") || t.text(text).starts_with("/*!"))
        });
    if !has_module_doc && !suppressed(&file.suppressions, Code::Ja06, 1) {
        out.push(Diagnostic::new(
            Code::Ja06,
            &file.rel_path,
            1,
            1,
            "file lacks a leading //! module doc comment",
        ));
    }

    // (b) Item docs.
    for (mi, &ti) in file.meaningful.iter().enumerate() {
        let t = &toks[ti];
        if t.kind != TokenKind::Ident
            || t.text(text) != "pub"
            || file.in_test_region(t.start)
        {
            continue;
        }
        // Restricted visibility `pub(...)` is not public API.
        let next = file.meaningful.get(mi + 1).map(|&n| toks[n].text(text));
        if next == Some("(") {
            continue;
        }
        let Some(kw) = item_keyword(file, mi) else {
            continue;
        };
        if !has_preceding_doc(file, ti) && !suppressed(&file.suppressions, Code::Ja06, t.line) {
            out.push(Diagnostic::new(
                Code::Ja06,
                &file.rel_path,
                t.line,
                t.col,
                format!("public {kw} lacks a doc comment"),
            ));
        }
    }
    out
}

/// Resolves the item keyword after `pub` at meaningful index `mi`,
/// skipping qualifiers (`const fn`, `unsafe fn`, `async fn`, `extern`).
/// Returns `None` for exempt forms (`pub use`, `pub mod`, fields).
fn item_keyword(file: &SourceFile, mi: usize) -> Option<&'static str> {
    let text = &file.text;
    let mut j = mi + 1;
    let mut pending_const = false;
    for _ in 0..4 {
        let &ti = file.meaningful.get(j)?;
        let word = file.tokens[ti].text(text);
        match word {
            "fn" => return Some("fn"),
            "struct" => return Some("struct"),
            "enum" => return Some("enum"),
            "trait" => return Some("trait"),
            "type" => return Some("type"),
            "static" => return Some("static"),
            "union" => return Some("union"),
            "use" | "mod" | "impl" | "macro_rules" | "macro" => return None,
            "const" => {
                // `pub const fn f` is a fn; `pub const X: T` is a const.
                pending_const = true;
                j += 1;
            }
            "unsafe" | "async" | "extern" => {
                j += 1;
            }
            _ if pending_const => return Some("const"),
            _ => return None, // a field (`pub name: T`) or other form
        }
    }
    if pending_const {
        Some("const")
    } else {
        None
    }
}

/// `true` if the token at index `ti` is preceded (skipping whitespace and
/// `#[...]` attributes) by a doc comment.
fn has_preceding_doc(file: &SourceFile, ti: usize) -> bool {
    let toks = &file.tokens;
    let text = &file.text;
    let mut i = ti;
    while i > 0 {
        i -= 1;
        let t = &toks[i];
        match t.kind {
            TokenKind::Whitespace => continue,
            TokenKind::LineComment | TokenKind::BlockComment => {
                if t.is_doc {
                    // Only *outer* docs (`///`, `/**`) attach to the item;
                    // an inner `//!`/`/*!` is the enclosing module's doc.
                    let s = t.text(text);
                    return s.starts_with("///") || s.starts_with("/**");
                }
                // A plain comment between doc and item is fine; keep looking.
                continue;
            }
            // Skip an attribute: `... # [ ... ]` scanning backwards from `]`.
            TokenKind::Punct if t.text(text) == "]" => {
                let mut depth = 1usize;
                while i > 0 && depth > 0 {
                    i -= 1;
                    match toks[i].text(text) {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
                // Skip the `#` (and `!` if present) before the bracket.
                while i > 0
                    && matches!(toks[i - 1].kind, TokenKind::Punct)
                    && matches!(toks[i - 1].text(text), "#" | "!")
                {
                    i -= 1;
                }
                continue;
            }
            _ => return false,
        }
    }
    false
}

// ---------------------------------------------------------------------
// JA07: concurrency hygiene.
// ---------------------------------------------------------------------

/// The one directory allowed to hold raw concurrency primitives: the
/// deterministic fork-join runtime.  Workspace-relative prefix with `/`
/// separators.
pub const CONCURRENCY_EXEMPT_PREFIX: &str = "crates/par/";

/// Bans ad-hoc concurrency in non-test library code outside `crates/par`:
/// unscoped `thread::spawn` (threads that outlive the fork-join region
/// escape the deterministic merge order), lock types (lock acquisition
/// order varies run to run), and `static mut` (mutable global state).
/// All parallelism must flow through `jact-par`'s pool, whose
/// chunk-indexed reductions keep results bitwise identical for any
/// thread count.  Scoped `s.spawn(..)` inside `jact-par` itself is the
/// sanctioned form and the only one that exists.
pub fn ja07_concurrency(file: &SourceFile) -> Vec<Diagnostic> {
    if file.rel_path.starts_with(CONCURRENCY_EXEMPT_PREFIX) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &file.tokens;
    let text = &file.text;
    for (mi, &ti) in file.meaningful.iter().enumerate() {
        let t = &toks[ti];
        if t.kind != TokenKind::Ident || file.in_test_region(t.start) {
            continue;
        }
        let word = t.text(text);
        let at = |j: usize| {
            file.meaningful
                .get(j)
                .map(|&n| toks[n].text(text))
                .unwrap_or("")
        };
        let prev = |k: usize| mi.checked_sub(k).map(at).unwrap_or("");
        let why = match word {
            // `thread::spawn` (with or without a `std::` prefix).  A
            // method call `pool.spawn(..)` or scope `s.spawn(..)` is
            // preceded by `.`, not `thread ::`, and is not flagged.
            "spawn" if prev(1) == ":" && prev(2) == ":" && prev(3) == "thread" => {
                Some("unscoped `thread::spawn` (route parallel work through jact-par)")
            }
            // Lock types, whether imported, qualified, or constructed.
            "Mutex" | "RwLock" => {
                Some("lock-based shared state (nondeterministic acquisition order; use jact-par's chunk-indexed merges)")
            }
            // `static mut` declarations.  The lexer emits `'static` as a
            // single Lifetime token, so `&'static mut T` cannot reach
            // this arm.
            "static" if at(mi + 1) == "mut" => Some("`static mut` (mutable global state)"),
            _ => None,
        };
        if let Some(why) = why {
            if !suppressed(&file.suppressions, Code::Ja07, t.line) {
                out.push(Diagnostic::new(
                    Code::Ja07,
                    &file.rel_path,
                    t.line,
                    t.col,
                    format!("`{word}` in non-test code outside crates/par: {why}"),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// JA08: print funnel.
// ---------------------------------------------------------------------

/// Crates whose library code may print directly: the bench harness and
/// the analyzer *are* the reporting layer.
pub const PRINT_EXEMPT_CRATES: [&str; 2] = ["jact-bench", "jact-analyze"];

/// Bans ad-hoc `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in
/// non-test library code outside [`PRINT_EXEMPT_CRATES`] and outside
/// binary entry points (`src/bin/*`, `src/main.rs`).  Library crates
/// report through `jact-obs` counters/spans (or return data for a bench
/// binary to print); stray prints bypass the deterministic trace format
/// and corrupt table output piped from the bench binaries.
/// `write!`/`writeln!` into an explicit sink (e.g. `Display` impls) are
/// untouched.
pub fn ja08_print_funnel(file: &SourceFile) -> Vec<Diagnostic> {
    if PRINT_EXEMPT_CRATES.contains(&file.crate_name.as_str())
        || file.rel_path.contains("/src/bin/")
        || file.rel_path.ends_with("/src/main.rs")
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &file.tokens;
    let text = &file.text;
    for (mi, &ti) in file.meaningful.iter().enumerate() {
        let t = &toks[ti];
        if t.kind != TokenKind::Ident || file.in_test_region(t.start) {
            continue;
        }
        let word = t.text(text);
        let next = file
            .meaningful
            .get(mi + 1)
            .map(|&n| toks[n].text(text))
            .unwrap_or("");
        let bad = matches!(word, "println" | "eprintln" | "print" | "eprint" | "dbg")
            && next == "!";
        if bad && !suppressed(&file.suppressions, Code::Ja08, t.line) {
            out.push(Diagnostic::new(
                Code::Ja08,
                &file.rel_path,
                t.line,
                t.col,
                format!(
                    "`{word}!` in library code: report through jact-obs or a bench binary"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest;

    fn file(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::new("src/x.rs", crate_name, src.to_string())
    }

    #[test]
    fn ja03_flags_unwrap_in_hot_path_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(ja03_no_panics(&file("jact-codec", src)).len(), 1);
        assert!(ja03_no_panics(&file("jact-dnn", src)).is_empty());
    }

    #[test]
    fn ja03_covers_listed_modules_outside_hot_path_crates() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        // Same crate, different files: only the listed module is covered.
        let fault = SourceFile::new("crates/core/src/fault.rs", "jact-core", src.to_string());
        let d = ja03_no_panics(&fault);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("crates/core/src/fault.rs"), "{}", d[0].message);
        let offload = SourceFile::new("crates/core/src/offload.rs", "jact-core", src.to_string());
        assert_eq!(ja03_no_panics(&offload).len(), 1);
        let other = SourceFile::new("crates/core/src/stats.rs", "jact-core", src.to_string());
        assert!(ja03_no_panics(&other).is_empty());
    }

    #[test]
    fn ja03_allows_unwrap_or_and_tests() {
        let ok = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n#[cfg(test)]\nmod tests { fn t() { None::<u8>.unwrap(); } }\n";
        assert!(ja03_no_panics(&file("jact-codec", ok)).is_empty());
    }

    #[test]
    fn ja04_flags_clock_and_respects_suppression() {
        let bad = "fn f() { let t = std::time::Instant::now(); }\n";
        let d = ja04_determinism(&file("jact-gpusim", bad));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        let ok = "// jact-analyze: allow(JA04)\nfn f() { let t = std::time::Instant::now(); }\n";
        assert!(ja04_determinism(&file("jact-gpusim", ok)).is_empty());
        assert!(ja04_determinism(&file("jact-bench", bad)).is_empty());
    }

    #[test]
    fn ja05_requires_forbid() {
        assert_eq!(ja05_forbid_unsafe(&file("jact-x", "//! doc\n")).len(), 1);
        assert!(ja05_forbid_unsafe(&file("jact-x", "#![forbid(unsafe_code)]\n")).is_empty());
    }

    #[test]
    fn ja06_requires_docs_on_pub_items() {
        let bad = "//! mod doc\npub fn f() {}\n";
        let d = ja06_doc_coverage(&file("jact-codec", bad));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("fn"));
        let ok = "//! mod doc\n/// Documented.\npub fn f() {}\npub use std::mem;\n";
        assert!(ja06_doc_coverage(&file("jact-codec", ok)).is_empty());
        assert!(ja06_doc_coverage(&file("jact-dnn", bad)).is_empty());
    }

    #[test]
    fn ja06_handles_qualifiers_and_attributes() {
        let src = "//! d\n/// Documented.\n#[inline]\npub const fn f() -> u8 { 1 }\n/// C.\npub const X: u8 = 1;\n";
        assert!(ja06_doc_coverage(&file("jact-codec", src)).is_empty());
        let undoc = "//! d\npub const X: u8 = 1;\n";
        let d = ja06_doc_coverage(&file("jact-codec", undoc));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("const"));
    }

    #[test]
    fn ja07_flags_raw_concurrency_outside_par() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(ja07_concurrency(&file("jact-core", spawn)).len(), 1);
        let lock = "use std::sync::Mutex;\n";
        assert_eq!(ja07_concurrency(&file("jact-codec", lock)).len(), 1);
        let global = "static mut COUNTER: u64 = 0;\n";
        assert_eq!(ja07_concurrency(&file("jact-dnn", global)).len(), 1);
    }

    #[test]
    fn ja07_quiet_on_par_scoped_spawn_lifetimes_and_tests() {
        // The runtime crate itself is exempt by path.
        let par = SourceFile::new(
            "crates/par/src/lib.rs",
            "jact-par",
            "fn f() { std::thread::spawn(|| {}); }\n".to_string(),
        );
        assert!(ja07_concurrency(&par).is_empty());
        // Scoped spawn is a method call, not `thread::spawn`.
        let scoped = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        assert!(ja07_concurrency(&file("jact-core", scoped)).is_empty());
        // `&'static mut` is a lifetime, not a `static mut` declaration.
        let lifetime = "fn f(x: &'static mut u8) { *x = 1; }\n";
        assert!(ja07_concurrency(&file("jact-core", lifetime)).is_empty());
        // Test regions may do as they like.
        let test_only = "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }\n";
        assert!(ja07_concurrency(&file("jact-core", test_only)).is_empty());
        // Inline allow is honored.
        let allowed = "// jact-analyze: allow(JA07)\nuse std::sync::Mutex;\n";
        assert!(ja07_concurrency(&file("jact-core", allowed)).is_empty());
    }

    #[test]
    fn ja08_flags_prints_in_library_code_only() {
        let bad = "fn f() { println!(\"x\"); }\n";
        assert_eq!(ja08_print_funnel(&file("jact-codec", bad)).len(), 1);
        let dbg = "fn f(x: u8) -> u8 { dbg!(x) }\n";
        assert_eq!(ja08_print_funnel(&file("jact-core", dbg)).len(), 1);
        // The reporting crates are exempt wholesale.
        assert!(ja08_print_funnel(&file("jact-bench", bad)).is_empty());
        assert!(ja08_print_funnel(&file("jact-analyze", bad)).is_empty());
        // Binary entry points print by design.
        let bin = SourceFile::new(
            "crates/bench/src/bin/table3.rs",
            "jact-x",
            bad.to_string(),
        );
        assert!(ja08_print_funnel(&bin).is_empty());
        let main = SourceFile::new("crates/x/src/main.rs", "jact-x", bad.to_string());
        assert!(ja08_print_funnel(&main).is_empty());
    }

    #[test]
    fn ja08_quiet_on_writeln_tests_and_suppressions() {
        // Display impls write into an explicit formatter.
        let disp = "fn f(w: &mut std::fmt::Formatter<'_>) { writeln!(w, \"x\").ok(); }\n";
        assert!(ja08_print_funnel(&file("jact-core", disp)).is_empty());
        let test_only = "#[cfg(test)]\nmod tests { fn t() { println!(\"x\"); } }\n";
        assert!(ja08_print_funnel(&file("jact-core", test_only)).is_empty());
        let allowed = "// jact-analyze: allow(JA08)\nfn f() { println!(\"x\"); }\n";
        assert!(ja08_print_funnel(&file("jact-core", allowed)).is_empty());
        // `println` without `!` is an ordinary identifier.
        let ident = "fn println() {}\nfn g() { println(); }\n";
        assert!(ja08_print_funnel(&file("jact-core", ident)).is_empty());
    }

    #[test]
    fn ja01_flags_inverted_layering() {
        let bad = manifest::parse(
            "crates/tensor/Cargo.toml",
            "[package]\nname = \"jact-tensor\"\n[dependencies]\njact-dnn = { workspace = true }\n",
        );
        let d = ja01_layering(&[bad]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
        let ok = manifest::parse(
            "crates/tensor/Cargo.toml",
            "[package]\nname = \"jact-tensor\"\n[dependencies]\njact-rng = { workspace = true }\n",
        );
        assert!(ja01_layering(&[ok]).is_empty());
    }

    #[test]
    fn ja02_flags_registry_deps_and_lockfile_sources() {
        let bad = manifest::parse(
            "crates/x/Cargo.toml",
            "[package]\nname = \"jact-x\"\n[dependencies]\nserde = \"1.0\"\n",
        );
        let root = "[workspace.dependencies]\njact-x = { path = \"crates/x\" }\n";
        let d = ja02_hermetic(&[bad], root, None);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
        let lock = "source = \"registry+https://github.com/rust-lang/crates.io-index\"\n";
        let d = ja02_hermetic(&[], root, Some(("Cargo.lock", lock)));
        assert_eq!(d.len(), 1);
    }
}

//! A hand-rolled Rust lexer with line/column-tracking spans.
//!
//! The lint passes need to know *where* they are in a source file —
//! inside a string literal, a comment, a `#[cfg(test)]` region — before
//! they can judge an identifier.  This tokenizer understands exactly as
//! much Rust as that requires: strings (plain, byte, raw with any number
//! of `#` guards), char literals vs. lifetimes, nested block comments,
//! doc comments, numbers, identifiers (including raw `r#ident`), and
//! single-character punctuation.  It is loss-free: concatenating every
//! token's text reproduces the input byte-for-byte, which the generative
//! test suite checks on synthesized snippets.

/// What a token is.  Lint passes mostly care about `Ident` and the
/// comment kinds; everything else exists so identifiers inside strings
/// and comments are never mistaken for code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (spaces, tabs, newlines).
    Whitespace,
    /// `// ...` up to (not including) the newline.  `is_doc` marks
    /// `///` and `//!` forms.
    LineComment,
    /// `/* ... */`, nesting tracked.  `is_doc` marks `/**` and `/*!`.
    BlockComment,
    /// An identifier or keyword, including raw `r#ident`.
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A char literal such as `'x'` or `'\n'`.
    Char,
    /// A plain or byte string literal (`"..."`, `b"..."`).
    Str,
    /// A raw string literal (`r"..."`, `r#"..."#`, `br#"..."#`).
    RawStr,
    /// A numeric literal (integers, floats, radix prefixes, suffixes).
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token: kind, byte span into the source, and 1-based line/column
/// of its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// Byte length.
    pub len: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
    /// For comments: whether this is a doc comment.
    pub is_doc: bool,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.start + self.len]
    }

    /// Byte offset one past the last byte.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining line/col.  Multi-byte UTF-8
    /// continuation bytes advance the column only on the leading byte,
    /// so columns count characters' first bytes consistently.
    fn bump(&mut self) {
        if let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else if b & 0xC0 != 0x80 {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a complete, loss-free token stream.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(b) = cur.peek() {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let (kind, is_doc) = scan_one(&mut cur, b);
        out.push(Token {
            kind,
            start,
            len: cur.pos - start,
            line,
            col,
            is_doc,
        });
    }
    out
}

fn scan_one(cur: &mut Cursor<'_>, first: u8) -> (TokenKind, bool) {
    match first {
        b if b.is_ascii_whitespace() => {
            while cur.peek().is_some_and(|b| b.is_ascii_whitespace()) {
                cur.bump();
            }
            (TokenKind::Whitespace, false)
        }
        b'/' if cur.peek_at(1) == Some(b'/') => {
            let is_doc = matches!(cur.peek_at(2), Some(b'!'))
                || (cur.peek_at(2) == Some(b'/') && cur.peek_at(3) != Some(b'/'));
            while cur.peek().is_some_and(|b| b != b'\n') {
                cur.bump();
            }
            (TokenKind::LineComment, is_doc)
        }
        b'/' if cur.peek_at(1) == Some(b'*') => {
            let is_doc = matches!(cur.peek_at(2), Some(b'!'))
                || (cur.peek_at(2) == Some(b'*') && cur.peek_at(3) != Some(b'*'));
            cur.bump_n(2);
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(), cur.peek_at(1)) {
                    (Some(b'/'), Some(b'*')) => {
                        depth += 1;
                        cur.bump_n(2);
                    }
                    (Some(b'*'), Some(b'/')) => {
                        depth -= 1;
                        cur.bump_n(2);
                    }
                    (Some(_), _) => cur.bump(),
                    (None, _) => break, // unterminated: swallow to EOF
                }
            }
            (TokenKind::BlockComment, is_doc)
        }
        b'r' | b'b' => scan_maybe_prefixed(cur),
        b'"' => {
            scan_string(cur);
            (TokenKind::Str, false)
        }
        b'\'' => scan_quote(cur),
        b if b.is_ascii_digit() => {
            scan_number(cur);
            (TokenKind::Num, false)
        }
        b if is_ident_start(b) => {
            scan_ident(cur);
            (TokenKind::Ident, false)
        }
        _ => {
            cur.bump();
            (TokenKind::Punct, false)
        }
    }
}

/// Disambiguates `r"..."`, `r#"..."#`, `r#ident`, `b"..."`, `br"..."`,
/// `b'x'`, and ordinary identifiers starting with `r`/`b`.
fn scan_maybe_prefixed(cur: &mut Cursor<'_>) -> (TokenKind, bool) {
    let first = cur.peek();
    let second = cur.peek_at(1);
    match (first, second) {
        // b'x' byte char literal.
        (Some(b'b'), Some(b'\'')) => {
            cur.bump();
            let (k, _) = scan_quote(cur);
            (k, false)
        }
        // b"..." byte string.
        (Some(b'b'), Some(b'"')) => {
            cur.bump();
            scan_string(cur);
            (TokenKind::Str, false)
        }
        // br"..." / br#"..."#.
        (Some(b'b'), Some(b'r')) if matches!(cur.peek_at(2), Some(b'"') | Some(b'#')) => {
            cur.bump();
            cur.bump();
            if scan_raw_string(cur) {
                (TokenKind::RawStr, false)
            } else {
                (TokenKind::Ident, false)
            }
        }
        // r"..." / r#"..."# / r#ident.
        (Some(b'r'), Some(b'"') | Some(b'#')) => {
            cur.bump();
            // r#ident: a single # followed by an identifier start.
            if cur.peek() == Some(b'#')
                && cur.peek_at(1).is_some_and(is_ident_start)
                && cur.peek_at(1) != Some(b'"')
            {
                cur.bump(); // '#'
                scan_ident(cur);
                return (TokenKind::Ident, false);
            }
            if scan_raw_string(cur) {
                (TokenKind::RawStr, false)
            } else {
                (TokenKind::Ident, false)
            }
        }
        _ => {
            scan_ident(cur);
            (TokenKind::Ident, false)
        }
    }
}

fn scan_ident(cur: &mut Cursor<'_>) {
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
}

/// Scans `"..."` with escape handling; the opening quote is at the cursor.
fn scan_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.peek() {
        match b {
            b'\\' => cur.bump_n(2),
            b'"' => {
                cur.bump();
                return;
            }
            _ => cur.bump(),
        }
    }
}

/// Scans a raw string whose guards start at the cursor (`#`* then `"`).
/// Returns `false` (consuming nothing more) if this is not actually a raw
/// string head, in which case the caller treats the prefix as an ident.
fn scan_raw_string(cur: &mut Cursor<'_>) -> bool {
    let mut guards = 0usize;
    while cur.peek_at(guards) == Some(b'#') {
        guards += 1;
    }
    if cur.peek_at(guards) != Some(b'"') {
        scan_ident(cur);
        return false;
    }
    cur.bump_n(guards + 1); // guards + opening quote
    loop {
        match cur.peek() {
            None => return true, // unterminated: swallow to EOF
            Some(b'"') => {
                let mut closing = 0usize;
                while closing < guards && cur.peek_at(1 + closing) == Some(b'#') {
                    closing += 1;
                }
                if closing == guards {
                    cur.bump_n(1 + guards);
                    return true;
                }
                cur.bump();
            }
            Some(_) => cur.bump(),
        }
    }
}

/// Scans a `'`-introduced token: char literal or lifetime.
fn scan_quote(cur: &mut Cursor<'_>) -> (TokenKind, bool) {
    cur.bump(); // opening quote
    match cur.peek() {
        // Escaped char: always a char literal.
        Some(b'\\') => {
            cur.bump_n(2);
            while cur.peek().is_some_and(|b| b != b'\'') {
                cur.bump();
            }
            cur.bump(); // closing quote
            (TokenKind::Char, false)
        }
        Some(b) if is_ident_start(b) => {
            // 'x' is a char; 'x.. / 'ident is a lifetime.
            if cur.peek_at(1) == Some(b'\'') {
                cur.bump_n(2);
                (TokenKind::Char, false)
            } else {
                scan_ident(cur);
                (TokenKind::Lifetime, false)
            }
        }
        // Non-identifier char such as '+' or ' '.
        Some(_) => {
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            (TokenKind::Char, false)
        }
        None => (TokenKind::Punct, false),
    }
}

/// Scans a numeric literal.  Permissive about suffixes and radix digits;
/// careful about `0..10` (the dots belong to the range, not the number)
/// and `1e-5` exponents.
fn scan_number(cur: &mut Cursor<'_>) {
    // Radix prefix?
    if cur.peek() == Some(b'0')
        && matches!(cur.peek_at(1), Some(b'x') | Some(b'X') | Some(b'o') | Some(b'b'))
        && cur.peek_at(2).is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
    {
        cur.bump_n(2);
        while cur
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            cur.bump();
        }
        return;
    }
    let mut seen_dot = false;
    while let Some(b) = cur.peek() {
        match b {
            b'0'..=b'9' | b'_' => cur.bump(),
            b'.' if !seen_dot && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) => {
                seen_dot = true;
                cur.bump();
            }
            b'e' | b'E'
                if cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
                    || (matches!(cur.peek_at(1), Some(b'+') | Some(b'-'))
                        && cur.peek_at(2).is_some_and(|c| c.is_ascii_digit())) =>
            {
                cur.bump(); // e
                if matches!(cur.peek(), Some(b'+') | Some(b'-')) {
                    cur.bump();
                }
                while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                    cur.bump();
                }
                // Suffix may still follow (rare); fall through below.
            }
            // Type suffix: i32, u8, f64, usize...
            b if b.is_ascii_alphabetic() => {
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                return;
            }
            _ => return,
        }
    }
}

/// Iterator adaptor: indices of "meaningful" tokens (not whitespace, not
/// comments) — what the lint passes walk.
pub fn meaningful_indices(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn roundtrip_simple() {
        let src = "pub fn f(x: u32) -> u32 { x + 1 }\n";
        let toks = lex(src);
        let joined: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(joined, src);
    }

    #[test]
    fn char_vs_lifetime() {
        let ks = kinds("'a 'x' '\\n' 'static");
        let only: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k != TokenKind::Whitespace)
            .collect();
        assert_eq!(only[0].0, TokenKind::Lifetime);
        assert_eq!(only[1].0, TokenKind::Char);
        assert_eq!(only[2].0, TokenKind::Char);
        assert_eq!(only[3].0, TokenKind::Lifetime);
        assert_eq!(only[3].1, "'static");
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let src = "/* outer /* inner */ tail */ident";
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokenKind::BlockComment);
        assert_eq!(ks[0].1, "/* outer /* inner */ tail */");
        assert_eq!(ks[1], (TokenKind::Ident, "ident".into()));
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r####"r#"has "quotes" inside"# r"plain" br##"bytes"##"####;
        let ks: Vec<_> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k != TokenKind::Whitespace)
            .collect();
        assert_eq!(ks.len(), 3, "{ks:?}");
        assert!(ks.iter().all(|(k, _)| *k == TokenKind::RawStr), "{ks:?}");
    }

    #[test]
    fn raw_ident_is_ident() {
        let ks = kinds("r#fn");
        assert_eq!(ks[0], (TokenKind::Ident, "r#fn".into()));
    }

    #[test]
    fn string_with_escapes() {
        let src = r#""a\"b\\c" x"#;
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokenKind::Str);
        assert_eq!(ks[0].1, r#""a\"b\\c""#);
    }

    #[test]
    fn range_dots_not_eaten_by_number() {
        let ks: Vec<_> = kinds("0..10")
            .into_iter()
            .filter(|(k, _)| *k != TokenKind::Whitespace)
            .collect();
        assert_eq!(ks[0], (TokenKind::Num, "0".into()));
        assert_eq!(ks[1], (TokenKind::Punct, ".".into()));
        assert_eq!(ks[2], (TokenKind::Punct, ".".into()));
        assert_eq!(ks[3], (TokenKind::Num, "10".into()));
    }

    #[test]
    fn float_exponent_and_suffix() {
        let ks = kinds("1.5e-3f32");
        assert_eq!(ks[0], (TokenKind::Num, "1.5e-3f32".into()));
    }

    #[test]
    fn doc_comment_flags() {
        let toks = lex("/// doc\n//! inner\n// plain\n/** block doc */");
        let comments: Vec<_> = toks
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .collect();
        assert!(comments[0].is_doc);
        assert!(comments[1].is_doc);
        assert!(!comments[2].is_doc);
        assert!(comments[3].is_doc);
    }

    #[test]
    fn line_and_col_tracking() {
        let src = "ab\n  cd";
        let toks = lex(src);
        let cd = toks.iter().find(|t| t.text(src) == "cd").expect("cd token");
        assert_eq!((cd.line, cd.col), (2, 3));
    }
}

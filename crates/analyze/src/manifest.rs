//! Minimal `Cargo.toml` reading — just enough structure for the
//! layering (JA01) and hermeticity (JA02) passes, with line numbers
//! preserved for diagnostics.

/// One dependency entry as written in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEntry {
    /// Dependency name (left-hand side of the `=`).
    pub name: String,
    /// The raw right-hand side, e.g. `{ workspace = true }`.
    pub spec: String,
    /// Section the entry appears in (e.g. `dependencies`,
    /// `dev-dependencies`, `workspace.dependencies`).
    pub section: String,
    /// 1-based line number in the manifest.
    pub line: u32,
}

impl DepEntry {
    /// `true` if the spec is a pure path/workspace reference — the only
    /// forms the hermetic-build policy allows.
    pub fn is_path_or_workspace(&self) -> bool {
        (self.spec.contains("path =") || self.spec.contains("workspace = true"))
            && !self.spec.contains("git =")
            && !self.spec.contains("version =")
            && !self.spec.contains("registry =")
    }
}

/// A parsed manifest: package name plus every dependency entry.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Workspace-relative path (used in diagnostics).
    pub rel_path: String,
    /// `package.name`, empty for the virtual workspace root.
    pub package_name: String,
    /// Every dependency entry across all dependency sections.
    pub deps: Vec<DepEntry>,
    /// Raw text (JA02 needs the workspace table for cross-checks).
    pub text: String,
}

/// `true` for section headers that declare dependencies.
fn is_dep_section(header: &str) -> bool {
    header == "workspace.dependencies"
        || header == "dependencies"
        || header == "dev-dependencies"
        || header == "build-dependencies"
        || (header.starts_with("target.") && header.ends_with("dependencies"))
}

/// Parses a manifest's text.  This is a line-oriented reader that
/// understands exactly the subset of TOML the workspace uses: `[section]`
/// headers, `key = value` pairs, and `#` comments.
pub fn parse(rel_path: impl Into<String>, text: &str) -> Manifest {
    let mut section = String::new();
    let mut package_name = String::new();
    let mut deps = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line
                .trim_start_matches('[')
                .trim_end_matches(']')
                .to_string();
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if section == "package" && key == "name" {
            package_name = value.trim_matches('"').to_string();
        } else if is_dep_section(&section) {
            deps.push(DepEntry {
                name: key.to_string(),
                spec: value.to_string(),
                section: section.clone(),
                line: no as u32 + 1,
            });
        }
    }
    Manifest {
        rel_path: rel_path.into(),
        package_name,
        deps,
        text: text.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_deps() {
        let m = parse(
            "crates/x/Cargo.toml",
            "[package]\nname = \"jact-x\"\n\n[dependencies]\njact-tensor = { workspace = true }\n\n[dev-dependencies]\njact-rng = { path = \"../rng\" }\n",
        );
        assert_eq!(m.package_name, "jact-x");
        assert_eq!(m.deps.len(), 2);
        assert_eq!(m.deps[0].name, "jact-tensor");
        assert_eq!(m.deps[0].section, "dependencies");
        assert_eq!(m.deps[0].line, 5);
        assert!(m.deps[0].is_path_or_workspace());
        assert_eq!(m.deps[1].section, "dev-dependencies");
    }

    #[test]
    fn registry_spec_detected() {
        let m = parse("Cargo.toml", "[dependencies]\nserde = \"1.0\"\nrand = { version = \"0.8\" }\n");
        assert!(m.deps.iter().all(|d| !d.is_path_or_workspace()));
    }
}

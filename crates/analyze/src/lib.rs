//! `jact-analyze`: an in-repo static-analysis subsystem enforcing the
//! workspace invariants the JPEG-ACT reproduction depends on.
//!
//! The workspace builds hermetically offline, so this tool is written
//! against `std` only: a hand-rolled Rust lexer ([`lexer`]), a minimal
//! manifest reader ([`manifest`]), and seven lint passes ([`passes`])
//! reporting stable diagnostic codes with `file:line:col` spans:
//!
//! | Code | Invariant |
//! |------|-----------|
//! | JA01 | Crate layering: rng/tensor/codec/hwmodel never depend on the high layers |
//! | JA02 | Hermeticity: path-only dependencies, no registry/git sources |
//! | JA03 | Panic-freedom in hot-path crates (codec, tensor, rng, par) |
//! | JA04 | Determinism: no wall clocks, hash containers, or ambient RNG |
//! | JA05 | `#![forbid(unsafe_code)]` in every lib crate root |
//! | JA06 | Doc-comment coverage for `pub` items in codec and core |
//! | JA07 | Concurrency hygiene: raw threads, locks, `static mut` only in `jact-par` |
//!
//! A finding can be silenced at the offending line with
//! `// jact-analyze: allow(JA0x)` on the same line or the line above.
//! The CLI (`cargo run -p jact-analyze --release --offline`) prints
//! diagnostics, writes `target/analyze-report.json`, and exits nonzero
//! when the workspace is not clean; `tests/static_analysis.rs` runs the
//! same driver in-process so tier-1 `cargo test` enforces cleanliness.

#![forbid(unsafe_code)]

pub mod diag;
pub mod driver;
pub mod lexer;
pub mod manifest;
pub mod passes;
pub mod report;
pub mod source;

pub use diag::{Code, Diagnostic, Suppression};
pub use driver::{analyze_workspace, check_hermetic, find_workspace_root};
pub use report::Analysis;
pub use source::SourceFile;

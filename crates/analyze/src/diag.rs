//! Diagnostics: stable codes, file:line spans, and inline suppressions.

use std::fmt;

/// Stable diagnostic codes, one per lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Crate layering: low-layer crates must not depend on high layers.
    Ja01,
    /// Hermeticity: every dependency is an in-workspace path dependency.
    Ja02,
    /// Panic-freedom: no `unwrap`/`expect`/`panic!` in hot-path crates.
    Ja03,
    /// Determinism: no wall clocks, hash containers, or ambient RNG.
    Ja04,
    /// `#![forbid(unsafe_code)]` present in every lib crate root.
    Ja05,
    /// Doc-comment coverage for public items in `codec` and `core`.
    Ja06,
    /// Concurrency hygiene: raw threads, locks, and mutable globals are
    /// confined to `jact-par`.
    Ja07,
    /// Print funnel: ad-hoc `println!`/`eprintln!`/`dbg!` stay out of
    /// library code — reporting goes through `jact-obs` or the bench
    /// binaries.
    Ja08,
}

impl Code {
    /// All codes, in order.
    pub const ALL: [Code; 8] = [
        Code::Ja01,
        Code::Ja02,
        Code::Ja03,
        Code::Ja04,
        Code::Ja05,
        Code::Ja06,
        Code::Ja07,
        Code::Ja08,
    ];

    /// The stable textual form (`JA01` ... `JA07`) used in reports and
    /// `// jact-analyze: allow(...)` comments.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Ja01 => "JA01",
            Code::Ja02 => "JA02",
            Code::Ja03 => "JA03",
            Code::Ja04 => "JA04",
            Code::Ja05 => "JA05",
            Code::Ja06 => "JA06",
            Code::Ja07 => "JA07",
            Code::Ja08 => "JA08",
        }
    }

    /// Parses the textual form, case-insensitively.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL
            .iter()
            .copied()
            .find(|c| c.as_str().eq_ignore_ascii_case(s.trim()))
    }

    /// One-line description of what the lint enforces.
    pub fn title(self) -> &'static str {
        match self {
            Code::Ja01 => "crate layering (low layers must not depend on high layers)",
            Code::Ja02 => "hermeticity (path-only dependencies, no registry/git sources)",
            Code::Ja03 => "panic-freedom in hot-path crates (codec, tensor, rng, par, obs)",
            Code::Ja04 => "determinism (no wall clocks, hash containers, ambient RNG)",
            Code::Ja05 => "#![forbid(unsafe_code)] in every lib crate root",
            Code::Ja06 => "doc-comment coverage for pub items in codec and core",
            Code::Ja07 => "concurrency hygiene (raw threads, locks, static mut only in jact-par)",
            Code::Ja08 => "print funnel (println!/eprintln!/dbg! only in bench, analyze, and bins)",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: Code,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(code: Code, path: impl Into<String>, line: u32, col: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            path: path.into(),
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} {}",
            self.path, self.line, self.col, self.code, self.message
        )
    }
}

/// An inline suppression parsed from a `// jact-analyze: allow(JA03)`
/// comment.  It silences the listed codes on its own line and the line
/// directly below (so it can sit above the offending statement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Codes the comment allows.
    pub codes: Vec<Code>,
    /// 1-based line the comment sits on.
    pub line: u32,
}

/// Parses suppressions out of a comment's text.
pub fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    let marker = "jact-analyze:";
    let rest = comment[comment.find(marker)? + marker.len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let inner = rest.strip_prefix('(')?;
    let inner = &inner[..inner.find(')')?];
    let codes: Vec<Code> = inner.split(',').filter_map(Code::parse).collect();
    if codes.is_empty() {
        None
    } else {
        Some(Suppression { codes, line })
    }
}

/// `true` if a violation of `code` at `line` is silenced by any of the
/// given suppressions.
pub fn suppressed(sups: &[Suppression], code: Code, line: u32) -> bool {
    sups.iter()
        .any(|s| s.codes.contains(&code) && (s.line == line || s.line + 1 == line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c));
        }
        assert_eq!(Code::parse("ja03"), Some(Code::Ja03));
        assert_eq!(Code::parse("JA99"), None);
    }

    #[test]
    fn suppression_parsing() {
        let s = parse_suppression("// jact-analyze: allow(JA03, JA04)", 7).expect("parses");
        assert_eq!(s.codes, vec![Code::Ja03, Code::Ja04]);
        assert!(suppressed(&[s.clone()], Code::Ja03, 7));
        assert!(suppressed(&[s.clone()], Code::Ja04, 8));
        assert!(!suppressed(&[s], Code::Ja03, 9));
        assert!(parse_suppression("// ordinary comment", 1).is_none());
        assert!(parse_suppression("// jact-analyze: allow()", 1).is_none());
    }
}

//! Convergence monitoring under lossy compression (Sec. VI-B).
//!
//! The paper observes that non-convergence under aggressive compression
//! shows up as (1) a *sudden decrease in accuracy* during training —
//! usable as a warning sign that compression is too high — and (2)
//! *diverging activation statistics*: the mean or standard deviation of
//! activations drifting over training, destabilizing the mean-dependent
//! batch-norm parameters.  [`ConvergenceMonitor`] implements both
//! detectors so training harnesses can flag the paper's Table I
//! asterisks automatically.

use jact_tensor::Tensor;

/// Rolling statistics of one scalar series.
#[derive(Debug, Clone, Default)]
struct Series {
    values: Vec<f64>,
}

impl Series {
    fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Observes per-epoch validation scores and activation statistics and
/// reports divergence.
#[derive(Debug, Clone)]
pub struct ConvergenceMonitor {
    score: Series,
    act_mean: Series,
    act_std: Series,
    /// Fractional drop from the best score that counts as "sudden
    /// decrease" (default 0.5: accuracy halves).
    pub score_drop_threshold: f64,
    /// Multiplicative drift of activation statistics that counts as
    /// divergence (default 4×).
    pub stat_drift_threshold: f64,
}

impl Default for ConvergenceMonitor {
    fn default() -> Self {
        ConvergenceMonitor {
            score: Series::default(),
            act_mean: Series::default(),
            act_std: Series::default(),
            score_drop_threshold: 0.5,
            stat_drift_threshold: 4.0,
        }
    }
}

/// Why the monitor flagged a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Divergence {
    /// Validation score collapsed from its best value.
    ScoreCollapse,
    /// Activation mean drifted beyond the threshold.
    MeanDrift,
    /// Activation standard deviation drifted beyond the threshold.
    StdDrift,
}

impl ConvergenceMonitor {
    /// Creates a monitor with the default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one epoch's validation score.
    pub fn observe_score(&mut self, score: f64) {
        self.score.push(score);
    }

    /// Records activation statistics from a representative tensor (e.g.
    /// one dense activation sampled per epoch).
    pub fn observe_activation(&mut self, x: &Tensor) {
        let mean = x.mean() as f64;
        let var: f64 = x
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / x.len() as f64;
        self.act_mean.push(mean.abs());
        self.act_std.push(var.sqrt());
    }

    /// Returns the first detected divergence, if any.
    pub fn check(&self) -> Option<Divergence> {
        // Sudden accuracy decrease (Sec. VI-B's warning sign).
        if let Some(last) = self.score.last() {
            let best = self.score.max();
            if best > 0.0 && self.score.values.len() >= 2 && last < best * (1.0 - self.score_drop_threshold)
            {
                return Some(Divergence::ScoreCollapse);
            }
        }
        // Statistic drift relative to the first observation.
        let drifted = |s: &Series| -> bool {
            match (s.values.first(), s.last()) {
                (Some(&first), Some(last)) if first > 1e-9 => {
                    last / first > self.stat_drift_threshold
                        || first / last.max(1e-12) > self.stat_drift_threshold
                }
                _ => false,
            }
        };
        if drifted(&self.act_mean) {
            return Some(Divergence::MeanDrift);
        }
        if drifted(&self.act_std) {
            return Some(Divergence::StdDrift);
        }
        None
    }

    /// `true` once any divergence criterion fires.
    pub fn diverged(&self) -> bool {
        self.check().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jact_tensor::Shape;

    #[test]
    fn healthy_run_is_not_flagged() {
        let mut m = ConvergenceMonitor::new();
        for (i, s) in [0.3, 0.5, 0.6, 0.65, 0.64].iter().enumerate() {
            m.observe_score(*s);
            let x = Tensor::full(Shape::vec(16), 1.0 + 0.01 * i as f32);
            m.observe_activation(&x);
        }
        assert_eq!(m.check(), None);
    }

    #[test]
    fn score_collapse_is_flagged() {
        let mut m = ConvergenceMonitor::new();
        for s in [0.3, 0.6, 0.65, 0.12] {
            m.observe_score(s);
        }
        assert_eq!(m.check(), Some(Divergence::ScoreCollapse));
        assert!(m.diverged());
    }

    #[test]
    fn mean_drift_is_flagged() {
        let mut m = ConvergenceMonitor::new();
        m.observe_activation(&Tensor::full(Shape::vec(8), 0.5));
        m.observe_activation(&Tensor::full(Shape::vec(8), 5.0));
        assert_eq!(m.check(), Some(Divergence::MeanDrift));
    }

    #[test]
    fn std_drift_is_flagged() {
        let mut m = ConvergenceMonitor::new();
        let narrow = Tensor::from_slice(&[0.9, 1.1, 0.9, 1.1]);
        let wide = Tensor::from_slice(&[-9.0, 11.0, -9.0, 11.0]);
        m.observe_activation(&narrow);
        m.observe_activation(&wide);
        assert_eq!(m.check(), Some(Divergence::StdDrift));
    }

    #[test]
    fn single_observation_never_flags() {
        let mut m = ConvergenceMonitor::new();
        m.observe_score(0.1);
        m.observe_activation(&Tensor::full(Shape::vec(4), 1.0));
        assert_eq!(m.check(), None);
    }
}

//! # jact-core
//!
//! The primary contribution of *JPEG-ACT: Accelerating Deep Learning via
//! Transform-based Lossy Compression* (Evans, Liu, Aamodt, ISCA 2020),
//! built on the `jact-codec` primitives and pluggable into any `jact-dnn`
//! training loop:
//!
//! * [`method`] — the compression **schemes** the paper evaluates (vDNN,
//!   cDMA+, GIST, SFPR, JPEG-BASE, JPEG-ACT) and the per-activation-type
//!   method selection of Table II, including the piece-wise `optL5H` DQT
//!   schedule;
//! * [`offload`] — [`offload::OffloadStore`], an
//!   [`ActivationStore`](jact_dnn::act::ActivationStore) that compresses
//!   on save and decompresses on load, so backward passes consume
//!   recovered activations (Eqn. 8) while compression statistics are
//!   accounted per activation type;
//! * [`fault`] — a deterministic, seeded fault injector modelling the
//!   offload DMA link as a lossy channel (bit flips, stuck-at-zero runs,
//!   truncation, packet duplication/drop), plus the
//!   [`RecoveryPolicy`](fault::RecoveryPolicy) the store consults when a
//!   wire load is detected as corrupt;
//! * [`metrics`] — Shannon entropy of quantized coefficients (Eqn. 11),
//!   recovered-activation L2 error (Eqn. 10), the rate/distortion
//!   objective `O` (Eqn. 12), and the spatial-vs-frequency entropy
//!   analyses behind Figs. 2 and 6;
//! * [`dqt_opt`] — the Sec. IV DQT optimizer: SGD over the 64 table
//!   entries with forward finite differences, DC pinned to 8.
//!
//! ## Quick start
//!
//! ```
//! use jact_core::method::Scheme;
//! use jact_core::offload::OffloadStore;
//! use jact_dnn::act::{ActKind, ActivationStore};
//! use jact_tensor::{Tensor, Shape};
//!
//! let mut store = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
//! let x = Tensor::from_vec(
//!     Shape::nchw(1, 2, 16, 16),
//!     (0..512).map(|i| ((i % 16) as f32 * 0.3).sin()).collect(),
//! );
//! store.save(0, ActKind::Conv, &x);
//! let recovered = store.load(0).expect("saved above");
//! assert!(x.mse(&recovered) < 1e-2);
//! assert!(store.stats().overall_ratio() > 2.0);
//! ```

#![forbid(unsafe_code)]

pub mod convergence;
pub mod dqt_opt;
pub mod fault;
pub mod method;
pub mod metrics;
pub mod offload;
pub mod stats;

pub use fault::{FaultConfig, FaultInjector, FaultModel, RecoveryPolicy};
pub use method::Scheme;
pub use offload::OffloadStore;
pub use stats::CompressionStats;

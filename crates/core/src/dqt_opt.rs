//! The DQT optimization procedure (Sec. IV, Fig. 9).
//!
//! Image DQTs encode *human* frequency sensitivity; CNNs have a different
//! one.  The optimizer minimizes the rate/distortion objective
//! `O = (1−α)·λ1·H + α·λ2·L2` (Eqn. 12) over the 64 DQT entries using SGD
//! with forward finite differences (difference 5, lr 2.0 in the paper),
//! evaluated on example activations from a frozen, partially-trained
//! network.  The first (DC) entry is pinned to 8 to prevent batch-norm
//! instability.

use crate::metrics::{objective, rate_distortion};
use jact_codec::dqt::Dqt;
use jact_codec::quant::QuantKind;
use jact_tensor::Tensor;

/// Optimizer configuration; defaults match the paper.
#[derive(Debug, Clone, Copy)]
pub struct DqtOptConfig {
    /// Rate/distortion trade-off: `optL` = 0.025, `optH` = 0.005.
    pub alpha: f64,
    /// SGD learning rate (paper: 2.0).
    pub lr: f64,
    /// Forward finite-difference step (paper: 5).
    pub fd_delta: f64,
    /// Optimization iterations.
    pub iters: usize,
    /// Quantizer back end the table will be used with.
    pub quant: QuantKind,
}

impl DqtOptConfig {
    /// The paper's `optL` setting (α = 0.025, low compression/error).
    pub fn opt_l() -> Self {
        DqtOptConfig {
            alpha: 0.025,
            ..Self::base()
        }
    }

    /// The paper's `optH` setting (α = 0.005, high compression).
    pub fn opt_h() -> Self {
        DqtOptConfig {
            alpha: 0.005,
            ..Self::base()
        }
    }

    fn base() -> Self {
        DqtOptConfig {
            alpha: 0.01,
            lr: 2.0,
            fd_delta: 5.0,
            iters: 8,
            // Optimize in the continuous DIV domain: under SH the
            // objective is piecewise constant in the table entries (only
            // `round(log2(q))` matters), so finite differences vanish.
            // The optimized table is then snapped to powers of two by the
            // SH back end at use time.
            quant: QuantKind::Div,
        }
    }
}

/// Result of one optimization run.
#[derive(Debug, Clone)]
pub struct DqtOptResult {
    /// The optimized table.
    pub dqt: Dqt,
    /// Objective value per iteration (for convergence inspection).
    pub trajectory: Vec<f64>,
}

/// Mean objective of a candidate table over the example activations.
fn evaluate(entries: &[f64; 64], name: &str, acts: &[Tensor], cfg: &DqtOptConfig) -> f64 {
    let dqt = to_dqt(entries, name);
    let mut total = 0.0f64;
    for a in acts {
        let (h, l2) = rate_distortion(a, &dqt, cfg.quant);
        total += objective(h, l2, cfg.alpha);
    }
    total / acts.len() as f64
}

fn to_dqt(entries: &[f64; 64], name: &str) -> Dqt {
    let mut e = [0u16; 64];
    for (o, &v) in e.iter_mut().zip(entries.iter()) {
        *o = v.round().clamp(1.0, 255.0) as u16;
    }
    Dqt::from_entries(name.to_string(), e).expect("entries clamped to 1..=255")
}

/// Runs the Sec. IV optimization: SGD over the DQT entries with forward
/// finite-difference gradients, DC pinned to 8.
///
/// `acts` are example dense activations (the paper uses 240 samples from
/// ResNet50/CIFAR10 at epoch 5); a handful of representative tensors is
/// enough to reproduce the optL/optH profile shape.
///
/// # Panics
///
/// Panics if `acts` is empty.
pub fn optimize(acts: &[Tensor], init: &Dqt, cfg: &DqtOptConfig) -> DqtOptResult {
    assert!(!acts.is_empty(), "need at least one example activation");
    let name = format!("opt(a={})", cfg.alpha);
    let mut entries = [0f64; 64];
    for (e, &v) in entries.iter_mut().zip(init.entries().iter()) {
        *e = v as f64;
    }
    entries[0] = 8.0; // DC pinned (Sec. IV).

    let mut trajectory = Vec::with_capacity(cfg.iters + 1);
    let mut current = evaluate(&entries, &name, acts, cfg);
    trajectory.push(current);

    for _ in 0..cfg.iters {
        // Forward finite differences on every free entry.
        let mut grad = [0f64; 64];
        for i in 1..64 {
            let mut probe = entries;
            probe[i] = (probe[i] + cfg.fd_delta).min(255.0);
            let step = probe[i] - entries[i];
            if step == 0.0 {
                continue;
            }
            let o = evaluate(&probe, &name, acts, cfg);
            grad[i] = (o - current) / step;
        }
        for i in 1..64 {
            entries[i] = (entries[i] - cfg.lr * grad[i]).clamp(1.0, 255.0);
        }
        current = evaluate(&entries, &name, acts, cfg);
        trajectory.push(current);
    }

    DqtOptResult {
        dqt: to_dqt(&entries, &name),
        trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jact_tensor::Shape;

    fn sample_acts() -> Vec<Tensor> {
        (0..3)
            .map(|s| {
                let shape = Shape::nchw(1, 4, 16, 16);
                let data = (0..shape.len())
                    .map(|i| {
                        let x = (i % 16) as f32;
                        let y = ((i / 16) % 16) as f32;
                        ((x * 0.2 + s as f32).sin() + (y * 0.35).cos()) * 0.7
                    })
                    .collect();
                Tensor::from_vec(shape, data)
            })
            .collect()
    }

    #[test]
    fn objective_decreases() {
        let acts = sample_acts();
        let cfg = DqtOptConfig {
            iters: 3,
            ..DqtOptConfig::opt_h()
        };
        let res = optimize(&acts, &Dqt::jpeg_quality(80), &cfg);
        let first = res.trajectory.first().copied().unwrap();
        let last = res.trajectory.last().copied().unwrap();
        assert!(
            last <= first + 1e-9,
            "objective went up: {first} -> {last} ({:?})",
            res.trajectory
        );
    }

    #[test]
    fn dc_entry_stays_pinned() {
        let acts = sample_acts();
        let cfg = DqtOptConfig {
            iters: 2,
            ..DqtOptConfig::opt_l()
        };
        let res = optimize(&acts, &Dqt::jpeg_quality(60), &cfg);
        assert_eq!(res.dqt.entry(0), 8);
    }

    #[test]
    fn higher_alpha_gives_lower_error_table() {
        // optL (alpha=0.025) must recover activations better than optH.
        let acts = sample_acts();
        let mk = |cfg: DqtOptConfig| {
            let cfg = DqtOptConfig { iters: 4, ..cfg };
            optimize(&acts, &Dqt::jpeg_quality(80), &cfg).dqt
        };
        let l = mk(DqtOptConfig::opt_l());
        let h = mk(DqtOptConfig::opt_h());
        let (el, eh): (f64, f64) = acts
            .iter()
            .map(|a| {
                let (_, e1) = rate_distortion(a, &l, QuantKind::Shift);
                let (_, e2) = rate_distortion(a, &h, QuantKind::Shift);
                (e1, e2)
            })
            .fold((0.0, 0.0), |(a, b), (c, d)| (a + c, b + d));
        assert!(el <= eh + 1e-9, "optL error {el} should be <= optH {eh}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_activations_panics() {
        let _ = optimize(&[], &Dqt::opt_l(), &DqtOptConfig::opt_l());
    }
}

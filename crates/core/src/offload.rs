//! The compressing offload activation store.
//!
//! [`OffloadStore`] implements `jact-dnn`'s
//! [`ActivationStore`](jact_dnn::act::ActivationStore): each `save`
//! compresses the activation with the codec Table II selects for its kind
//! (see [`Scheme::codec_for`]), modelling the forward-pass offload to CPU
//! memory; each `load` decompresses, modelling the backward-pass prefetch
//! — so all gradient computation downstream consumes the *recovered*
//! activation `x*` (Eqns. 6–8).
//!
//! Rank-2 activations (fully-connected inputs) are viewed as `[N, D, 1, 1]`
//! for codecs that require NCHW, and restored on load.

use crate::fault::{FaultConfig, FaultInjector, RecoveryPolicy};
use crate::method::Scheme;
use crate::stats::CompressionStats;
use jact_codec::pipeline::{Codec, CompressedActivation};
use jact_codec::wire;
use jact_dnn::act::{ActKind, ActivationId, ActivationStore, FaultReport};
use jact_dnn::error::NetError;
use jact_obs as obs;
use jact_par::Pool;
use jact_tensor::{Shape, Tensor};
use std::collections::{BTreeMap, BTreeSet};

/// Emits the offload save funnel for one compressed activation: the
/// store-wide byte totals plus a per-kind compressed-bytes counter, so a
/// trace can reproduce the Fig. 19 breakdown.  No-op without an open
/// capture.
fn note_save(kind: ActKind, uncompressed: usize, compressed: usize) {
    if !obs::is_active() {
        return;
    }
    obs::count("offload.saves", 1);
    obs::count("offload.bytes_in", uncompressed as u64);
    obs::count("offload.bytes_out", compressed as u64);
    obs::count(&format!("offload.{kind}.bytes_out"), compressed as u64);
}

/// Emits the wire-path counters for one load from the per-delivery
/// [`FaultReport`] delta, joined under the same names the report carries
/// so traces and `CompressionStats` totals line up one-to-one.
fn note_wire_load(frame_bytes: usize, d: &FaultReport) {
    if !obs::is_active() {
        return;
    }
    obs::count("wire.loads", d.wire_loads);
    obs::observe("wire.frame_bytes", frame_bytes as f64);
    for (name, v) in [
        ("wire.faults_injected", d.faults_injected),
        ("wire.corrupt_loads", d.corrupt_loads),
        ("wire.retried_loads", d.retried_loads),
        ("wire.recovered_loads", d.recovered_loads),
        ("wire.zero_filled_loads", d.zero_filled_loads),
    ] {
        if v > 0 {
            obs::count(name, v);
        }
    }
}

struct Entry {
    compressed: CompressedActivation,
    codec: Box<dyn Codec>,
    original_shape: Shape,
    /// Pristine serialized wire frame — the shadow copy redeliveries draw
    /// from.  Present only in `through_wire` mode.
    frame: Option<Vec<u8>>,
    /// Decompressed cache: a tensor may be consumed by several layers in
    /// one backward pass (aliased keys), and hardware would keep the
    /// prefetched copy in GPU memory for the same reason.
    cache: Option<Tensor>,
}

/// The fault-injectable transport a `through_wire` store loads over.
struct WireChannel {
    injector: FaultInjector,
    policy: RecoveryPolicy,
}

/// Why one load could not produce a tensor, before the activation id is
/// attached to form a [`NetError`].
enum LoadFailure {
    /// The payload could not be decoded (and the policy does not retry).
    Decode(String),
    /// The retry budget was exhausted after `attempts` deliveries.
    Exhausted {
        attempts: u32,
        last_error: String,
    },
}

impl LoadFailure {
    fn into_net_error(self, id: ActivationId) -> NetError {
        match self {
            LoadFailure::Decode(reason) => NetError::Store { id, reason },
            LoadFailure::Exhausted {
                attempts,
                last_error,
            } => NetError::RecoveryExhausted {
                id,
                attempts,
                last_error,
            },
        }
    }
}

/// Delivers `frame` through `injector`, decodes, and applies `policy` on
/// corruption, accumulating the six wire counters into `faults`.
///
/// Shared by the sequential [`ActivationStore::load`] (which passes the
/// store's cumulative counters and its one long-lived channel) and the
/// batched [`ActivationStore::load_batch`] (which passes a fresh
/// per-delivery channel and a zeroed delta merged in later).
fn wire_load(
    injector: &mut FaultInjector,
    policy: RecoveryPolicy,
    codec: &dyn Codec,
    frame: &[u8],
    original_shape: &Shape,
    faults: &mut FaultReport,
) -> Result<Tensor, LoadFailure> {
    let mut delta = FaultReport::default();
    let out = wire_load_counted(
        injector,
        policy,
        codec,
        frame,
        original_shape,
        &mut delta,
    );
    note_wire_load(frame.len(), &delta);
    faults.absorb(&delta);
    out
}

/// The uninstrumented body of [`wire_load`]: accumulates into a zeroed
/// per-delivery delta so the caller can both trace and merge it.
fn wire_load_counted(
    injector: &mut FaultInjector,
    policy: RecoveryPolicy,
    codec: &dyn Codec,
    frame: &[u8],
    original_shape: &Shape,
    faults: &mut FaultReport,
) -> Result<Tensor, LoadFailure> {
    faults.wire_loads += 1;
    let retries = match policy {
        RecoveryPolicy::Retry { attempts } => attempts,
        _ => 0,
    };
    let mut attempt = 0u32;
    let outcome = loop {
        if attempt > 0 {
            faults.retried_loads += 1;
        }
        let (rx, n) = injector.deliver(frame);
        faults.faults_injected += n;
        attempt += 1;
        match wire::deserialize(&rx).and_then(|c| codec.decompress(&c)) {
            Ok(t) => {
                if attempt > 1 {
                    faults.recovered_loads += 1;
                }
                break Ok(t);
            }
            Err(err) => {
                if attempt == 1 {
                    faults.corrupt_loads += 1;
                }
                if attempt > retries {
                    break Err(err);
                }
            }
        }
    };
    match outcome {
        Ok(t) => Ok(t),
        Err(err) => match policy {
            RecoveryPolicy::ZeroFill => {
                faults.recovered_loads += 1;
                faults.zero_filled_loads += 1;
                Ok(Tensor::zeros(original_shape.clone()))
            }
            RecoveryPolicy::Fail => Err(LoadFailure::Decode(err.to_string())),
            RecoveryPolicy::Retry { .. } => Err(LoadFailure::Exhausted {
                attempts: attempt,
                last_error: err.to_string(),
            }),
        },
    }
}

/// An [`ActivationStore`] that compresses on save / decompresses on load.
///
/// In the default mode, `load` decompresses the in-memory
/// [`CompressedActivation`] directly.  In [`through_wire`](Self::through_wire)
/// mode, every save additionally serializes the compressed activation into
/// a framed [`wire`] buffer, and every load round-trips that buffer
/// through a seeded [`FaultInjector`] and [`wire::deserialize`] — so the
/// full offload transport, including corruption detection (CRC32, bounds
/// checks) and the configured [`RecoveryPolicy`], is exercised on the
/// training path.
pub struct OffloadStore {
    scheme: Scheme,
    epoch: usize,
    entries: BTreeMap<ActivationId, Entry>,
    stats: CompressionStats,
    wire: Option<WireChannel>,
    /// Per-step sizes for footprint analyses: (kind, unc, comp).
    step_log: Vec<(ActKind, usize, usize)>,
}

impl OffloadStore {
    /// Creates a store for the given scheme.
    pub fn new(scheme: Scheme) -> Self {
        OffloadStore {
            scheme,
            epoch: 0,
            entries: BTreeMap::new(),
            stats: CompressionStats::new(),
            wire: None,
            step_log: Vec::new(),
        }
    }

    /// Creates a store that delivers every load through a fault-injected
    /// wire channel, recovering per `policy`.
    pub fn through_wire(scheme: Scheme, cfg: FaultConfig, policy: RecoveryPolicy) -> Self {
        let mut s = OffloadStore::new(scheme);
        s.enable_wire(cfg, policy);
        s
    }

    /// Switches an existing store into wire mode.  Entries saved before
    /// the switch have no serialized shadow frame and keep loading over
    /// the direct in-memory path.
    pub fn enable_wire(&mut self, cfg: FaultConfig, policy: RecoveryPolicy) {
        self.wire = Some(WireChannel {
            injector: FaultInjector::new(cfg),
            policy,
        });
    }

    /// `true` if loads go through the fault-injected wire path.
    pub fn wire_enabled(&self) -> bool {
        self.wire.is_some()
    }

    /// The recovery policy, when wire mode is on.
    pub fn recovery_policy(&self) -> Option<RecoveryPolicy> {
        self.wire.as_ref().map(|w| w.policy)
    }

    /// Sets the current epoch (drives piece-wise DQT schedules).
    pub fn set_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
    }

    /// The scheme in use.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Cumulative compression statistics across all saves.
    pub fn stats(&self) -> &CompressionStats {
        &self.stats
    }

    /// Resets the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Sizes recorded during the most recent step: `(kind, uncompressed,
    /// compressed)` per saved tensor — the data behind Fig. 19.
    pub fn step_log(&self) -> &[(ActKind, usize, usize)] {
        &self.step_log
    }

    /// Reshapes rank-2 `[N, D]` to `[N, D, 1, 1]` for NCHW-only codecs.
    fn to_rank4(x: &Tensor) -> Tensor {
        if x.shape().rank() == 4 {
            x.clone()
        } else if x.shape().rank() == 2 {
            let (n, d) = (x.shape().dim(0), x.shape().dim(1));
            x.reshape(Shape::nchw(n, d, 1, 1))
        } else {
            let len = x.len();
            x.reshape(Shape::nchw(1, len, 1, 1))
        }
    }
}

impl ActivationStore for OffloadStore {
    fn save(&mut self, id: ActivationId, kind: ActKind, x: &Tensor) {
        let x4 = Self::to_rank4(x);
        let codec = self.scheme.codec_for(kind, x4.shape(), self.epoch);
        let compressed = codec.compress(&x4);
        self.stats
            .record(kind, compressed.uncompressed_bytes(), compressed.compressed_bytes());
        self.step_log.push((
            kind,
            compressed.uncompressed_bytes(),
            compressed.compressed_bytes(),
        ));
        note_save(
            kind,
            compressed.uncompressed_bytes(),
            compressed.compressed_bytes(),
        );
        let frame = self.wire.as_ref().map(|_| wire::serialize(&compressed));
        if let Some(frame) = &frame {
            if obs::is_active() {
                obs::count("wire.frames", 1);
                obs::count("wire.frame_bytes_out", frame.len() as u64);
            }
        }
        self.entries.insert(
            id,
            Entry {
                compressed,
                codec,
                original_shape: x.shape().clone(),
                frame,
                cache: None,
            },
        );
    }

    fn load(&mut self, id: ActivationId) -> Result<Tensor, NetError> {
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(NetError::MissingActivation(id))?;
        if let Some(t) = &e.cache {
            if obs::is_active() {
                obs::count("offload.cache_hits", 1);
            }
            return Ok(t.clone());
        }
        if obs::is_active() {
            obs::count("offload.loads", 1);
        }
        let t = match (&mut self.wire, &e.frame) {
            (Some(ch), Some(frame)) => wire_load(
                &mut ch.injector,
                ch.policy,
                e.codec.as_ref(),
                frame,
                &e.original_shape,
                self.stats.faults_mut(),
            )
            .map_err(|f| f.into_net_error(id))?,
            _ => e
                .codec
                .decompress(&e.compressed)
                .map_err(|err| NetError::Store {
                    id,
                    reason: err.to_string(),
                })?,
        };
        let t = t.reshape(e.original_shape.clone());
        e.cache = Some(t.clone());
        Ok(t)
    }

    /// Compresses (and in wire mode serializes) all items concurrently on
    /// the current [`Pool`], then records statistics and inserts entries
    /// sequentially in item order — so the resulting store state is
    /// byte-identical to looping [`save`](ActivationStore::save),
    /// regardless of thread count.
    fn save_batch(&mut self, items: Vec<(ActivationId, ActKind, Tensor)>) {
        let wire_on = self.wire.is_some();
        // Codec selection consults the scheme's mutable schedule state, so
        // it stays sequential; the expensive transform is what fans out.
        let prepared: Vec<(ActivationId, ActKind, Shape, Box<dyn Codec>, Tensor)> = items
            .into_iter()
            .map(|(id, kind, x)| {
                let x4 = Self::to_rank4(&x);
                let codec = self.scheme.codec_for(kind, x4.shape(), self.epoch);
                (id, kind, x.shape().clone(), codec, x4)
            })
            .collect();
        let compressed: Vec<(CompressedActivation, Option<Vec<u8>>)> = Pool::current()
            .par_map_collect(&prepared, |_, (_, _, _, codec, x4)| {
                let c = codec.compress(x4);
                let frame = wire_on.then(|| wire::serialize(&c));
                (c, frame)
            });
        for ((id, kind, original_shape, codec, _), (compressed, frame)) in
            prepared.into_iter().zip(compressed)
        {
            self.stats.record(
                kind,
                compressed.uncompressed_bytes(),
                compressed.compressed_bytes(),
            );
            self.step_log.push((
                kind,
                compressed.uncompressed_bytes(),
                compressed.compressed_bytes(),
            ));
            note_save(
                kind,
                compressed.uncompressed_bytes(),
                compressed.compressed_bytes(),
            );
            if let Some(frame) = &frame {
                if obs::is_active() {
                    obs::count("wire.frames", 1);
                    obs::count("wire.frame_bytes_out", frame.len() as u64);
                }
            }
            self.entries.insert(
                id,
                Entry {
                    compressed,
                    codec,
                    original_shape,
                    frame,
                    cache: None,
                },
            );
        }
    }

    /// Decompresses all uncached ids concurrently on the current [`Pool`].
    ///
    /// In wire mode every id gets its own delivery channel derived by
    /// [`FaultConfig::for_delivery`] from the store's fault seed and the
    /// activation id, so the fault pattern each frame sees — and therefore
    /// every returned tensor and every counter — depends only on the
    /// configuration and the id, never on thread count or on the order
    /// deliveries happen to complete in.  Per-load counter deltas are
    /// merged into the cumulative [`CompressionStats`] in ascending id
    /// order.
    fn load_batch(&mut self, ids: &[ActivationId]) -> Result<Vec<Tensor>, NetError> {
        for &id in ids {
            if !self.entries.contains_key(&id) {
                return Err(NetError::MissingActivation(id));
            }
        }
        let requested: BTreeSet<ActivationId> = ids.iter().copied().collect();
        let wire_cfg: Option<(FaultConfig, RecoveryPolicy)> = self
            .wire
            .as_ref()
            .map(|ch| (*ch.injector.config(), ch.policy));
        // Decode every requested id that is not already cached.  The work
        // list borrows the entries immutably; all mutation happens after
        // the parallel region, in ascending id order.
        let outcomes: Vec<(ActivationId, Result<Tensor, LoadFailure>, FaultReport)> = {
            let work: Vec<(ActivationId, &Entry)> = self
                .entries
                .iter()
                .filter(|(id, e)| requested.contains(id) && e.cache.is_none())
                .map(|(&id, e)| (id, e))
                .collect();
            Pool::current().par_map_collect(&work, |_, &(id, entry)| {
                if obs::is_active() {
                    obs::count("offload.loads", 1);
                }
                let mut delta = FaultReport::default();
                let res = match (&wire_cfg, &entry.frame) {
                    (Some((cfg, policy)), Some(frame)) => {
                        let mut inj = FaultInjector::new(cfg.for_delivery(id));
                        wire_load(
                            &mut inj,
                            *policy,
                            entry.codec.as_ref(),
                            frame,
                            &entry.original_shape,
                            &mut delta,
                        )
                    }
                    _ => entry
                        .codec
                        .decompress(&entry.compressed)
                        .map_err(|err| LoadFailure::Decode(err.to_string())),
                };
                (id, res.map(|t| t.reshape(entry.original_shape.clone())), delta)
            })
        };
        let mut failures: BTreeMap<ActivationId, LoadFailure> = BTreeMap::new();
        for (id, res, delta) in outcomes {
            self.stats.faults_mut().absorb(&delta);
            match res {
                Ok(t) => {
                    if let Some(e) = self.entries.get_mut(&id) {
                        e.cache = Some(t);
                    }
                }
                Err(f) => {
                    failures.insert(id, f);
                }
            }
        }
        if !failures.is_empty() {
            for id in ids {
                if let Some(f) = failures.remove(id) {
                    return Err(f.into_net_error(*id));
                }
            }
        }
        ids.iter()
            .map(|&id| {
                self.entries
                    .get(&id)
                    .and_then(|e| e.cache.clone())
                    .ok_or(NetError::MissingActivation(id))
            })
            .collect()
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.step_log.clear();
    }

    fn fault_report(&self) -> FaultReport {
        *self.stats.faults()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(shape: Shape) -> Tensor {
        let data = (0..shape.len())
            .map(|i| ((i % 32) as f32 * 0.2).sin() + 0.3)
            .collect();
        Tensor::from_vec(shape, data)
    }

    fn sparse(shape: Shape) -> Tensor {
        let data = (0..shape.len())
            .map(|i| if i % 3 == 0 { (i % 11) as f32 * 0.1 } else { 0.0 })
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn vdnn_store_is_exact() {
        let mut s = OffloadStore::new(Scheme::vdnn());
        let x = smooth(Shape::nchw(2, 3, 8, 8));
        s.save(1, ActKind::Conv, &x);
        assert_eq!(s.load(1).unwrap(), x);
        assert_eq!(s.stats().overall_ratio(), 1.0);
    }

    #[test]
    fn jpeg_act_store_compresses_with_bounded_error() {
        let mut s = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        s.save(1, ActKind::Conv, &x);
        let rec = s.load(1).unwrap();
        assert!(x.mse(&rec) < 1e-2, "mse={}", x.mse(&rec));
        assert!(s.stats().overall_ratio() > 2.0);
    }

    #[test]
    fn rank2_roundtrip() {
        let mut s = OffloadStore::new(Scheme::sfpr());
        let x = smooth(Shape::mat(4, 64));
        s.save(2, ActKind::Linear, &x);
        let rec = s.load(2).unwrap();
        assert_eq!(rec.shape(), x.shape());
        // 8-bit quantization plus the intentional S=1.125 clipping of the
        // top of each channel's range.
        assert!(x.mse(&rec) < 2e-2, "mse={}", x.mse(&rec));
    }

    #[test]
    fn load_is_cached_and_repeatable() {
        let mut s = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        let x = smooth(Shape::nchw(1, 8, 8, 8));
        s.save(3, ActKind::Sum, &x);
        let a = s.load(3).unwrap();
        let b = s.load(3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn epoch_changes_dqt() {
        let mut s = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        let x = smooth(Shape::nchw(1, 8, 16, 16));
        s.save(1, ActKind::Conv, &x);
        let early = s.stats().total_compressed();
        s.clear();
        s.reset_stats();
        s.set_epoch(10);
        s.save(1, ActKind::Conv, &x);
        let late = s.stats().total_compressed();
        assert!(late < early, "optH ({late}) should beat optL ({early})");
    }

    #[test]
    fn brc_load_returns_binary_surrogate() {
        let mut s = OffloadStore::new(Scheme::gist());
        let x = sparse(Shape::nchw(1, 2, 8, 8));
        s.save(4, ActKind::ReluToOther, &x);
        let rec = s.load(4).unwrap();
        for (a, b) in x.iter().zip(rec.iter()) {
            assert_eq!(*a > 0.0, *b == 1.0);
        }
    }

    #[test]
    fn stats_accumulate_across_steps_but_log_resets() {
        let mut s = OffloadStore::new(Scheme::sfpr());
        let x = smooth(Shape::nchw(1, 2, 8, 8));
        s.save(1, ActKind::Conv, &x);
        s.clear();
        s.save(1, ActKind::Conv, &x);
        assert_eq!(s.step_log().len(), 1);
        let conv = s.stats().by_kind().next().unwrap().1;
        assert_eq!(conv.count, 2);
    }

    #[test]
    fn missing_id_is_a_typed_error() {
        let mut s = OffloadStore::new(Scheme::vdnn());
        assert_eq!(s.load(9).unwrap_err(), NetError::MissingActivation(9));
    }

    use crate::fault::{FaultConfig, FaultModel, RecoveryPolicy};

    #[test]
    fn wire_mode_without_faults_matches_direct_path() {
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        let mut direct = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        direct.save(1, ActKind::Conv, &x);
        let mut wired = OffloadStore::through_wire(
            Scheme::jpeg_act_opt_l5h(),
            FaultConfig::new(0.0, FaultModel::Mixed, 1),
            RecoveryPolicy::Fail,
        );
        wired.save(1, ActKind::Conv, &x);
        assert_eq!(direct.load(1).unwrap(), wired.load(1).unwrap());
        let f = wired.fault_report();
        assert_eq!(f.wire_loads, 1);
        assert_eq!(f.corrupt_loads, 0);
        assert_eq!(f.faults_injected, 0);
    }

    #[test]
    fn fail_policy_surfaces_corruption_as_store_error() {
        // Rate 0.05/byte over a multi-KiB frame: corruption is certain.
        let mut s = OffloadStore::through_wire(
            Scheme::sfpr(),
            FaultConfig::new(0.05, FaultModel::BitFlip, 2),
            RecoveryPolicy::Fail,
        );
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        s.save(1, ActKind::Conv, &x);
        match s.load(1) {
            Err(NetError::Store { id: 1, .. }) => {}
            other => panic!("expected Store error, got {other:?}"),
        }
        let f = s.fault_report();
        assert_eq!(f.corrupt_loads, 1);
        assert_eq!(f.recovered_loads, 0);
    }

    #[test]
    fn zero_fill_recovers_with_zero_tensor() {
        let mut s = OffloadStore::through_wire(
            Scheme::sfpr(),
            FaultConfig::new(0.05, FaultModel::BitFlip, 3),
            RecoveryPolicy::ZeroFill,
        );
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        s.save(1, ActKind::Conv, &x);
        let rec = s.load(1).unwrap();
        assert_eq!(rec.shape(), x.shape());
        assert!(rec.iter().all(|&v| v == 0.0));
        let f = s.fault_report();
        assert_eq!(f.corrupt_loads, 1);
        assert_eq!(f.recovered_loads, 1);
        assert_eq!(f.zero_filled_loads, 1);
    }

    #[test]
    fn retry_recovers_under_intermittent_faults() {
        // ~0.3 faults per delivery: most retries find a clean window.
        let mut s = OffloadStore::through_wire(
            Scheme::sfpr(),
            FaultConfig::new(0.3 / 2200.0, FaultModel::BitFlip, 4),
            RecoveryPolicy::Retry { attempts: 50 },
        );
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        let mut corrupt_seen = 0;
        for id in 0..20u64 {
            s.save(id, ActKind::Conv, &x);
            let rec = s.load(id).expect("retry budget ample");
            assert_eq!(rec.shape(), x.shape());
            // Recovered loads are real decodes, never zero-filled.
            assert!(rec.iter().any(|&v| v != 0.0));
            corrupt_seen = s.fault_report().corrupt_loads;
        }
        let f = s.fault_report();
        assert!(corrupt_seen > 0, "fault rate should corrupt some loads");
        assert_eq!(f.recovered_loads, f.corrupt_loads);
        assert!(f.retried_loads >= f.corrupt_loads);
        assert_eq!(f.zero_filled_loads, 0);
    }

    #[test]
    fn retry_exhaustion_is_typed() {
        // Heavy corruption with a tiny retry budget must exhaust.
        let mut s = OffloadStore::through_wire(
            Scheme::sfpr(),
            FaultConfig::new(0.05, FaultModel::BitFlip, 5),
            RecoveryPolicy::Retry { attempts: 2 },
        );
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        s.save(1, ActKind::Conv, &x);
        match s.load(1) {
            Err(NetError::RecoveryExhausted { id: 1, attempts: 3, .. }) => {}
            other => panic!("expected RecoveryExhausted, got {other:?}"),
        }
        assert_eq!(s.fault_report().retried_loads, 2);
    }

    #[test]
    fn wire_load_is_cached_like_direct_load() {
        let mut s = OffloadStore::through_wire(
            Scheme::vdnn(),
            FaultConfig::new(0.0, FaultModel::Mixed, 6),
            RecoveryPolicy::Fail,
        );
        let x = smooth(Shape::nchw(1, 2, 8, 8));
        s.save(1, ActKind::Conv, &x);
        let a = s.load(1).unwrap();
        let b = s.load(1).unwrap();
        assert_eq!(a, b);
        // Second load hit the cache, not the wire.
        assert_eq!(s.fault_report().wire_loads, 1);
    }

    #[test]
    fn enabling_wire_late_keeps_old_entries_loadable() {
        let mut s = OffloadStore::new(Scheme::sfpr());
        let x = smooth(Shape::nchw(1, 2, 8, 8));
        s.save(1, ActKind::Conv, &x);
        s.enable_wire(
            FaultConfig::new(0.05, FaultModel::BitFlip, 7),
            RecoveryPolicy::Fail,
        );
        assert!(s.wire_enabled());
        // Entry predates wire mode: no shadow frame, direct decode.
        assert!(s.load(1).is_ok());
        assert_eq!(s.fault_report().wire_loads, 0);
    }

    #[test]
    fn save_batch_matches_sequential_saves() {
        let items: Vec<(ActivationId, ActKind, Tensor)> = vec![
            (1, ActKind::Conv, smooth(Shape::nchw(2, 4, 16, 16))),
            (2, ActKind::ReluToOther, sparse(Shape::nchw(1, 4, 16, 16))),
            (3, ActKind::Linear, smooth(Shape::mat(4, 64))),
            (4, ActKind::Pool, smooth(Shape::nchw(1, 2, 8, 8))),
        ];
        let mut seq = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        for (id, kind, x) in &items {
            seq.save(*id, *kind, x);
        }
        for threads in [1usize, 2, 8] {
            let mut bat = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
            jact_par::with_threads(threads, || bat.save_batch(items.clone()));
            assert_eq!(bat.step_log(), seq.step_log(), "threads={threads}");
            assert_eq!(
                bat.stats().total_compressed(),
                seq.stats().total_compressed(),
                "threads={threads}"
            );
            for (id, _, _) in &items {
                assert_eq!(bat.load(*id).unwrap(), seq.load(*id).unwrap());
            }
        }
    }

    #[test]
    fn load_batch_matches_sequential_loads_direct_mode() {
        let mut s = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        let y = smooth(Shape::mat(4, 64));
        s.save(1, ActKind::Conv, &x);
        s.save(2, ActKind::Linear, &y);
        let a = s.load(1).unwrap();
        let b = s.load(2).unwrap();
        s.clear();
        s.save(1, ActKind::Conv, &x);
        s.save(2, ActKind::Linear, &y);
        for threads in [1usize, 2, 8] {
            let got =
                jact_par::with_threads(threads, || s.load_batch(&[2, 1, 2]).unwrap());
            assert_eq!(got, vec![b.clone(), a.clone(), b.clone()], "threads={threads}");
        }
    }

    #[test]
    fn wire_load_batch_is_thread_count_invariant() {
        // ZeroFill at a rate where some frames corrupt and some survive:
        // tensors and all six counters must be identical for any thread
        // count because each id's channel derives from (seed, id) alone.
        let run = |threads: usize| {
            let mut s = OffloadStore::through_wire(
                Scheme::sfpr(),
                FaultConfig::new(0.5 / 2200.0, FaultModel::Mixed, 21),
                RecoveryPolicy::ZeroFill,
            );
            let items: Vec<(ActivationId, ActKind, Tensor)> = (0..12u64)
                .map(|id| (id, ActKind::Conv, smooth(Shape::nchw(2, 4, 16, 16))))
                .collect();
            let ids: Vec<ActivationId> = items.iter().map(|(id, _, _)| *id).collect();
            jact_par::with_threads(threads, || {
                s.save_batch(items);
                let got = s.load_batch(&ids).unwrap();
                (got, s.fault_report())
            })
        };
        let (t1, f1) = run(1);
        for threads in [2usize, 8] {
            let (t, f) = run(threads);
            assert_eq!(t, t1, "tensors differ at threads={threads}");
            assert_eq!(f, f1, "fault counters differ at threads={threads}");
        }
        assert_eq!(f1.wire_loads, 12);
    }

    #[test]
    fn load_batch_error_is_first_failing_requested_id() {
        // Heavy corruption + Fail policy: every wire load fails; the
        // error must name the first id in *request* order.
        let mut s = OffloadStore::through_wire(
            Scheme::sfpr(),
            FaultConfig::new(0.05, FaultModel::BitFlip, 22),
            RecoveryPolicy::Fail,
        );
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        s.save(1, ActKind::Conv, &x);
        s.save(2, ActKind::Conv, &x);
        match s.load_batch(&[2, 1]) {
            Err(NetError::Store { id: 2, .. }) => {}
            other => panic!("expected Store error for id 2, got {other:?}"),
        }
    }

    #[test]
    fn load_batch_missing_id_reported_before_any_decode() {
        let mut s = OffloadStore::new(Scheme::vdnn());
        let x = smooth(Shape::nchw(1, 2, 8, 8));
        s.save(1, ActKind::Conv, &x);
        assert_eq!(
            s.load_batch(&[1, 9]).unwrap_err(),
            NetError::MissingActivation(9)
        );
        // The failed batch must not have consumed the cache path.
        assert!(s.load_batch(&[1]).is_ok());
    }

    #[test]
    fn load_batch_skips_cached_entries_on_the_wire() {
        let mut s = OffloadStore::through_wire(
            Scheme::vdnn(),
            FaultConfig::new(0.0, FaultModel::Mixed, 23),
            RecoveryPolicy::Fail,
        );
        let x = smooth(Shape::nchw(1, 2, 8, 8));
        s.save(1, ActKind::Conv, &x);
        s.save(2, ActKind::Conv, &x);
        let single = s.load(1).unwrap();
        let got = s.load_batch(&[1, 2]).unwrap();
        assert_eq!(got[0], single);
        // id 1 was cached by the single load: only id 2 crossed the wire
        // during the batch.
        assert_eq!(s.fault_report().wire_loads, 2);
    }

    #[test]
    fn trace_counters_join_fault_report_and_stats() {
        // The obs wire counters are emitted from the same per-delivery
        // deltas that feed the cumulative FaultReport, so the trace and
        // the report must agree exactly — as must the offload byte funnel
        // and CompressionStats.
        let ids: Vec<ActivationId> = (0..8u64).collect();
        let ((report, stats), trace) = obs::collect_with(false, || {
            let mut s = OffloadStore::through_wire(
                Scheme::sfpr(),
                FaultConfig::new(0.5 / 2200.0, FaultModel::Mixed, 21),
                RecoveryPolicy::ZeroFill,
            );
            let items: Vec<(ActivationId, ActKind, Tensor)> = ids
                .iter()
                .map(|&id| (id, ActKind::Conv, smooth(Shape::nchw(2, 4, 16, 16))))
                .collect();
            s.save_batch(items);
            s.load_batch(&ids).unwrap();
            (s.fault_report(), s.stats().clone())
        });
        let totals = trace.counter_totals();
        let total = |name: &str| totals.get(name).copied().unwrap_or(0);
        assert_eq!(total("offload.saves"), ids.len() as u64);
        assert_eq!(total("offload.loads"), ids.len() as u64);
        assert_eq!(total("offload.bytes_in"), stats.total_uncompressed());
        assert_eq!(total("offload.bytes_out"), stats.total_compressed());
        assert_eq!(total("wire.frames"), ids.len() as u64);
        assert_eq!(total("wire.loads"), report.wire_loads);
        assert_eq!(total("wire.faults_injected"), report.faults_injected);
        assert_eq!(total("wire.corrupt_loads"), report.corrupt_loads);
        assert_eq!(total("wire.retried_loads"), report.retried_loads);
        assert_eq!(total("wire.recovered_loads"), report.recovered_loads);
        assert_eq!(total("wire.zero_filled_loads"), report.zero_filled_loads);
        // Per-kind funnel: a conv-only run puts every byte under conv.
        assert_eq!(total("offload.conv.bytes_out"), stats.total_compressed());
    }

    #[test]
    fn wire_roundtrips_every_scheme_kind() {
        // Each scheme exercises different payload variants over the wire.
        for scheme in [
            Scheme::vdnn(),
            Scheme::cdma_plus(),
            Scheme::gist(),
            Scheme::sfpr(),
            Scheme::jpeg_base(75),
            Scheme::jpeg_act_opt_l5h(),
        ] {
            let mut s = OffloadStore::through_wire(
                scheme,
                FaultConfig::new(0.0, FaultModel::Mixed, 8),
                RecoveryPolicy::Fail,
            );
            let x = sparse(Shape::nchw(1, 4, 16, 16));
            for (id, kind) in [
                (1u64, ActKind::Conv),
                (2, ActKind::ReluToOther),
                (3, ActKind::Linear),
                (4, ActKind::Pool),
            ] {
                s.save(id, kind, &x);
                let rec = s.load(id).expect("fault-free wire load");
                assert_eq!(rec.shape(), x.shape());
            }
        }
    }
}

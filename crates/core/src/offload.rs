//! The compressing offload activation store.
//!
//! [`OffloadStore`] implements `jact-dnn`'s
//! [`ActivationStore`](jact_dnn::act::ActivationStore): each `save`
//! compresses the activation with the codec Table II selects for its kind
//! (see [`Scheme::codec_for`]), modelling the forward-pass offload to CPU
//! memory; each `load` decompresses, modelling the backward-pass prefetch
//! — so all gradient computation downstream consumes the *recovered*
//! activation `x*` (Eqns. 6–8).
//!
//! Rank-2 activations (fully-connected inputs) are viewed as `[N, D, 1, 1]`
//! for codecs that require NCHW, and restored on load.

use crate::method::Scheme;
use crate::stats::CompressionStats;
use jact_codec::pipeline::{Codec, CompressedActivation};
use jact_dnn::act::{ActKind, ActivationId, ActivationStore};
use jact_dnn::error::NetError;
use jact_tensor::{Shape, Tensor};
use std::collections::BTreeMap;

struct Entry {
    compressed: CompressedActivation,
    codec: Box<dyn Codec>,
    original_shape: Shape,
    /// Decompressed cache: a tensor may be consumed by several layers in
    /// one backward pass (aliased keys), and hardware would keep the
    /// prefetched copy in GPU memory for the same reason.
    cache: Option<Tensor>,
}

/// An [`ActivationStore`] that compresses on save / decompresses on load.
pub struct OffloadStore {
    scheme: Scheme,
    epoch: usize,
    entries: BTreeMap<ActivationId, Entry>,
    stats: CompressionStats,
    /// Per-step sizes for footprint analyses: (kind, unc, comp).
    step_log: Vec<(ActKind, usize, usize)>,
}

impl OffloadStore {
    /// Creates a store for the given scheme.
    pub fn new(scheme: Scheme) -> Self {
        OffloadStore {
            scheme,
            epoch: 0,
            entries: BTreeMap::new(),
            stats: CompressionStats::new(),
            step_log: Vec::new(),
        }
    }

    /// Sets the current epoch (drives piece-wise DQT schedules).
    pub fn set_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
    }

    /// The scheme in use.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Cumulative compression statistics across all saves.
    pub fn stats(&self) -> &CompressionStats {
        &self.stats
    }

    /// Resets the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Sizes recorded during the most recent step: `(kind, uncompressed,
    /// compressed)` per saved tensor — the data behind Fig. 19.
    pub fn step_log(&self) -> &[(ActKind, usize, usize)] {
        &self.step_log
    }

    /// Reshapes rank-2 `[N, D]` to `[N, D, 1, 1]` for NCHW-only codecs.
    fn to_rank4(x: &Tensor) -> Tensor {
        if x.shape().rank() == 4 {
            x.clone()
        } else if x.shape().rank() == 2 {
            let (n, d) = (x.shape().dim(0), x.shape().dim(1));
            x.reshape(Shape::nchw(n, d, 1, 1))
        } else {
            let len = x.len();
            x.reshape(Shape::nchw(1, len, 1, 1))
        }
    }
}

impl ActivationStore for OffloadStore {
    fn save(&mut self, id: ActivationId, kind: ActKind, x: &Tensor) {
        let x4 = Self::to_rank4(x);
        let codec = self.scheme.codec_for(kind, x4.shape(), self.epoch);
        let compressed = codec.compress(&x4);
        self.stats
            .record(kind, compressed.uncompressed_bytes(), compressed.compressed_bytes());
        self.step_log.push((
            kind,
            compressed.uncompressed_bytes(),
            compressed.compressed_bytes(),
        ));
        self.entries.insert(
            id,
            Entry {
                compressed,
                codec,
                original_shape: x.shape().clone(),
                cache: None,
            },
        );
    }

    fn load(&mut self, id: ActivationId) -> Result<Tensor, NetError> {
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(NetError::MissingActivation(id))?;
        match &e.cache {
            Some(t) => Ok(t.clone()),
            None => {
                let t = e
                    .codec
                    .decompress(&e.compressed)
                    .map_err(|err| NetError::Store {
                        id,
                        reason: err.to_string(),
                    })?
                    .reshape(e.original_shape.clone());
                e.cache = Some(t.clone());
                Ok(t)
            }
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.step_log.clear();
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(shape: Shape) -> Tensor {
        let data = (0..shape.len())
            .map(|i| ((i % 32) as f32 * 0.2).sin() + 0.3)
            .collect();
        Tensor::from_vec(shape, data)
    }

    fn sparse(shape: Shape) -> Tensor {
        let data = (0..shape.len())
            .map(|i| if i % 3 == 0 { (i % 11) as f32 * 0.1 } else { 0.0 })
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn vdnn_store_is_exact() {
        let mut s = OffloadStore::new(Scheme::vdnn());
        let x = smooth(Shape::nchw(2, 3, 8, 8));
        s.save(1, ActKind::Conv, &x);
        assert_eq!(s.load(1).unwrap(), x);
        assert_eq!(s.stats().overall_ratio(), 1.0);
    }

    #[test]
    fn jpeg_act_store_compresses_with_bounded_error() {
        let mut s = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        s.save(1, ActKind::Conv, &x);
        let rec = s.load(1).unwrap();
        assert!(x.mse(&rec) < 1e-2, "mse={}", x.mse(&rec));
        assert!(s.stats().overall_ratio() > 2.0);
    }

    #[test]
    fn rank2_roundtrip() {
        let mut s = OffloadStore::new(Scheme::sfpr());
        let x = smooth(Shape::mat(4, 64));
        s.save(2, ActKind::Linear, &x);
        let rec = s.load(2).unwrap();
        assert_eq!(rec.shape(), x.shape());
        // 8-bit quantization plus the intentional S=1.125 clipping of the
        // top of each channel's range.
        assert!(x.mse(&rec) < 2e-2, "mse={}", x.mse(&rec));
    }

    #[test]
    fn load_is_cached_and_repeatable() {
        let mut s = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        let x = smooth(Shape::nchw(1, 8, 8, 8));
        s.save(3, ActKind::Sum, &x);
        let a = s.load(3).unwrap();
        let b = s.load(3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn epoch_changes_dqt() {
        let mut s = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        let x = smooth(Shape::nchw(1, 8, 16, 16));
        s.save(1, ActKind::Conv, &x);
        let early = s.stats().total_compressed();
        s.clear();
        s.reset_stats();
        s.set_epoch(10);
        s.save(1, ActKind::Conv, &x);
        let late = s.stats().total_compressed();
        assert!(late < early, "optH ({late}) should beat optL ({early})");
    }

    #[test]
    fn brc_load_returns_binary_surrogate() {
        let mut s = OffloadStore::new(Scheme::gist());
        let x = sparse(Shape::nchw(1, 2, 8, 8));
        s.save(4, ActKind::ReluToOther, &x);
        let rec = s.load(4).unwrap();
        for (a, b) in x.iter().zip(rec.iter()) {
            assert_eq!(*a > 0.0, *b == 1.0);
        }
    }

    #[test]
    fn stats_accumulate_across_steps_but_log_resets() {
        let mut s = OffloadStore::new(Scheme::sfpr());
        let x = smooth(Shape::nchw(1, 2, 8, 8));
        s.save(1, ActKind::Conv, &x);
        s.clear();
        s.save(1, ActKind::Conv, &x);
        assert_eq!(s.step_log().len(), 1);
        let conv = s.stats().by_kind().next().unwrap().1;
        assert_eq!(conv.count, 2);
    }

    #[test]
    fn missing_id_is_a_typed_error() {
        let mut s = OffloadStore::new(Scheme::vdnn());
        assert_eq!(s.load(9).unwrap_err(), NetError::MissingActivation(9));
    }
}

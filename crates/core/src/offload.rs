//! The compressing offload activation store.
//!
//! [`OffloadStore`] implements `jact-dnn`'s
//! [`ActivationStore`](jact_dnn::act::ActivationStore): each `save`
//! compresses the activation with the codec Table II selects for its kind
//! (see [`Scheme::codec_for`]), modelling the forward-pass offload to CPU
//! memory; each `load` decompresses, modelling the backward-pass prefetch
//! — so all gradient computation downstream consumes the *recovered*
//! activation `x*` (Eqns. 6–8).
//!
//! Rank-2 activations (fully-connected inputs) are viewed as `[N, D, 1, 1]`
//! for codecs that require NCHW, and restored on load.

use crate::fault::{FaultConfig, FaultInjector, RecoveryPolicy};
use crate::method::Scheme;
use crate::stats::CompressionStats;
use jact_codec::pipeline::{Codec, CompressedActivation};
use jact_codec::wire;
use jact_dnn::act::{ActKind, ActivationId, ActivationStore, FaultReport};
use jact_dnn::error::NetError;
use jact_tensor::{Shape, Tensor};
use std::collections::BTreeMap;

struct Entry {
    compressed: CompressedActivation,
    codec: Box<dyn Codec>,
    original_shape: Shape,
    /// Pristine serialized wire frame — the shadow copy redeliveries draw
    /// from.  Present only in `through_wire` mode.
    frame: Option<Vec<u8>>,
    /// Decompressed cache: a tensor may be consumed by several layers in
    /// one backward pass (aliased keys), and hardware would keep the
    /// prefetched copy in GPU memory for the same reason.
    cache: Option<Tensor>,
}

/// The fault-injectable transport a `through_wire` store loads over.
struct WireChannel {
    injector: FaultInjector,
    policy: RecoveryPolicy,
}

/// An [`ActivationStore`] that compresses on save / decompresses on load.
///
/// In the default mode, `load` decompresses the in-memory
/// [`CompressedActivation`] directly.  In [`through_wire`](Self::through_wire)
/// mode, every save additionally serializes the compressed activation into
/// a framed [`wire`] buffer, and every load round-trips that buffer
/// through a seeded [`FaultInjector`] and [`wire::deserialize`] — so the
/// full offload transport, including corruption detection (CRC32, bounds
/// checks) and the configured [`RecoveryPolicy`], is exercised on the
/// training path.
pub struct OffloadStore {
    scheme: Scheme,
    epoch: usize,
    entries: BTreeMap<ActivationId, Entry>,
    stats: CompressionStats,
    wire: Option<WireChannel>,
    /// Per-step sizes for footprint analyses: (kind, unc, comp).
    step_log: Vec<(ActKind, usize, usize)>,
}

impl OffloadStore {
    /// Creates a store for the given scheme.
    pub fn new(scheme: Scheme) -> Self {
        OffloadStore {
            scheme,
            epoch: 0,
            entries: BTreeMap::new(),
            stats: CompressionStats::new(),
            wire: None,
            step_log: Vec::new(),
        }
    }

    /// Creates a store that delivers every load through a fault-injected
    /// wire channel, recovering per `policy`.
    pub fn through_wire(scheme: Scheme, cfg: FaultConfig, policy: RecoveryPolicy) -> Self {
        let mut s = OffloadStore::new(scheme);
        s.enable_wire(cfg, policy);
        s
    }

    /// Switches an existing store into wire mode.  Entries saved before
    /// the switch have no serialized shadow frame and keep loading over
    /// the direct in-memory path.
    pub fn enable_wire(&mut self, cfg: FaultConfig, policy: RecoveryPolicy) {
        self.wire = Some(WireChannel {
            injector: FaultInjector::new(cfg),
            policy,
        });
    }

    /// `true` if loads go through the fault-injected wire path.
    pub fn wire_enabled(&self) -> bool {
        self.wire.is_some()
    }

    /// The recovery policy, when wire mode is on.
    pub fn recovery_policy(&self) -> Option<RecoveryPolicy> {
        self.wire.as_ref().map(|w| w.policy)
    }

    /// Sets the current epoch (drives piece-wise DQT schedules).
    pub fn set_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
    }

    /// The scheme in use.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Cumulative compression statistics across all saves.
    pub fn stats(&self) -> &CompressionStats {
        &self.stats
    }

    /// Resets the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Sizes recorded during the most recent step: `(kind, uncompressed,
    /// compressed)` per saved tensor — the data behind Fig. 19.
    pub fn step_log(&self) -> &[(ActKind, usize, usize)] {
        &self.step_log
    }

    /// Reshapes rank-2 `[N, D]` to `[N, D, 1, 1]` for NCHW-only codecs.
    fn to_rank4(x: &Tensor) -> Tensor {
        if x.shape().rank() == 4 {
            x.clone()
        } else if x.shape().rank() == 2 {
            let (n, d) = (x.shape().dim(0), x.shape().dim(1));
            x.reshape(Shape::nchw(n, d, 1, 1))
        } else {
            let len = x.len();
            x.reshape(Shape::nchw(1, len, 1, 1))
        }
    }
}

impl ActivationStore for OffloadStore {
    fn save(&mut self, id: ActivationId, kind: ActKind, x: &Tensor) {
        let x4 = Self::to_rank4(x);
        let codec = self.scheme.codec_for(kind, x4.shape(), self.epoch);
        let compressed = codec.compress(&x4);
        self.stats
            .record(kind, compressed.uncompressed_bytes(), compressed.compressed_bytes());
        self.step_log.push((
            kind,
            compressed.uncompressed_bytes(),
            compressed.compressed_bytes(),
        ));
        let frame = self.wire.as_ref().map(|_| wire::serialize(&compressed));
        self.entries.insert(
            id,
            Entry {
                compressed,
                codec,
                original_shape: x.shape().clone(),
                frame,
                cache: None,
            },
        );
    }

    fn load(&mut self, id: ActivationId) -> Result<Tensor, NetError> {
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(NetError::MissingActivation(id))?;
        if let Some(t) = &e.cache {
            return Ok(t.clone());
        }
        let t = match (&mut self.wire, &e.frame) {
            (Some(ch), Some(frame)) => {
                let faults = self.stats.faults_mut();
                faults.wire_loads += 1;
                let retries = match ch.policy {
                    RecoveryPolicy::Retry { attempts } => attempts,
                    _ => 0,
                };
                let mut attempt = 0u32;
                let outcome = loop {
                    if attempt > 0 {
                        faults.retried_loads += 1;
                    }
                    let (rx, n) = ch.injector.deliver(frame);
                    faults.faults_injected += n;
                    attempt += 1;
                    match wire::deserialize(&rx).and_then(|c| e.codec.decompress(&c)) {
                        Ok(t) => {
                            if attempt > 1 {
                                faults.recovered_loads += 1;
                            }
                            break Ok(t);
                        }
                        Err(err) => {
                            if attempt == 1 {
                                faults.corrupt_loads += 1;
                            }
                            if attempt > retries {
                                break Err(err);
                            }
                        }
                    }
                };
                match outcome {
                    Ok(t) => t,
                    Err(err) => match ch.policy {
                        RecoveryPolicy::ZeroFill => {
                            faults.recovered_loads += 1;
                            faults.zero_filled_loads += 1;
                            Tensor::zeros(e.original_shape.clone())
                        }
                        RecoveryPolicy::Fail => {
                            return Err(NetError::Store {
                                id,
                                reason: err.to_string(),
                            })
                        }
                        RecoveryPolicy::Retry { .. } => {
                            return Err(NetError::RecoveryExhausted {
                                id,
                                attempts: attempt,
                                last_error: err.to_string(),
                            })
                        }
                    },
                }
            }
            _ => e
                .codec
                .decompress(&e.compressed)
                .map_err(|err| NetError::Store {
                    id,
                    reason: err.to_string(),
                })?,
        };
        let t = t.reshape(e.original_shape.clone());
        e.cache = Some(t.clone());
        Ok(t)
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.step_log.clear();
    }

    fn fault_report(&self) -> FaultReport {
        *self.stats.faults()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(shape: Shape) -> Tensor {
        let data = (0..shape.len())
            .map(|i| ((i % 32) as f32 * 0.2).sin() + 0.3)
            .collect();
        Tensor::from_vec(shape, data)
    }

    fn sparse(shape: Shape) -> Tensor {
        let data = (0..shape.len())
            .map(|i| if i % 3 == 0 { (i % 11) as f32 * 0.1 } else { 0.0 })
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn vdnn_store_is_exact() {
        let mut s = OffloadStore::new(Scheme::vdnn());
        let x = smooth(Shape::nchw(2, 3, 8, 8));
        s.save(1, ActKind::Conv, &x);
        assert_eq!(s.load(1).unwrap(), x);
        assert_eq!(s.stats().overall_ratio(), 1.0);
    }

    #[test]
    fn jpeg_act_store_compresses_with_bounded_error() {
        let mut s = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        s.save(1, ActKind::Conv, &x);
        let rec = s.load(1).unwrap();
        assert!(x.mse(&rec) < 1e-2, "mse={}", x.mse(&rec));
        assert!(s.stats().overall_ratio() > 2.0);
    }

    #[test]
    fn rank2_roundtrip() {
        let mut s = OffloadStore::new(Scheme::sfpr());
        let x = smooth(Shape::mat(4, 64));
        s.save(2, ActKind::Linear, &x);
        let rec = s.load(2).unwrap();
        assert_eq!(rec.shape(), x.shape());
        // 8-bit quantization plus the intentional S=1.125 clipping of the
        // top of each channel's range.
        assert!(x.mse(&rec) < 2e-2, "mse={}", x.mse(&rec));
    }

    #[test]
    fn load_is_cached_and_repeatable() {
        let mut s = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        let x = smooth(Shape::nchw(1, 8, 8, 8));
        s.save(3, ActKind::Sum, &x);
        let a = s.load(3).unwrap();
        let b = s.load(3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn epoch_changes_dqt() {
        let mut s = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        let x = smooth(Shape::nchw(1, 8, 16, 16));
        s.save(1, ActKind::Conv, &x);
        let early = s.stats().total_compressed();
        s.clear();
        s.reset_stats();
        s.set_epoch(10);
        s.save(1, ActKind::Conv, &x);
        let late = s.stats().total_compressed();
        assert!(late < early, "optH ({late}) should beat optL ({early})");
    }

    #[test]
    fn brc_load_returns_binary_surrogate() {
        let mut s = OffloadStore::new(Scheme::gist());
        let x = sparse(Shape::nchw(1, 2, 8, 8));
        s.save(4, ActKind::ReluToOther, &x);
        let rec = s.load(4).unwrap();
        for (a, b) in x.iter().zip(rec.iter()) {
            assert_eq!(*a > 0.0, *b == 1.0);
        }
    }

    #[test]
    fn stats_accumulate_across_steps_but_log_resets() {
        let mut s = OffloadStore::new(Scheme::sfpr());
        let x = smooth(Shape::nchw(1, 2, 8, 8));
        s.save(1, ActKind::Conv, &x);
        s.clear();
        s.save(1, ActKind::Conv, &x);
        assert_eq!(s.step_log().len(), 1);
        let conv = s.stats().by_kind().next().unwrap().1;
        assert_eq!(conv.count, 2);
    }

    #[test]
    fn missing_id_is_a_typed_error() {
        let mut s = OffloadStore::new(Scheme::vdnn());
        assert_eq!(s.load(9).unwrap_err(), NetError::MissingActivation(9));
    }

    use crate::fault::{FaultConfig, FaultModel, RecoveryPolicy};

    #[test]
    fn wire_mode_without_faults_matches_direct_path() {
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        let mut direct = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
        direct.save(1, ActKind::Conv, &x);
        let mut wired = OffloadStore::through_wire(
            Scheme::jpeg_act_opt_l5h(),
            FaultConfig::new(0.0, FaultModel::Mixed, 1),
            RecoveryPolicy::Fail,
        );
        wired.save(1, ActKind::Conv, &x);
        assert_eq!(direct.load(1).unwrap(), wired.load(1).unwrap());
        let f = wired.fault_report();
        assert_eq!(f.wire_loads, 1);
        assert_eq!(f.corrupt_loads, 0);
        assert_eq!(f.faults_injected, 0);
    }

    #[test]
    fn fail_policy_surfaces_corruption_as_store_error() {
        // Rate 0.05/byte over a multi-KiB frame: corruption is certain.
        let mut s = OffloadStore::through_wire(
            Scheme::sfpr(),
            FaultConfig::new(0.05, FaultModel::BitFlip, 2),
            RecoveryPolicy::Fail,
        );
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        s.save(1, ActKind::Conv, &x);
        match s.load(1) {
            Err(NetError::Store { id: 1, .. }) => {}
            other => panic!("expected Store error, got {other:?}"),
        }
        let f = s.fault_report();
        assert_eq!(f.corrupt_loads, 1);
        assert_eq!(f.recovered_loads, 0);
    }

    #[test]
    fn zero_fill_recovers_with_zero_tensor() {
        let mut s = OffloadStore::through_wire(
            Scheme::sfpr(),
            FaultConfig::new(0.05, FaultModel::BitFlip, 3),
            RecoveryPolicy::ZeroFill,
        );
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        s.save(1, ActKind::Conv, &x);
        let rec = s.load(1).unwrap();
        assert_eq!(rec.shape(), x.shape());
        assert!(rec.iter().all(|&v| v == 0.0));
        let f = s.fault_report();
        assert_eq!(f.corrupt_loads, 1);
        assert_eq!(f.recovered_loads, 1);
        assert_eq!(f.zero_filled_loads, 1);
    }

    #[test]
    fn retry_recovers_under_intermittent_faults() {
        // ~0.3 faults per delivery: most retries find a clean window.
        let mut s = OffloadStore::through_wire(
            Scheme::sfpr(),
            FaultConfig::new(0.3 / 2200.0, FaultModel::BitFlip, 4),
            RecoveryPolicy::Retry { attempts: 50 },
        );
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        let mut corrupt_seen = 0;
        for id in 0..20u64 {
            s.save(id, ActKind::Conv, &x);
            let rec = s.load(id).expect("retry budget ample");
            assert_eq!(rec.shape(), x.shape());
            // Recovered loads are real decodes, never zero-filled.
            assert!(rec.iter().any(|&v| v != 0.0));
            corrupt_seen = s.fault_report().corrupt_loads;
        }
        let f = s.fault_report();
        assert!(corrupt_seen > 0, "fault rate should corrupt some loads");
        assert_eq!(f.recovered_loads, f.corrupt_loads);
        assert!(f.retried_loads >= f.corrupt_loads);
        assert_eq!(f.zero_filled_loads, 0);
    }

    #[test]
    fn retry_exhaustion_is_typed() {
        // Heavy corruption with a tiny retry budget must exhaust.
        let mut s = OffloadStore::through_wire(
            Scheme::sfpr(),
            FaultConfig::new(0.05, FaultModel::BitFlip, 5),
            RecoveryPolicy::Retry { attempts: 2 },
        );
        let x = smooth(Shape::nchw(2, 4, 16, 16));
        s.save(1, ActKind::Conv, &x);
        match s.load(1) {
            Err(NetError::RecoveryExhausted { id: 1, attempts: 3, .. }) => {}
            other => panic!("expected RecoveryExhausted, got {other:?}"),
        }
        assert_eq!(s.fault_report().retried_loads, 2);
    }

    #[test]
    fn wire_load_is_cached_like_direct_load() {
        let mut s = OffloadStore::through_wire(
            Scheme::vdnn(),
            FaultConfig::new(0.0, FaultModel::Mixed, 6),
            RecoveryPolicy::Fail,
        );
        let x = smooth(Shape::nchw(1, 2, 8, 8));
        s.save(1, ActKind::Conv, &x);
        let a = s.load(1).unwrap();
        let b = s.load(1).unwrap();
        assert_eq!(a, b);
        // Second load hit the cache, not the wire.
        assert_eq!(s.fault_report().wire_loads, 1);
    }

    #[test]
    fn enabling_wire_late_keeps_old_entries_loadable() {
        let mut s = OffloadStore::new(Scheme::sfpr());
        let x = smooth(Shape::nchw(1, 2, 8, 8));
        s.save(1, ActKind::Conv, &x);
        s.enable_wire(
            FaultConfig::new(0.05, FaultModel::BitFlip, 7),
            RecoveryPolicy::Fail,
        );
        assert!(s.wire_enabled());
        // Entry predates wire mode: no shadow frame, direct decode.
        assert!(s.load(1).is_ok());
        assert_eq!(s.fault_report().wire_loads, 0);
    }

    #[test]
    fn wire_roundtrips_every_scheme_kind() {
        // Each scheme exercises different payload variants over the wire.
        for scheme in [
            Scheme::vdnn(),
            Scheme::cdma_plus(),
            Scheme::gist(),
            Scheme::sfpr(),
            Scheme::jpeg_base(75),
            Scheme::jpeg_act_opt_l5h(),
        ] {
            let mut s = OffloadStore::through_wire(
                scheme,
                FaultConfig::new(0.0, FaultModel::Mixed, 8),
                RecoveryPolicy::Fail,
            );
            let x = sparse(Shape::nchw(1, 4, 16, 16));
            for (id, kind) in [
                (1u64, ActKind::Conv),
                (2, ActKind::ReluToOther),
                (3, ActKind::Linear),
                (4, ActKind::Pool),
            ] {
                s.save(id, kind, &x);
                let rec = s.load(id).expect("fault-free wire load");
                assert_eq!(rec.shape(), x.shape());
            }
        }
    }
}

//! Rate/distortion metrics (Sec. IV) and the entropy analyses behind
//! Figs. 2 and 6.

use jact_codec::block::to_blocks_f32;
use jact_codec::dct::dct2d;
use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{Codec, CoderKind, JpegCodec};
use jact_codec::quant::QuantKind;
use jact_tensor::Tensor;

/// Normalizing scaling factor λ1 of the objective (Eqn. 12).
pub const LAMBDA_1: f64 = 10.0;
/// Normalizing scaling factor λ2 of the objective (Eqn. 12).
pub const LAMBDA_2: f64 = 10_000.0;

/// Shannon entropy in bits per symbol of a stream of `i8` values
/// (Eqn. 11) — the minimum bits required per quantized activation.
pub fn shannon_entropy_i8(values: impl IntoIterator<Item = i8>) -> f64 {
    let mut counts = [0u64; 256];
    let mut total = 0u64;
    for v in values {
        counts[(v as u8) as usize] += 1;
        total += 1;
    }
    if total == 0 {
        return 0.0;
    }
    let mut h = 0.0f64;
    for &c in &counts {
        if c > 0 {
            let p = c as f64 / total as f64;
            h -= p * p.log2();
        }
    }
    h
}

/// Per-element L2 error of a recovered activation (Eqn. 10):
/// `L2 = ||x − x*|| / (N·C·H·W)`.
pub fn recovered_l2(x: &Tensor, recovered: &Tensor) -> f64 {
    x.l2_distance(recovered) / x.len() as f64
}

/// The rate/distortion objective (Eqn. 12):
/// `O = (1 − α)·λ1·H + α·λ2·L2`.
pub fn objective(entropy_bits: f64, l2: f64, alpha: f64) -> f64 {
    (1.0 - alpha) * LAMBDA_1 * entropy_bits + alpha * LAMBDA_2 * l2
}

/// Evaluates one JPEG pipeline configuration on an activation, returning
/// `(entropy H of the quantized coefficients, recovered L2 error)` — the
/// two measurements the DQT optimizer trades off (Fig. 9).
pub fn rate_distortion(x: &Tensor, dqt: &Dqt, quant: QuantKind) -> (f64, f64) {
    let codec = JpegCodec::new(dqt.clone(), quant, CoderKind::Zvc);
    let blocks = codec.quantized_blocks(x);
    let h = shannon_entropy_i8(blocks.iter().flatten().copied());
    let rec = codec
        .decompress(&codec.compress(x))
        .expect("payload produced by the same codec");
    (h, recovered_l2(x, &rec))
}

/// Shannon entropy in bits per symbol of real values quantized with a
/// fixed step size (unbounded alphabet).
pub fn shannon_entropy_quantized(values: impl IntoIterator<Item = f32>, step: f32) -> f64 {
    assert!(step > 0.0, "quantization step must be positive");
    // BTreeMap keeps bin iteration deterministic (entropy itself is
    // order-independent, but the workspace bans hash containers outright).
    let mut counts: std::collections::BTreeMap<i64, u64> = std::collections::BTreeMap::new();
    let mut total = 0u64;
    for v in values {
        let bin = (v / step).round() as i64;
        *counts.entry(bin).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return 0.0;
    }
    let mut h = 0.0f64;
    for &c in counts.values() {
        let p = c as f64 / total as f64;
        h -= p * p.log2();
    }
    h
}

/// Spatial- and frequency-domain Shannon entropy of an activation
/// (Figs. 2 and 6).
///
/// Both domains are quantized with the **same step size** (the spatial
/// plane's max over 127 levels), so the entropies are directly
/// comparable: the orthonormal DCT preserves energy, and for
/// spatially-correlated data it concentrates that energy into few large
/// coefficients — many near-zero bins, lower entropy.  For white noise
/// the transform is just a rotation of an iid vector and no compaction
/// occurs.
pub fn spatial_frequency_entropy(x: &Tensor) -> (f64, f64) {
    let max = x.max_abs().max(1e-12);
    let step = max / 127.0;

    let h_spatial = shannon_entropy_quantized(x.iter().copied(), step);

    let blocks = to_blocks_f32(x.as_slice(), x.shape());
    let mut freq_syms: Vec<f32> = Vec::with_capacity(blocks.len() * 64);
    for b in &blocks {
        let mut blk = *b;
        dct2d(&mut blk);
        freq_syms.extend_from_slice(&blk);
    }
    let h_freq = shannon_entropy_quantized(freq_syms, step);
    (h_spatial, h_freq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jact_tensor::Shape;

    #[test]
    fn entropy_of_constant_is_zero() {
        assert_eq!(shannon_entropy_i8(vec![7i8; 100]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_256_is_8_bits() {
        let vals: Vec<i8> = (0..=255u8).map(|b| b as i8).collect();
        let h = shannon_entropy_i8(vals);
        assert!((h - 8.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_of_two_symbols_is_one_bit() {
        let vals: Vec<i8> = (0..100).map(|i| if i % 2 == 0 { 0 } else { 1 }).collect();
        assert!((shannon_entropy_i8(vals) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_entropy_is_zero() {
        assert_eq!(shannon_entropy_i8(Vec::<i8>::new()), 0.0);
    }

    #[test]
    fn recovered_l2_basics() {
        let a = Tensor::full(Shape::vec(4), 1.0);
        let b = Tensor::full(Shape::vec(4), 0.0);
        assert_eq!(recovered_l2(&a, &a), 0.0);
        assert_eq!(recovered_l2(&a, &b), 2.0 / 4.0);
    }

    #[test]
    fn objective_tradeoff_direction() {
        // Higher alpha weights error more.
        let low_alpha = objective(4.0, 0.01, 0.005);
        let high_alpha = objective(4.0, 0.01, 0.5);
        assert!(high_alpha > low_alpha);
    }

    fn smooth_activation() -> Tensor {
        let shape = Shape::nchw(2, 4, 16, 16);
        let data = (0..shape.len())
            .map(|i| {
                let x = (i % 16) as f32;
                let y = ((i / 16) % 16) as f32;
                ((x * 0.25).sin() + (y * 0.3).cos()) * 0.8
            })
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn smooth_data_has_lower_frequency_entropy() {
        // The paper's Fig. 2/6 claim: spatially-correlated activations are
        // more compact in the frequency domain.
        let x = smooth_activation();
        let (hs, hf) = spatial_frequency_entropy(&x);
        assert!(hf < hs, "H_freq={hf} should be < H_spatial={hs}");
    }

    #[test]
    fn noise_has_no_frequency_advantage() {
        // White noise: the DCT cannot compact it.
        use jact_rng::{Rng, SeedableRng};
        let mut rng = jact_rng::rngs::StdRng::seed_from_u64(99);
        let shape = Shape::nchw(1, 4, 16, 16);
        let data = (0..shape.len())
            .map(|_| rng.gen_range(-0.5f32..0.5))
            .collect();
        let x = Tensor::from_vec(shape, data);
        let (hs, hf) = spatial_frequency_entropy(&x);
        assert!(hf > hs - 0.5, "noise: H_freq={hf} H_spatial={hs}");
    }

    #[test]
    fn rate_distortion_orders_dqts() {
        let x = smooth_activation();
        let (h_l, e_l) = rate_distortion(&x, &Dqt::opt_l(), QuantKind::Shift);
        let (h_h, e_h) = rate_distortion(&x, &Dqt::opt_h(), QuantKind::Shift);
        assert!(h_h < h_l, "optH entropy {h_h} should be < optL {h_l}");
        assert!(e_h >= e_l, "optH error {e_h} should be >= optL {e_l}");
    }
}

//! Deterministic fault injection for the offload wire path.
//!
//! The offload transport in a real JPEG-ACT deployment is a DMA engine
//! moving compressed frames over PCIe; this module models that link as a
//! lossy channel so the rest of the stack can be tested under corruption.
//! A [`FaultInjector`] is a seeded, reproducible channel: it delivers a
//! serialized [`wire`](jact_codec::wire) frame with a configurable
//! expected number of faults per byte, drawn from a [`FaultModel`] mix of
//! bit flips, stuck-at-zero regions, truncations, and packet-level
//! duplication or drop (packets are the 128 B DMA granularity of
//! [`stream`](jact_codec::stream)).
//!
//! What happens when a corrupted frame is detected is decided by a
//! [`RecoveryPolicy`], consulted by
//! [`OffloadStore`](crate::offload::OffloadStore) when a wire load fails
//! to decode.

use jact_rng::rngs::StdRng;
use jact_rng::{Rng, SeedableRng};

/// DMA packet granularity for packet-level faults, matching the 128 B
/// packets of `jact_codec::stream`.
pub const PACKET_BYTES: usize = 128;

/// Longest stuck-at-zero run a single fault can produce, in bytes.
pub const MAX_STUCK_RUN: usize = 64;

/// One concrete transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// One random bit inverted.
    BitFlip,
    /// A short region forced to zero (stuck data lines).
    StuckZero,
    /// The frame cut short at a random offset.
    Truncate,
    /// One 128 B packet delivered twice.
    DuplicatePacket,
    /// One 128 B packet lost entirely.
    PacketDrop,
}

/// The fault mix a channel draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultModel {
    /// Only bit flips.
    BitFlip,
    /// Only stuck-at-zero regions.
    StuckZero,
    /// Only truncations.
    Truncate,
    /// Only duplicated packets.
    DuplicatePacket,
    /// Only dropped packets.
    PacketDrop,
    /// A weighted mixture: 60 % bit flips, 15 % stuck-at-zero, 10 %
    /// truncations, 10 % duplicated packets, 5 % dropped packets —
    /// single-bit upsets dominating, whole-packet loss rare.
    Mixed,
}

impl FaultModel {
    /// Draws one concrete fault kind from the mix.
    fn draw(&self, rng: &mut StdRng) -> FaultKind {
        match self {
            FaultModel::BitFlip => FaultKind::BitFlip,
            FaultModel::StuckZero => FaultKind::StuckZero,
            FaultModel::Truncate => FaultKind::Truncate,
            FaultModel::DuplicatePacket => FaultKind::DuplicatePacket,
            FaultModel::PacketDrop => FaultKind::PacketDrop,
            FaultModel::Mixed => {
                let r = rng.gen_range(0..100u32);
                if r < 60 {
                    FaultKind::BitFlip
                } else if r < 75 {
                    FaultKind::StuckZero
                } else if r < 85 {
                    FaultKind::Truncate
                } else if r < 95 {
                    FaultKind::DuplicatePacket
                } else {
                    FaultKind::PacketDrop
                }
            }
        }
    }
}

/// Configuration of a fault channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Expected faults per delivered **byte** (so a 16 KiB frame at
    /// `rate = 1e-3` sees ~16 faults per delivery; at `1e-6`, one fault
    /// every ~60 frames).
    pub rate: f64,
    /// The fault mix.
    pub model: FaultModel,
    /// Seed for the channel's deterministic RNG.
    pub seed: u64,
}

impl FaultConfig {
    /// Creates a configuration.
    pub fn new(rate: f64, model: FaultModel, seed: u64) -> Self {
        FaultConfig { rate, model, seed }
    }

    /// Derives the per-delivery channel configuration for one keyed
    /// delivery stream (e.g. one activation id in a batched load).
    ///
    /// Batched loads deliver frames concurrently, so they cannot share
    /// the store's single sequential [`FaultInjector`] without making the
    /// fault pattern depend on scheduling order.  Instead each delivery
    /// stream gets its own child channel whose seed is a SplitMix64
    /// expansion of `(self.seed, key)` — fully determined by the
    /// configuration and the key, independent of thread count and of the
    /// order loads are issued in.
    pub fn for_delivery(&self, key: u64) -> FaultConfig {
        let mut sm = jact_rng::SplitMix64::new(self.seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        FaultConfig {
            rate: self.rate,
            model: self.model,
            seed: sm.next_u64(),
        }
    }
}

/// What the store does when a wire load is detected as corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Surface the decode error to the trainer.
    Fail,
    /// Redeliver from the pristine shadow copy up to `attempts` more
    /// times (each redelivery draws fresh faults), then fail.
    Retry {
        /// Maximum redeliveries after the initial corrupt one.
        attempts: u32,
    },
    /// Replace the activation with an all-zero tensor of the original
    /// shape and keep training (recorded as a zero-filled recovery).
    ZeroFill,
}

/// A deterministic lossy delivery channel for serialized frames.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
    injected: u64,
}

impl FaultInjector {
    /// Creates a channel seeded from `cfg.seed`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            injected: 0,
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Total individual faults applied across all deliveries.
    pub fn faults_injected(&self) -> u64 {
        self.injected
    }

    /// Delivers `frame` through the channel: returns the received copy
    /// and the number of faults applied to it.  The fault count is
    /// Poisson-distributed with mean `rate · len` — faults are
    /// independent rare events per byte, so a clean delivery always has
    /// probability `e^(-rate·len) > 0` and a retry policy can make
    /// progress at any fault rate.
    pub fn deliver(&mut self, frame: &[u8]) -> (Vec<u8>, u64) {
        let mut out = frame.to_vec();
        let n = Self::poisson(&mut self.rng, self.cfg.rate * frame.len() as f64);
        let mut applied = 0u64;
        for _ in 0..n {
            if self.apply_one(&mut out) {
                applied += 1;
            }
        }
        self.injected += applied;
        (out, applied)
    }

    /// One Poisson draw with mean `lambda`: Knuth's product-of-uniforms
    /// method for small means, a normal approximation above 30 (where
    /// `e^(-lambda)` underflow would bias Knuth's method).
    fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let n = lambda + lambda.sqrt() * rng.sample_normal_f32() as f64;
            return n.round().max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Applies one fault in place; returns `false` if the buffer has
    /// shrunk to nothing (earlier truncations/drops) and no fault can
    /// land.
    fn apply_one(&mut self, buf: &mut Vec<u8>) -> bool {
        if buf.is_empty() {
            return false;
        }
        match self.cfg.model.draw(&mut self.rng) {
            FaultKind::BitFlip => {
                let i = self.rng.gen_range(0..buf.len());
                let bit = self.rng.gen_range(0..8u32);
                buf[i] ^= 1 << bit;
            }
            FaultKind::StuckZero => {
                let start = self.rng.gen_range(0..buf.len());
                let max_run = MAX_STUCK_RUN.min(buf.len() - start);
                let run = self.rng.gen_range(0..max_run) + 1;
                for b in &mut buf[start..start + run] {
                    *b = 0;
                }
            }
            FaultKind::Truncate => {
                let keep = self.rng.gen_range(0..buf.len());
                buf.truncate(keep);
            }
            FaultKind::DuplicatePacket => {
                let packets = buf.len().div_ceil(PACKET_BYTES);
                let p = self.rng.gen_range(0..packets);
                let start = p * PACKET_BYTES;
                let end = (start + PACKET_BYTES).min(buf.len());
                let copy: Vec<u8> = buf[start..end].to_vec();
                // Re-delivered packet lands immediately after the original.
                buf.splice(end..end, copy);
            }
            FaultKind::PacketDrop => {
                let packets = buf.len().div_ceil(PACKET_BYTES);
                let p = self.rng.gen_range(0..packets);
                let start = p * PACKET_BYTES;
                let end = (start + PACKET_BYTES).min(buf.len());
                buf.drain(start..end);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn zero_rate_is_identity() {
        let mut inj = FaultInjector::new(FaultConfig::new(0.0, FaultModel::Mixed, 7));
        let f = frame(4096);
        let (out, n) = inj.deliver(&f);
        assert_eq!(out, f);
        assert_eq!(n, 0);
        assert_eq!(inj.faults_injected(), 0);
    }

    #[test]
    fn same_seed_same_faults() {
        let cfg = FaultConfig::new(1e-3, FaultModel::Mixed, 42);
        let f = frame(8192);
        let (a, na) = FaultInjector::new(cfg).deliver(&f);
        let (b, nb) = FaultInjector::new(cfg).deliver(&f);
        assert_eq!(a, b);
        assert_eq!(na, nb);
        assert!(na > 0, "1e-3 over 8 KiB should fault");
    }

    #[test]
    fn for_delivery_is_deterministic_and_key_separated() {
        let cfg = FaultConfig::new(1e-3, FaultModel::Mixed, 42);
        // Same (config, key) → same child config, every time.
        assert_eq!(cfg.for_delivery(7), cfg.for_delivery(7));
        // Different keys → decorrelated child seeds.
        assert_ne!(cfg.for_delivery(7).seed, cfg.for_delivery(8).seed);
        // Rate and model pass through unchanged.
        let child = cfg.for_delivery(7);
        assert_eq!(child.rate, cfg.rate);
        assert_eq!(child.model, cfg.model);
        // Key 0 does not collapse onto the parent seed.
        assert_ne!(cfg.for_delivery(0).seed, cfg.seed);
    }

    #[test]
    fn different_seeds_differ() {
        let f = frame(8192);
        let (a, _) =
            FaultInjector::new(FaultConfig::new(1e-3, FaultModel::BitFlip, 1)).deliver(&f);
        let (b, _) =
            FaultInjector::new(FaultConfig::new(1e-3, FaultModel::BitFlip, 2)).deliver(&f);
        assert_ne!(a, b);
    }

    #[test]
    fn rate_matches_expectation() {
        // 1e-3 per byte over 200 deliveries of 4 KiB: expect ~819 faults.
        let mut inj = FaultInjector::new(FaultConfig::new(1e-3, FaultModel::BitFlip, 9));
        let f = frame(4096);
        for _ in 0..200 {
            inj.deliver(&f);
        }
        let got = inj.faults_injected() as f64;
        let expect = 1e-3 * 4096.0 * 200.0;
        assert!(
            (got - expect).abs() < expect * 0.25,
            "expected ~{expect}, got {got}"
        );
    }

    #[test]
    fn clean_deliveries_remain_possible_at_high_mean() {
        // Mean 2 faults per delivery: a clean window still arrives with
        // probability e^-2 ~ 0.135, which is what lets Retry make
        // progress at any rate.
        let f = frame(4096);
        let mut inj =
            FaultInjector::new(FaultConfig::new(2.0 / 4096.0, FaultModel::BitFlip, 12));
        let clean = (0..200)
            .filter(|_| {
                let (out, n) = inj.deliver(&f);
                n == 0 && out == f
            })
            .count();
        assert!(clean > 5, "expected ~27 clean of 200, got {clean}");
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mut inj = FaultInjector::new(FaultConfig::new(0.0, FaultModel::BitFlip, 3));
        let f = frame(256);
        let mut out = f.clone();
        assert!(inj.apply_one(&mut out));
        let flipped: u32 = f
            .iter()
            .zip(&out)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn truncate_shortens() {
        let mut inj = FaultInjector::new(FaultConfig::new(0.0, FaultModel::Truncate, 4));
        let mut out = frame(512);
        assert!(inj.apply_one(&mut out));
        assert!(out.len() < 512);
    }

    #[test]
    fn duplicate_grows_by_at_most_one_packet() {
        let mut inj =
            FaultInjector::new(FaultConfig::new(0.0, FaultModel::DuplicatePacket, 5));
        let mut out = frame(1000);
        assert!(inj.apply_one(&mut out));
        assert!(out.len() > 1000 && out.len() <= 1000 + PACKET_BYTES);
    }

    #[test]
    fn drop_shrinks_by_at_most_one_packet() {
        let mut inj = FaultInjector::new(FaultConfig::new(0.0, FaultModel::PacketDrop, 6));
        let mut out = frame(1000);
        assert!(inj.apply_one(&mut out));
        assert!(out.len() < 1000 && out.len() >= 1000 - PACKET_BYTES);
    }

    #[test]
    fn stuck_zero_zeroes_a_bounded_run() {
        let mut inj = FaultInjector::new(FaultConfig::new(0.0, FaultModel::StuckZero, 8));
        let f = vec![0xFFu8; 512];
        let mut out = f.clone();
        assert!(inj.apply_one(&mut out));
        let zeros = out.iter().filter(|&&b| b == 0).count();
        assert!(zeros >= 1 && zeros <= MAX_STUCK_RUN, "zeros={zeros}");
        // The zeroed bytes are contiguous.
        let first = out.iter().position(|&b| b == 0).unwrap();
        let last = out.iter().rposition(|&b| b == 0).unwrap();
        assert_eq!(last - first + 1, zeros);
    }

    #[test]
    fn empty_and_exhausted_buffers_never_panic() {
        for model in [
            FaultModel::BitFlip,
            FaultModel::StuckZero,
            FaultModel::Truncate,
            FaultModel::DuplicatePacket,
            FaultModel::PacketDrop,
            FaultModel::Mixed,
        ] {
            let mut inj = FaultInjector::new(FaultConfig::new(1.0, model, 11));
            let (out, n) = inj.deliver(&[]);
            assert!(out.is_empty());
            assert_eq!(n, 0);
            // A huge rate on a tiny frame exercises repeated faulting of
            // a shrinking (possibly emptied) buffer.
            let _ = inj.deliver(&frame(3));
        }
    }

    #[test]
    fn mixed_model_draws_every_kind() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            match FaultModel::Mixed.draw(&mut rng) {
                FaultKind::BitFlip => seen[0] = true,
                FaultKind::StuckZero => seen[1] = true,
                FaultKind::Truncate => seen[2] = true,
                FaultKind::DuplicatePacket => seen[3] = true,
                FaultKind::PacketDrop => seen[4] = true,
            }
        }
        assert!(seen.iter().all(|&s| s), "seen={seen:?}");
    }
}

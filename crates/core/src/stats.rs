//! Compression accounting, broken down by activation type (Fig. 19),
//! plus wire-fault counters for stores delivering loads through the
//! fault-injectable transport.

use jact_dnn::act::{ActKind, FaultReport};
use std::collections::BTreeMap;

/// Cumulative compression statistics across saves.
#[derive(Debug, Clone, Default)]
pub struct CompressionStats {
    per_kind: BTreeMap<String, KindStats>,
    faults: FaultReport,
}

/// Byte totals for one activation kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct KindStats {
    /// Uncompressed bytes saved.
    pub uncompressed: u64,
    /// Compressed bytes produced.
    pub compressed: u64,
    /// Number of tensors.
    pub count: u64,
}

impl KindStats {
    /// Compression ratio for this kind.  Degenerate totals — nothing
    /// recorded yet, or a zero-byte side — report 1.0 so aggregates over
    /// many stores stay finite and an empty store reads as "no change".
    pub fn ratio(&self) -> f64 {
        if self.uncompressed == 0 || self.compressed == 0 {
            1.0
        } else {
            self.uncompressed as f64 / self.compressed as f64
        }
    }
}

impl CompressionStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one compressed activation.
    pub fn record(&mut self, kind: ActKind, uncompressed: usize, compressed: usize) {
        let e = self.per_kind.entry(kind.to_string()).or_default();
        e.uncompressed += uncompressed as u64;
        e.compressed += compressed as u64;
        e.count += 1;
    }

    /// Per-kind breakdown, sorted by kind name.
    pub fn by_kind(&self) -> impl Iterator<Item = (&str, &KindStats)> {
        self.per_kind.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total uncompressed bytes.
    pub fn total_uncompressed(&self) -> u64 {
        self.per_kind.values().map(|v| v.uncompressed).sum()
    }

    /// Total compressed bytes.
    pub fn total_compressed(&self) -> u64 {
        self.per_kind.values().map(|v| v.compressed).sum()
    }

    /// Overall compression ratio (Table I's bracketed numbers).
    /// Degenerate totals report 1.0, matching [`KindStats::ratio`].
    pub fn overall_ratio(&self) -> f64 {
        let u = self.total_uncompressed();
        let c = self.total_compressed();
        if u == 0 || c == 0 {
            1.0
        } else {
            u as f64 / c as f64
        }
    }

    /// Cumulative wire-fault counters (all zeros unless the store runs
    /// in `through_wire` mode).
    pub fn faults(&self) -> &FaultReport {
        &self.faults
    }

    /// Mutable access to the fault counters, for the store's wire path.
    pub fn faults_mut(&mut self) -> &mut FaultReport {
        &mut self.faults
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        self.per_kind.clear();
        self.faults = FaultReport::default();
    }

    /// Merges another statistics object into this one.
    pub fn merge(&mut self, other: &CompressionStats) {
        for (k, v) in &other.per_kind {
            let e = self.per_kind.entry(k.clone()).or_default();
            e.uncompressed += v.uncompressed;
            e.compressed += v.compressed;
            e.count += v.count;
        }
        self.faults.wire_loads += other.faults.wire_loads;
        self.faults.faults_injected += other.faults.faults_injected;
        self.faults.corrupt_loads += other.faults.corrupt_loads;
        self.faults.retried_loads += other.faults.retried_loads;
        self.faults.recovered_loads += other.faults.recovered_loads;
        self.faults.zero_filled_loads += other.faults.zero_filled_loads;
    }
}

impl std::fmt::Display for CompressionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<16} {:>12} {:>12} {:>8} {:>8}",
            "kind", "orig (B)", "compr (B)", "ratio", "count"
        )?;
        for (k, v) in self.by_kind() {
            writeln!(
                f,
                "{:<16} {:>12} {:>12} {:>8.2} {:>8}",
                k, v.uncompressed, v.compressed, v.ratio(), v.count
            )?;
        }
        write!(
            f,
            "{:<16} {:>12} {:>12} {:>8.2}",
            "TOTAL",
            self.total_uncompressed(),
            self.total_compressed(),
            self.overall_ratio()
        )?;
        if self.faults.wire_loads > 0 {
            write!(f, "\nwire: {}", self.faults)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_ratios() {
        let mut s = CompressionStats::new();
        s.record(ActKind::Conv, 1000, 250);
        s.record(ActKind::Conv, 1000, 250);
        s.record(ActKind::Dropout, 400, 100);
        assert_eq!(s.total_uncompressed(), 2400);
        assert_eq!(s.total_compressed(), 600);
        assert_eq!(s.overall_ratio(), 4.0);
        let conv = s.by_kind().find(|(k, _)| *k == "conv").unwrap().1;
        assert_eq!(conv.count, 2);
        assert_eq!(conv.ratio(), 4.0);
    }

    #[test]
    fn empty_stats_report_unit_ratio() {
        let s = CompressionStats::new();
        assert_eq!(s.overall_ratio(), 1.0);
        assert_eq!(s.total_compressed(), 0);
        assert_eq!(KindStats::default().ratio(), 1.0);
        // One-sided zeros (possible via merge of partial stats) are also
        // reported as 1.0 rather than 0 or infinity.
        let half = KindStats {
            uncompressed: 100,
            compressed: 0,
            count: 1,
        };
        assert_eq!(half.ratio(), 1.0);
    }

    #[test]
    fn reset_and_merge() {
        let mut a = CompressionStats::new();
        a.record(ActKind::Sum, 100, 50);
        let mut b = CompressionStats::new();
        b.record(ActKind::Sum, 100, 50);
        b.record(ActKind::Pool, 80, 20);
        a.merge(&b);
        assert_eq!(a.total_uncompressed(), 280);
        a.reset();
        assert_eq!(a.total_uncompressed(), 0);
    }

    #[test]
    fn fault_counters_reset_and_merge() {
        let mut a = CompressionStats::new();
        a.faults_mut().wire_loads = 10;
        a.faults_mut().corrupt_loads = 2;
        a.faults_mut().recovered_loads = 2;
        let mut b = CompressionStats::new();
        b.faults_mut().wire_loads = 5;
        b.faults_mut().faults_injected = 3;
        a.merge(&b);
        assert_eq!(a.faults().wire_loads, 15);
        assert_eq!(a.faults().faults_injected, 3);
        assert_eq!(a.faults().corrupt_loads, 2);
        a.reset();
        assert_eq!(*a.faults(), FaultReport::default());
    }

    #[test]
    fn display_shows_wire_line_only_when_active() {
        let mut s = CompressionStats::new();
        s.record(ActKind::Conv, 100, 25);
        assert!(!format!("{s}").contains("wire:"));
        s.faults_mut().wire_loads = 4;
        s.faults_mut().corrupt_loads = 1;
        let txt = format!("{s}");
        assert!(txt.contains("wire:"), "{txt}");
        assert!(txt.contains("corrupt=1"), "{txt}");
    }

    #[test]
    fn display_contains_totals() {
        let mut s = CompressionStats::new();
        s.record(ActKind::Conv, 100, 25);
        let txt = format!("{s}");
        assert!(txt.contains("TOTAL"));
        assert!(txt.contains("conv"));
        assert!(txt.contains("4.00"));
    }
}

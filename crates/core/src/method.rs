//! Compression schemes and the Table II per-activation-type policy.

use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{
    BrcCodec, Codec, CoderKind, DprCodec, GistCsrCodec, JpegCodec, RawCodec, SfprCodec,
    SfprZvcCodec, ZvcF32Codec,
};
use jact_codec::quant::QuantKind;
use jact_dnn::act::ActKind;
use jact_tensor::Shape;

/// A DQT selection over training epochs.
///
/// `optL5H` (Sec. IV, Fig. 17) anneals the first epochs with the
/// low-compression table, then switches to the high-compression one —
/// avoiding divergence in the critical early period.
#[derive(Debug, Clone)]
pub enum DqtSchedule {
    /// One table for all of training.
    Fixed(Dqt),
    /// `first` until `switch_epoch`, then `after`.
    Piecewise {
        /// Table for epochs `< switch_epoch`.
        first: Dqt,
        /// Table for the remainder of training.
        after: Dqt,
        /// First epoch (0-based) that uses `after`.
        switch_epoch: usize,
    },
}

impl DqtSchedule {
    /// The paper's `optL5H`: `optL` for 5 epochs, then `optH`.
    pub fn opt_l5h() -> Self {
        DqtSchedule::Piecewise {
            first: Dqt::opt_l(),
            after: Dqt::opt_h(),
            switch_epoch: 5,
        }
    }

    /// The table in effect at `epoch`.
    pub fn at_epoch(&self, epoch: usize) -> &Dqt {
        match self {
            DqtSchedule::Fixed(d) => d,
            DqtSchedule::Piecewise {
                first,
                after,
                switch_epoch,
            } => {
                if epoch < *switch_epoch {
                    first
                } else {
                    after
                }
            }
        }
    }

    /// Schedule name for experiment tables (`optL`, `optL5H`, `jpeg80`…).
    pub fn name(&self) -> String {
        match self {
            DqtSchedule::Fixed(d) => d.name().to_string(),
            DqtSchedule::Piecewise {
                first,
                after,
                switch_epoch,
            } => format!("{}{}{}", first.name(), switch_epoch, after.name().trim_start_matches("opt")),
        }
    }
}

/// A complete activation-compression scheme — one row of Table I.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// vDNN: offload with no compression.
    Vdnn,
    /// cDMA+: DMA-side ZVC on sparse activations, none on dense.
    CdmaPlus,
    /// GIST: 8-bit DPR on dense, BRC on eligible ReLUs, DPR+CSR on sparse.
    Gist,
    /// SFPR only: 8-bit scaled fix-point on everything.
    Sfpr,
    /// JPEG-BASE: SFPR + DCT + DIV + RLE on dense spatial activations.
    JpegBase {
        /// Quantization table (image or optimized).
        dqt: Dqt,
    },
    /// JPEG-ACT: SFPR + DCT + SH + ZVC with a DQT schedule.
    JpegAct {
        /// Possibly piece-wise DQT schedule.
        schedule: DqtSchedule,
    },
    /// Custom JPEG back-end pairing for the Table III ablation matrix.
    JpegCustom {
        /// Quantization table.
        dqt: Dqt,
        /// DIV or SH.
        quant: QuantKind,
        /// RLE or ZVC.
        coder: CoderKind,
    },
}

impl Scheme {
    /// vDNN (uncompressed offload).
    pub fn vdnn() -> Self {
        Scheme::Vdnn
    }

    /// cDMA+ (DMA-side ZVC).
    pub fn cdma_plus() -> Self {
        Scheme::CdmaPlus
    }

    /// GIST (DPR/BRC/CSR).
    pub fn gist() -> Self {
        Scheme::Gist
    }

    /// SFPR-only.
    pub fn sfpr() -> Self {
        Scheme::Sfpr
    }

    /// JPEG-BASE with an image-quality table.
    pub fn jpeg_base(quality: u32) -> Self {
        Scheme::JpegBase {
            dqt: Dqt::jpeg_quality(quality),
        }
    }

    /// JPEG-ACT with a fixed DQT.
    pub fn jpeg_act(dqt: Dqt) -> Self {
        Scheme::JpegAct {
            schedule: DqtSchedule::Fixed(dqt),
        }
    }

    /// JPEG-ACT with the paper's piece-wise `optL5H` schedule.
    pub fn jpeg_act_opt_l5h() -> Self {
        Scheme::JpegAct {
            schedule: DqtSchedule::opt_l5h(),
        }
    }

    /// Scheme name for experiment tables.
    pub fn name(&self) -> String {
        match self {
            Scheme::Vdnn => "vDNN".into(),
            Scheme::CdmaPlus => "cDMA+".into(),
            Scheme::Gist => "GIST".into(),
            Scheme::Sfpr => "SFPR".into(),
            Scheme::JpegBase { dqt } => format!("JPEG-BASE({})", dqt.name()),
            Scheme::JpegAct { schedule } => format!("JPEG-ACT({})", schedule.name()),
            Scheme::JpegCustom { dqt, quant, coder } => {
                format!("JPEG({quant}+{coder}:{})", dqt.name())
            }
        }
    }

    /// Whether a dense spatial activation of `shape` is JPEG-eligible:
    /// the paper applies JPEG only when the reshaped `(N·C·H) × W` matrix
    /// spans at least one 8×8 block in each dimension (Table II footnote).
    pub fn jpeg_eligible(shape: &Shape) -> bool {
        shape.rank() == 4 && shape.w() >= 8 && shape.n() * shape.c() * shape.h() >= 8
    }

    /// Selects the codec for an activation of `kind` and `shape` at
    /// `epoch` — the Table II policy.
    pub fn codec_for(&self, kind: ActKind, shape: &Shape, epoch: usize) -> Box<dyn Codec> {
        let dense = kind.is_dense_spatial();
        match self {
            Scheme::Vdnn => Box::new(RawCodec),
            Scheme::CdmaPlus => {
                if dense {
                    // cDMA cannot compress dense activations.
                    Box::new(RawCodec)
                } else {
                    Box::new(ZvcF32Codec)
                }
            }
            Scheme::Gist => match kind {
                ActKind::Conv | ActKind::Sum | ActKind::Norm => {
                    Box::new(DprCodec::new(jact_codec::dpr::DprWidth::F8))
                }
                ActKind::ReluToOther => Box::new(BrcCodec),
                _ => Box::new(GistCsrCodec),
            },
            Scheme::Sfpr => Box::new(SfprCodec::new()),
            Scheme::JpegBase { dqt } => match kind {
                ActKind::Conv | ActKind::Sum | ActKind::Norm if Self::jpeg_eligible(shape) => {
                    Box::new(JpegCodec::new(dqt.clone(), QuantKind::Div, CoderKind::Rle))
                }
                ActKind::ReluToOther => Box::new(BrcCodec),
                _ => Box::new(SfprCodec::new()),
            },
            Scheme::JpegAct { schedule } => {
                let dqt = schedule.at_epoch(epoch).clone();
                match kind {
                    ActKind::Conv | ActKind::Sum | ActKind::Norm if Self::jpeg_eligible(shape) => {
                        Box::new(JpegCodec::new(dqt, QuantKind::Shift, CoderKind::Zvc))
                    }
                    ActKind::ReluToOther => Box::new(BrcCodec),
                    _ => Box::new(SfprZvcCodec::new()),
                }
            }
            Scheme::JpegCustom { dqt, quant, coder } => match kind {
                ActKind::Conv | ActKind::Sum | ActKind::Norm if Self::jpeg_eligible(shape) => {
                    Box::new(JpegCodec::new(dqt.clone(), *quant, *coder))
                }
                ActKind::ReluToOther => Box::new(BrcCodec),
                _ => Box::new(SfprCodec::new()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_switches_at_epoch() {
        let s = DqtSchedule::opt_l5h();
        assert_eq!(s.at_epoch(0).name(), "optL");
        assert_eq!(s.at_epoch(4).name(), "optL");
        assert_eq!(s.at_epoch(5).name(), "optH");
        assert_eq!(s.at_epoch(100).name(), "optH");
        assert_eq!(s.name(), "optL5H");
    }

    #[test]
    fn jpeg_eligibility_rules() {
        assert!(Scheme::jpeg_eligible(&Shape::nchw(8, 16, 16, 16)));
        assert!(Scheme::jpeg_eligible(&Shape::nchw(1, 1, 8, 8)));
        assert!(!Scheme::jpeg_eligible(&Shape::nchw(1, 1, 8, 4))); // W < 8
        assert!(!Scheme::jpeg_eligible(&Shape::nchw(1, 1, 4, 8))); // NCH < 8
        assert!(!Scheme::jpeg_eligible(&Shape::mat(32, 32)));
    }

    #[test]
    fn vdnn_is_always_raw() {
        let s = Scheme::vdnn();
        for kind in [ActKind::Conv, ActKind::ReluToConv, ActKind::Dropout] {
            assert_eq!(s.codec_for(kind, &Shape::nchw(2, 4, 8, 8), 0).name(), "raw");
        }
    }

    #[test]
    fn cdma_raw_on_dense_zvc_on_sparse() {
        let s = Scheme::cdma_plus();
        let shape = Shape::nchw(2, 4, 8, 8);
        assert_eq!(s.codec_for(ActKind::Conv, &shape, 0).name(), "raw");
        assert_eq!(s.codec_for(ActKind::Sum, &shape, 0).name(), "raw");
        assert_eq!(s.codec_for(ActKind::ReluToConv, &shape, 0).name(), "zvc-f32");
        assert_eq!(s.codec_for(ActKind::Dropout, &shape, 0).name(), "zvc-f32");
    }

    #[test]
    fn gist_policy_matches_table2() {
        let s = Scheme::gist();
        let shape = Shape::nchw(2, 4, 8, 8);
        assert_eq!(s.codec_for(ActKind::Conv, &shape, 0).name(), "dpr-f8");
        assert_eq!(s.codec_for(ActKind::ReluToOther, &shape, 0).name(), "brc");
        assert_eq!(s.codec_for(ActKind::ReluToConv, &shape, 0).name(), "gist-csr");
        assert_eq!(s.codec_for(ActKind::Pool, &shape, 0).name(), "gist-csr");
    }

    #[test]
    fn jpeg_act_policy_matches_table2() {
        let s = Scheme::jpeg_act_opt_l5h();
        let shape = Shape::nchw(2, 4, 8, 8);
        assert!(s
            .codec_for(ActKind::Conv, &shape, 0)
            .name()
            .contains("SH+ZVC:optL"));
        assert!(s
            .codec_for(ActKind::Sum, &shape, 6)
            .name()
            .contains("SH+ZVC:optH"));
        assert_eq!(s.codec_for(ActKind::ReluToOther, &shape, 0).name(), "brc");
        assert_eq!(
            s.codec_for(ActKind::ReluToConv, &shape, 0).name(),
            "sfpr+zvc"
        );
        // Too small for JPEG -> falls back to SFPR+ZVC.
        let tiny = Shape::nchw(1, 1, 4, 4);
        assert_eq!(s.codec_for(ActKind::Conv, &tiny, 0).name(), "sfpr+zvc");
    }

    #[test]
    fn jpeg_base_policy_matches_table2() {
        let s = Scheme::jpeg_base(80);
        let shape = Shape::nchw(2, 4, 8, 8);
        assert!(s
            .codec_for(ActKind::Conv, &shape, 0)
            .name()
            .contains("DIV+RLE:jpeg80"));
        assert_eq!(s.codec_for(ActKind::ReluToConv, &shape, 0).name(), "sfpr");
        let tiny = Shape::nchw(1, 1, 4, 4);
        assert_eq!(s.codec_for(ActKind::Conv, &tiny, 0).name(), "sfpr");
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::vdnn().name(), "vDNN");
        assert_eq!(Scheme::jpeg_base(60).name(), "JPEG-BASE(jpeg60)");
        assert_eq!(Scheme::jpeg_act_opt_l5h().name(), "JPEG-ACT(optL5H)");
    }
}

//! Cross-crate integration: training under lossy compression end to end.
//!
//! These tests exercise the whole stack — data generation, the CNN
//! substrate, the Table II policy, the compressing offload store, and the
//! codecs — the way Table I does, at smoke-test scale.

use jact_bench::harness::{train_classifier, train_vdsr, TrainCfg};
use jact_core::Scheme;

fn cfg() -> TrainCfg {
    TrainCfg {
        epochs: 3,
        train_batches: 5,
        val_batches: 2,
        batch_size: 8,
        classes: 4,
        seed: 11,
    }
}

#[test]
fn lossless_schemes_match_baseline_exactly_in_score_shape() {
    // vDNN and cDMA+ are lossless: training trajectories must be
    // *identical* to the exact baseline (same seeds, same arithmetic).
    let base = train_classifier("mini-resnet", None, &cfg());
    let vdnn = train_classifier("mini-resnet", Some(Scheme::vdnn()), &cfg());
    let cdma = train_classifier("mini-resnet", Some(Scheme::cdma_plus()), &cfg());
    assert_eq!(base.epoch_scores, vdnn.epoch_scores);
    assert_eq!(base.epoch_scores, cdma.epoch_scores);
    assert!((vdnn.ratio - 1.0).abs() < 1e-9);
    assert!(cdma.ratio >= 1.0);
}

#[test]
fn jpeg_act_trains_close_to_baseline_with_high_compression() {
    let base = train_classifier("mini-resnet", None, &cfg());
    let jact = train_classifier("mini-resnet", Some(Scheme::jpeg_act_opt_l5h()), &cfg());
    assert!(!jact.diverged, "JPEG-ACT(optL5H) must not diverge");
    assert!(
        jact.ratio > 3.0,
        "JPEG-ACT ratio only {:.2}x",
        jact.ratio
    );
    // Within a loose band of the baseline at smoke scale.
    assert!(
        jact.best_score > base.best_score - 0.25,
        "jact {:.3} vs base {:.3}",
        jact.best_score,
        base.best_score
    );
}

#[test]
fn compression_ratio_ordering_matches_table1() {
    let schemes = [
        Scheme::cdma_plus(),
        Scheme::sfpr(),
        Scheme::jpeg_act_opt_l5h(),
    ];
    let mut ratios = Vec::new();
    for s in schemes {
        let r = train_classifier("mini-resnet-bottleneck", Some(s), &cfg());
        ratios.push(r.ratio);
    }
    assert!(
        ratios[0] < ratios[1] && ratios[1] < ratios[2],
        "expected cDMA+ < SFPR < JPEG-ACT, got {ratios:?}"
    );
}

#[test]
fn vgg_with_dropout_compresses_better_under_gist_than_resnet() {
    // Table I / Fig. 19: GIST's CSR wins on dropout networks, loses on
    // dense ResNets.
    let vgg = train_classifier("mini-vgg", Some(Scheme::gist()), &cfg());
    let rn = train_classifier("mini-resnet-bottleneck", Some(Scheme::gist()), &cfg());
    assert!(
        vgg.ratio > rn.ratio,
        "GIST on VGG ({:.2}x) should beat ResNet ({:.2}x)",
        vgg.ratio,
        rn.ratio
    );
}

#[test]
fn vdsr_trains_under_jpeg_act() {
    let base = train_vdsr(None, &cfg());
    let jact = train_vdsr(Some(Scheme::jpeg_act(jact_codec::dqt::Dqt::opt_l())), &cfg());
    assert!(!jact.diverged);
    assert!(jact.ratio > 2.0, "ratio {:.2}", jact.ratio);
    // PSNR within a few dB of baseline at smoke scale.
    assert!(
        jact.best_score > base.best_score - 6.0,
        "jact {:.2} dB vs base {:.2} dB",
        jact.best_score,
        base.best_score
    );
}

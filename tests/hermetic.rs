//! Hermetic-build policy gate (tier-1).
//!
//! Thin shim over the analyzer's JA02 pass: every dependency in every
//! manifest must be an in-workspace path reference, `workspace = true`
//! entries must resolve to path entries in the root table, and the
//! lockfile must pin no registry or git source.  The full rule set lives
//! in `jact_analyze::passes::ja02_hermetic`; this test keeps the policy
//! enforced under plain `cargo test` even when the CLI is not run.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/analyze (this test is registered
    // there); the workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze has a grandparent")
        .to_path_buf()
}

#[test]
fn workspace_is_hermetic() {
    let root = workspace_root();
    let diags = jact_analyze::check_hermetic(&root).expect("workspace manifests are readable");
    assert!(
        diags.is_empty(),
        "hermetic-build policy violated (JA02):\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

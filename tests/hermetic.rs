//! Hermetic-build policy gate.
//!
//! The workspace must build with an empty cargo registry cache and no
//! network: every dependency in every `Cargo.toml` has to be an
//! in-workspace `path` dependency (or a `workspace = true` reference to
//! one).  This test walks all workspace manifests and fails if a
//! registry (`version`-only), `git`, or otherwise non-path dependency is
//! ever introduced, so the regression is caught by `cargo test` rather
//! than by the first offline rebuild.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/bench for this test target.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn manifest_paths(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates).expect("crates/ dir") {
        let p = entry.expect("dir entry").path().join("Cargo.toml");
        if p.is_file() {
            out.push(p);
        }
    }
    assert!(out.len() >= 9, "expected the workspace manifests, found {}", out.len());
    out
}

/// `true` for section headers that declare dependencies.
fn is_dep_section(header: &str) -> bool {
    let h = header.trim_start_matches('[').trim_end_matches(']');
    h == "workspace.dependencies"
        || h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h.starts_with("target.") && h.ends_with("dependencies")
}

/// Collects `(manifest, line_no, line)` for every dependency entry that
/// is not a pure path/workspace reference.
fn violations(manifest: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(manifest)
        .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
    let mut in_dep_section = false;
    let mut bad = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_dep_section = is_dep_section(line);
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // A dependency entry: `name = ...`.  Allowed forms are
        // `{ path = "..." , ... }` and `{ workspace = true }`; anything
        // with `version`, `git`, or a bare version string is a registry
        // or remote source.
        let Some((name, spec)) = line.split_once('=') else {
            continue;
        };
        let (name, spec) = (name.trim(), spec.trim());
        let ok = (spec.contains("path =") || spec.contains("workspace = true"))
            && !spec.contains("git =")
            && !spec.contains("version =")
            && !spec.contains("registry =");
        if !ok {
            bad.push(format!(
                "{}:{}: `{name}` is not a path/workspace dependency: {line}",
                manifest.display(),
                no + 1
            ));
        }
    }
    bad
}

#[test]
fn all_dependencies_are_path_dependencies() {
    let root = workspace_root();
    let mut bad = Vec::new();
    for manifest in manifest_paths(&root) {
        bad.extend(violations(&manifest));
    }
    assert!(
        bad.is_empty(),
        "hermetic-build policy violated (see README \"Hermetic build\"):\n{}",
        bad.join("\n")
    );
}

#[test]
fn workspace_references_resolve_to_path_entries() {
    // Every `<crate> = { workspace = true }` reference in a member
    // manifest must resolve to a `path` entry in the root
    // [workspace.dependencies], so members can only reach each other —
    // never a registry — through the workspace table.
    let root = workspace_root();
    let root_text = std::fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    for manifest in manifest_paths(&root) {
        let text = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let mut in_dep_section = false;
        for line in text.lines().map(str::trim) {
            if line.starts_with('[') {
                in_dep_section = is_dep_section(line);
                continue;
            }
            if !in_dep_section || !line.contains("workspace = true") || !line.contains('=') {
                continue;
            }
            let name = line.split('=').next().unwrap().trim();
            assert!(
                root_text.contains(&format!("{name} = {{ path =")),
                "{}: `{name}` references the workspace table but the root \
                 manifest has no path entry for it",
                manifest.display()
            );
        }
    }
}

#[test]
fn no_lockfile_registry_entries() {
    // Belt and braces: if a Cargo.lock exists it must not pin any
    // registry or git source.
    let lock = workspace_root().join("Cargo.lock");
    if !lock.is_file() {
        return;
    }
    let text = std::fs::read_to_string(&lock).expect("read Cargo.lock");
    for (no, line) in text.lines().enumerate() {
        assert!(
            !line.contains("registry+") && !line.contains("git+"),
            "Cargo.lock:{}: non-path source: {line}",
            no + 1
        );
    }
}

//! Smoke checks that the experiment machinery used by the figure/table
//! binaries produces sane output shapes at quick scale.

use jact_bench::harness::{harvest_dense, train_classifier, TrainCfg};
use jact_bench::tables;
use jact_core::dqt_opt::{optimize, DqtOptConfig};
use jact_core::Scheme;
use jact_codec::dqt::Dqt;
use jact_gpusim::config::GpuConfig;
use jact_gpusim::layout::cdu_sweep;
use jact_gpusim::netspec::resnet50_cifar;
use jact_hwmodel::component::TABLE_IV;
use jact_hwmodel::Design;

#[test]
fn table_printer_handles_experiment_shapes() {
    tables::print_header("smoke");
    tables::print_table(
        &["network", "acc", "ratio"],
        &[
            vec!["mini-resnet".into(), tables::pct(0.91), tables::ratio(7.5)],
            vec!["mini-vgg".into(), tables::pct(0.88), tables::ratio(9.4)],
        ],
    );
}

#[test]
fn fig21_sweep_produces_full_grid() {
    let pts = cdu_sweep(
        &resnet50_cifar(),
        &GpuConfig::titan_v(),
        &[2.0, 8.0],
        &[1, 4],
    );
    // 2 ratios x 2 counts x 2 placements.
    assert_eq!(pts.len(), 8);
    assert!(pts.iter().all(|p| p.total_us > 0.0));
}

#[test]
fn table4_and_5_have_all_rows() {
    assert_eq!(TABLE_IV.len(), 8);
    let designs = Design::table_v();
    assert_eq!(designs.len(), 4);
    for d in designs {
        let c = d.cost();
        assert!(c.area_mm2 > 0.0 && c.power_w > 0.0);
    }
}

#[test]
fn epoch_scores_length_matches_epochs() {
    let cfg = TrainCfg::quick();
    let r = train_classifier("mini-resnet", Some(Scheme::sfpr()), &cfg);
    assert_eq!(r.epoch_scores.len(), cfg.epochs);
    assert!(r.ratio > 3.0);
}

#[test]
fn dqt_optimizer_runs_on_harvested_activations() {
    let cfg = TrainCfg::quick();
    let acts: Vec<_> = harvest_dense("mini-resnet", 1, &cfg)
        .into_iter()
        .take(2)
        .collect();
    assert!(!acts.is_empty());
    let res = optimize(
        &acts,
        &Dqt::jpeg_quality(80),
        &DqtOptConfig {
            iters: 1,
            ..DqtOptConfig::opt_l()
        },
    );
    assert_eq!(res.trajectory.len(), 2);
    assert_eq!(res.dqt.entry(0), 8);
}

//! Tier-1 gate: the workspace is clean under every `jact-analyze` lint.
//!
//! Runs the full driver in-process — the same walk the CLI performs — so
//! `cargo test` fails with the exact `file:line:col: CODE message` spans
//! whenever a workspace invariant regresses.

use std::path::{Path, PathBuf};

use jact_analyze::Code;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze has a grandparent")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_violations() {
    let analysis =
        jact_analyze::analyze_workspace(&workspace_root()).expect("workspace is readable");
    assert!(analysis.files_scanned > 30, "suspiciously few files scanned");
    assert_eq!(analysis.manifests_scanned, 13, "root + twelve crate manifests");
    assert!(
        analysis.is_clean(),
        "jact-analyze found {} violation(s):\n{}",
        analysis.violations.len(),
        analysis
            .violations
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn hot_path_crates_carry_no_suppressions() {
    // The acceptance bar for this subsystem: codec/tensor/rng/par are
    // clean without a single `jact-analyze: allow(...)` escape hatch.
    let root = workspace_root();
    for krate in ["codec", "tensor", "rng", "par"] {
        let dir = root.join("crates").join(krate).join("src");
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).expect("src dir readable") {
                let path = entry.expect("dir entry").path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    let text = std::fs::read_to_string(&path).expect("source readable");
                    assert!(
                        !text.contains("jact-analyze: allow"),
                        "{} contains a lint suppression; hot-path crates must be clean without one",
                        path.display()
                    );
                }
            }
        }
    }
    // The JA03-covered wire-path modules hold to the same bar.
    for rel in ["crates/core/src/fault.rs", "crates/core/src/offload.rs"] {
        let text = std::fs::read_to_string(root.join(rel)).expect("source readable");
        assert!(
            !text.contains("jact-analyze: allow"),
            "{rel} contains a lint suppression; wire-path modules must be clean without one"
        );
    }
}

#[test]
fn report_counts_cover_all_codes() {
    let analysis =
        jact_analyze::analyze_workspace(&workspace_root()).expect("workspace is readable");
    let json = analysis.to_json().to_string();
    for code in Code::ALL {
        assert!(
            json.contains(&format!("\"{}\":", code.as_str())),
            "report lacks a count for {code}: {json}"
        );
    }
    assert!(json.contains("\"schema\":\"jact-analyze/v1\""));
}

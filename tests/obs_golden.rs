//! Golden-trace gate: the checked-in `jact-obs/v1` corpus in
//! `tests/golden/` regenerates **byte-for-byte** at 1, 2, and 8 threads.
//!
//! This is the observability layer's determinism contract (JA04 at the
//! trace level): spans and counters are keyed by a logical event
//! counter, per-chunk events merge in chunk-index order, and the wall
//! clock stays off — so a trace is a pure function of the input and the
//! codec, never of the host, the scheduler, or `JACT_THREADS`.
//!
//! If a legitimate pipeline change moves the corpus, regenerate it via
//! `scripts/regen_golden.sh` and review the diff; never hand-edit.

use jact_bench::obs_corpus::{golden_dir, golden_matrix, golden_trace};

#[test]
fn golden_traces_regenerate_byte_equal_at_any_thread_count() {
    let dir = golden_dir();
    let matrix = golden_matrix();
    assert_eq!(matrix.len(), 8, "Table III matrix is eight corners");
    for (name, codec) in &matrix {
        let path = dir.join(format!("{name}.json"));
        let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden trace {} ({e}); run scripts/regen_golden.sh",
                path.display()
            )
        });
        for threads in [1usize, 2, 8] {
            let got = jact_par::with_threads(threads, || golden_trace(codec.as_ref()));
            assert_eq!(
                got, pinned,
                "{name}: trace deviates from corpus at threads={threads}; \
                 if the pipeline change is intentional, run scripts/regen_golden.sh"
            );
        }
    }
}

#[test]
fn golden_corpus_has_no_strays() {
    // Every file in tests/golden/ corresponds to a matrix cell — stale
    // traces from removed codecs would otherwise linger unverified.
    let names: Vec<String> = golden_matrix()
        .iter()
        .map(|(n, _)| format!("{n}.json"))
        .collect();
    for entry in std::fs::read_dir(golden_dir()).expect("tests/golden exists") {
        let file = entry.expect("dir entry").file_name();
        let file = file.to_string_lossy().to_string();
        assert!(
            names.contains(&file),
            "stray file tests/golden/{file} matches no golden_matrix cell"
        );
    }
}

#[test]
fn golden_traces_are_wall_clock_free() {
    for (name, _) in &golden_matrix() {
        let path = golden_dir().join(format!("{name}.json"));
        let text = std::fs::read_to_string(&path).expect("corpus present");
        assert!(
            !text.contains("wall_ns"),
            "{name}: corpus trace must not embed host timing"
        );
        assert!(text.contains("\"jact-obs/v1\""), "{name}: schema tag missing");
    }
}

//! Integration across codec / core / gpusim / hwmodel seams.

use jact_bench::harness::{harvest_activations, harvest_dense, TrainCfg};
use jact_core::metrics::{rate_distortion, spatial_frequency_entropy};
use jact_core::{OffloadStore, Scheme};
use jact_codec::dqt::Dqt;
use jact_codec::quant::QuantKind;
use jact_dnn::act::{ActKind, ActivationStore};
use jact_gpusim::config::GpuConfig;
use jact_gpusim::netspec::resnet50_cifar;
use jact_gpusim::offload::MethodModel;
use jact_gpusim::sim::relative_performance;
use jact_hwmodel::Design;

fn cfg() -> TrainCfg {
    TrainCfg {
        epochs: 1,
        train_batches: 2,
        val_batches: 1,
        batch_size: 4,
        classes: 4,
        seed: 3,
    }
}

#[test]
fn harvested_activations_cover_table2_kinds() {
    let acts = harvest_activations("mini-vgg", 1, &cfg());
    let kinds: std::collections::HashSet<String> =
        acts.iter().map(|(k, _)| k.to_string()).collect();
    for expected in ["conv", "relu(to conv)", "relu(to other)", "pool", "dropout", "linear"] {
        assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
    }
    // Bottleneck networks also produce dense sum activations.
    let acts = harvest_activations("mini-resnet-bottleneck", 1, &cfg());
    assert!(
        acts.iter().any(|(k, _)| *k == ActKind::Sum),
        "pre-activation bottlenecks must save sum activations"
    );
}

#[test]
fn real_activations_are_frequency_compressible() {
    // The Fig. 2/6 claim on *real* (trained-network) activations, not
    // synthetic fields.
    let dense = harvest_dense("mini-resnet", 2, &cfg());
    assert!(!dense.is_empty());
    let mut wins = 0usize;
    for a in &dense {
        let (hs, hf) = spatial_frequency_entropy(a);
        if hf < hs {
            wins += 1;
        }
    }
    assert!(
        wins * 2 > dense.len(),
        "frequency domain should be more compact for most conv activations ({wins}/{})",
        dense.len()
    );
}

#[test]
fn measured_ratios_flow_into_performance_model() {
    // Functional sim -> ratios -> timing sim, the cross-crate pipeline
    // behind Fig. 18.
    let dense = harvest_dense("mini-resnet", 1, &cfg());
    let mut store = OffloadStore::new(Scheme::jpeg_act(Dqt::opt_h()));
    for (i, a) in dense.iter().enumerate() {
        store.save(i as u64, ActKind::Conv, a);
    }
    let measured = store.stats().overall_ratio();
    assert!(measured > 1.5, "measured dense ratio {measured}");

    let gpu = GpuConfig::titan_v();
    let m = MethodModel::jpeg_act().with_ratios(measured, measured * 0.8, 32.0);
    let speedup = relative_performance(&resnet50_cifar(), &m, &MethodModel::vdnn(), &gpu);
    assert!(speedup > 1.2, "speedup {speedup}");
}

#[test]
fn rate_distortion_consistent_between_backends() {
    let dense = harvest_dense("mini-resnet", 1, &cfg());
    let a = &dense[0];
    let (h_div, e_div) = rate_distortion(a, &Dqt::opt_h(), QuantKind::Div);
    let (h_sh, e_sh) = rate_distortion(a, &Dqt::opt_h(), QuantKind::Shift);
    // SH on a power-of-two table behaves like DIV within tolerance.
    assert!((h_div - h_sh).abs() < 0.6, "H: div={h_div} sh={h_sh}");
    assert!(
        (e_div - e_sh).abs() < 0.05 * e_div.max(e_sh).max(1e-9) + 1e-4,
        "L2: div={e_div} sh={e_sh}"
    );
}

#[test]
fn hwmodel_ratio_can_come_from_functional_sim() {
    let dense = harvest_dense("mini-resnet", 1, &cfg());
    let mut store = OffloadStore::new(Scheme::jpeg_act_opt_l5h());
    for (i, a) in dense.iter().enumerate() {
        store.save(i as u64, ActKind::Conv, a);
    }
    let ratio = store.stats().overall_ratio();
    let cost = Design::jpeg_act().with_ratio(ratio).cost();
    assert!((cost.offload_gbps - ratio * 12.8).abs() < 1e-9);
    assert!(cost.gpu_area_fraction < 0.01);
}

#[test]
fn weight_gradient_error_scales_with_activation_error() {
    // Eqn. 9: ∇w* − ∇w = ∇y ∘ (x* − x) — the weight-gradient error is
    // linear in the recovered-activation error, which is what lets the
    // DQT optimizer minimize ‖x − x*‖ as a proxy for convergence.
    use jact_dnn::act::{Context, PassthroughStore};
    use jact_dnn::layers::{Conv2d, Layer};
    use jact_tensor::init::seeded_rng;
    use jact_tensor::{Shape, Tensor};
    use jact_rng::SeedableRng;

    let shape = Shape::nchw(1, 2, 8, 8);
    let x = Tensor::from_vec(
        shape.clone(),
        (0..shape.len()).map(|i| ((i as f32) * 0.37).sin()).collect(),
    );
    let gy = Tensor::from_vec(
        Shape::nchw(1, 3, 8, 8),
        (0..192).map(|i| ((i as f32) * 0.11).cos() * 0.1).collect(),
    );

    // Gradient under an activation perturbation of magnitude eps.
    let grad_with_eps = |eps: f32| -> Tensor {
        let mut rng = seeded_rng(7);
        let mut conv = Conv2d::new("c", 2, 3, 3, 1, 1, false, 0, &mut rng);
        let mut store = PassthroughStore::new();
        let mut trng = jact_rng::rngs::StdRng::seed_from_u64(0);
        {
            let mut ctx = Context::new(true, &mut trng, &mut store);
            let _ = conv.forward(&x, &mut ctx);
        }
        // Overwrite the stored activation with a perturbed copy, as a
        // lossy store would.
        use jact_dnn::act::{ActKind, ActivationStore};
        let perturbed = x.map(|v| v + eps * (v * 13.0).sin());
        store.save(0, ActKind::Conv, &perturbed);
        {
            let mut ctx = Context::new(true, &mut trng, &mut store);
            let _ = conv.backward(&gy, &mut ctx).expect("activation present");
        }
        conv.params()[0].grad.clone()
    };

    let g0 = grad_with_eps(0.0);
    let g1 = grad_with_eps(0.01);
    let g2 = grad_with_eps(0.02);
    let e1 = g0.l2_distance(&g1);
    let e2 = g0.l2_distance(&g2);
    assert!(e1 > 0.0);
    // Doubling the activation error doubles the gradient error.
    let ratio = e2 / e1;
    assert!(
        (ratio - 2.0).abs() < 0.05,
        "gradient error should be linear in activation error: ratio {ratio}"
    );
}

//! Tier-1 determinism gate for the parallel runtime (JA04 discipline at
//! the system level): every codec of the Table III matrix — and every
//! baseline codec — must produce bitwise-identical compressed bytes and
//! round-trip tensors at any thread count, and the fault-tolerant
//! offload path must report thread-count-invariant recovery counters for
//! a fixed seed.
//!
//! Thread counts are pinned per-closure with [`jact_par::with_threads`],
//! the same override the `JACT_THREADS` environment variable feeds.

use jact_codec::dpr::DprWidth;
use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{
    BrcCodec, Codec, CoderKind, DprCodec, GistCsrCodec, JpegActCodec, JpegBaseCodec, JpegCodec,
    RawCodec, SfprCodec, SfprZvcCodec, ZvcF32Codec,
};
use jact_codec::quant::QuantKind;
use jact_codec::wire;
use jact_core::fault::{FaultConfig, FaultModel, RecoveryPolicy};
use jact_core::method::Scheme;
use jact_core::offload::OffloadStore;
use jact_dnn::act::{ActKind, ActivationId, ActivationStore};
use jact_tensor::{Shape, Tensor};

/// A dense activation large enough to cross every parallel-path
/// threshold in the codec crate (channel scan, block gather, DCT, ZVC,
/// RLE), with enough zeros to exercise the sparse coders.
fn activation() -> Tensor {
    let shape = Shape::nchw(8, 16, 32, 32);
    let data = (0..shape.len())
        .map(|i| {
            if i % 5 == 0 {
                0.0
            } else {
                ((i % 64) as f32 * 0.21).sin() * ((i / 4096 % 7) as f32 + 0.4)
            }
        })
        .collect();
    Tensor::from_vec(shape, data)
}

/// The full codec roster: the four corners of the Table III
/// quantizer × coder matrix plus every baseline pipeline.
fn all_codecs() -> Vec<(String, Box<dyn Codec>)> {
    let mut v: Vec<(String, Box<dyn Codec>)> = vec![
        ("raw".into(), Box::new(RawCodec)),
        ("zvc_f32".into(), Box::new(ZvcF32Codec)),
        ("dpr_f16".into(), Box::new(DprCodec::new(DprWidth::F16))),
        ("gist_csr".into(), Box::new(GistCsrCodec)),
        ("sfpr".into(), Box::new(SfprCodec::new())),
        ("sfpr_zvc".into(), Box::new(SfprZvcCodec::new())),
        ("brc".into(), Box::new(BrcCodec)),
        ("jpeg_base_q80".into(), Box::new(JpegBaseCodec::new(Dqt::jpeg_quality(80)))),
        ("jpeg_act_optH".into(), Box::new(JpegActCodec::new(Dqt::opt_h()))),
    ];
    for quant in [QuantKind::Div, QuantKind::Shift] {
        for coder in [CoderKind::Rle, CoderKind::Zvc] {
            v.push((
                format!("jpeg_{quant:?}_{coder:?}"),
                Box::new(JpegCodec::new(Dqt::opt_h(), quant, coder)),
            ));
        }
    }
    v
}

#[test]
fn every_codec_is_bitwise_identical_across_thread_counts() {
    let x = activation();
    for (name, codec) in all_codecs() {
        let (base_bytes, base_rt) = jact_par::with_threads(1, || {
            let c = codec.compress(&x);
            let rt = codec.decompress(&c).expect("same-codec payload");
            (wire::serialize(&c), rt)
        });
        for threads in [2usize, 8] {
            let (bytes, rt) = jact_par::with_threads(threads, || {
                let c = codec.compress(&x);
                let rt = codec.decompress(&c).expect("same-codec payload");
                (wire::serialize(&c), rt)
            });
            assert_eq!(
                bytes, base_bytes,
                "{name}: serialized bytes differ at {threads} threads"
            );
            assert_eq!(
                rt, base_rt,
                "{name}: round-trip tensor differs at {threads} threads"
            );
        }
    }
}

#[test]
fn decompressing_a_sequential_payload_in_parallel_is_identical() {
    // Cross-thread-count asymmetry: a frame compressed at one thread
    // count must decode identically at another.
    let x = activation();
    for (name, codec) in all_codecs() {
        let frame = jact_par::with_threads(1, || wire::serialize(&codec.compress(&x)));
        let base = jact_par::with_threads(1, || {
            codec
                .decompress(&wire::deserialize(&frame).expect("own frame"))
                .expect("own payload")
        });
        let par = jact_par::with_threads(8, || {
            codec
                .decompress(&wire::deserialize(&frame).expect("own frame"))
                .expect("own payload")
        });
        assert_eq!(base, par, "{name}: parallel decode of a sequential frame differs");
    }
}

/// Saves and loads a batch through a fault-injected wire with the given
/// worker count; returns the recovered tensors and the store's final
/// counters.
fn faulty_batch_roundtrip(
    threads: usize,
    policy: RecoveryPolicy,
) -> (Vec<Tensor>, jact_dnn::act::FaultReport) {
    // ~0.3 expected faults per delivered frame: a mix of clean, corrupt
    // recovered, and (under ZeroFill) zero-filled loads.
    let mut store = OffloadStore::through_wire(
        Scheme::sfpr(),
        FaultConfig::new(0.3 / 2200.0, FaultModel::Mixed, 77),
        policy,
    );
    let shape = Shape::nchw(2, 4, 16, 16);
    let items: Vec<(ActivationId, ActKind, Tensor)> = (0..16u64)
        .map(|id| {
            let data = (0..shape.len())
                .map(|i| (((i + id as usize) % 32) as f32 * 0.2).sin() + 0.3)
                .collect();
            (id, ActKind::Conv, Tensor::from_vec(shape.clone(), data))
        })
        .collect();
    let ids: Vec<ActivationId> = items.iter().map(|(id, _, _)| *id).collect();
    jact_par::with_threads(threads, || {
        store.save_batch(items);
        let tensors = store.load_batch(&ids).expect("retry/zero-fill policies recover");
        (tensors, store.fault_report())
    })
}

#[test]
fn fault_recovery_counts_are_thread_count_invariant() {
    for policy in [
        RecoveryPolicy::Retry { attempts: 50 },
        RecoveryPolicy::ZeroFill,
    ] {
        let (tensors_1, report_1) = faulty_batch_roundtrip(1, policy);
        assert_eq!(report_1.wire_loads, 16, "{policy:?}: every id crosses the wire");
        for threads in [2usize, 8] {
            let (tensors, report) = faulty_batch_roundtrip(threads, policy);
            assert_eq!(
                tensors, tensors_1,
                "{policy:?}: recovered tensors differ at {threads} threads"
            );
            assert_eq!(
                report, report_1,
                "{policy:?}: fault counters differ at {threads} threads"
            );
        }
    }
}

//! End-to-end training under injected wire faults.
//!
//! The acceptance bar for the robustness work: a multi-epoch training
//! run whose every activation load crosses the fault-injected wire at a
//! realistic fault rate must complete under `RecoveryPolicy::ZeroFill`
//! with quantified, nonzero recovery activity — and abort with a typed
//! error (never a panic) under `RecoveryPolicy::Fail`.

use jact_bench::harness::{train_classifier_faulty, TrainCfg};
use jact_core::fault::{FaultConfig, FaultModel, RecoveryPolicy};
use jact_core::Scheme;
use jact_dnn::error::NetError;

fn cfg() -> TrainCfg {
    TrainCfg {
        epochs: 2,
        train_batches: 3,
        val_batches: 1,
        batch_size: 4,
        classes: 4,
        seed: 42,
    }
}

#[test]
fn training_completes_under_zero_fill_at_1e3() {
    let (result, report) = train_classifier_faulty(
        "mini-resnet",
        Scheme::jpeg_act_opt_l5h(),
        FaultConfig::new(1e-3, FaultModel::Mixed, 7),
        RecoveryPolicy::ZeroFill,
        &cfg(),
    )
    .expect("ZeroFill never surfaces a load error");

    assert!(result.epoch_scores.len() >= 2, "both epochs ran");
    assert!(report.wire_loads > 0, "loads crossed the wire");
    assert!(report.faults_injected > 0, "1e-3/byte must inject faults");
    assert!(
        report.corrupt_loads > 0,
        "injected faults must be detected: {report}"
    );
    assert_eq!(
        report.recovered_loads, report.corrupt_loads,
        "every corrupt load recovers under ZeroFill: {report}"
    );
    assert_eq!(report.recovered_loads, report.zero_filled_loads);
    // Degradation is quantified, not silent: the report's rates are
    // well-defined and the run itself stayed finite.
    assert!(report.corruption_rate() > 0.0 && report.corruption_rate() <= 1.0);
    assert_eq!(report.recovery_rate(), 1.0);
}

#[test]
fn retry_policy_recovers_intermittent_faults() {
    // A low fault rate with a generous retry budget: corruption happens
    // but every load eventually lands a clean delivery.
    let (result, report) = train_classifier_faulty(
        "mini-resnet",
        Scheme::sfpr(),
        FaultConfig::new(2e-5, FaultModel::BitFlip, 11),
        RecoveryPolicy::Retry { attempts: 64 },
        &cfg(),
    )
    .expect("retry budget ample at this rate");

    assert!(result.epoch_scores.len() >= 2);
    assert!(report.corrupt_loads > 0, "rate should corrupt some loads: {report}");
    assert_eq!(report.recovered_loads, report.corrupt_loads, "{report}");
    assert_eq!(report.zero_filled_loads, 0, "retries are real decodes");
}

#[test]
fn fail_policy_aborts_with_typed_error() {
    // A punishing fault rate under Fail: the run must abort with a typed
    // store error, not a panic, and not silently complete.
    let err = train_classifier_faulty(
        "mini-resnet",
        Scheme::sfpr(),
        FaultConfig::new(1e-2, FaultModel::Mixed, 13),
        RecoveryPolicy::Fail,
        &cfg(),
    )
    .expect_err("1e-2/byte corrupts the first backward pass");
    match err {
        NetError::Store { .. } => {}
        other => panic!("expected NetError::Store, got {other:?}"),
    }
}

#[test]
fn zero_rate_wire_training_matches_fault_free_expectations() {
    // Wire mode with a zero fault rate: the transport is exercised on
    // every load but nothing corrupts, so the report shows traffic and
    // no recovery activity.
    let (result, report) = train_classifier_faulty(
        "mini-resnet",
        Scheme::jpeg_act_opt_l5h(),
        FaultConfig::new(0.0, FaultModel::Mixed, 3),
        RecoveryPolicy::Fail,
        &cfg(),
    )
    .expect("no faults, no errors");
    assert!(result.epoch_scores.len() >= 2);
    assert!(result.ratio > 1.0, "compression still accounted");
    assert!(report.wire_loads > 0);
    assert_eq!(report.faults_injected, 0);
    assert_eq!(report.corrupt_loads, 0);
    assert_eq!(report.recovered_loads, 0);
}

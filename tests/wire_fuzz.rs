//! Hostile-input fuzzing of the offload wire format.
//!
//! For every codec, feeds `wire::deserialize` hundreds of seeded cases
//! from three generators — pure random bytes, byte-mutated valid frames,
//! and mutated frames **re-sealed with a valid CRC** (so corruption must
//! be caught by the structural validators, not just the checksum) — and
//! asserts that every outcome is either a clean round trip or a typed
//! [`CodecError`], never a panic.  Successful decodes are additionally
//! driven through the codec's `decompress` under `catch_unwind`.

use jact_codec::dpr::DprWidth;
use jact_codec::dqt::Dqt;
use jact_codec::pipeline::{
    BrcCodec, Codec, DprCodec, GistCsrCodec, JpegActCodec, JpegBaseCodec, RawCodec, SfprCodec,
    SfprZvcCodec, ZvcF32Codec,
};
use jact_codec::wire;
use jact_rng::rngs::StdRng;
use jact_rng::{Rng, SeedableRng};
use jact_tensor::{Shape, Tensor};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Cases per codec and per generator (3 generators x 3 codecs' worth of
/// margin over the 256-case floor).
const CASES_PER_GENERATOR: usize = 128;

fn codecs() -> Vec<(&'static str, Box<dyn Codec>)> {
    vec![
        ("raw", Box::new(RawCodec) as Box<dyn Codec>),
        ("zvc-f32", Box::new(ZvcF32Codec)),
        ("dpr-f16", Box::new(DprCodec::new(DprWidth::F16))),
        ("gist-csr", Box::new(GistCsrCodec)),
        ("sfpr", Box::new(SfprCodec::new())),
        ("sfpr-zvc", Box::new(SfprZvcCodec::new())),
        ("jpeg-base", Box::new(JpegBaseCodec::new(Dqt::opt_l()))),
        ("jpeg-act", Box::new(JpegActCodec::new(Dqt::opt_h()))),
        ("brc", Box::new(BrcCodec)),
    ]
}

/// A mixed-sparsity activation-like tensor every codec accepts.
fn sample_tensor() -> Tensor {
    let shape = Shape::nchw(1, 4, 16, 16);
    let data = (0..shape.len())
        .map(|i| {
            if i % 3 == 0 {
                0.0
            } else {
                ((i % 16) as f32 * 0.35).sin() * 0.8
            }
        })
        .collect();
    Tensor::from_vec(shape, data)
}

/// Asserts `bytes` decodes without panicking; if it decodes, drives the
/// codec's `decompress` too (also under `catch_unwind`).
fn assert_no_panic(name: &str, codec: &dyn Codec, bytes: &[u8], case: usize) {
    let decoded = catch_unwind(AssertUnwindSafe(|| wire::deserialize(bytes)))
        .unwrap_or_else(|_| panic!("{name} case {case}: deserialize panicked"));
    if let Ok(c) = decoded {
        let _ = catch_unwind(AssertUnwindSafe(|| codec.decompress(&c)))
            .unwrap_or_else(|_| panic!("{name} case {case}: decompress panicked after Ok decode"));
    }
}

#[test]
fn random_bytes_never_panic() {
    for (name, codec) in codecs() {
        let mut rng = StdRng::seed_from_u64(0xF00D ^ name.len() as u64);
        for case in 0..CASES_PER_GENERATOR {
            let len = rng.gen_range(0..4096usize);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u32) as u8).collect();
            assert_no_panic(name, codec.as_ref(), &bytes, case);
        }
    }
}

#[test]
fn random_bytes_with_valid_magic_never_panic() {
    // Start past the magic so more of the parser is reached.
    for (name, codec) in codecs() {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ name.len() as u64);
        for case in 0..CASES_PER_GENERATOR {
            let len = rng.gen_range(0..2048usize);
            let mut bytes = wire::MAGIC.to_vec();
            bytes.extend((0..len).map(|_| rng.gen_range(0..256u32) as u8));
            // Half the cases also carry the right version + tag prelude.
            if case % 2 == 0 && bytes.len() >= 8 {
                bytes[4] = (wire::VERSION & 0xFF) as u8;
                bytes[5] = (wire::VERSION >> 8) as u8;
                bytes[6] = (case % 8) as u8;
                bytes[7] = 0;
            }
            assert_no_panic(name, codec.as_ref(), &bytes, case);
        }
    }
}

#[test]
fn mutated_valid_frames_never_panic_and_corruption_is_detected() {
    for (name, codec) in codecs() {
        let frame = wire::serialize(&codec.compress(&sample_tensor()));
        let mut rng = StdRng::seed_from_u64(0xCAFE ^ frame.len() as u64);
        let mut detected = 0usize;
        for case in 0..CASES_PER_GENERATOR {
            let mut bytes = frame.clone();
            let mutations = rng.gen_range(0..8usize) + 1;
            for _ in 0..mutations {
                match rng.gen_range(0..4u32) {
                    0 => {
                        let i = rng.gen_range(0..bytes.len());
                        bytes[i] ^= 1 << rng.gen_range(0..8u32);
                    }
                    1 => {
                        let i = rng.gen_range(0..bytes.len());
                        bytes[i] = rng.gen_range(0..256u32) as u8;
                    }
                    2 => {
                        let keep = rng.gen_range(0..bytes.len());
                        bytes.truncate(keep);
                    }
                    _ => {
                        bytes.push(rng.gen_range(0..256u32) as u8);
                    }
                }
                if bytes.is_empty() {
                    break;
                }
            }
            assert_no_panic(name, codec.as_ref(), &bytes, case);
            if bytes != frame && wire::deserialize(&bytes).is_err() {
                detected += 1;
            }
        }
        // The CRC makes silent acceptance of a mutation astronomically
        // unlikely; demand near-total detection.
        assert!(
            detected >= CASES_PER_GENERATOR - 1,
            "{name}: only {detected}/{CASES_PER_GENERATOR} mutations detected"
        );
    }
}

#[test]
fn resealed_mutations_never_panic() {
    // Corrupt the body, then recompute a valid CRC: the checksum no
    // longer protects, so every structural validator is on the hook.
    for (name, codec) in codecs() {
        let frame = wire::serialize(&codec.compress(&sample_tensor()));
        let mut rng = StdRng::seed_from_u64(0xD00D ^ frame.len() as u64);
        for case in 0..CASES_PER_GENERATOR {
            let mut bytes = frame.clone();
            let mutations = rng.gen_range(0..6usize) + 1;
            for _ in 0..mutations {
                // Mutate anywhere except the trailing CRC word.
                let i = rng.gen_range(0..bytes.len() - 4);
                if rng.gen_bool(0.5) {
                    bytes[i] ^= 1 << rng.gen_range(0..8u32);
                } else {
                    bytes[i] = rng.gen_range(0..256u32) as u8;
                }
            }
            let n = bytes.len();
            let crc = wire::crc32(&bytes[..n - 4]);
            bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
            assert_no_panic(name, codec.as_ref(), &bytes, case);
        }
    }
}

#[test]
fn pristine_frames_round_trip_bit_exactly() {
    for (name, codec) in codecs() {
        let compressed = codec.compress(&sample_tensor());
        let frame = wire::serialize(&compressed);
        let back = wire::deserialize(&frame)
            .unwrap_or_else(|e| panic!("{name}: pristine frame rejected: {e}"));
        assert_eq!(wire::serialize(&back), frame, "{name}: re-serialization differs");
        let a = codec.decompress(&compressed).expect("original decodes");
        let b = codec.decompress(&back).expect("wire copy decodes");
        assert_eq!(a, b, "{name}: decompressed tensors differ");
    }
}
